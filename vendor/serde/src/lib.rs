//! Offline shim for the `serde` facade.
//!
//! The build environment for this repository has no access to crates.io, so
//! the workspace patches `serde` with this minimal self-describing
//! implementation (see `vendor/README.md`). It supports exactly what the
//! repository uses: `#[derive(Serialize, Deserialize)]` on plain structs and
//! enums (no generics, no serde attributes), driven through a [`Value`]
//! data model that `serde_json` (also shimmed) renders to and parses from
//! JSON.
//!
//! The API is intentionally a tiny subset of real serde; it is NOT a
//! general-purpose replacement.

pub use serde_derive::{Deserialize, Serialize};

/// The self-describing data model every shimmed (de)serializer goes
/// through. Maps preserve insertion order so emitted JSON is stable.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` / Rust `Option::None` / unit.
    Null,
    /// A boolean.
    Bool(bool),
    /// An unsigned integer (kept exact; not round-tripped through f64).
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// A sequence.
    Seq(Vec<Value>),
    /// A map with string keys, in insertion order.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in a [`Value::Map`].
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Deserialization failure: what was expected and what was found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    /// Human-readable description of the mismatch.
    pub message: String,
}

impl DeError {
    /// Creates an error from anything displayable.
    #[must_use]
    pub fn new(message: impl Into<String>) -> Self {
        DeError { message: message.into() }
    }
}

impl core::fmt::Display for DeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "deserialization error: {}", self.message)
    }
}

impl std::error::Error for DeError {}

/// Conversion into the shim data model (the shim's `serde::Serialize`).
pub trait Serialize {
    /// Renders `self` as a [`Value`].
    fn to_value(&self) -> Value;
}

/// Conversion from the shim data model (the shim's `serde::Deserialize`).
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a [`Value`].
    ///
    /// # Errors
    /// Returns [`DeError`] when the value's shape does not match `Self`.
    fn from_value(value: &Value) -> Result<Self, DeError>;
}

// ----- primitive impls ------------------------------------------------

macro_rules! ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(u64::from(*self)) }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                match value {
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::new(concat!("integer out of range for ", stringify!($t)))),
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::new(concat!("integer out of range for ", stringify!($t)))),
                    other => Err(DeError::new(format!(
                        concat!("expected ", stringify!($t), ", found {:?}"), other))),
                }
            }
        }
    )*};
}

ser_unsigned!(u8, u16, u32, u64);

macro_rules! ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::I64(i64::from(*self)) }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                match value {
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::new(concat!("integer out of range for ", stringify!($t)))),
                    Value::U64(n) => i64::try_from(*n)
                        .ok()
                        .and_then(|n| <$t>::try_from(n).ok())
                        .ok_or_else(|| DeError::new(concat!("integer out of range for ", stringify!($t)))),
                    other => Err(DeError::new(format!(
                        concat!("expected ", stringify!($t), ", found {:?}"), other))),
                }
            }
        }
    )*};
}

ser_signed!(i8, i16, i32, i64);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::U64(*self as u64)
    }
}

impl Deserialize for usize {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        u64::from_value(value).and_then(|n| {
            usize::try_from(n).map_err(|_| DeError::new("integer out of range for usize"))
        })
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::F64(x) => Ok(*x),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            other => Err(DeError::new(format!("expected f64, found {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        f64::from_value(value).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::new(format!("expected bool, found {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::new(format!("expected string, found {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::new(format!("expected sequence, found {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! ser_tuple {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                match value {
                    Value::Seq(items) => Ok(($($name::from_value(
                        items.get($idx).ok_or_else(|| DeError::new("tuple too short"))?,
                    )?,)+)),
                    other => Err(DeError::new(format!("expected tuple, found {other:?}"))),
                }
            }
        }
    )+};
}

ser_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
);

// ----- helpers used by generated derive code --------------------------

/// Fetches and deserializes a named field from a map's entries
/// (derive-generated `Deserialize` impls call this).
///
/// # Errors
/// Returns [`DeError`] when the field is absent or has the wrong shape.
pub fn de_field<T: Deserialize>(entries: &[(String, Value)], name: &str) -> Result<T, DeError> {
    match entries.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::from_value(v),
        None => Err(DeError::new(format!("missing field `{name}`"))),
    }
}

/// Fetches and deserializes a positional element from a sequence
/// (derive-generated `Deserialize` impls for tuple structs call this).
///
/// # Errors
/// Returns [`DeError`] when the element is absent or has the wrong shape.
pub fn de_index<T: Deserialize>(items: &[Value], index: usize) -> Result<T, DeError> {
    match items.get(index) {
        Some(v) => T::from_value(v),
        None => Err(DeError::new(format!("missing tuple element {index}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::from_value(&42u64.to_value()), Ok(42));
        assert_eq!(i64::from_value(&(-3i64).to_value()), Ok(-3));
        assert_eq!(bool::from_value(&true.to_value()), Ok(true));
        assert_eq!(f64::from_value(&1.5f64.to_value()), Ok(1.5));
        assert_eq!(
            String::from_value(&"hi".to_owned().to_value()),
            Ok("hi".to_owned())
        );
        assert_eq!(Option::<u32>::from_value(&Value::Null), Ok(None));
        assert_eq!(Vec::<u32>::from_value(&vec![1u32, 2].to_value()), Ok(vec![1, 2]));
    }

    #[test]
    fn map_lookup() {
        let v = Value::Map(vec![("a".into(), Value::U64(1))]);
        assert_eq!(v.get("a"), Some(&Value::U64(1)));
        assert_eq!(v.get("b"), None);
        assert_eq!(de_field::<u64>(&[("a".into(), Value::U64(1))], "a"), Ok(1));
        assert!(de_field::<u64>(&[], "a").is_err());
    }
}
