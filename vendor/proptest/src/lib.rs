//! Offline shim for `proptest`.
//!
//! Supports the subset this workspace's tests use: range strategies over
//! integers and floats, tuple strategies, `proptest::collection::vec`,
//! `prop_map`, the `proptest!` macro (with an optional
//! `#![proptest_config(...)]` inner attribute), and panic-based
//! `prop_assert!`/`prop_assert_eq!`.
//!
//! Differences from real proptest: cases are generated from a deterministic
//! per-test seed (FNV of the test name, advanced per case), there is no
//! shrinking, and no persisted regression files. A failing case panics with
//! the assertion message; rerunning reproduces it exactly.

/// How many cases each `proptest!` test runs.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps simulation-heavy
        // properties fast while still exploring the space.
        ProptestConfig { cases: 64 }
    }
}

/// The deterministic generator handed to strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Builds a generator from a raw seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// The next 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// The per-case generator for a named test (used by the `proptest!`
/// expansion; deterministic in `(name, case)`).
#[must_use]
pub fn rng_for(name: &str, case: u32) -> TestRng {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    TestRng::new(h ^ u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// A value generator. The shim generates directly (no value trees, no
/// shrinking).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy always yielding clones of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = u128::from(rng.next_u64()) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "strategy: empty range");
                let span = (end as i128 - start as i128 + 1) as u128;
                let v = u128::from(rng.next_u64()) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy: empty range");
                self.start + (rng.next_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "strategy: empty range");
                start + (rng.next_f64() as $t) * (end - start)
            }
        }
    )*};
}

float_range_strategy!(f64, f32);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy!(
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
);

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    /// A `Vec` of `element`-generated values with length in `size`
    /// (half-open, like real proptest's range form).
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "collection::vec: empty size range");
        VecStrategy { element, min: size.start, max: size.end }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.max - self.min) as u64;
            let len = self.min + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The common-import module, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Each test runs `ProptestConfig::cases` deterministic cases; a failing
/// `prop_assert!` panics (no shrinking in the shim).
#[macro_export]
macro_rules! proptest {
    (@body ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                for __case in 0..__config.cases {
                    let mut __rng = $crate::rng_for(stringify!($name), __case);
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@body ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @body (<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)*
        );
    };
}

/// Asserts a condition inside a `proptest!` body (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a `proptest!` body (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a `proptest!` body (panics on failure).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn generation_is_deterministic() {
        let strat = (0u32..100, 0.0..1.0f64).prop_map(|(a, b)| (a, b));
        let mut r1 = crate::rng_for("t", 0);
        let mut r2 = crate::rng_for("t", 0);
        assert_eq!(strat.generate(&mut r1), strat.generate(&mut r2));
    }

    #[test]
    fn vec_lengths_respect_bounds() {
        let strat = crate::collection::vec(0u32..10, 2..5);
        let mut rng = crate::rng_for("lens", 0);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    proptest! {
        #[test]
        fn macro_drives_cases(x in 0u32..50, y in 0.0..=1.0f64) {
            prop_assert!(x < 50);
            prop_assert!((0.0..=1.0).contains(&y));
            prop_assert_eq!(x, x);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(3))]

        #[test]
        fn macro_honours_config(seed in 0u64..1000) {
            prop_assert!(seed < 1000);
        }
    }
}
