//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! offline `serde` shim.
//!
//! No syn/quote: a small token walker parses the item declaration and the
//! impls are generated as source text against the shim's `Value` data
//! model. Supports exactly the shapes this workspace uses — structs with
//! named fields, tuple structs, unit structs, and enums whose variants are
//! unit, tuple, or struct-like. Generic items and `#[serde(...)]`
//! attributes are NOT supported and panic at expansion time.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The fields a struct or enum variant carries.
enum Fields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

/// A parsed `struct` or `enum` declaration.
enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<(String, Fields)>,
    },
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    gen_serialize(&parse_item(input))
        .parse()
        .expect("derive(Serialize): generated impl must parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    gen_deserialize(&parse_item(input))
        .parse()
        .expect("derive(Deserialize): generated impl must parse")
}

// ---------------------------------------------------------------- parsing

fn parse_item(input: TokenStream) -> Item {
    let mut tokens = input.into_iter().peekable();
    while let Some(tt) = tokens.next() {
        match tt {
            // `#[attr]` / doc comment: skip the `#` and the bracket group.
            TokenTree::Punct(p) if p.as_char() == '#' => {
                tokens.next();
            }
            TokenTree::Ident(id) => match id.to_string().as_str() {
                "pub" => {
                    let restriction = matches!(
                        tokens.peek(),
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                    );
                    if restriction {
                        tokens.next();
                    }
                }
                "struct" => return parse_struct(&mut tokens),
                "enum" => return parse_enum(&mut tokens),
                other => panic!("serde shim derive: unsupported item keyword `{other}`"),
            },
            _ => {}
        }
    }
    panic!("serde shim derive: no struct or enum found in input")
}

fn expect_ident(tokens: &mut impl Iterator<Item = TokenTree>) -> String {
    match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected identifier, found {other:?}"),
    }
}

fn parse_struct(tokens: &mut impl Iterator<Item = TokenTree>) -> Item {
    let name = expect_ident(tokens);
    let fields = match tokens.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            Fields::Named(named_fields(g.stream()))
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            Fields::Tuple(count_tuple_fields(g.stream()))
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
        other => panic!(
            "serde shim derive: unsupported shape after `struct {name}` \
             (generics are not supported): {other:?}"
        ),
    };
    Item::Struct { name, fields }
}

fn parse_enum(tokens: &mut impl Iterator<Item = TokenTree>) -> Item {
    let name = expect_ident(tokens);
    let body = match tokens.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => panic!(
            "serde shim derive: expected body after `enum {name}` \
             (generics are not supported): {other:?}"
        ),
    };
    let mut variants = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut tokens);
        let Some(tt) = tokens.next() else { break };
        let TokenTree::Ident(id) = tt else {
            panic!("serde shim derive: expected variant name in `{name}`, found {tt:?}")
        };
        let delim = match tokens.peek() {
            Some(TokenTree::Group(g)) => Some(g.delimiter()),
            _ => None,
        };
        let fields = match delim {
            Some(Delimiter::Parenthesis) => {
                let Some(TokenTree::Group(g)) = tokens.next() else { unreachable!() };
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            Some(Delimiter::Brace) => {
                let Some(TokenTree::Group(g)) = tokens.next() else { unreachable!() };
                Fields::Named(named_fields(g.stream()))
            }
            _ => Fields::Unit,
        };
        variants.push((id.to_string(), fields));
        let comma = matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ',');
        if comma {
            tokens.next();
        }
    }
    Item::Enum { name, variants }
}

fn skip_attrs_and_vis(tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    loop {
        let is_attr = matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#');
        if is_attr {
            tokens.next(); // `#`
            tokens.next(); // `[...]`
            continue;
        }
        let is_pub = matches!(tokens.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub");
        if is_pub {
            tokens.next();
            let restriction = matches!(
                tokens.peek(),
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
            );
            if restriction {
                tokens.next();
            }
            continue;
        }
        break;
    }
}

/// Parses `name: Type, ...` field lists, returning the field names. Type
/// tokens are skipped up to a comma at angle-bracket depth zero (commas
/// inside parens/brackets live in nested groups and never surface here).
fn named_fields(stream: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut tokens);
        let Some(tt) = tokens.next() else { break };
        let TokenTree::Ident(id) = tt else {
            panic!("serde shim derive: expected field name, found {tt:?}")
        };
        let field = id.to_string();
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => {
                panic!("serde shim derive: expected `:` after field `{field}`, found {other:?}")
            }
        }
        fields.push(field);
        let mut depth = 0i32;
        let mut prev = ' ';
        for tt in tokens.by_ref() {
            if let TokenTree::Punct(p) = &tt {
                let c = p.as_char();
                match c {
                    '<' => depth += 1,
                    // `->` in an fn-pointer type must not close a generic.
                    '>' if prev != '-' => depth -= 1,
                    ',' if depth == 0 => break,
                    _ => {}
                }
                prev = c;
            } else {
                prev = ' ';
            }
        }
    }
    fields
}

/// Counts the fields of a tuple struct / tuple variant by counting commas
/// at angle-bracket depth zero.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut count = 0usize;
    let mut depth = 0i32;
    let mut prev = ' ';
    let mut in_segment = false;
    for tt in stream {
        if let TokenTree::Punct(p) = &tt {
            let c = p.as_char();
            match c {
                '<' => depth += 1,
                '>' if prev != '-' => depth -= 1,
                ',' if depth == 0 => {
                    if in_segment {
                        count += 1;
                    }
                    in_segment = false;
                    prev = c;
                    continue;
                }
                _ => {}
            }
            prev = c;
        } else {
            prev = ' ';
        }
        in_segment = true;
    }
    if in_segment {
        count += 1;
    }
    count
}

// ------------------------------------------------------------- generation

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => "::serde::Value::Null".to_string(),
                Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let items = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                        .collect::<Vec<_>>()
                        .join(", ");
                    format!("::serde::Value::Seq(vec![{items}])")
                }
                Fields::Named(fs) => {
                    let entries = fs
                        .iter()
                        .map(|f| {
                            format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f}))")
                        })
                        .collect::<Vec<_>>()
                        .join(", ");
                    format!("::serde::Value::Map(vec![{entries}])")
                }
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for (v, fields) in variants {
                match fields {
                    Fields::Unit => arms.push_str(&format!(
                        "{name}::{v} => ::serde::Value::Str(\"{v}\".to_string()),\n"
                    )),
                    Fields::Tuple(1) => arms.push_str(&format!(
                        "{name}::{v}(f0) => ::serde::Value::Map(vec![(\"{v}\".to_string(), \
                         ::serde::Serialize::to_value(f0))]),\n"
                    )),
                    Fields::Tuple(n) => {
                        let pat = (0..*n).map(|i| format!("f{i}")).collect::<Vec<_>>().join(", ");
                        let items = (0..*n)
                            .map(|i| format!("::serde::Serialize::to_value(f{i})"))
                            .collect::<Vec<_>>()
                            .join(", ");
                        arms.push_str(&format!(
                            "{name}::{v}({pat}) => ::serde::Value::Map(vec![(\"{v}\".to_string(), \
                             ::serde::Value::Seq(vec![{items}]))]),\n"
                        ));
                    }
                    Fields::Named(fs) => {
                        let pat = fs.join(", ");
                        let entries = fs
                            .iter()
                            .map(|f| {
                                format!("(\"{f}\".to_string(), ::serde::Serialize::to_value({f}))")
                            })
                            .collect::<Vec<_>>()
                            .join(", ");
                        arms.push_str(&format!(
                            "{name}::{v} {{ {pat} }} => ::serde::Value::Map(vec![\
                             (\"{v}\".to_string(), ::serde::Value::Map(vec![{entries}]))]),\n"
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ match self {{ {arms} }} }}\n\
                 }}"
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => format!(
                    "match value {{\n\
                         ::serde::Value::Null => Ok({name}),\n\
                         other => Err(::serde::DeError::new(format!(\
                             \"expected null for {name}, found {{other:?}}\"))),\n\
                     }}"
                ),
                Fields::Tuple(1) => {
                    format!("Ok({name}(::serde::Deserialize::from_value(value)?))")
                }
                Fields::Tuple(n) => {
                    let args = (0..*n)
                        .map(|i| format!("::serde::de_index(items, {i})?"))
                        .collect::<Vec<_>>()
                        .join(", ");
                    format!(
                        "match value {{\n\
                             ::serde::Value::Seq(items) => Ok({name}({args})),\n\
                             other => Err(::serde::DeError::new(format!(\
                                 \"expected sequence for {name}, found {{other:?}}\"))),\n\
                         }}"
                    )
                }
                Fields::Named(fs) => {
                    let args = fs
                        .iter()
                        .map(|f| format!("{f}: ::serde::de_field(entries, \"{f}\")?"))
                        .collect::<Vec<_>>()
                        .join(", ");
                    format!(
                        "match value {{\n\
                             ::serde::Value::Map(entries) => Ok({name} {{ {args} }}),\n\
                             other => Err(::serde::DeError::new(format!(\
                                 \"expected map for {name}, found {{other:?}}\"))),\n\
                         }}"
                    )
                }
            };
            (name, body)
        }
        Item::Enum { name, variants } => {
            let unit: Vec<&String> = variants
                .iter()
                .filter(|(_, f)| matches!(f, Fields::Unit))
                .map(|(v, _)| v)
                .collect();
            let payload: Vec<&(String, Fields)> =
                variants.iter().filter(|(_, f)| !matches!(f, Fields::Unit)).collect();
            let mut arms = String::new();
            if unit.is_empty() {
                arms.push_str(&format!(
                    "::serde::Value::Str(s) => Err(::serde::DeError::new(format!(\
                     \"unknown variant `{{s}}` of {name}\"))),\n"
                ));
            } else {
                let mut inner = String::new();
                for v in &unit {
                    inner.push_str(&format!("\"{v}\" => Ok({name}::{v}),\n"));
                }
                arms.push_str(&format!(
                    "::serde::Value::Str(s) => match s.as_str() {{\n\
                         {inner}\
                         other => Err(::serde::DeError::new(format!(\
                             \"unknown variant `{{other}}` of {name}\"))),\n\
                     }},\n"
                ));
            }
            if !payload.is_empty() {
                let mut inner = String::new();
                for (v, f) in &payload {
                    match f {
                        Fields::Tuple(1) => inner.push_str(&format!(
                            "\"{v}\" => Ok({name}::{v}(::serde::Deserialize::from_value(payload)?)),\n"
                        )),
                        Fields::Tuple(n) => {
                            let args = (0..*n)
                                .map(|i| format!("::serde::de_index(items, {i})?"))
                                .collect::<Vec<_>>()
                                .join(", ");
                            inner.push_str(&format!(
                                "\"{v}\" => match payload {{\n\
                                     ::serde::Value::Seq(items) => Ok({name}::{v}({args})),\n\
                                     other => Err(::serde::DeError::new(format!(\
                                         \"expected sequence for {name}::{v}, found {{other:?}}\"))),\n\
                                 }},\n"
                            ));
                        }
                        Fields::Named(fs) => {
                            let args = fs
                                .iter()
                                .map(|f| format!("{f}: ::serde::de_field(fields, \"{f}\")?"))
                                .collect::<Vec<_>>()
                                .join(", ");
                            inner.push_str(&format!(
                                "\"{v}\" => match payload {{\n\
                                     ::serde::Value::Map(fields) => Ok({name}::{v} {{ {args} }}),\n\
                                     other => Err(::serde::DeError::new(format!(\
                                         \"expected map for {name}::{v}, found {{other:?}}\"))),\n\
                                 }},\n"
                            ));
                        }
                        Fields::Unit => unreachable!(),
                    }
                }
                arms.push_str(&format!(
                    "::serde::Value::Map(entries) if entries.len() == 1 => {{\n\
                         let (key, payload) = &entries[0];\n\
                         match key.as_str() {{\n\
                             {inner}\
                             other => Err(::serde::DeError::new(format!(\
                                 \"unknown variant `{{other}}` of {name}\"))),\n\
                         }}\n\
                     }},\n"
                ));
            }
            arms.push_str(&format!(
                "other => Err(::serde::DeError::new(format!(\
                 \"expected variant of {name}, found {{other:?}}\"))),\n"
            ));
            (name, format!("match value {{ {arms} }}"))
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}
