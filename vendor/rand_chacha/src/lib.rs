//! Offline shim for `rand_chacha`.
//!
//! [`ChaCha8Rng`] keeps the real crate's API (`SeedableRng::seed_from_u64` +
//! `RngCore`) and its determinism-per-seed guarantee, but the stream is a
//! xoshiro256** sequence, NOT real ChaCha output. Nothing in this workspace
//! depends on the actual keystream — only on seeded reproducibility.

use rand::{RngCore, SeedableRng};

/// Deterministic small-state generator standing in for ChaCha8.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaCha8Rng {
    s: [u64; 4],
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(state: u64) -> Self {
        ChaCha8Rng { s: expand(state) }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// ChaCha12 under the same shim (identical construction, distinct stream).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaCha12Rng {
    inner: ChaCha8Rng,
}

impl SeedableRng for ChaCha12Rng {
    fn seed_from_u64(state: u64) -> Self {
        ChaCha12Rng { inner: ChaCha8Rng::seed_from_u64(state ^ 0x12C0_FFEE) }
    }
}

impl RngCore for ChaCha12Rng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

/// SplitMix64 expansion of one seed word into four state words.
fn expand(seed: u64) -> [u64; 4] {
    let mut sm = seed;
    let mut next = move || {
        sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = sm;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    [next(), next(), next(), next()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn seeded_streams_reproduce() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        assert_ne!(
            (a.next_u64(), a.next_u64()),
            (b.next_u64(), b.next_u64())
        );
    }

    #[test]
    fn works_through_rng_trait() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let v: f64 = rng.gen_range(-0.5..0.5);
        assert!((-0.5..0.5).contains(&v));
    }
}
