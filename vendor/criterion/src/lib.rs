//! Offline shim for `criterion`.
//!
//! Keeps the bench-authoring API (`criterion_group!`, `criterion_main!`,
//! `Criterion::benchmark_group`, `Bencher::iter`/`iter_batched`) but
//! replaces the statistical engine with a plain wall-clock mean over
//! `sample_size` iterations, printed to stdout. Good enough to keep
//! `cargo bench` runnable offline; not a measurement-grade harness.

use std::time::{Duration, Instant};

/// How `iter_batched` amortises setup (shim: always per-iteration).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Fresh setup for every routine call.
    PerIteration,
    /// Treated like `PerIteration` in the shim.
    SmallInput,
    /// Treated like `PerIteration` in the shim.
    LargeInput,
}

/// The timing context passed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the configured number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` with a fresh `setup` input per iteration; setup time
    /// is excluded from the measurement.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// The top-level harness handle.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\n== {name} ==");
        BenchmarkGroup { _parent: std::marker::PhantomData, sample_size: self.sample_size }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_bench(name, self.sample_size, f);
        self
    }
}

/// A named group of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    _parent: std::marker::PhantomData<&'a mut Criterion>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the iteration count for subsequent benches in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_bench(name, self.sample_size, f);
        self
    }

    /// Ends the group (no-op in the shim; kept for API parity).
    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, mut f: F) {
    let mut b = Bencher { iters: sample_size.max(1) as u64, elapsed: Duration::ZERO };
    f(&mut b);
    let mean = b.elapsed / u32::try_from(b.iters).unwrap_or(u32::MAX);
    println!("{name:<40} {mean:>12.3?} / iter  ({} iters)", b.iters);
}

/// Opaque-to-the-optimiser pass-through (alias of `std::hint::black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Collects benchmark functions into one group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_routines() {
        let mut c = Criterion::default();
        let mut calls = 0u64;
        {
            let mut g = c.benchmark_group("shim");
            g.sample_size(5);
            g.bench_function("count", |b| b.iter(|| calls += 1));
            g.finish();
        }
        assert_eq!(calls, 5);
    }

    #[test]
    fn iter_batched_sets_up_per_iteration() {
        let mut c = Criterion::default();
        let mut setups = 0u64;
        c.bench_function("batched", |b| {
            b.iter_batched(|| setups += 1, |()| (), BatchSize::PerIteration);
        });
        assert_eq!(setups, 20);
    }
}
