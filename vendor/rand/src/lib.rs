//! Offline shim for the `rand` 0.8 API subset this workspace uses:
//! `RngCore`, `SeedableRng::seed_from_u64`, and `Rng::{gen, gen_range,
//! gen_bool}` over integer and float ranges.
//!
//! Distribution quality matches what tests and synthetic workloads need
//! (uniform via 64-bit modulo / 53-bit mantissa scaling), not the real
//! crate's statistical guarantees. Streams are deterministic per seed but
//! do NOT match real `rand` output.

/// A source of 64-bit random words.
pub trait RngCore {
    /// The next 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// The next 32-bit word (high half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, by a single `u64` (the only entry point this
/// workspace uses).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a uniform value of `T` over its full domain.
    fn gen<T: FromRng>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types [`Rng::gen`] can produce.
pub trait FromRng {
    /// Samples a uniform value from `rng`.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// Ranges [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// A uniform `f64` in `[0, 1)` from the top 53 bits of one word.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
}

macro_rules! from_rng_int {
    ($($t:ty),*) => {$(
        impl FromRng for $t {
            fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

from_rng_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl FromRng for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl FromRng for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl FromRng for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng) as f32
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = u128::from(rng.next_u64()) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128 + 1) as u128;
                let v = u128::from(rng.next_u64()) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                self.start + (unit_f64(rng) as $t) * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                start + (unit_f64(rng) as $t) * (end - start)
            }
        }
    )*};
}

float_sample_range!(f64, f32);

/// Modules mirroring the real crate layout, for `use rand::rngs::...`-style
/// imports if a future crate needs them.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast generator (xoshiro256**-style, seeded via SplitMix64).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            SmallRng { s: super::split_mix_expand(state) }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            super::xoshiro_step(&mut self.s)
        }
    }
}

/// Expands one seed word into four non-zero state words (SplitMix64).
pub(crate) fn split_mix_expand(seed: u64) -> [u64; 4] {
    let mut sm = seed;
    let mut next = move || {
        sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = sm;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    [next(), next(), next(), next()]
}

/// One xoshiro256** step over `s`.
pub(crate) fn xoshiro_step(s: &mut [u64; 4]) -> u64 {
    let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
    let t = s[1] << 17;
    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = s[3].rotate_left(45);
    result
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(SmallRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: u32 = rng.gen_range(0..100);
            assert!(v < 100);
            let f: f64 = rng.gen_range(-0.3..0.3);
            assert!((-0.3..0.3).contains(&f));
            let i: i32 = rng.gen_range(14..27);
            assert!((14..27).contains(&i));
            let x: f64 = rng.gen_range(0.0..=1.0);
            assert!((0.0..=1.0).contains(&x));
        }
    }

    #[test]
    fn full_domain_gen() {
        let mut rng = SmallRng::seed_from_u64(2);
        let _: u64 = rng.gen();
        let _: bool = rng.gen();
        let f: f64 = rng.gen();
        assert!((0.0..1.0).contains(&f));
    }
}
