//! Offline shim for `serde_json`.
//!
//! Renders the shim serde [`Value`] model as JSON and parses JSON back into
//! it. Integers are kept exact (never round-tripped through `f64`, which
//! matters for `u64` event counters), and floats are printed with `{:?}` —
//! Rust's shortest-roundtrip formatting — so `f64` fields survive a
//! serialize → parse cycle bit-exactly. Non-finite floats serialize as
//! `null`, matching real serde_json's default behaviour.

use std::fmt;

use serde::{DeError, Deserialize, Serialize, Value};

/// Serialization/deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error { message: message.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.message)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e.message)
    }
}

/// Serializes a value to compact JSON.
///
/// # Errors
/// Infallible for the shim data model; `Result` kept for API parity.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value());
    Ok(out)
}

/// Serializes a value to 2-space-indented JSON.
///
/// # Errors
/// Infallible for the shim data model; `Result` kept for API parity.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&mut out, &value.to_value(), 0);
    Ok(out)
}

/// Serializes a value to compact JSON bytes.
///
/// # Errors
/// Infallible for the shim data model; `Result` kept for API parity.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Parses JSON text into a value.
///
/// # Errors
/// Returns [`Error`] on malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value_str(s)?;
    T::from_value(&value).map_err(Error::from)
}

/// Parses JSON bytes into a value.
///
/// # Errors
/// Returns [`Error`] on invalid UTF-8, malformed JSON, or a shape mismatch.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::new(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

// --------------------------------------------------------------- writing

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => write_f64(out, *x),
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, k);
                out.push(':');
                write_value(out, item);
            }
            out.push('}');
        }
    }
}

fn write_pretty(out: &mut String, v: &Value, indent: usize) {
    match v {
        Value::Seq(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_pretty(out, item, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push(']');
        }
        Value::Map(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_string(out, k);
                out.push_str(": ");
                write_pretty(out, item, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push('}');
        }
        other => write_value(out, other),
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_f64(out: &mut String, x: f64) {
    if x.is_finite() {
        // `{:?}` is Rust's shortest-roundtrip float formatting and always
        // produces a valid JSON number (`1.0`, `1e-6`, ...).
        out.push_str(&format!("{x:?}"));
    } else {
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// --------------------------------------------------------------- parsing

fn parse_value_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(Error::new(format!("bad array at byte {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => return Err(Error::new(format!("bad object at byte {}", self.pos))),
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number bytes are ASCII");
        let is_float = text.contains(['.', 'e', 'E']);
        if !is_float {
            // Keep integers exact: u64 counters can exceed 2^53.
            if let Some(rest) = text.strip_prefix('-') {
                if rest.parse::<u64>().is_ok() || text.parse::<i64>().is_ok() {
                    return text
                        .parse::<i64>()
                        .map(Value::I64)
                        .map_err(|e| Error::new(format!("bad number `{text}`: {e}")));
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|e| Error::new(format!("bad number `{text}`: {e}")))
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let code = self.parse_hex4()?;
                            // A high surrogate must be followed by an
                            // escaped low surrogate; combine them.
                            let c = if (0xD800..0xDC00).contains(&code)
                                && self.bytes[self.pos..].starts_with(b"\\u")
                            {
                                self.pos += 2;
                                let low = self.parse_hex4()?;
                                let combined = 0x10000
                                    + ((code - 0xD800) << 10)
                                    + (low.wrapping_sub(0xDC00) & 0x3FF);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.unwrap_or('\u{FFFD}'));
                            continue;
                        }
                        other => {
                            return Err(Error::new(format!(
                                "bad escape {:?} at byte {}",
                                other.map(|c| c as char),
                                self.pos
                            )))
                        }
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x80 => {
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one full UTF-8 character. Validate at most a
                    // 4-byte window, never the whole remaining input — a
                    // per-character full-suffix scan is quadratic on
                    // multi-megabyte documents.
                    let end = (self.pos + 4).min(self.bytes.len());
                    let window = &self.bytes[self.pos..end];
                    let decoded = match std::str::from_utf8(window) {
                        Ok(s) => s,
                        // A trailing char may be cut off by the window; the
                        // prefix up to it is still valid.
                        Err(e) if e.valid_up_to() > 0 => {
                            std::str::from_utf8(&window[..e.valid_up_to()])
                                .expect("validated prefix")
                        }
                        Err(e) => {
                            return Err(Error::new(format!("invalid UTF-8 in string: {e}")))
                        }
                    };
                    let c = decoded.chars().next().expect("non-empty remainder");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error::new("unterminated string")),
            }
        }
    }

    /// Parses exactly four hex digits (after `\u`), leaving `pos` past them.
    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let mut code = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(b @ b'0'..=b'9') => u32::from(b - b'0'),
                Some(b @ b'a'..=b'f') => u32::from(b - b'a') + 10,
                Some(b @ b'A'..=b'F') => u32::from(b - b'A') + 10,
                other => {
                    return Err(Error::new(format!(
                        "bad \\u escape digit {:?} at byte {}",
                        other.map(|c| c as char),
                        self.pos
                    )))
                }
            };
            code = code * 16 + d;
            self.pos += 1;
        }
        Ok(code)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<i64>("-7").unwrap(), -7);
        assert_eq!(from_str::<bool>("true").unwrap(), true);
        assert_eq!(from_str::<Option<u32>>("null").unwrap(), None);
        let x = 0.1f64 + 0.2;
        let s = to_string(&x).unwrap();
        assert_eq!(from_str::<f64>(&s).unwrap(), x, "f64 must roundtrip bit-exactly");
    }

    #[test]
    fn big_u64_is_exact() {
        let n = u64::MAX - 3;
        let s = to_string(&n).unwrap();
        assert_eq!(from_str::<u64>(&s).unwrap(), n);
    }

    #[test]
    fn strings_escape() {
        let s = "a\"b\\c\nd\u{1F600}".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
        // Escaped input form too.
        assert_eq!(from_str::<String>("\"\\u0041\"").unwrap(), "A");
        assert_eq!(from_str::<String>("\"\\ud83d\\ude00\"").unwrap(), "\u{1F600}");
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![(1u64, "a".to_string()), (2, "b".to_string())];
        let json = to_string(&v).unwrap();
        assert_eq!(from_str::<Vec<(u64, String)>>(&json).unwrap(), v);
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(from_str::<Vec<(u64, String)>>(&pretty).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<u64>("").is_err());
        assert!(from_str::<u64>("12 34").is_err());
        assert!(from_str::<Vec<u64>>("[1,").is_err());
        assert!(from_str::<String>("\"open").is_err());
    }
}
