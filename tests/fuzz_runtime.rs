//! Protocol torture: random managed workloads must never deadlock the
//! runtime, corrupt the trace, or violate heap accounting — across random
//! thread counts, step mixes, frequencies, and heap sizes.

use dvfs_trace::Freq;
use mrt::{ManagedRuntime, RuntimeConfig, Step, StepContext, WorkSource};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use simx::mem::AccessPattern;
use simx::{Machine, MachineConfig, WorkItem};

/// A randomized work source: emits a seeded stream of steps with balanced
/// lock/unlock pairs and bounded totals.
struct FuzzSource {
    rng: ChaCha8Rng,
    steps_left: u32,
    holding_lock: bool,
    barrier_parties: u32,
}

impl WorkSource for FuzzSource {
    fn next_step(&mut self, _ctx: &StepContext) -> Option<Step> {
        if self.steps_left == 0 {
            // Never exit while holding the lock.
            if self.holding_lock {
                self.holding_lock = false;
                return Some(Step::Unlock(0));
            }
            return None;
        }
        self.steps_left -= 1;
        // If we hold the lock, release it next (short critical sections,
        // and never a safepoint inside — mirrors the workload rules).
        if self.holding_lock {
            self.holding_lock = false;
            return Some(Step::Unlock(0));
        }
        let roll: u32 = self.rng.gen_range(0..100);
        Some(match roll {
            0..=39 => Step::Work(WorkItem::Compute {
                instructions: self.rng.gen_range(1_000..200_000),
                ipc: self.rng.gen_range(0.5..3.0),
            }),
            40..=59 => Step::Work(WorkItem::Memory {
                accesses: self.rng.gen_range(16..2_000),
                pattern: AccessPattern::Random {
                    base: 1 << 40,
                    working_set: 1u64 << self.rng.gen_range(14..27),
                },
                mlp: self.rng.gen_range(1.0..8.0),
                compute_per_access: self.rng.gen_range(0.0..8.0),
                ipc: 2.0,
                seed: self.rng.gen(),
            }),
            60..=79 => Step::Alloc {
                bytes: self.rng.gen_range(256..256 * 1024),
            },
            80..=89 => {
                self.holding_lock = true;
                Step::Lock(0)
            }
            90..=94 if self.barrier_parties > 1 => Step::Barrier(0),
            _ => Step::Sleep(dvfs_trace::TimeDelta::from_micros(
                self.rng.gen_range(1.0..200.0),
            )),
        })
    }
}

fn run_fuzz(seed: u64, threads: usize, steps: u32, heap_mb: u64, ghz: f64) {
    let mut mc = MachineConfig::haswell_quad();
    mc.initial_freq = Freq::from_ghz(ghz);
    let mut machine = Machine::new(mc);
    let sources: Vec<Box<dyn WorkSource>> = (0..threads)
        .map(|t| {
            Box::new(FuzzSource {
                rng: ChaCha8Rng::seed_from_u64(seed ^ (t as u64) << 32),
                // Same step budget for every thread so barrier arrivals
                // eventually balance (exiting threads withdraw anyway).
                steps_left: steps,
                holding_lock: false,
                barrier_parties: threads as u32,
            }) as Box<dyn WorkSource>
        })
        .collect();
    let mut config = RuntimeConfig::with_heap(heap_mb << 20);
    config.jit_budget_instructions = 1_000_000;
    let runtime = ManagedRuntime::install(&mut machine, config, sources, 1, &[threads as u32]);
    machine
        .run()
        .unwrap_or_else(|e| panic!("seed {seed} threads {threads}: {e}"));
    let trace = machine.harvest_trace();
    trace
        .validate()
        .unwrap_or_else(|e| panic!("seed {seed}: invalid trace: {e}"));
    // Heap accounting is consistent.
    let shared = runtime.shared();
    let heap = shared.heap.borrow();
    assert!(heap.nursery_used <= heap.nursery_size);
    assert_eq!(shared.phase.get(), mrt::GcPhase::Running);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random step mixes across random machine states never deadlock and
    /// always produce a valid trace.
    #[test]
    fn random_workloads_never_deadlock(
        seed in 0u64..1_000_000,
        threads in 1usize..6,
        steps in 5u32..60,
        heap_mb in 8u64..33,
        ghz_q in 0u32..13,
    ) {
        let ghz = 1.0 + f64::from(ghz_q) * 0.25;
        run_fuzz(seed, threads, steps, heap_mb, ghz);
    }
}

/// A couple of fixed worst-case shapes kept as fast regression tests.
#[test]
fn known_hard_shapes() {
    // Single thread, tiny heap: constant GC pressure.
    run_fuzz(42, 1, 50, 8, 4.0);
    // Many threads, many barriers, oversubscribed cores.
    run_fuzz(7, 5, 40, 16, 1.0);
}
