//! Cross-crate integration tests: workload → simulator → trace →
//! predictor, end to end.

use depburst::{paper_roster, relative_error, Coop, Dep, DvfsPredictor, MCrit};
use dvfs_trace::Freq;
use harness::{run_benchmark, RunConfig};

const SCALE: f64 = 0.04;

#[test]
fn every_benchmark_runs_and_emits_a_valid_trace() {
    for bench in dacapo_sim::all_benchmarks() {
        let r = run_benchmark(bench, RunConfig::at_ghz(2.0).scaled(SCALE));
        r.trace.validate().unwrap_or_else(|e| panic!("{}: {e}", bench.name));
        assert!(r.exec.as_secs() > 0.0, "{}", bench.name);
        // Epoch durations tile the run exactly.
        let sum: f64 = r.trace.epochs.iter().map(|e| e.duration.as_secs()).sum();
        assert!(
            (sum - r.exec.as_secs()).abs() < 1e-6,
            "{}: epochs {sum} vs exec {}",
            bench.name,
            r.exec
        );
    }
}

#[test]
fn self_prediction_is_nearly_exact_for_all_models() {
    let bench = dacapo_sim::benchmark("pmd-scale").expect("exists");
    let r = run_benchmark(bench, RunConfig::at_ghz(2.0).scaled(SCALE));
    for model in paper_roster() {
        let p = model.predict(&r.trace, Freq::from_ghz(2.0));
        let err = relative_error(p, r.exec);
        assert!(
            err.abs() < 0.02,
            "{} self-prediction error {err}",
            model.name()
        );
    }
}

#[test]
fn dep_burst_beats_mcrit_on_memory_intensive_both_directions() {
    let bench = dacapo_sim::benchmark("lusearch").expect("exists");
    for (base_ghz, target_ghz) in [(1.0, 4.0), (4.0, 1.0)] {
        let base = run_benchmark(bench, RunConfig::at_ghz(base_ghz).scaled(SCALE));
        let actual = run_benchmark(bench, RunConfig::at_ghz(target_ghz).scaled(SCALE));
        let target = Freq::from_ghz(target_ghz);
        let dep = relative_error(Dep::dep_burst().predict(&base.trace, target), actual.exec);
        let mcrit = relative_error(MCrit::plain().predict(&base.trace, target), actual.exec);
        assert!(
            dep.abs() < mcrit.abs(),
            "{base_ghz}->{target_ghz}: DEP+BURST {dep} must beat M+CRIT {mcrit}"
        );
        assert!(
            dep.abs() < 0.12,
            "{base_ghz}->{target_ghz}: DEP+BURST error {dep} too large"
        );
    }
}

#[test]
fn burst_modeling_helps_on_allocation_heavy_runs() {
    let bench = dacapo_sim::benchmark("lusearch").expect("exists");
    let base = run_benchmark(bench, RunConfig::at_ghz(1.0).scaled(SCALE));
    let actual = run_benchmark(bench, RunConfig::at_ghz(4.0).scaled(SCALE));
    let target = Freq::from_ghz(4.0);
    for (plain, with_burst) in [
        (
            Box::new(Dep::plain()) as Box<dyn DvfsPredictor>,
            Box::new(Dep::dep_burst()) as Box<dyn DvfsPredictor>,
        ),
        (Box::new(Coop::plain()), Box::new(Coop::with_burst())),
        (Box::new(MCrit::plain()), Box::new(MCrit::with_burst())),
    ] {
        let e_plain = relative_error(plain.predict(&base.trace, target), actual.exec);
        let e_burst = relative_error(with_burst.predict(&base.trace, target), actual.exec);
        assert!(
            e_burst.abs() < e_plain.abs(),
            "{} {e_burst} should improve on {} {e_plain}",
            with_burst.name(),
            plain.name()
        );
    }
}

#[test]
fn across_epoch_ctp_does_not_lose_to_per_epoch_on_sync_heavy_runs() {
    let bench = dacapo_sim::benchmark("avrora").expect("exists");
    let base = run_benchmark(bench, RunConfig::at_ghz(4.0).scaled(SCALE));
    let actual = run_benchmark(bench, RunConfig::at_ghz(1.0).scaled(SCALE));
    let target = Freq::from_ghz(1.0);
    let across = relative_error(
        Dep::dep_burst().predict(&base.trace, target),
        actual.exec,
    );
    let per = relative_error(
        Dep::dep_burst_per_epoch().predict(&base.trace, target),
        actual.exec,
    );
    // Per-epoch CTP double-counts when the critical thread changes; on a
    // barrier-heavy workload across-epoch must not be worse.
    assert!(
        across.abs() <= per.abs() + 0.01,
        "across {across} vs per-epoch {per}"
    );
}

#[test]
fn runs_are_deterministic_per_seed() {
    let bench = dacapo_sim::benchmark("xalan").expect("exists");
    let a = run_benchmark(bench, RunConfig::at_ghz(3.0).scaled(SCALE).with_seed(9));
    let b = run_benchmark(bench, RunConfig::at_ghz(3.0).scaled(SCALE).with_seed(9));
    assert_eq!(a.exec, b.exec);
    assert_eq!(a.gc_count, b.gc_count);
    assert_eq!(a.trace.epochs.len(), b.trace.epochs.len());
    let c = run_benchmark(bench, RunConfig::at_ghz(3.0).scaled(SCALE).with_seed(10));
    assert_ne!(a.exec, c.exec, "different seeds should differ");
}

#[test]
fn memory_intensive_scales_worse_than_compute_intensive() {
    let speedup = |name: &str| {
        let bench = dacapo_sim::benchmark(name).expect("exists");
        let t1 = run_benchmark(bench, RunConfig::at_ghz(1.0).scaled(SCALE)).exec;
        let t4 = run_benchmark(bench, RunConfig::at_ghz(4.0).scaled(SCALE)).exec;
        t1.as_secs() / t4.as_secs()
    };
    let lusearch = speedup("lusearch");
    let sunflow = speedup("sunflow");
    assert!(
        lusearch < sunflow,
        "memory-bound lusearch ({lusearch}x) must scale worse than sunflow ({sunflow}x)"
    );
    assert!(sunflow > 3.0, "sunflow is compute-bound: {sunflow}x");
    assert!(lusearch < 3.4, "lusearch is memory-bound: {lusearch}x");
}

#[test]
fn gc_time_tracks_memory_intensity_classification() {
    // At small scale the GC counts are noisy; just check the extremes.
    let frac = |name: &str| {
        let bench = dacapo_sim::benchmark(name).expect("exists");
        let r = run_benchmark(bench, RunConfig::at_ghz(1.0).scaled(0.08));
        r.gc_time.as_secs() / r.exec.as_secs()
    };
    let lusearch = frac("lusearch");
    let avrora = frac("avrora");
    assert!(
        lusearch > 0.06,
        "lusearch must be GC-heavy, got {lusearch}"
    );
    assert!(avrora < 0.05, "avrora must be GC-light, got {avrora}");
}

#[test]
fn trace_summary_and_criticality_reflect_workload_structure() {
    use depburst::CriticalityStack;
    use dvfs_trace::{ThreadRole, TraceSummary};
    let bench = dacapo_sim::benchmark("sunflow").expect("exists");
    let r = run_benchmark(bench, RunConfig::at_ghz(2.0).scaled(SCALE));
    let summary = TraceSummary::compute(&r.trace);
    // Compute-intensive: app threads dominate activity, GC is small.
    assert!(summary.application.active > summary.gc.active * 4.0);
    assert!(summary.mean_parallelism > 2.0, "{}", summary.mean_parallelism);
    assert!(summary.gc_fraction() < 0.1);
    assert_eq!(summary.application.threads, 4);

    // Criticality: the most critical thread is an application thread.
    let stack = CriticalityStack::compute(&r.trace);
    let top = stack.most_critical().expect("threads ran");
    let role = r.trace.thread(top).expect("known").role;
    assert_eq!(role, ThreadRole::Application);
    // Shares + idle tile the run.
    let sum: f64 = stack.shares.values().map(|s| s.as_secs()).sum();
    assert!((sum + stack.idle.as_secs() - r.exec.as_secs()).abs() < 1e-6);
}

#[test]
fn per_core_study_runs_at_small_scale() {
    use harness::experiments::percore;
    let bench = dacapo_sim::benchmark("pmd-scale").expect("exists");
    let rows = percore::collect(bench, 0.05, 1);
    assert_eq!(rows.len(), 7); // baseline + 2 groups x 3 frequencies
    // The pinned baseline is the reference.
    assert_eq!(rows[0].slowdown, 0.0);
    // Scaling the service core is always cheaper than scaling the three
    // application cores at the same frequency.
    let service_1ghz = rows
        .iter()
        .find(|r| matches!(r.group, percore::ScaledGroup::Service) && r.scaled_ghz == 1.0)
        .expect("row");
    let app_1ghz = rows
        .iter()
        .find(|r| matches!(r.group, percore::ScaledGroup::Application) && r.scaled_ghz == 1.0)
        .expect("row");
    assert!(
        service_1ghz.slowdown < app_1ghz.slowdown,
        "service {} vs app {}",
        service_1ghz.slowdown,
        app_1ghz.slowdown
    );
}
