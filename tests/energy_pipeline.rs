//! Integration tests of the energy-management case study (paper §VI).

use depburst::Dep;
use dvfs_trace::Freq;
use energyx::{static_optimal, EnergyManager, ManagerConfig, PowerModel, StaticPoint, StaticSweep};
use harness::{run_benchmark, RunConfig};
use simx::{Machine, MachineConfig};

const SCALE: f64 = 0.05;

fn managed_run(name: &str, threshold: f64) -> (f64, f64, f64) {
    let bench = dacapo_sim::benchmark(name).expect("exists");
    let power = PowerModel::haswell_22nm();
    let base = run_benchmark(bench, RunConfig::at_ghz(4.0).scaled(SCALE));
    let base_energy =
        power.energy_of_run(Freq::from_ghz(4.0), base.exec, base.stats.total_active(), 4);

    let mut mc = MachineConfig::haswell_quad();
    mc.initial_freq = Freq::from_ghz(4.0);
    let mut machine = Machine::new(mc);
    bench.install(&mut machine, SCALE, 1);
    let manager = EnergyManager::new(
        ManagerConfig::with_threshold(threshold),
        Box::new(Dep::dep_burst()),
    );
    let report = manager.run(&mut machine).expect("managed run");
    let slowdown = report.exec.as_secs() / base.exec.as_secs() - 1.0;
    let savings = 1.0 - report.energy_j / base_energy;
    (slowdown, savings, report.mean_ghz())
}

#[test]
fn manager_keeps_slowdown_near_the_threshold() {
    for threshold in [0.05, 0.10] {
        let (slowdown, savings, _) = managed_run("pmd-scale", threshold);
        assert!(
            slowdown <= threshold + 0.05,
            "slowdown {slowdown} far exceeds threshold {threshold}"
        );
        assert!(savings > 0.0, "memory-intensive run should save energy");
    }
}

#[test]
fn higher_tolerance_saves_more_energy() {
    let (_, savings5, ghz5) = managed_run("lusearch", 0.05);
    let (_, savings10, ghz10) = managed_run("lusearch", 0.10);
    assert!(
        savings10 > savings5,
        "10% tolerance ({savings10}) must beat 5% ({savings5})"
    );
    assert!(ghz10 < ghz5, "more tolerance -> lower mean frequency");
}

#[test]
fn memory_intensive_saves_more_than_compute_intensive() {
    let (_, mem, _) = managed_run("lusearch", 0.10);
    let (_, cpu, _) = managed_run("sunflow", 0.10);
    assert!(
        mem > cpu,
        "lusearch savings {mem} must exceed sunflow savings {cpu}"
    );
}

#[test]
fn static_sweep_baseline_uses_most_energy_for_memory_bound() {
    let bench = dacapo_sim::benchmark("lusearch").expect("exists");
    let power = PowerModel::haswell_22nm();
    let mut points = Vec::new();
    for ghz in [2.0, 3.0, 4.0] {
        let r = run_benchmark(bench, RunConfig::at_ghz(ghz).scaled(SCALE));
        points.push(StaticPoint {
            freq: Freq::from_ghz(ghz),
            exec: r.exec,
            energy_j: power.energy_of_run(
                Freq::from_ghz(ghz),
                r.exec,
                r.stats.total_active(),
                4,
            ),
        });
    }
    let sweep = StaticSweep { points };
    let base = sweep.baseline().expect("nonempty");
    assert_eq!(base.freq, Freq::from_ghz(4.0));
    let best = static_optimal(&sweep, None).expect("found");
    assert!(
        best.energy_j < base.energy_j,
        "a lower frequency must save energy for a memory-bound run"
    );
    // Constrained to 0% slowdown, only the baseline qualifies.
    let pinned = static_optimal(&sweep, Some(0.0)).expect("found");
    assert_eq!(pinned.freq, base.freq);
}
