//! Property-based tests (proptest) on the core data structures and the
//! predictor invariants.

use depburst::{paper_roster, Dep, DvfsPredictor};
use dvfs_trace::{
    DvfsCounters, EpochEnd, EpochRecord, ExecutionTrace, Freq, FreqLadder, ThreadId, ThreadInfo,
    ThreadRole, ThreadSlice, Time, TimeDelta,
};
use proptest::prelude::*;

/// Strategy: one epoch with up to 4 thread slices whose counters respect
/// the physical invariants (non-scaling estimates ≤ active ≤ duration).
fn epoch_strategy(start: f64) -> impl Strategy<Value = EpochRecord> {
    (
        1.0e-6..5.0e-3f64, // duration seconds
        proptest::collection::vec(
            (
                0u32..4,       // thread id
                0.0..=1.0f64,  // active fraction of duration
                0.0..=1.0f64,  // crit fraction of active
                0.0..=1.0f64,  // sq_full fraction of (active - crit)
            ),
            0..4,
        ),
        0u32..4, // end-reason selector
    )
        .prop_map(move |(duration, raw_slices, end_sel)| {
            let mut used = std::collections::BTreeSet::new();
            let mut threads = Vec::new();
            for (tid, af, cf, sf) in raw_slices {
                if !used.insert(tid) {
                    continue;
                }
                let active = duration * af;
                let crit = active * cf;
                let sq_full = (active - crit) * sf;
                threads.push(ThreadSlice {
                    thread: ThreadId(tid),
                    counters: DvfsCounters {
                        active: TimeDelta::from_secs(active),
                        crit: TimeDelta::from_secs(crit),
                        leading_loads: TimeDelta::from_secs(crit * 0.8),
                        stall: TimeDelta::from_secs(crit * 0.5),
                        sq_full: TimeDelta::from_secs(sq_full),
                        instructions: (active * 2e9) as u64,
                        loads: (active * 5e8) as u64,
                        stores: (sq_full * 6e8) as u64,
                        llc_misses: (crit * 1.4e7) as u64,
                    },
                });
            }
            let end = match end_sel {
                0 => EpochEnd::Stall(ThreadId(end_sel)),
                1 => EpochEnd::Wake(ThreadId(end_sel)),
                2 => EpochEnd::Exit(ThreadId(end_sel)),
                _ => EpochEnd::QuantumBoundary,
            };
            EpochRecord {
                start: Time::from_secs(start),
                duration: TimeDelta::from_secs(duration),
                threads,
                end,
            }
        })
}

/// Strategy: a structurally valid trace of 1..12 epochs.
fn trace_strategy() -> impl Strategy<Value = ExecutionTrace> {
    proptest::collection::vec(epoch_strategy(0.0), 1..12).prop_map(|mut epochs| {
        // Re-tile epochs contiguously.
        let mut cursor = Time::ZERO;
        for e in &mut epochs {
            e.start = cursor;
            cursor += e.duration;
        }
        let total = cursor.since(Time::ZERO);
        let threads = (0..4)
            .map(|i| ThreadInfo {
                id: ThreadId(i),
                role: if i == 0 {
                    ThreadRole::GcWorker
                } else {
                    ThreadRole::Application
                },
                name: format!("t{i}"),
                spawn: Time::ZERO,
                exit: None,
            })
            .collect();
        ExecutionTrace {
            base: Freq::from_ghz(1.0),
            start: Time::ZERO,
            total,
            epochs,
            markers: vec![],
            threads,
        }
    })
}

proptest! {
    #[test]
    fn generated_traces_validate(trace in trace_strategy()) {
        prop_assert!(trace.validate().is_ok());
    }

    /// Predicting at the base frequency must reproduce the measurement for
    /// epoch-based DEP (every thread's split re-sums to its active time,
    /// and the critical thread spans each epoch).
    #[test]
    fn dep_identity_at_base_frequency(trace in trace_strategy()) {
        let p = Dep::dep_burst().predict(&trace, trace.base);
        // Epochs whose busiest thread is idle part of the epoch predict
        // the active part only; accept one-sided undershoot, no overshoot.
        prop_assert!(p.as_secs() <= trace.total.as_secs() * (1.0 + 1e-9));
    }

    /// Max/sum-structured predictors are monotone: a higher target
    /// frequency never predicts a longer execution time. (Across-epoch
    /// DEP is deliberately excluded: Algorithm 1's delta counters depend
    /// on *which* thread is critical per epoch, and that identity can
    /// flip with the scaling ratio, so strict monotonicity is not
    /// guaranteed — only the per-epoch upper bound is.)
    #[test]
    fn max_structured_predictions_are_monotone_in_frequency(trace in trace_strategy()) {
        use depburst::{Coop, CtpMode, MCrit, NonScalingModel};
        let models: Vec<Box<dyn DvfsPredictor>> = vec![
            Box::new(MCrit::plain()),
            Box::new(MCrit::with_burst()),
            Box::new(Coop::plain()),
            Box::new(Coop::with_burst()),
            Box::new(Dep::new(NonScalingModel::Crit, true, CtpMode::PerEpoch)),
        ];
        for model in models {
            let mut last = f64::INFINITY;
            for mhz in [1000u32, 1500, 2000, 3000, 4000] {
                let p = model.predict(&trace, Freq::from_mhz(mhz)).as_secs();
                prop_assert!(
                    p <= last + 1e-12,
                    "{} not monotone at {mhz} MHz: {p} > {last}",
                    model.name()
                );
                last = p;
            }
        }
    }

    /// Across-epoch CTP never predicts more than per-epoch CTP: deltas are
    /// non-negative, so each epoch estimate can only shrink.
    #[test]
    fn across_epoch_never_exceeds_per_epoch(trace in trace_strategy()) {
        for mhz in [1000u32, 2000, 4000] {
            let across = Dep::dep_burst().predict(&trace, Freq::from_mhz(mhz));
            let per = Dep::dep_burst_per_epoch().predict(&trace, Freq::from_mhz(mhz));
            prop_assert!(
                across.as_secs() <= per.as_secs() + 1e-12,
                "across {across} > per {per} at {mhz} MHz"
            );
        }
    }

    /// Predictions never go below the trace's total non-scaling floor.
    #[test]
    fn predictions_are_positive(trace in trace_strategy()) {
        for model in paper_roster() {
            let p = model.predict(&trace, Freq::from_ghz(4.0));
            prop_assert!(p.as_secs() >= 0.0, "{}", model.name());
        }
    }

    #[test]
    fn freq_ladder_floor_is_consistent(mhz in 500u32..5000) {
        let ladder = FreqLadder::paper_default();
        let f = ladder.floor(Freq::from_mhz(mhz));
        prop_assert!(ladder.contains(f));
        prop_assert!(f <= Freq::from_mhz(mhz.max(1000)));
    }

    #[test]
    fn scaling_ratio_roundtrip(a in 1000u32..4000, b in 1000u32..4000) {
        let fa = Freq::from_mhz(a);
        let fb = Freq::from_mhz(b);
        let roundtrip = fa.scaling_ratio_to(fb) * fb.scaling_ratio_to(fa);
        prop_assert!((roundtrip - 1.0).abs() < 1e-12);
    }

    #[test]
    fn counter_delta_roundtrip(
        a in 0.0..1.0f64,
        c in 0.0..1.0f64,
        s in 0.0..1.0f64,
    ) {
        let base = DvfsCounters {
            active: TimeDelta::from_secs(a),
            crit: TimeDelta::from_secs(a * c),
            sq_full: TimeDelta::from_secs(a * s),
            ..DvfsCounters::zero()
        };
        let doubled = base + base;
        let back = doubled.delta_since(&base);
        prop_assert!((back.active.as_secs() - base.active.as_secs()).abs() < 1e-15);
        prop_assert!((back.crit.as_secs() - base.crit.as_secs()).abs() < 1e-15);
    }
}

// The store-queue fluid model: durations bounded by issue- and drain-rate
// bounds, sq_full never exceeds duration.
proptest! {
    #[test]
    fn store_queue_bounds(
        stores in 1.0..100_000.0f64,
        issue_ghz in 0.5..8.0f64,
        drain_ghz in 0.1..8.0f64,
        prefill in 0.0..40.0f64,
    ) {
        use simx::cpu::StoreQueue;
        let mut q = StoreQueue::new(42);
        // Pre-fill, then drain a little.
        q.absorb(Time::ZERO, prefill, 1e12, 1e9);
        let issue = issue_ghz * 1e9;
        let drain = drain_ghz * 1e9;
        let r = q.absorb(Time::from_secs(1e-9), stores, issue, drain);
        prop_assert!(r.sq_full.as_secs() <= r.duration.as_secs() + 1e-15);
        prop_assert!(r.duration.as_secs() >= stores / issue - 1e-12);
        prop_assert!(r.duration.as_secs() <= stores / drain.min(issue) + 42.0 / drain + 1e-9);
        prop_assert!(q.level() <= 42.0 + 1e-9);
    }
}

// The hardened energy manager under fault injection: whatever single
// fault class fires at whatever intensity, the run completes, every
// frequency it ever occupies is on the power model's ladder, and the
// report stays physically sane.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    #[test]
    fn hardened_manager_survives_any_fault_class(
        seed in 0u64..1000,
        class_sel in 0usize..7,
        intensity in 0.1..=1.0f64,
    ) {
        use energyx::{EnergyManager, ManagerConfig};
        use simx::program::ScriptProgram;
        use simx::{
            Action, FaultClass, FaultConfig, Machine, MachineConfig, SpawnRequest, WorkItem,
        };

        let mut mc = MachineConfig::haswell_quad();
        mc.initial_freq = Freq::from_ghz(4.0);
        let mut machine = Machine::new(mc);
        machine.spawn(SpawnRequest::new(
            "app",
            ThreadRole::Application,
            Box::new(ScriptProgram::new(vec![Action::Work(WorkItem::Compute {
                instructions: 200_000_000,
                ipc: 2.0,
            })])),
        ));
        let class = FaultClass::ALL[class_sel];
        machine.install_faults(FaultConfig::single(class, intensity, seed));
        let manager = EnergyManager::new(
            ManagerConfig::hardened(0.10),
            Box::new(Dep::dep_burst()),
        );
        let report = manager.run(&mut machine).expect("hardened run completes");
        let ladder = *manager.config().power.vf().ladder();
        for (f, t) in &report.freq_time {
            prop_assert!(ladder.contains(*f), "{} occupied {f}, outside the ladder", class.name());
            prop_assert!(t.as_secs() >= 0.0);
        }
        prop_assert!(report.exec.as_secs() > 0.0);
        prop_assert!(report.true_energy_j > 0.0);
        prop_assert!(report.true_energy_j.is_finite());
        prop_assert!(report.decisions > 0);
    }

    /// Recovery: a predictor that returns garbage for the first part of
    /// the run (a fault burst) and honest values afterwards must drive the
    /// hardened manager through fallback *and back out*: the healed phase
    /// scales below the maximum frequency again.
    #[test]
    fn hardened_manager_recovers_after_fault_bursts(burst_quanta in 3u32..10) {
        use energyx::{EnergyManager, ManagerConfig};
        use simx::program::ScriptProgram;
        use simx::{Action, Machine, MachineConfig, SpawnRequest, WorkItem};

        /// Predicts nothing (counters lost) before `heal_at`, perfectly after.
        #[derive(Debug)]
        struct BurstyPredictor {
            heal_at: f64,
        }
        impl DvfsPredictor for BurstyPredictor {
            fn predict(&self, trace: &ExecutionTrace, target: Freq) -> TimeDelta {
                if trace.start.as_secs() < self.heal_at {
                    TimeDelta::ZERO
                } else {
                    trace.total * trace.base.scaling_ratio_to(target)
                }
            }
            fn name(&self) -> String {
                "BURSTY".into()
            }
        }

        let quantum_secs = 0.005;
        let mut mc = MachineConfig::haswell_quad();
        mc.initial_freq = Freq::from_ghz(4.0);
        let mut machine = Machine::new(mc);
        machine.spawn(SpawnRequest::new(
            "app",
            ThreadRole::Application,
            Box::new(ScriptProgram::new(vec![Action::Work(WorkItem::Compute {
                instructions: 2_000_000_000,
                ipc: 2.0,
            })])),
        ));
        let manager = EnergyManager::new(
            ManagerConfig::hardened(0.10),
            Box::new(BurstyPredictor {
                heal_at: f64::from(burst_quanta) * quantum_secs + quantum_secs / 2.0,
            }),
        );
        let report = manager.run(&mut machine).expect("bursty run completes");
        prop_assert!(
            report.fallback_engagements >= 1,
            "a {burst_quanta}-quantum burst must engage the fallback"
        );
        prop_assert!(report.mispredicted_quanta >= u64::from(burst_quanta) - 1);
        // Recovery: after the burst the manager scales down again.
        let below_max: f64 = report
            .freq_time
            .iter()
            .filter(|(f, _)| *f < Freq::from_ghz(3.9))
            .map(|(_, t)| t.as_secs())
            .sum();
        prop_assert!(
            below_max > 0.0,
            "healed phase must re-engage scaling (freq residency: {:?})",
            report.freq_time
        );
        prop_assert!(report.mean_ghz() < 4.0);
    }
}

// Chunk split/retime conservation under arbitrary fractions and ratios.
proptest! {
    #[test]
    fn chunk_split_conserves(
        duration_us in 1.0..1000.0f64,
        scaling_frac in 0.0..=1.0f64,
        split in 0.0..=1.0f64,
        ratio in 0.25..4.0f64,
    ) {
        use simx::cpu::Chunk;
        let duration = TimeDelta::from_micros(duration_us);
        let chunk = Chunk {
            duration,
            scaling: duration * scaling_frac,
            counters: DvfsCounters {
                active: duration,
                crit: duration * (1.0 - scaling_frac),
                instructions: 1_000_000,
                ..DvfsCounters::zero()
            },
        };
        let (a, b) = chunk.split(split);
        prop_assert!(((a.duration + b.duration).as_secs() - duration.as_secs()).abs() < 1e-15);
        prop_assert!(((a.scaling + b.scaling).as_secs() - chunk.scaling.as_secs()).abs() < 1e-15);
        prop_assert_eq!(a.counters.instructions + b.counters.instructions, 1_000_000);
        // Retiming preserves the non-scaling part exactly.
        let re = chunk.retimed(ratio);
        prop_assert!((re.non_scaling().as_secs() - chunk.non_scaling().as_secs()).abs() < 1e-12);
        prop_assert!((re.scaling.as_secs() - chunk.scaling.as_secs() * ratio).abs() < 1e-12);
        // Round trip restores the original duration.
        let back = re.retimed(1.0 / ratio);
        prop_assert!((back.duration.as_secs() - chunk.duration.as_secs()).abs() < 1e-12);
    }
}
