//! Umbrella crate for the DEP+BURST reproduction workspace.
//!
//! Re-exports the member crates so the repository-level examples and
//! integration tests can use a single dependency. See the individual crates
//! for full documentation:
//!
//! * [`dvfs_trace`] — shared vocabulary types (time, frequency, counters,
//!   epochs, execution traces).
//! * [`simx`] — the multicore timing simulator substrate.
//! * [`mrt`] — the managed-runtime (JVM-like) substrate.
//! * [`dacapo_sim`] — the seven synthetic DaCapo-like benchmarks.
//! * [`depburst`] — the paper's contribution: the DEP+BURST predictor
//!   family and its baselines.
//! * [`energyx`] — the power model and the energy-management case study.
//! * [`harness`] — experiment runners for every table and figure.

pub use dacapo_sim;
pub use depburst;
pub use dvfs_trace;
pub use energyx;
pub use harness;
pub use mrt;
pub use simx;
