//! End-to-end tests of the machine: threads, futexes, scheduling, DVFS,
//! and trace emission.

use dvfs_trace::{EpochEnd, Freq, ThreadRole, TimeDelta};
use simx::mem::AccessPattern;
use simx::program::ScriptProgram;
use simx::{Action, Machine, MachineConfig, MachineError, RunOutcome, SpawnRequest, WorkItem};

fn compute(instructions: u64) -> Action {
    Action::Work(WorkItem::Compute {
        instructions,
        ipc: 2.0,
    })
}

fn dram_loads(accesses: u64) -> Action {
    Action::Work(WorkItem::Memory {
        accesses,
        pattern: AccessPattern::Random {
            base: 0,
            working_set: 512 << 20,
        },
        mlp: 2.0,
        compute_per_access: 2.0,
        ipc: 2.0,
        seed: 42,
    })
}

fn machine_at(ghz: f64) -> Machine {
    let mut config = MachineConfig::haswell_quad();
    config.initial_freq = Freq::from_ghz(ghz);
    Machine::new(config)
}

#[test]
fn single_compute_thread_timing_is_exact() {
    let mut m = machine_at(1.0);
    m.spawn(SpawnRequest::new(
        "app-0",
        ThreadRole::Application,
        Box::new(ScriptProgram::new(vec![compute(2_000_000)])),
    ));
    let outcome = m.run().expect("runs");
    let RunOutcome::Completed(end) = outcome else {
        panic!("should complete");
    };
    // 2e6 instructions at ipc 2 and 1 GHz = 1 ms.
    assert!(
        (end.as_secs() - 1e-3).abs() < 1e-9,
        "expected 1 ms, got {end}"
    );
}

#[test]
fn compute_scales_linearly_memory_does_not() {
    let run = |ghz: f64, action_builder: fn() -> Action| {
        let mut m = machine_at(ghz);
        m.spawn(SpawnRequest::new(
            "app-0",
            ThreadRole::Application,
            Box::new(ScriptProgram::new(vec![action_builder()])),
        ));
        match m.run().expect("runs") {
            RunOutcome::Completed(t) => t.as_secs(),
            RunOutcome::DeadlineReached => panic!("no deadline set"),
        }
    };
    let c1 = run(1.0, || compute(8_000_000));
    let c4 = run(4.0, || compute(8_000_000));
    assert!((c1 / c4 - 4.0).abs() < 1e-6, "compute speedup {}", c1 / c4);

    let m1 = run(1.0, || dram_loads(200_000));
    let m4 = run(4.0, || dram_loads(200_000));
    let speedup = m1 / m4;
    assert!(
        speedup < 2.0,
        "DRAM-bound work must not scale with frequency: {speedup}"
    );
}

#[test]
fn futex_handoff_creates_epochs_and_valid_trace() {
    let mut m = machine_at(2.0);
    let (futex, word) = m.register_futex(0);

    // Waiter: sleeps until the word flips to 1.
    m.spawn(SpawnRequest::new(
        "waiter",
        ThreadRole::Application,
        Box::new(ScriptProgram::new(vec![
            compute(100_000),
            Action::FutexWait { futex, expected: 0 },
            compute(100_000),
        ])),
    ));
    // Waker: computes, flips the word, wakes.
    let word2 = word.clone();
    m.spawn(SpawnRequest::new(
        "waker",
        ThreadRole::Application,
        Box::new(simx::program::FnProgram({
            let mut step = 0;
            move |_ctx: &mut simx::ProgContext| {
                step += 1;
                match step {
                    1 => compute(2_000_000),
                    2 => {
                        word2.set(1);
                        Action::FutexWake { futex, count: 1 }
                    }
                    _ => Action::Exit,
                }
            }
        })),
    ));

    m.run().expect("runs");
    let trace = m.harvest_trace();
    trace.validate().expect("trace invariants hold");
    assert!(
        trace.epochs.len() >= 3,
        "expected several epochs, got {}",
        trace.epochs.len()
    );
    // There must be a stall boundary (the waiter sleeping) and wake
    // boundaries.
    assert!(trace
        .epochs
        .iter()
        .any(|e| matches!(e.end, EpochEnd::Stall(_))));
    assert!(trace
        .epochs
        .iter()
        .any(|e| matches!(e.end, EpochEnd::Wake(_) | EpochEnd::Exit(_))));
    // The waiter slept, so its total active time is well below the trace
    // total.
    let totals = trace.thread_totals();
    let waiter = totals
        .iter()
        .find(|(_, t)| t.presence > TimeDelta::ZERO)
        .expect("some thread");
    let _ = waiter;
    let stats = m.stats();
    assert!(stats.futex_sleeps >= 1);
    assert!(stats.futex_wakes >= 1);
}

#[test]
fn futex_value_mismatch_does_not_sleep() {
    let mut m = machine_at(1.0);
    let (futex, word) = m.register_futex(0);
    word.set(7); // already signalled
    m.spawn(SpawnRequest::new(
        "app",
        ThreadRole::Application,
        Box::new(ScriptProgram::new(vec![
            Action::FutexWait { futex, expected: 0 },
            compute(1000),
        ])),
    ));
    m.run().expect("must not deadlock");
    assert_eq!(m.stats().futex_sleeps, 0);
}

#[test]
fn oversubscription_round_robins_with_preemptions() {
    let mut m = machine_at(1.0);
    for i in 0..6 {
        m.spawn(SpawnRequest::new(
            format!("app-{i}"),
            ThreadRole::Application,
            Box::new(ScriptProgram::new(vec![compute(20_000_000)])),
        ));
    }
    let outcome = m.run().expect("runs");
    assert!(matches!(outcome, RunOutcome::Completed(_)));
    let stats = m.stats();
    assert!(
        stats.preemptions > 0,
        "6 threads on 4 cores must preempt, stats: {stats:?}"
    );
    // Every thread must have executed all its instructions.
    for (tid, c) in &stats.thread_counters {
        assert_eq!(c.instructions, 20_000_000, "thread {tid}");
    }
    let trace = m.harvest_trace();
    trace.validate().expect("valid trace");
}

#[test]
fn spawned_threads_run_and_exit() {
    let mut m = machine_at(2.0);
    m.spawn(SpawnRequest::new(
        "parent",
        ThreadRole::Application,
        Box::new(ScriptProgram::new(vec![
            Action::Spawn(SpawnRequest::new(
                "child",
                ThreadRole::Application,
                Box::new(ScriptProgram::new(vec![compute(500_000)])),
            )),
            compute(500_000),
        ])),
    ));
    m.run().expect("runs");
    let trace = m.harvest_trace();
    assert_eq!(trace.threads.len(), 2);
    assert!(trace.threads.iter().all(|t| t.exit.is_some()));
}

#[test]
fn timer_sleep_wakes_after_duration() {
    let mut m = machine_at(1.0);
    m.spawn(SpawnRequest::new(
        "sleeper",
        ThreadRole::Application,
        Box::new(ScriptProgram::new(vec![
            Action::SleepFor(TimeDelta::from_millis(5.0)),
            compute(1_000_000),
        ])),
    ));
    let RunOutcome::Completed(end) = m.run().expect("runs") else {
        panic!("completes");
    };
    // >= 5 ms sleep + 0.5 ms compute (plus small syscall costs).
    assert!(end.as_secs() >= 5.4e-3, "got {end}");
    assert!(end.as_secs() < 6.0e-3, "got {end}");
}

#[test]
fn deadlock_is_detected() {
    let mut m = machine_at(1.0);
    let (futex, _word) = m.register_futex(0);
    m.spawn(SpawnRequest::new(
        "stuck",
        ThreadRole::Application,
        Box::new(ScriptProgram::new(vec![Action::FutexWait {
            futex,
            expected: 0,
        }])),
    ));
    let err = m.run().expect_err("must deadlock");
    assert!(matches!(err, MachineError::Deadlock { .. }));
}

#[test]
fn dvfs_transition_requires_clean_trace_and_retimes_work() {
    let mut m = machine_at(1.0);
    m.spawn(SpawnRequest::new(
        "app",
        ThreadRole::Application,
        Box::new(ScriptProgram::new(vec![compute(40_000_000)])), // 20 ms at 1 GHz
    ));
    m.run_for(TimeDelta::from_millis(4.0)).expect("runs");
    // Un-harvested epochs at 1 GHz: changing frequency must fail.
    assert_eq!(
        m.set_frequency(Freq::from_ghz(4.0)),
        Err(MachineError::DirtyTrace)
    );
    let seg1 = m.harvest_trace();
    assert_eq!(seg1.base, Freq::from_ghz(1.0));
    m.set_frequency(Freq::from_ghz(4.0)).expect("clean now");
    let RunOutcome::Completed(end) = m.run().expect("runs") else {
        panic!("completes");
    };
    // 4 ms at 1 GHz completed 8e6 instructions; remaining 32e6 at 4 GHz
    // takes 4 ms; plus 2 us transition.
    let expected = 4e-3 + 32e6 / (2.0 * 4e9) + 2e-6;
    assert!(
        (end.as_secs() - expected).abs() < 1e-5,
        "expected ~{expected}, got {end}"
    );
    let seg2 = m.harvest_trace();
    assert_eq!(seg2.base, Freq::from_ghz(4.0));
    seg2.validate().expect("valid");
    assert_eq!(m.stats().dvfs_transitions, 1);
}

#[test]
fn quantum_harvests_tile_the_run() {
    let mut m = machine_at(2.0);
    m.spawn(SpawnRequest::new(
        "app",
        ThreadRole::Application,
        Box::new(ScriptProgram::new(vec![compute(30_000_000)])),
    ));
    let quantum = TimeDelta::from_millis(2.0);
    let mut segments = Vec::new();
    loop {
        let outcome = m.run_for(quantum).expect("runs");
        segments.push(m.harvest_trace());
        if matches!(outcome, RunOutcome::Completed(_)) {
            break;
        }
    }
    assert!(segments.len() >= 3, "got {} segments", segments.len());
    // Segments tile: each starts where the previous ended.
    for pair in segments.windows(2) {
        assert!((pair[0].end().as_secs() - pair[1].start.as_secs()).abs() < 1e-12);
    }
    for seg in &segments {
        seg.validate().expect("every segment valid");
    }
    // Total instructions across segments equal the program's work.
    let instr: u64 = segments
        .iter()
        .flat_map(|s| s.epochs.iter())
        .flat_map(|e| e.threads.iter())
        .map(|t| t.counters.instructions)
        .sum();
    assert_eq!(instr, 30_000_000);
}

#[test]
fn store_burst_thread_saturates_store_queue() {
    let mut m = machine_at(4.0);
    m.spawn(SpawnRequest::new(
        "zeroer",
        ThreadRole::Application,
        Box::new(ScriptProgram::new(vec![Action::Work(WorkItem::StoreBurst {
            bytes: 4 << 20,
            pattern: AccessPattern::Streaming { base: 1 << 33 },
            seed: 5,
        })])),
    ));
    m.run().expect("runs");
    let trace = m.harvest_trace();
    trace.validate().expect("valid");
    let totals = trace.thread_totals();
    let (_, t) = totals.iter().next().expect("one thread");
    assert!(
        t.counters.sq_full > t.counters.active * 0.5,
        "store burst must be SQ-bound: sq_full {} of {}",
        t.counters.sq_full,
        t.counters.active
    );
}

#[test]
fn identical_seeds_give_identical_runs() {
    let run = || {
        let mut m = machine_at(3.0);
        m.spawn(SpawnRequest::new(
            "app",
            ThreadRole::Application,
            Box::new(ScriptProgram::new(vec![
                dram_loads(50_000),
                compute(1_000_000),
            ])),
        ));
        match m.run().expect("runs") {
            RunOutcome::Completed(t) => t.as_secs(),
            RunOutcome::DeadlineReached => unreachable!(),
        }
    };
    assert_eq!(run(), run(), "simulation must be deterministic");
}

#[test]
fn affinity_pins_threads_to_their_cores() {
    // Two threads pinned to core 0: their work serialises even though
    // three other cores are idle.
    let mut m = machine_at(1.0);
    for i in 0..2 {
        m.spawn(
            SpawnRequest::new(
                format!("pinned-{i}"),
                ThreadRole::Application,
                Box::new(ScriptProgram::new(vec![compute(8_000_000)])),
            )
            .with_affinity(0b0001),
        );
    }
    let RunOutcome::Completed(end) = m.run().expect("runs") else {
        panic!("completes");
    };
    // Each thread needs 4 ms at 1 GHz; serialised on one core: >= 8 ms.
    assert!(
        end.as_secs() >= 8e-3 - 1e-6,
        "pinned threads must serialise, got {end}"
    );
    assert!(m.stats().preemptions > 0, "round-robin on the pinned core");
}

#[test]
fn per_core_frequency_scales_only_that_core() {
    let mut m = machine_at(1.0);
    m.set_core_frequency(dvfs_trace::CoreId(1), Freq::from_ghz(4.0))
        .expect("clean");
    let slow = m.spawn(
        SpawnRequest::new(
            "slow",
            ThreadRole::Application,
            Box::new(ScriptProgram::new(vec![compute(8_000_000)])),
        )
        .with_affinity(0b0001),
    );
    let fast = m.spawn(
        SpawnRequest::new(
            "fast",
            ThreadRole::Application,
            Box::new(ScriptProgram::new(vec![compute(8_000_000)])),
        )
        .with_affinity(0b0010),
    );
    m.run().expect("runs");
    let trace = m.harvest_trace();
    let exit = |tid| {
        trace
            .threads
            .iter()
            .find(|t| t.id == tid)
            .and_then(|t| t.exit)
            .expect("exited")
            .as_secs()
    };
    let t_slow = exit(slow);
    let t_fast = exit(fast);
    // 8e6 instructions at ipc 2: 4 ms at 1 GHz vs 1 ms at 4 GHz.
    assert!(
        (t_slow / t_fast - 4.0).abs() < 0.05,
        "slow {t_slow} vs fast {t_fast}"
    );
    assert_eq!(m.core_frequency(dvfs_trace::CoreId(0)), Freq::from_ghz(1.0));
    assert_eq!(m.core_frequency(dvfs_trace::CoreId(1)), Freq::from_ghz(4.0));
}

#[test]
fn core_busy_accounting_sums_to_thread_active() {
    let mut m = machine_at(2.0);
    for i in 0..3 {
        m.spawn(SpawnRequest::new(
            format!("app-{i}"),
            ThreadRole::Application,
            Box::new(ScriptProgram::new(vec![compute(2_000_000), dram_loads(5_000)])),
        ));
    }
    m.run().expect("runs");
    let stats = m.stats();
    let core_total: f64 = stats.core_busy.iter().map(|d| d.as_secs()).sum();
    let thread_total = stats.total_active().as_secs();
    assert!(
        (core_total - thread_total).abs() < 1e-6,
        "core busy {core_total} vs thread active {thread_total}"
    );
}
