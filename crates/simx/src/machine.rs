//! The machine: cores + memory + OS + tracer, driven by a discrete-event
//! loop.

use core::fmt;

use dvfs_trace::{
    DvfsCounters, EpochEnd, ExecutionTrace, Freq, ThreadId, ThreadRole, Time, TimeDelta,
};

use crate::config::MachineConfig;
use crate::cpu::{ChunkEnv, CoreBank, StoreQueues, WorkCursor};
use crate::engine::{Event, EventQueue};
use crate::faults::{FaultConfig, FaultInjector};
use crate::invariants::{Invariant, InvariantMode, Monitor};
use crate::mem::{Dram, MemoryHierarchy};
use crate::os::{FutexTable, Scheduler, SleepKind, Thread, ThreadState};
use crate::program::{Action, FutexId, SharedWord, SpawnRequest, WaitOutcome};
use crate::stats::RunStats;
use crate::tracebuild::TraceBuilder;

/// The default for [`MachineConfig::watchdog_stride`]: how many events the
/// engine dispatches between wall-clock watchdog polls. Large enough that
/// the `Instant::now()` call vanishes in the event-dispatch cost, small
/// enough that a runaway point is noticed within milliseconds (realistic
/// points dispatch millions of events). Tiny fuzzer inputs override the
/// config field downward so their few events still poll the watchdog.
pub const WATCHDOG_STRIDE: u32 = 4096;

/// Why a run stopped.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RunOutcome {
    /// Every application thread exited; the field is the completion time.
    Completed(Time),
    /// The requested deadline was reached with application threads alive.
    DeadlineReached,
}

/// Machine-level failures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MachineError {
    /// No runnable work remains but application threads have not exited:
    /// every live thread is blocked with nothing to wake it.
    Deadlock {
        /// When the deadlock was detected.
        at: Time,
    },
    /// `set_frequency` was called with un-harvested trace data measured at
    /// a different frequency (harvest first; a trace segment must have a
    /// single base frequency).
    DirtyTrace,
    /// An operation referenced a thread id that does not exist.
    UnknownThread(ThreadId),
    /// The platform refused the frequency change (an injected
    /// [`crate::faults::FaultClass::TransitionDenied`] fault — real
    /// voltage regulators deny requests during settling). The machine
    /// keeps running at its current frequency.
    TransitionDenied {
        /// When the request was denied.
        at: Time,
    },
    /// The harness's per-point wall-clock watchdog (see
    /// [`crate::watchdog`]) expired while this machine was running; the
    /// event loop abandoned the run cleanly instead of hanging the sweep.
    WatchdogExpired {
        /// Simulated time when the expiry was noticed.
        at: Time,
    },
}

impl fmt::Display for MachineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineError::Deadlock { at } => {
                write!(f, "deadlock: all threads blocked at {at}")
            }
            MachineError::DirtyTrace => write!(
                f,
                "cannot change frequency with un-harvested trace epochs; call harvest_trace first"
            ),
            MachineError::UnknownThread(t) => write!(f, "unknown thread {t}"),
            MachineError::TransitionDenied { at } => {
                write!(f, "DVFS transition denied by the platform at {at}")
            }
            MachineError::WatchdogExpired { at } => {
                write!(f, "per-point wall-clock watchdog expired at simulated {at}")
            }
        }
    }
}

impl std::error::Error for MachineError {}

impl From<MachineError> for depburst_core::DepburstError {
    fn from(err: MachineError) -> Self {
        match err {
            MachineError::TransitionDenied { at } => {
                depburst_core::DepburstError::TransitionDenied {
                    at_secs: at.as_secs(),
                }
            }
            MachineError::WatchdogExpired { at } => {
                depburst_core::DepburstError::WatchdogExpired {
                    at_secs: at.as_secs(),
                }
            }
            other => depburst_core::DepburstError::Machine {
                detail: other.to_string(),
            },
        }
    }
}

/// The simulated machine. See the crate docs for the modelling approach.
pub struct Machine {
    config: MachineConfig,
    now: Time,
    /// Per-core frequency (the paper's scheme is chip-wide DVFS; the
    /// per-core extension lets experiments scale core subsets).
    freqs: Vec<Freq>,
    queue: EventQueue,
    /// Per-core state (occupancy, generations, busy time, slice counter
    /// accumulators), struct-of-arrays.
    cores: CoreBank,
    /// Per-core store queues, struct-of-arrays.
    store_queues: StoreQueues,
    threads: Vec<Thread>,
    sched: Scheduler,
    futexes: FutexTable,
    hierarchy: MemoryHierarchy,
    dram: Dram,
    tracer: TraceBuilder,
    app_live: usize,
    futex_sleeps: u64,
    futex_wakes: u64,
    preemptions: u64,
    dvfs_transitions: u64,
    transitions_denied: u64,
    events_dispatched: u64,
    epochs_harvested: usize,
    /// Injects deterministic faults between the machine and its observers.
    faults: Option<FaultInjector>,
    /// Sanitizer-style runtime invariant monitor (off by default; see
    /// [`crate::invariants`]).
    monitor: Monitor,
}

impl fmt::Debug for Machine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Machine")
            .field("now", &self.now)
            .field("freqs", &self.freqs)
            .field("threads", &self.threads.len())
            .field("app_live", &self.app_live)
            .finish_non_exhaustive()
    }
}

impl Machine {
    /// Builds an idle machine.
    #[must_use]
    pub fn new(config: MachineConfig) -> Self {
        Machine {
            freqs: vec![config.initial_freq; config.cores],
            hierarchy: MemoryHierarchy::new(&config),
            dram: Dram::new(config.dram),
            cores: CoreBank::new(config.cores),
            store_queues: StoreQueues::new(config.store_queue_entries, config.cores),
            config,
            now: Time::ZERO,
            queue: EventQueue::new(),
            threads: Vec::new(),
            sched: Scheduler::new(),
            futexes: FutexTable::new(),
            tracer: TraceBuilder::new(Time::ZERO),
            app_live: 0,
            futex_sleeps: 0,
            futex_wakes: 0,
            preemptions: 0,
            dvfs_transitions: 0,
            transitions_denied: 0,
            events_dispatched: 0,
            epochs_harvested: 0,
            faults: None,
            monitor: Monitor::from_env(),
        }
    }

    /// Installs a fault injector (see [`crate::faults`]). All subsequent
    /// harvests, frequency changes and DRAM reads are subject to the
    /// configured fault classes. Installing a configuration where
    /// [`FaultConfig::is_inert`] holds leaves the machine's observable
    /// behaviour bit-identical to an un-instrumented run.
    pub fn install_faults(&mut self, config: FaultConfig) {
        self.dram.set_jitter(config.dram_jitter, config.seed);
        self.faults = Some(FaultInjector::new(config));
    }

    /// The installed fault configuration, if any.
    #[must_use]
    pub fn fault_config(&self) -> Option<&FaultConfig> {
        self.faults.as_ref().map(FaultInjector::config)
    }

    /// Current simulated time.
    #[must_use]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Current chip-wide frequency. With the per-core DVFS extension in
    /// use (heterogeneous frequencies), this reports core 0's frequency.
    #[must_use]
    pub fn frequency(&self) -> Freq {
        self.freqs[0]
    }

    /// Current frequency of one core.
    #[must_use]
    pub fn core_frequency(&self, core: dvfs_trace::CoreId) -> Freq {
        self.freqs[core.index()]
    }

    /// The machine configuration.
    #[must_use]
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// The invariant monitor's active checking depth. The managed runtime
    /// and the energy manager read this at install/start time so every
    /// layer follows one machine-wide setting.
    #[must_use]
    pub fn invariant_mode(&self) -> InvariantMode {
        self.monitor.mode()
    }

    /// Read access to the invariant monitor (recorded violations, mode).
    #[must_use]
    pub fn monitor(&self) -> &Monitor {
        &self.monitor
    }

    /// Mutable access to the invariant monitor. Tests and the fuzzer use
    /// this to sabotage a check or merge violations observed by layers
    /// that cannot hold a machine borrow (the managed runtime).
    pub fn monitor_mut(&mut self) -> &mut Monitor {
        &mut self.monitor
    }

    /// Replaces the monitor with a fresh one at `mode`, overriding the
    /// `DEPBURST_INVARIANTS` environment default read at construction.
    pub fn set_invariant_mode(&mut self, mode: InvariantMode) {
        self.monitor = Monitor::new(mode);
    }

    /// The first recorded invariant violation as a unified error, if the
    /// monitor caught anything.
    #[must_use]
    pub fn invariant_error(&self) -> Option<depburst_core::DepburstError> {
        self.monitor.first_error()
    }

    /// Registers a futex word with an initial value. Programs share the
    /// returned [`SharedWord`] for their user-space fast paths.
    pub fn register_futex(&mut self, initial: u32) -> (FutexId, SharedWord) {
        self.futexes.register(initial)
    }

    /// Current value of a futex word.
    #[must_use]
    pub fn futex_value(&self, futex: FutexId) -> u32 {
        self.futexes.value(futex)
    }

    /// Spawns a root thread (programs spawn further threads with
    /// [`Action::Spawn`]). Returns the new thread's id.
    pub fn spawn(&mut self, request: SpawnRequest) -> ThreadId {
        let tid = self.create_thread(request);
        self.epoch_boundary(EpochEnd::Wake(tid));
        self.dispatch_idle_cores();
        tid
    }

    /// Runs until every application thread has exited.
    pub fn run(&mut self) -> Result<RunOutcome, MachineError> {
        self.run_until(Time::from_secs(f64::MAX))
    }

    /// Runs until `deadline` or application completion, whichever is first.
    ///
    /// # Errors
    /// Returns [`MachineError::Deadlock`] when no runnable work remains
    /// with application threads alive, and
    /// [`MachineError::WatchdogExpired`] when the calling thread's
    /// per-point wall-clock watchdog (armed by the harness, polled every
    /// [`WATCHDOG_STRIDE`] events) has passed its deadline.
    pub fn run_until(&mut self, deadline: Time) -> Result<RunOutcome, MachineError> {
        if let Some(injector) = &mut self.faults {
            // The seeded panic-point fault fires (at most once per machine)
            // before any event is dispatched, so an injected death never
            // leaves a half-simulated point behind.
            injector.maybe_panic_point();
        }
        let stride = self.config.watchdog_stride.max(1);
        let mut events: u32 = 0;
        loop {
            if self.app_live == 0 {
                return Ok(RunOutcome::Completed(self.now));
            }
            let Some(next) = self.queue.peek_time() else {
                return Err(MachineError::Deadlock { at: self.now });
            };
            if next > deadline {
                self.now = deadline;
                return Ok(RunOutcome::DeadlineReached);
            }
            events = events.wrapping_add(1);
            if events.is_multiple_of(stride) && crate::watchdog::expired() {
                return Err(MachineError::WatchdogExpired { at: self.now });
            }
            self.events_dispatched += 1;
            let (t, event) = self.queue.pop().expect("peeked");
            if t < self.now && self.monitor.on(Invariant::EventMonotonicity) {
                self.monitor.record(
                    Invariant::EventMonotonicity,
                    t.as_secs(),
                    format!("event queue popped {t} after the clock reached {}", self.now),
                );
            }
            self.now = t;
            self.dispatch_event(event);
        }
    }

    /// Runs for `delta` of simulated time (or to completion).
    pub fn run_for(&mut self, delta: TimeDelta) -> Result<RunOutcome, MachineError> {
        let deadline = self.now + delta;
        self.run_until(deadline)
    }

    /// Changes the chip-wide frequency (the paper's DVFS scheme). All
    /// busy cores stall for the DVFS transition latency and their
    /// in-flight work is re-timed.
    ///
    /// # Errors
    /// Returns [`MachineError::DirtyTrace`] if trace epochs recorded at the
    /// old frequency have not been harvested, or
    /// [`MachineError::TransitionDenied`] if an injected fault refuses the
    /// change (the machine keeps its current frequency).
    pub fn set_frequency(&mut self, freq: Freq) -> Result<(), MachineError> {
        if self.freqs.iter().all(|&f| f == freq) {
            return Ok(());
        }
        if !self.tracer.clean_at(self.now) {
            return Err(MachineError::DirtyTrace);
        }
        if let Some(inj) = &mut self.faults {
            if inj.transition_denied() {
                self.transitions_denied += 1;
                return Err(MachineError::TransitionDenied { at: self.now });
            }
        }
        let stall = self.transition_stall();
        for c in 0..self.cores.len() {
            self.retime_core(c, freq, stall);
        }
        self.dvfs_transitions += 1;
        Ok(())
    }

    /// Changes one core's frequency (the per-core DVFS extension the
    /// paper leaves as future work). Traces harvested while cores run at
    /// different frequencies carry core 0's frequency as their base and
    /// are not meaningful inputs for the chip-wide predictors; per-core
    /// experiments measure ground-truth timing instead.
    ///
    /// # Errors
    /// Returns [`MachineError::DirtyTrace`] if trace epochs recorded at
    /// the old frequencies have not been harvested, or
    /// [`MachineError::TransitionDenied`] if an injected fault refuses the
    /// change.
    pub fn set_core_frequency(
        &mut self,
        core: dvfs_trace::CoreId,
        freq: Freq,
    ) -> Result<(), MachineError> {
        let c = core.index();
        if self.freqs[c] == freq {
            return Ok(());
        }
        if !self.tracer.clean_at(self.now) {
            return Err(MachineError::DirtyTrace);
        }
        if let Some(inj) = &mut self.faults {
            if inj.transition_denied() {
                self.transitions_denied += 1;
                return Err(MachineError::TransitionDenied { at: self.now });
            }
        }
        let stall = self.transition_stall();
        self.retime_core(c, freq, stall);
        self.dvfs_transitions += 1;
        Ok(())
    }

    /// The DVFS transition stall for the next transition: the configured
    /// latency, possibly stretched by an injected fault.
    fn transition_stall(&mut self) -> TimeDelta {
        let nominal = self.config.dvfs_transition;
        match &mut self.faults {
            Some(inj) => inj.transition_stall(nominal),
            None => nominal,
        }
    }

    /// Applies a frequency change to one core: interrupt, re-time, restart
    /// after the transition stall.
    fn retime_core(&mut self, c: usize, freq: Freq, stall: TimeDelta) {
        let ratio = self.freqs[c].scaling_ratio_to(freq);
        self.freqs[c] = freq;
        let Some((tid, done, rest)) = self.cores.interrupt(c, self.now) else {
            return;
        };
        self.cores.add_busy(c, done.duration);
        // The thread stays on this core across the re-time, so the commit
        // lands in the core's slice accumulator, not the thread table.
        self.cores.add_slice_counters(c, done.counters);
        let retimed = rest.retimed(ratio);
        let restart = self.now + stall;
        let generation = self.cores.start_chunk(c, tid, retimed, restart);
        self.queue.push(
            restart + retimed.duration,
            Event::ChunkDone {
                core: self.cores.id(c),
                generation,
            },
        );
    }

    /// Closes the current trace segment and returns it. The segment covers
    /// everything since the previous harvest (or machine start) and was
    /// measured entirely at one frequency. With a fault injector installed,
    /// the returned segment is what the (unreliable) measurement path
    /// delivers — the machine's internal state is unaffected.
    pub fn harvest_trace(&mut self) -> ExecutionTrace {
        let threads = &self.threads;
        let cores = &self.cores;
        let base = self.freqs[0];
        let trace = self
            .tracer
            .harvest(self.now, base, |tid| cumulative(threads, cores, self.now, tid));
        self.epochs_harvested += trace.epochs.len();
        // Invariants run on the pre-fault trace: the injector deliberately
        // corrupts harvested counters, and the monitor's job is the
        // machine's own physics, not the (unreliable) measurement path.
        if self.monitor.enabled() {
            self.monitor.check_trace(&trace);
            if self.monitor.on(Invariant::StoreQueueOccupancy) {
                for c in 0..self.store_queues.len() {
                    if self.store_queues.level(c) > self.store_queues.capacity() + 1e-9 {
                        self.monitor.record(
                            Invariant::StoreQueueOccupancy,
                            self.now.as_secs(),
                            format!(
                                "store queue {c}: level {:.3} exceeds capacity {:.0}",
                                self.store_queues.level(c),
                                self.store_queues.capacity()
                            ),
                        );
                    }
                }
            }
            if self.monitor.on(Invariant::CacheSanity) {
                for issue in self.hierarchy.sanity_issues() {
                    self.monitor
                        .record(Invariant::CacheSanity, self.now.as_secs(), issue);
                }
            }
        }
        match &mut self.faults {
            Some(inj) => inj.filter_harvest(trace),
            None => trace,
        }
    }

    /// Aggregate statistics so far.
    #[must_use]
    pub fn stats(&self) -> RunStats {
        let mut thread_counters = std::collections::BTreeMap::new();
        for t in &self.threads {
            thread_counters.insert(t.id, cumulative(&self.threads, &self.cores, self.now, t.id));
        }
        RunStats {
            elapsed: self.now.since(Time::ZERO),
            core_busy: {
                // Include in-flight chunk progress.
                let mut busy = self.cores.busy_snapshot();
                for (c, b) in busy.iter_mut().enumerate() {
                    if let Some(r) = self.cores.running(c) {
                        *b += r.counters_at(self.now).active;
                    }
                }
                busy
            },
            thread_counters,
            dram: self.dram.stats(),
            epochs: self.epochs_harvested,
            futex_sleeps: self.futex_sleeps,
            futex_wakes: self.futex_wakes,
            preemptions: self.preemptions,
            dvfs_transitions: self.dvfs_transitions,
            transitions_denied: self.transitions_denied,
            events_dispatched: self.events_dispatched,
        }
    }

    /// Number of live (not yet exited) application threads.
    #[must_use]
    pub fn live_app_threads(&self) -> usize {
        self.app_live
    }

    // ----- internals -------------------------------------------------

    fn create_thread(&mut self, request: SpawnRequest) -> ThreadId {
        let tid = ThreadId(self.threads.len() as u32);
        let mut thread = Thread::new(tid, request.name, request.role, request.program, self.now);
        thread.affinity = request.affinity;
        self.tracer
            .register_thread(tid, &thread.name, thread.role, self.now);
        if thread.role == ThreadRole::Application {
            self.app_live += 1;
        }
        self.threads.push(thread);
        self.sched.enqueue(tid);
        tid
    }

    fn dispatch_event(&mut self, event: Event) {
        match event {
            Event::ChunkDone { core, generation } => {
                let c = core.index();
                if self.cores.generation(c) != generation || self.cores.is_idle(c) {
                    return;
                }
                let Ok(running) = self.cores.finish_chunk(c) else {
                    return; // stale event for an idle core: nothing to commit
                };
                self.cores.add_busy(c, running.chunk.duration);
                // Batched harvest: the thread stays reserved on this core,
                // so the commit extends the slice accumulator; the thread
                // table is updated only when the thread leaves the core.
                self.cores.add_slice_counters(c, running.chunk.counters);
                self.continue_thread(running.thread);
            }
            Event::TimerFire { thread } => {
                let t = &mut self.threads[thread.index()];
                if t.state != ThreadState::Sleeping(SleepKind::Timer) {
                    return;
                }
                t.last_wait = WaitOutcome::TimerFired;
                self.wake_thread(thread);
            }
            Event::TimeSlice { core, generation } => {
                self.handle_timeslice(core.index(), generation);
            }
        }
    }

    fn handle_timeslice(&mut self, c: usize, generation: u64) {
        if self.cores.slice_gen(c) != generation || self.cores.is_idle(c) {
            return;
        }
        let threads = &self.threads;
        let can_use_core = self
            .sched
            .has_waiting_matching(|t| threads[t.index()].allowed_on(c));
        if !can_use_core {
            // Nothing eligible to rotate in; re-arm.
            self.queue.push(
                self.now + self.config.timeslice,
                Event::TimeSlice {
                    core: self.cores.id(c),
                    generation,
                },
            );
            return;
        }
        let Some((tid, done, rest)) = self.cores.interrupt(c, self.now) else {
            return; // between chunks; the thread is about to decide anyway
        };
        self.cores.add_busy(c, done.duration);
        self.preemptions += 1;
        let freq = self.freqs[c];
        // The thread leaves the core: fold the final partial chunk into the
        // slice accumulator, then store the running total back to the
        // thread table where off-core reads find it.
        self.cores.add_slice_counters(c, done.counters);
        {
            let t = &mut self.threads[tid.index()];
            t.counters = self.cores.slice_total(c);
            if rest.duration > TimeDelta::ZERO {
                t.resume_chunk = Some((rest, freq));
            }
            t.state = ThreadState::Runnable;
        }
        self.epoch_boundary(EpochEnd::Stall(tid));
        self.sched.enqueue(tid);
        self.cores.bump_slice_gen(c);
        self.dispatch_idle_cores();
    }

    /// Ensures the thread (which must be Running on a core with no
    /// in-flight chunk) makes progress: resume work, continue the cursor,
    /// or ask the program for its next action.
    fn continue_thread(&mut self, tid: ThreadId) {
        loop {
            let ThreadState::Running(core_id) = self.threads[tid.index()].state else {
                return;
            };
            let c = core_id.index();

            // 1. A preempted chunk to resume?
            if let Some((chunk, old_freq)) = self.threads[tid.index()].resume_chunk.take() {
                let retimed = chunk.retimed(old_freq.scaling_ratio_to(self.freqs[c]));
                self.begin_chunk(c, tid, retimed);
                return;
            }

            // 2. More chunks in the current work item?
            let has_cursor = self.threads[tid.index()].cursor.is_some();
            if has_cursor {
                let chunk = {
                    let mut env = ChunkEnv {
                        now: self.now,
                        freq: self.freqs[c],
                        core: self.cores.id(c),
                        config: &self.config,
                        hierarchy: &mut self.hierarchy,
                        dram: &mut self.dram,
                        store_queues: &mut self.store_queues,
                    };
                    self.threads[tid.index()]
                        .cursor
                        .as_mut()
                        .expect("checked")
                        .next_chunk(&mut env)
                };
                match chunk {
                    Some(chunk) => {
                        self.begin_chunk(c, tid, chunk);
                        return;
                    }
                    None => {
                        self.threads[tid.index()].cursor = None;
                    }
                }
            }

            // 3. Ask the program.
            let action = {
                let t = &mut self.threads[tid.index()];
                let mut ctx = t.context(self.now);
                let action = t.program.next(&mut ctx);
                t.last_wait = WaitOutcome::None;
                t.last_spawned = None;
                action
            };
            if self.apply_action(tid, action) == Flow::Blocked {
                return;
            }
        }
    }

    fn begin_chunk(&mut self, c: usize, tid: ThreadId, chunk: crate::cpu::Chunk) {
        let generation = self.cores.start_chunk(c, tid, chunk, self.now);
        self.queue.push(
            self.now + chunk.duration,
            Event::ChunkDone {
                core: self.cores.id(c),
                generation,
            },
        );
    }

    fn apply_action(&mut self, tid: ThreadId, action: Action) -> Flow {
        let syscall = self.config.core_model.syscall_cycles;
        match action {
            Action::Work(item) => {
                self.threads[tid.index()].cursor = Some(WorkCursor::new(item));
                Flow::Continue
            }
            Action::FutexWait { futex, expected } => {
                match self.futexes.wait(tid, futex, expected) {
                    crate::os::FutexWaitResult::Sleep => {
                        self.futex_sleeps += 1;
                        // Kernel-exit cost is paid when the thread wakes.
                        self.threads[tid.index()].cursor =
                            Some(WorkCursor::syscall(syscall));
                        self.block_thread(tid, SleepKind::Futex(futex));
                        Flow::Blocked
                    }
                    crate::os::FutexWaitResult::ValueMismatch => {
                        self.threads[tid.index()].last_wait = WaitOutcome::ValueMismatch;
                        self.threads[tid.index()].cursor =
                            Some(WorkCursor::syscall(syscall));
                        Flow::Continue
                    }
                }
            }
            Action::FutexWake { futex, count } => {
                self.futex_wakes += 1;
                let woken = self.futexes.wake(futex, count);
                for w in woken {
                    let t = &mut self.threads[w.index()];
                    t.last_wait = WaitOutcome::Woken;
                    self.wake_thread(w);
                }
                self.threads[tid.index()].cursor = Some(WorkCursor::syscall(syscall));
                Flow::Continue
            }
            Action::SleepFor(delta) => {
                self.block_thread(tid, SleepKind::Timer);
                self.queue
                    .push(self.now + delta, Event::TimerFire { thread: tid });
                Flow::Blocked
            }
            Action::Spawn(request) => {
                let new_tid = self.create_thread(request);
                self.threads[tid.index()].last_spawned = Some(new_tid);
                self.epoch_boundary(EpochEnd::Wake(new_tid));
                self.dispatch_idle_cores();
                self.threads[tid.index()].cursor = Some(WorkCursor::syscall(syscall * 8));
                Flow::Continue
            }
            Action::MarkPhase(kind) => {
                self.tracer.mark_phase(self.now, kind);
                self.threads[tid.index()].cursor = Some(WorkCursor::syscall(syscall / 4));
                Flow::Continue
            }
            Action::Exit => {
                {
                    let t = &mut self.threads[tid.index()];
                    t.state = ThreadState::Exited;
                    t.exit = Some(self.now);
                }
                self.tracer.note_exit(tid, self.now);
                if self.threads[tid.index()].role == ThreadRole::Application {
                    self.app_live -= 1;
                }
                self.epoch_boundary(EpochEnd::Exit(tid));
                self.free_core_of(tid);
                self.dispatch_idle_cores();
                Flow::Blocked
            }
        }
    }

    fn block_thread(&mut self, tid: ThreadId, kind: SleepKind) {
        self.threads[tid.index()].state = ThreadState::Sleeping(kind);
        self.epoch_boundary(EpochEnd::Stall(tid));
        self.free_core_of(tid);
        self.dispatch_idle_cores();
    }

    /// Marks the core the thread was occupying idle (the thread has
    /// already changed state).
    fn free_core_of(&mut self, tid: ThreadId) {
        for c in 0..self.cores.len() {
            if self.cores.occupant(c) == Some(tid) {
                // Threads block between chunks, so normally only the
                // reservation is held; commit any in-flight work
                // defensively.
                if let Some((_, done, _)) = self.cores.interrupt(c, self.now) {
                    self.cores.add_busy(c, done.duration);
                    self.cores.add_slice_counters(c, done.counters);
                }
                // The thread leaves the core: its running total moves from
                // the slice accumulator back to the thread table.
                self.threads[tid.index()].counters = self.cores.slice_total(c);
                self.cores.release(c);
                self.cores.bump_slice_gen(c);
                return;
            }
        }
    }

    fn wake_thread(&mut self, tid: ThreadId) {
        debug_assert!(matches!(
            self.threads[tid.index()].state,
            ThreadState::Sleeping(_)
        ));
        self.threads[tid.index()].state = ThreadState::Runnable;
        self.epoch_boundary(EpochEnd::Wake(tid));
        self.sched.enqueue(tid);
        self.dispatch_idle_cores();
    }

    fn dispatch_idle_cores(&mut self) {
        loop {
            if !self.sched.has_waiting() {
                return;
            }
            // Find an (idle core, eligible thread) pair, FIFO per core.
            let mut assignment = None;
            for c in 0..self.cores.len() {
                if !self.cores.is_idle(c) {
                    continue;
                }
                let threads = &self.threads;
                if let Some(tid) = self
                    .sched
                    .dequeue_matching(|t| threads[t.index()].allowed_on(c))
                {
                    assignment = Some((tid, c));
                    break;
                }
            }
            let Some((tid, c)) = assignment else {
                return; // no idle core can serve any queued thread
            };
            self.schedule_in(tid, c);
            self.continue_thread(tid);
        }
    }

    fn schedule_in(&mut self, tid: ThreadId, c: usize) {
        let core_id = self.cores.id(c);
        self.threads[tid.index()].state = ThreadState::Running(core_id);
        // Claim the core immediately so nested dispatches cannot hand it to
        // another thread before this one starts its first chunk. Seeding
        // the slice accumulator with the thread's counters here is what
        // lets every subsequent chunk commit stay core-local.
        self.cores
            .reserve(c, tid, self.now, self.threads[tid.index()].counters);
        let generation = self.cores.bump_slice_gen(c);
        self.queue.push(
            self.now + self.config.timeslice,
            Event::TimeSlice {
                core: core_id,
                generation,
            },
        );
        let snapshot = cumulative(&self.threads, &self.cores, self.now, tid);
        self.tracer.note_running(tid, snapshot);
    }

    /// Closes the current epoch and re-seeds still-running threads as
    /// participants of the next one.
    fn epoch_boundary(&mut self, end: EpochEnd) {
        {
            let threads = &self.threads;
            let cores = &self.cores;
            let now = self.now;
            self.tracer
                .boundary(now, end, |tid| cumulative(threads, cores, now, tid));
        }
        for c in 0..self.cores.len() {
            if let Some(tid) = self.cores.occupant(c) {
                let snapshot = cumulative(&self.threads, &self.cores, self.now, tid);
                self.tracer.note_running(tid, snapshot);
            }
        }
    }
}

/// Cumulative counters for a thread: committed chunks plus interpolated
/// progress of any in-flight chunk. While a thread is resident on a core
/// its committed total lives in that core's slice accumulator (the thread
/// table is only synchronized when it leaves); off-core threads read
/// straight from the thread table.
fn cumulative(threads: &[Thread], cores: &CoreBank, now: Time, tid: ThreadId) -> DvfsCounters {
    for c in 0..cores.len() {
        if cores.occupant(c) == Some(tid) {
            let mut total = cores.slice_total(c);
            if let Some(r) = cores.running(c) {
                total += r.counters_at(now);
            }
            return total;
        }
    }
    threads[tid.index()].counters
}

/// Control flow after applying an action.
#[derive(Debug, PartialEq, Eq)]
enum Flow {
    /// The thread keeps running (a cursor may have been installed).
    Continue,
    /// The thread blocked or exited; its core was released.
    Blocked,
}
