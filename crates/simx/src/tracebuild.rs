//! Building [`ExecutionTrace`]s from machine events.
//!
//! The machine notifies the builder at every epoch boundary (futex sleep,
//! wake, exit, preemption, quantum cut) with a counter snapshot function;
//! the builder turns those into contiguous [`EpochRecord`]s. Boundaries
//! landing at the same instant are coalesced into one epoch end (a
//! `futex_wake(n)` waking several threads is one boundary, not n).

use std::collections::BTreeMap;

use dvfs_trace::{
    DvfsCounters, EpochEnd, EpochRecord, ExecutionTrace, Freq, PhaseKind, PhaseMarker, ThreadId,
    ThreadInfo, ThreadRole, Time, ThreadSlice,
};

/// Coalescing window: boundaries closer than this merge into one.
const COALESCE: f64 = 1e-12;

#[derive(Debug, Clone)]
struct Registered {
    info: ThreadInfo,
}

/// Accumulates epochs, markers, and thread metadata; emits trace segments.
#[derive(Debug)]
pub struct TraceBuilder {
    seg_start: Time,
    epoch_start: Time,
    epochs: Vec<EpochRecord>,
    markers: Vec<PhaseMarker>,
    at_start: BTreeMap<ThreadId, DvfsCounters>,
    threads: BTreeMap<ThreadId, Registered>,
}

impl TraceBuilder {
    /// A builder starting its first segment at `start`.
    #[must_use]
    pub fn new(start: Time) -> Self {
        TraceBuilder {
            seg_start: start,
            epoch_start: start,
            epochs: Vec::new(),
            markers: Vec::new(),
            at_start: BTreeMap::new(),
            threads: BTreeMap::new(),
        }
    }

    /// Registers a newly spawned thread.
    pub fn register_thread(&mut self, id: ThreadId, name: &str, role: ThreadRole, now: Time) {
        self.threads.insert(
            id,
            Registered {
                info: ThreadInfo {
                    id,
                    role,
                    name: name.to_owned(),
                    spawn: now,
                    exit: None,
                },
            },
        );
    }

    /// Records a thread's exit time.
    pub fn note_exit(&mut self, id: ThreadId, now: Time) {
        if let Some(reg) = self.threads.get_mut(&id) {
            reg.info.exit = Some(now);
        }
    }

    /// Marks that `thread` is running during the current epoch, with its
    /// cumulative counters at the moment it (re)joined the epoch.
    pub fn note_running(&mut self, thread: ThreadId, counters_now: DvfsCounters) {
        self.at_start.entry(thread).or_insert(counters_now);
    }

    /// Emits a runtime phase marker.
    pub fn mark_phase(&mut self, now: Time, kind: PhaseKind) {
        self.markers.push(PhaseMarker::new(now, kind));
    }

    /// Closes the current epoch at `now` with reason `end`. `snapshot`
    /// must return each thread's *cumulative* counters at `now`.
    ///
    /// After the boundary the epoch participant set is empty; the machine
    /// re-registers still-running threads via [`Self::note_running`].
    pub fn boundary(
        &mut self,
        now: Time,
        end: EpochEnd,
        mut snapshot: impl FnMut(ThreadId) -> DvfsCounters,
    ) {
        let duration = now.since(self.epoch_start);
        let participants = std::mem::take(&mut self.at_start);
        if duration.as_secs() < COALESCE {
            // Coalesce with the previous boundary: keep the stronger reason
            // on the last recorded epoch, re-seed participants.
            if let Some(last) = self.epochs.last_mut() {
                last.end = stronger(last.end, end);
            }
            for (tid, start) in participants {
                self.at_start.insert(tid, start);
            }
            return;
        }
        let mut slices = Vec::with_capacity(participants.len());
        for (tid, start) in participants {
            let delta = snapshot(tid).delta_since(&start);
            slices.push(ThreadSlice {
                thread: tid,
                counters: delta,
            });
        }
        self.epochs.push(EpochRecord {
            start: self.epoch_start,
            duration,
            threads: slices,
            end,
        });
        self.epoch_start = now;
    }

    /// True if the segment holds no measured time at all at `now`: no
    /// recorded epochs and a zero-length in-progress epoch. Only then can
    /// the base frequency change without corrupting the segment.
    #[must_use]
    pub fn clean_at(&self, now: Time) -> bool {
        self.epochs.is_empty() && now.since(self.epoch_start).as_secs() < COALESCE
    }

    /// Closes the segment at `now` (cutting the current epoch with
    /// [`EpochEnd::QuantumBoundary`] if it has positive length) and returns
    /// the completed trace. `base` is the frequency the whole segment ran
    /// at. Thread metadata is clipped to the segment.
    pub fn harvest(
        &mut self,
        now: Time,
        base: Freq,
        mut snapshot: impl FnMut(ThreadId) -> DvfsCounters,
    ) -> ExecutionTrace {
        // Preserve the participant set across the cut: epochs continue.
        let participants: Vec<(ThreadId, DvfsCounters)> = self
            .at_start
            .iter()
            .map(|(&t, &c)| (t, c))
            .collect();
        self.boundary(now, EpochEnd::QuantumBoundary, &mut snapshot);
        for (tid, _) in participants {
            self.at_start.insert(tid, snapshot(tid));
        }

        let start = self.seg_start;
        let total = now.since(start);
        let epochs = std::mem::take(&mut self.epochs);
        let markers = std::mem::take(&mut self.markers);
        let threads = self
            .threads
            .values()
            .filter(|r| {
                let spawned_before_end = r.info.spawn <= now;
                let alive_after_start = r.info.exit.is_none_or(|e| e >= start);
                spawned_before_end && alive_after_start
            })
            .map(|r| r.info.clone())
            .collect();
        self.seg_start = now;
        self.epoch_start = now;
        ExecutionTrace {
            base,
            start,
            total,
            epochs,
            markers,
            threads,
        }
    }
}

/// When two boundaries coalesce, keep the more informative reason:
/// a stall (it resets Algorithm 1 deltas) outranks everything else.
fn stronger(a: EpochEnd, b: EpochEnd) -> EpochEnd {
    match (a, b) {
        (EpochEnd::Stall(t), _) | (_, EpochEnd::Stall(t)) => EpochEnd::Stall(t),
        (EpochEnd::Exit(t), _) | (_, EpochEnd::Exit(t)) => EpochEnd::Exit(t),
        (EpochEnd::Wake(t), _) | (_, EpochEnd::Wake(t)) => EpochEnd::Wake(t),
        (other, _) => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvfs_trace::TimeDelta;

    fn counters(active_us: f64) -> DvfsCounters {
        DvfsCounters {
            active: TimeDelta::from_micros(active_us),
            ..DvfsCounters::zero()
        }
    }

    #[test]
    fn builds_contiguous_epochs() {
        let mut b = TraceBuilder::new(Time::ZERO);
        b.register_thread(ThreadId(0), "a", ThreadRole::Application, Time::ZERO);
        b.register_thread(ThreadId(1), "b", ThreadRole::Application, Time::ZERO);
        b.note_running(ThreadId(0), counters(0.0));
        b.note_running(ThreadId(1), counters(0.0));

        let t1 = Time::from_secs(10e-6);
        b.boundary(t1, EpochEnd::Stall(ThreadId(1)), |_| counters(10.0));
        b.note_running(ThreadId(0), counters(10.0));

        let t2 = Time::from_secs(25e-6);
        let trace = b.harvest(t2, Freq::from_ghz(1.0), |_| counters(25.0));

        trace.validate().expect("valid");
        assert_eq!(trace.epochs.len(), 2);
        assert_eq!(trace.epochs[0].threads.len(), 2);
        assert_eq!(trace.epochs[0].end, EpochEnd::Stall(ThreadId(1)));
        assert_eq!(trace.epochs[1].threads.len(), 1);
        assert!(
            (trace.epochs[1].threads[0].counters.active.as_micros() - 15.0).abs() < 1e-9
        );
        assert_eq!(trace.epochs[1].end, EpochEnd::QuantumBoundary);
        assert!((trace.total.as_micros() - 25.0).abs() < 1e-9);
    }

    #[test]
    fn same_instant_boundaries_coalesce() {
        let mut b = TraceBuilder::new(Time::ZERO);
        b.register_thread(ThreadId(0), "a", ThreadRole::Application, Time::ZERO);
        b.note_running(ThreadId(0), counters(0.0));
        let t1 = Time::from_secs(5e-6);
        // Three wakes at the same instant: one epoch, not three.
        b.boundary(t1, EpochEnd::Wake(ThreadId(1)), |_| counters(5.0));
        b.note_running(ThreadId(0), counters(5.0));
        b.boundary(t1, EpochEnd::Wake(ThreadId(2)), |_| counters(5.0));
        b.boundary(t1, EpochEnd::Stall(ThreadId(0)), |_| counters(5.0));
        let trace = b.harvest(Time::from_secs(10e-6), Freq::from_ghz(1.0), |_| {
            counters(10.0)
        });
        trace.validate().expect("valid");
        assert_eq!(trace.epochs.len(), 2);
        // Coalescing kept the stronger (stall) reason.
        assert_eq!(trace.epochs[0].end, EpochEnd::Stall(ThreadId(0)));
    }

    #[test]
    fn harvest_resets_segment_and_preserves_participants() {
        let mut b = TraceBuilder::new(Time::ZERO);
        b.register_thread(ThreadId(0), "a", ThreadRole::Application, Time::ZERO);
        b.note_running(ThreadId(0), counters(0.0));
        let t1 = Time::from_secs(1e-3);
        let first = b.harvest(t1, Freq::from_ghz(2.0), |_| counters(1000.0));
        assert_eq!(first.epochs.len(), 1);
        // Second segment continues with the same running thread.
        let t2 = Time::from_secs(2e-3);
        let second = b.harvest(t2, Freq::from_ghz(2.0), |_| counters(2000.0));
        assert_eq!(second.epochs.len(), 1);
        assert_eq!(second.start, t1);
        assert!(
            (second.epochs[0].threads[0].counters.active.as_micros() - 1000.0).abs() < 1e-6
        );
        second.validate().expect("valid");
    }

    #[test]
    fn markers_and_exits_recorded() {
        let mut b = TraceBuilder::new(Time::ZERO);
        b.register_thread(ThreadId(0), "a", ThreadRole::GcWorker, Time::ZERO);
        b.mark_phase(Time::from_secs(1e-6), PhaseKind::GcStart);
        b.mark_phase(Time::from_secs(2e-6), PhaseKind::GcEnd);
        b.note_exit(ThreadId(0), Time::from_secs(3e-6));
        let trace = b.harvest(Time::from_secs(4e-6), Freq::from_ghz(1.0), |_| counters(0.0));
        assert_eq!(trace.markers.len(), 2);
        assert_eq!(trace.threads.len(), 1);
        assert_eq!(trace.threads[0].exit, Some(Time::from_secs(3e-6)));
    }

    #[test]
    fn threads_outside_segment_are_clipped() {
        let mut b = TraceBuilder::new(Time::ZERO);
        b.register_thread(ThreadId(0), "dead", ThreadRole::Application, Time::ZERO);
        b.note_exit(ThreadId(0), Time::from_secs(1e-3));
        let _ = b.harvest(Time::from_secs(2e-3), Freq::from_ghz(1.0), |_| counters(0.0));
        // Thread 0 exited during segment 1; segment 2 must not list it.
        b.register_thread(ThreadId(1), "live", ThreadRole::Application, Time::from_secs(2e-3));
        let seg2 = b.harvest(Time::from_secs(3e-3), Freq::from_ghz(1.0), |_| counters(0.0));
        let ids: Vec<_> = seg2.threads.iter().map(|t| t.id).collect();
        assert_eq!(ids, vec![ThreadId(1)]);
    }
}
