//! Cooperative per-point wall-clock watchdog.
//!
//! Rust threads cannot be killed from outside, so a runaway simulation
//! point is abandoned *cooperatively*: the harness arms a thread-local
//! deadline before evaluating a point ([`arm`]), and the machine's event
//! loop polls [`expired`] every few thousand events, bailing out with a
//! clean `WatchdogExpired` error instead of hanging the sweep. The
//! deadline is thread-local so concurrent pool workers can run under
//! independent budgets, and the [`WatchdogGuard`] disarms on drop — even
//! while unwinding from a panic — so a stale deadline can never leak into
//! the next point evaluated on the same worker.

use std::cell::Cell;
use std::time::{Duration, Instant};

thread_local! {
    static DEADLINE: Cell<Option<Instant>> = const { Cell::new(None) };
}

/// Disarms the calling thread's watchdog when dropped.
///
/// Not `Send`: the deadline belongs to the thread that armed it.
#[derive(Debug)]
pub struct WatchdogGuard {
    _not_send: std::marker::PhantomData<*const ()>,
}

impl Drop for WatchdogGuard {
    fn drop(&mut self) {
        DEADLINE.with(|d| d.set(None));
    }
}

/// Arms a wall-clock deadline `timeout` from now on the calling thread.
/// The returned guard disarms it on drop. Re-arming replaces the previous
/// deadline (the innermost guard's drop still clears it — arm once per
/// point, not nested).
#[must_use = "the watchdog disarms when the guard drops"]
pub fn arm(timeout: Duration) -> WatchdogGuard {
    let deadline = Instant::now().checked_add(timeout);
    DEADLINE.with(|d| d.set(deadline));
    WatchdogGuard {
        _not_send: std::marker::PhantomData,
    }
}

/// True when the calling thread has an armed deadline that has passed.
/// Cheap when disarmed (one thread-local read, no clock call).
#[must_use]
pub fn expired() -> bool {
    DEADLINE.with(|d| match d.get() {
        Some(deadline) => Instant::now() >= deadline,
        None => false,
    })
}

/// True when the calling thread currently has a watchdog armed.
#[must_use]
pub fn armed() -> bool {
    DEADLINE.with(|d| d.get().is_some())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_by_default_and_after_drop() {
        assert!(!armed());
        assert!(!expired());
        {
            let _g = arm(Duration::from_secs(3600));
            assert!(armed());
            assert!(!expired(), "a one-hour budget cannot expire instantly");
        }
        assert!(!armed(), "guard drop must disarm");
    }

    #[test]
    fn zero_budget_expires_immediately() {
        let _g = arm(Duration::ZERO);
        assert!(expired());
    }

    #[test]
    fn guard_disarms_even_when_unwinding() {
        let unwound = std::panic::catch_unwind(|| {
            let _g = arm(Duration::ZERO);
            panic!("point blew up while armed");
        });
        assert!(unwound.is_err());
        assert!(!armed(), "unwinding must not leak the deadline");
    }

    #[test]
    fn deadlines_are_thread_local() {
        let _g = arm(Duration::ZERO);
        assert!(expired());
        let other = std::thread::spawn(|| (armed(), expired()))
            .join()
            .expect("probe thread");
        assert_eq!(other, (false, false), "other threads see no deadline");
    }
}
