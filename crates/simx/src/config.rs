//! Machine configuration (paper Table II).

use depburst_core::stablehash::StableHasher;
use dvfs_trace::{Freq, TimeDelta};
use serde::{Deserialize, Serialize};

/// Geometry and latency of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity: u64,
    /// Set associativity.
    pub associativity: u32,
    /// Line size in bytes.
    pub line_size: u32,
    /// Access latency in cycles of the clock domain the cache lives in
    /// (core clock for L1/L2, the fixed uncore clock for L3).
    pub latency_cycles: u32,
}

impl CacheConfig {
    /// Number of sets.
    #[must_use]
    pub fn sets(&self) -> u64 {
        self.capacity / u64::from(self.line_size) / u64::from(self.associativity)
    }
}

/// DRAM timing and geometry.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DramConfig {
    /// Number of independent banks.
    pub banks: u32,
    /// Number of rows tracked per bank (for row-buffer hit modelling).
    pub rows_per_bank: u32,
    /// Fixed controller + bus overhead per request (seconds).
    pub controller_overhead: TimeDelta,
    /// Column access latency (row-buffer hit).
    pub cas: TimeDelta,
    /// Additional precharge + activate penalty on a row-buffer miss.
    pub row_miss_penalty: TimeDelta,
    /// Data-transfer occupancy of one 64 B line on a bank (limits
    /// per-bank bandwidth).
    pub line_transfer: TimeDelta,
    /// Sustained line write drain time on the *shared* write path (global
    /// write bandwidth, all cores together).
    pub write_line_service: TimeDelta,
    /// Per-core minimum line drain time: a single core's store misses are
    /// limited by its line-fill buffers (each missing line needs a
    /// read-for-ownership round trip), so one core cannot use the whole
    /// device bandwidth. This is what lets a store burst saturate the
    /// store queue even at low core frequency (paper §III-D).
    pub core_fill_line_time: TimeDelta,
}

/// Analytical out-of-order core model parameters (interval model).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoreModelConfig {
    /// Core cycles of reorder-buffer slack available to hide a shared-L3
    /// hit under independent work. An L3 hit only stalls the pipeline for
    /// the part of its (fixed, uncore-clocked) latency exceeding this many
    /// core cycles — so L3 visibility *grows* with core frequency, one of
    /// the effects that makes DVFS prediction hard.
    pub rob_hide_cycles: f64,
    /// Core cycles to resolve the address of the next dependent miss after
    /// the previous one returns (serialization gap between miss rounds;
    /// scales with frequency).
    pub round_gap_cycles: f64,
    /// Core cycles of commit slack the stall-time counter fails to observe
    /// per miss round (commit proceeds underneath a miss while the ROB
    /// drains) — the published stall-time model's systematic undercount.
    pub stall_slack_cycles: f64,
    /// Fraction of DRAM stall time under which the out-of-order engine can
    /// overlap independent compute.
    pub overlap_frac: f64,
    /// Multiplier on a work item's MLP when overlapping L3 hits (L3 hits
    /// overlap more readily than DRAM misses).
    pub l3_mlp_boost: f64,
    /// Kernel-entry overhead charged per futex syscall, in core cycles.
    pub syscall_cycles: u64,
}

impl Default for CoreModelConfig {
    fn default() -> Self {
        CoreModelConfig {
            rob_hide_cycles: 48.0,
            round_gap_cycles: 8.0,
            stall_slack_cycles: 48.0,
            overlap_frac: 0.35,
            l3_mlp_boost: 2.0,
            syscall_cycles: 1200,
        }
    }
}

/// Full machine configuration, defaults mirroring Table II of the paper
/// (a quad-core Intel Haswell i7-4770K-like part).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Number of cores (chip-wide DVFS).
    pub cores: usize,
    /// Initial core frequency.
    pub initial_freq: Freq,
    /// The fixed uncore/L3 clock (the paper runs the shared L3 at 1.5 GHz,
    /// so L3 hit time does *not* scale with core frequency).
    pub uncore_freq: Freq,
    /// Private L1 data cache.
    pub l1d: CacheConfig,
    /// Private L2 cache.
    pub l2: CacheConfig,
    /// Shared L3 cache.
    pub l3: CacheConfig,
    /// DRAM model.
    pub dram: DramConfig,
    /// Analytical core-model parameters.
    pub core_model: CoreModelConfig,
    /// Store-queue entries (stores awaiting retirement to memory).
    pub store_queue_entries: u32,
    /// Peak sustainable store issue rate, stores per core cycle.
    pub store_issue_per_cycle: f64,
    /// Maximum commit width (instructions per cycle) used by the stall-time
    /// counter's notion of "committing usefully".
    pub commit_width: f64,
    /// OS scheduler time slice for oversubscribed cores.
    pub timeslice: TimeDelta,
    /// Chip-wide DVFS transition stall (paper: fixed 2 µs).
    pub dvfs_transition: TimeDelta,
    /// Target wall-clock chunk length the cores aim for when slicing work
    /// items (simulation granularity, not an architectural parameter).
    pub chunk_target: TimeDelta,
    /// Cache sampling ratio K: one access in K is simulated against caches
    /// whose capacity is scaled down by K (set sampling). Preserves
    /// footprint/capacity ratios while bounding simulation cost.
    pub sample_ratio: u32,
    /// Upper bound on sampled addresses per chunk (variance/cost knob).
    pub cache_sample_cap: u32,
    /// Upper bound on DRAM miss rounds *simulated in full* per memory
    /// chunk. The per-miss DRAM round loop is the simulator's hottest code
    /// by far (profiling: >80% of a single-point run); a chunk whose round
    /// count exceeds this cap simulates the first `dram_round_sample_cap`
    /// rounds exactly through the banked DRAM model and extrapolates the
    /// remainder from the sampled rounds' mean timing. `0` disables
    /// sampling (every round simulated exactly). Like `sample_ratio` this
    /// is a fidelity/cost knob, not an architectural parameter; results
    /// remain a deterministic pure function of the configuration.
    pub dram_round_sample_cap: u32,
    /// How many events the engine dispatches between wall-clock watchdog
    /// polls (see [`crate::watchdog`]). The default
    /// ([`crate::WATCHDOG_STRIDE`]) makes the `Instant::now()` call vanish
    /// in event-dispatch cost on realistic points; the fuzzer tightens it
    /// on tiny inputs that dispatch few events. A value of 0 is treated
    /// as 1 (poll every event).
    pub watchdog_stride: u32,
}

impl MachineConfig {
    /// The paper's simulated system (Table II): quad-core, 32 KB L1I/L1D,
    /// 256 KB L2, 4 MB shared L3 at 1.5 GHz, 64 B lines, LRU.
    #[must_use]
    pub fn haswell_quad() -> Self {
        MachineConfig {
            cores: 4,
            initial_freq: Freq::from_ghz(1.0),
            uncore_freq: Freq::from_ghz(1.5),
            l1d: CacheConfig {
                capacity: 32 * 1024,
                associativity: 4,
                line_size: 64,
                latency_cycles: 2,
            },
            l2: CacheConfig {
                capacity: 256 * 1024,
                associativity: 8,
                line_size: 64,
                latency_cycles: 11,
            },
            l3: CacheConfig {
                capacity: 4 * 1024 * 1024,
                associativity: 16,
                line_size: 64,
                latency_cycles: 40,
            },
            dram: DramConfig {
                // Two ranks of eight banks; per-request service times are
                // effective values under FR-FCFS scheduling and bank-group
                // overlap, not raw device timings.
                banks: 16,
                rows_per_bank: 1 << 15,
                controller_overhead: TimeDelta::from_nanos(14.0),
                cas: TimeDelta::from_nanos(12.0),
                row_miss_penalty: TimeDelta::from_nanos(15.0),
                line_transfer: TimeDelta::from_nanos(4.0),
                write_line_service: TimeDelta::from_nanos(5.0),
                core_fill_line_time: TimeDelta::from_nanos(13.0),
            },
            core_model: CoreModelConfig::default(),
            store_queue_entries: 42,
            store_issue_per_cycle: 1.0,
            commit_width: 4.0,
            timeslice: TimeDelta::from_millis(2.0),
            dvfs_transition: TimeDelta::from_micros(2.0),
            chunk_target: TimeDelta::from_micros(25.0),
            sample_ratio: 64,
            cache_sample_cap: 512,
            dram_round_sample_cap: 24,
            watchdog_stride: crate::WATCHDOG_STRIDE,
        }
    }

    /// The L3 hit latency in wall-clock time (uncore clock is fixed, so this
    /// does not change with core DVFS).
    #[must_use]
    pub fn l3_hit_time(&self) -> TimeDelta {
        self.uncore_freq
            .cycles_to_time(f64::from(self.l3.latency_cycles))
    }

    /// Folds every field into `h` in declaration order. Run results are a
    /// pure function of the configuration, so this digest (together with the
    /// workload/fault/seed digests) keys the simulation memo cache — any
    /// field change must change the digest.
    pub fn hash_into(&self, h: &mut StableHasher) {
        h.write_tag("simx::MachineConfig");
        h.write_u64(self.cores as u64);
        h.write_u32(self.initial_freq.mhz());
        h.write_u32(self.uncore_freq.mhz());
        for (tag, c) in [("l1d", &self.l1d), ("l2", &self.l2), ("l3", &self.l3)] {
            h.write_tag(tag);
            h.write_u64(c.capacity);
            h.write_u32(c.associativity);
            h.write_u32(c.line_size);
            h.write_u32(c.latency_cycles);
        }
        h.write_tag("dram");
        h.write_u32(self.dram.banks);
        h.write_u32(self.dram.rows_per_bank);
        h.write_f64(self.dram.controller_overhead.as_secs());
        h.write_f64(self.dram.cas.as_secs());
        h.write_f64(self.dram.row_miss_penalty.as_secs());
        h.write_f64(self.dram.line_transfer.as_secs());
        h.write_f64(self.dram.write_line_service.as_secs());
        h.write_f64(self.dram.core_fill_line_time.as_secs());
        h.write_tag("core_model");
        h.write_f64(self.core_model.rob_hide_cycles);
        h.write_f64(self.core_model.round_gap_cycles);
        h.write_f64(self.core_model.stall_slack_cycles);
        h.write_f64(self.core_model.overlap_frac);
        h.write_f64(self.core_model.l3_mlp_boost);
        h.write_u64(self.core_model.syscall_cycles);
        h.write_tag("rest");
        h.write_u32(self.store_queue_entries);
        h.write_f64(self.store_issue_per_cycle);
        h.write_f64(self.commit_width);
        h.write_f64(self.timeslice.as_secs());
        h.write_f64(self.dvfs_transition.as_secs());
        h.write_f64(self.chunk_target.as_secs());
        h.write_u32(self.sample_ratio);
        h.write_u32(self.cache_sample_cap);
        h.write_u32(self.dram_round_sample_cap);
        h.write_u32(self.watchdog_stride);
    }

    /// Stable content digest of the whole configuration (see [`hash_into`]).
    ///
    /// [`hash_into`]: MachineConfig::hash_into
    #[must_use]
    pub fn digest(&self) -> u128 {
        let mut h = StableHasher::new();
        self.hash_into(&mut h);
        h.finish()
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        Self::haswell_quad()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn haswell_matches_table_ii() {
        let c = MachineConfig::haswell_quad();
        assert_eq!(c.cores, 4);
        assert_eq!(c.l1d.capacity, 32 * 1024);
        assert_eq!(c.l2.capacity, 256 * 1024);
        assert_eq!(c.l3.capacity, 4 * 1024 * 1024);
        assert_eq!(c.l1d.line_size, 64);
        assert_eq!(c.l3.associativity, 16);
        assert_eq!(c.uncore_freq, Freq::from_ghz(1.5));
        assert!((c.dvfs_transition.as_micros() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn l3_hit_time_is_frequency_independent() {
        let c = MachineConfig::haswell_quad();
        // 40 cycles at 1.5 GHz = 26.67 ns regardless of core frequency.
        assert!((c.l3_hit_time().as_nanos() - 40.0 / 1.5).abs() < 1e-9);
    }

    #[test]
    fn cache_sets() {
        let c = MachineConfig::haswell_quad();
        assert_eq!(c.l1d.sets(), 32 * 1024 / 64 / 4);
        assert_eq!(c.l3.sets(), 4 * 1024 * 1024 / 64 / 16);
    }

    #[test]
    fn digest_is_stable_and_field_sensitive() {
        let base = MachineConfig::haswell_quad();
        assert_eq!(base.digest(), MachineConfig::haswell_quad().digest());
        let mut freq = base.clone();
        freq.initial_freq = Freq::from_ghz(2.0);
        assert_ne!(base.digest(), freq.digest());
        let mut knob = base.clone();
        knob.core_model.overlap_frac += 1e-9;
        assert_ne!(base.digest(), knob.digest());
        let mut stride = base.clone();
        stride.watchdog_stride = 256;
        assert_ne!(base.digest(), stride.digest());
        let mut cap = base.clone();
        cap.dram_round_sample_cap = 0;
        assert_ne!(base.digest(), cap.digest());
    }

    #[test]
    fn watchdog_stride_defaults_to_the_historic_constant() {
        assert_eq!(MachineConfig::haswell_quad().watchdog_stride, 4096);
        assert_eq!(MachineConfig::default().watchdog_stride, crate::WATCHDOG_STRIDE);
    }
}
