//! Sampled-and-extrapolated execution tier.
//!
//! A full-fidelity sweep point simulates every round of its workload.
//! This module implements the cheap tier: simulate two *prefix regions*
//! of the run — a short probe and a longer measure region — and
//! extrapolate the whole-run execution time, GC time, energy proxy, and
//! per-counter totals from the marginal window between them, with
//! confidence intervals derived from the window's own variability.
//!
//! Why prefixes, and why two of them:
//!
//! * Workload round counts are the *only* thing the region scale changes
//!   (see `dacapo_sim::RoundParams::scaled`); the seeded RNG streams are
//!   untouched, so a run at a smaller scale executes a step-identical
//!   prefix of the full run. A region is therefore not an approximation
//!   of the run's start — it *is* the run's start, bit for bit.
//! * The difference between the measure and probe regions — the
//!   marginal window — cancels everything the two prefixes share:
//!   runtime spin-up, JIT warmup, the first cold-heap collections. What
//!   remains is the steady-state rate, which is what the unseen tail of
//!   the run is made of.
//!
//! Extrapolation is phase-aware: mutator time scales with the remaining
//! rounds, while GC time is projected *structurally* from the measure
//! region's pause stream:
//!
//! * Collections fire when the nursery fills, and allocation tracks the
//!   mutator *work done*, not wall time — a straggler phase where one
//!   thread finishes the job allocates per wall second at a fraction of
//!   the parallel phase's rate, but allocates per *instruction* exactly
//!   as before. Consecutive pause starts are therefore equally spaced in
//!   mutator instructions; the tail's collection count is the projected
//!   remaining mutator instructions divided by that spacing (robust down
//!   to a handful of collections, where a rate-times-window estimate is
//!   hopelessly granular).
//! * Nursery pauses are flat — the nursery is the same size every time —
//!   and are priced at the window mean.
//! * Full-heap pauses are periodic (every Nth collection) and *ramp*:
//!   their cost follows the mature space, which grows geometrically
//!   toward its reclaim equilibrium. A prefix window observes the cheap
//!   early fulls, so a mean would systematically under-price the tail.
//!   Instead the ramp `d(n) = d_inf * (1 - q^n)` is fitted to the
//!   observed fulls (two observations determine `q`; one observation
//!   uses the configured prior) and each projected full is priced at its
//!   own ordinal.
//!
//! Phase recurrence is checked online, not assumed: the measure region's
//! epoch stream is clustered by signature (`dvfs_trace::recurrence`) and
//! the region scheduler widens the measure region when the late window
//! keeps founding clusters the early window never saw.

use dvfs_trace::{ExecutionTrace, PhaseKind, Time, TimeDelta};

/// Configuration of the sampled tier: region placement, phase-recurrence
/// thresholds, and confidence-interval parameters.
///
/// Every field participates in [`hash_into`](SamplingConfig::hash_into),
/// so two runs sampled under different configurations never share a memo
/// cache entry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SamplingConfig {
    /// Rounds fraction of the probe region (the short prefix whose only
    /// job is to absorb startup transients out of the marginal window).
    pub probe_fraction: f64,
    /// Rounds fraction of the measure region (the long prefix the whole
    /// run is extrapolated from). Must be wide enough to span at least
    /// one full-heap collection period of the slowest-allocating
    /// workload, or the ramp projection has no full pause to anchor on.
    pub measure_fraction: f64,
    /// Measure fraction the region scheduler widens to when the measured
    /// recurrence falls below [`min_recurrence`](Self::min_recurrence).
    pub extend_fraction: f64,
    /// Minimum phase recurrence (duration share of late epochs falling in
    /// early-established clusters) below which the scheduler distrusts
    /// the measure region and extends it.
    pub min_recurrence: f64,
    /// Distance threshold of the epoch-signature clustering.
    pub cluster_threshold: f64,
    /// Where the recurrence check splits the measured trace (fraction of
    /// the traced window; late epochs must recur in clusters founded
    /// before this point).
    pub recurrence_split: f64,
    /// A GC pause longer than this multiple of the median pause is
    /// classified as a full-heap collection. Duration-based
    /// classification stays correct when the collector triggers full
    /// collections off-schedule (mature-space pressure), which a purely
    /// periodic rule would misclassify.
    pub full_pause_ratio: f64,
    /// Prior for the geometric full-pause ramp ratio `q` in
    /// `d(n) = d_inf * (1 - q^n)`, used when the window observed only
    /// one full-heap pause (two or more let `q` be fitted from the data).
    /// `q` is the fraction of the mature space a full-heap collection
    /// leaves behind, so the prior should track the collector's reclaim
    /// policy; 0.25 matches the observed ramp of the reproduction's
    /// runtime.
    pub full_ramp_ratio: f64,
    /// z-score of the reported confidence interval (1.96 = 95%).
    pub confidence_z: f64,
    /// Sub-windows the marginal window is split into for the rate
    /// variance estimate behind the confidence interval.
    pub ci_subwindows: u32,
}

impl Default for SamplingConfig {
    fn default() -> Self {
        SamplingConfig {
            probe_fraction: 0.05,
            measure_fraction: 0.40,
            extend_fraction: 0.55,
            min_recurrence: 0.25,
            cluster_threshold: 0.25,
            recurrence_split: 0.5,
            full_pause_ratio: 2.5,
            full_ramp_ratio: 0.25,
            confidence_z: 1.96,
            ci_subwindows: 8,
        }
    }
}

impl SamplingConfig {
    /// Folds every field into `h` in declaration order (the sampled-tier
    /// analogue of `MachineConfig::hash_into`): any change to the region
    /// placement or extrapolation parameters changes the memo key of
    /// every sampled point.
    pub fn hash_into(&self, h: &mut depburst_core::stablehash::StableHasher) {
        h.write_tag("simx::sampling_config");
        h.write_f64(self.probe_fraction);
        h.write_f64(self.measure_fraction);
        h.write_f64(self.extend_fraction);
        h.write_f64(self.min_recurrence);
        h.write_f64(self.cluster_threshold);
        h.write_f64(self.recurrence_split);
        h.write_f64(self.full_pause_ratio);
        h.write_f64(self.full_ramp_ratio);
        h.write_f64(self.confidence_z);
        h.write_u32(self.ci_subwindows);
    }

    /// The initial region schedule: probe then measure prefix.
    #[must_use]
    pub fn schedule(&self) -> RegionSchedule {
        RegionSchedule {
            probe: self.probe_fraction.clamp(0.0, 1.0),
            measure: self.measure_fraction.clamp(0.0, 1.0),
        }
    }

    /// The region scheduler's reaction to a measured recurrence: `None`
    /// when the measure region explained its own tail well enough,
    /// otherwise the widened measure fraction to re-measure at.
    #[must_use]
    pub fn extension(&self, recurrence: f64) -> Option<f64> {
        (recurrence < self.min_recurrence && self.extend_fraction > self.measure_fraction)
            .then_some(self.extend_fraction.clamp(0.0, 1.0))
    }
}

/// The two prefix regions a sampled point simulates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegionSchedule {
    /// Probe prefix, as a fraction of the full run's rounds.
    pub probe: f64,
    /// Measure prefix, as a fraction of the full run's rounds.
    pub measure: f64,
}

/// What one simulated prefix region measured (the sampled tier's view of
/// a run summary; the caller supplies one per region).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegionMeasurement {
    /// Rounds fraction this region simulated.
    pub fraction: f64,
    /// Wall-clock execution time of the region.
    pub exec: TimeDelta,
    /// Stop-the-world GC time inside the region.
    pub gc_time: TimeDelta,
    /// Collections completed inside the region.
    pub gc_count: u64,
    /// Bytes allocated inside the region.
    pub allocated: u64,
    /// Summed scheduled thread time inside the region (energy proxy).
    pub total_active: TimeDelta,
}

/// A whole-run estimate extrapolated from two prefix regions.
#[derive(Debug, Clone, PartialEq)]
pub struct Extrapolation {
    /// Estimated whole-run execution time.
    pub exec: TimeDelta,
    /// Estimated whole-run stop-the-world GC time.
    pub gc_time: TimeDelta,
    /// Estimated whole-run collection count.
    pub gc_count: u64,
    /// Estimated whole-run allocation.
    pub allocated: u64,
    /// Estimated whole-run summed active time.
    pub total_active: TimeDelta,
    /// Half-width of the execution-time confidence interval.
    pub exec_half_ci: TimeDelta,
    /// Half-width of the GC-time confidence interval.
    pub gc_half_ci: TimeDelta,
    /// Measured phase recurrence of the measure region (1.0 = the late
    /// window is made entirely of phases the early window established).
    pub recurrence: f64,
    /// Signature clusters found in the measure region.
    pub clusters: usize,
}

/// Extrapolates a whole run from its probe and measure prefix regions.
/// `trace` is the measure region's execution trace (pause structure,
/// epoch signatures, and the counter stream all come from it).
///
/// Degenerate inputs — a zero-width marginal window, which tiny smoke
/// scales produce when both prefixes round to the same round counts —
/// fall back to naive linear scaling of the measure region with a
/// confidence interval as wide as the estimate itself.
#[must_use]
pub fn extrapolate(
    probe: &RegionMeasurement,
    measure: &RegionMeasurement,
    trace: &ExecutionTrace,
    cfg: &SamplingConfig,
) -> Extrapolation {
    let report = dvfs_trace::recurrence(trace, cfg.recurrence_split, cfg.cluster_threshold);
    let span = measure.fraction - probe.fraction;
    // `span > 0.0` (not `span <= 0.0`) so a NaN span also takes the
    // fallback rather than poisoning the extrapolation below.
    let span_usable = span > 0.0;
    if !span_usable || measure.exec <= probe.exec || measure.fraction >= 1.0 {
        return linear_fallback(measure, report);
    }
    let r = (1.0 - measure.fraction).max(0.0) / span;

    // Marginal window: everything the two prefixes do NOT share.
    let window_exec = (measure.exec - probe.exec).clamp_non_negative();
    let window_gc = (measure.gc_time - probe.gc_time).clamp_non_negative();
    let window_mut = (window_exec - window_gc).clamp_non_negative();
    let window_gcs = measure.gc_count.saturating_sub(probe.gc_count);
    let window_alloc = measure.allocated.saturating_sub(probe.allocated);
    let window_active = (measure.total_active - probe.total_active).clamp_non_negative();

    // Mutator time is linear in the remaining rounds.
    let measure_mut = (measure.exec - measure.gc_time).clamp_non_negative();
    let mut_total = measure_mut + window_mut * r;

    // GC time is projected structurally from the pause stream (see the
    // module docs): tail collection count from the nursery-fill spacing
    // in mutator instructions, nursery pauses at the window mean,
    // full-heap pauses individually priced on the fitted geometric ramp.
    let gc = project_gc(
        trace,
        probe.gc_count as usize,
        probe.exec,
        r,
        (r * window_gcs as f64).round() as u64,
        window_gc,
        window_gcs,
        cfg,
    );
    let gc_time = measure.gc_time + TimeDelta::from_secs(gc.tail_gc_time);

    // Confidence intervals. The mutator side extrapolates a mean
    // time-per-instruction rate; its standard error over equal-time
    // sub-windows of the marginal window, scaled by the tail's instruction
    // count, bounds the rate-drift risk. The GC side prices the tail's
    // pauses with the window's pooled within-class pause deviation.
    let z = cfg.confidence_z.max(0.0);
    let mut_half_ci = mutator_rate_half_ci(trace, probe.exec, window_mut, r, cfg) * z;
    let gc_half_ci = TimeDelta::from_secs(gc.pause_std * (gc.tail_gcs as f64).sqrt()) * z;
    let exec_half_ci = TimeDelta::from_secs(
        (mut_half_ci.as_secs().powi(2) + gc_half_ci.as_secs().powi(2)).sqrt(),
    );

    Extrapolation {
        exec: mut_total + gc_time,
        gc_time,
        gc_count: measure.gc_count + gc.tail_gcs,
        allocated: measure.allocated + (r * window_alloc as f64).round() as u64,
        total_active: measure.total_active + window_active * r,
        exec_half_ci,
        gc_half_ci,
        recurrence: report.recurrence,
        clusters: report.clusters,
    }
}

/// The projected tail of the GC schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
struct GcProjection {
    /// Collections beyond the measure region.
    tail_gcs: u64,
    /// Their total stop-the-world time (seconds).
    tail_gc_time: f64,
    /// Pooled within-class pause standard deviation (seconds), for the
    /// confidence interval.
    pause_std: f64,
}

/// Projects the run's remaining collections from the measure region's
/// pause stream.
///
/// * Tail count: pause starts are `spacing` apart in *mutator
///   instructions* (the nursery fills per unit of work done, which holds
///   through straggler phases where the wall-clock allocation rate
///   collapses), so the tail completes `floor((total - last) / spacing)`
///   more fills, where `total` extrapolates the run's mutator
///   instructions through the marginal window at ratio `r`. When the
///   stream carries no usable spacing the rate-based `fallback_gcs` is
///   used.
/// * Tail cost: each projected collection index is classified by the
///   observed full-heap period; fulls are priced on the geometric ramp
///   `d(n) = d_inf * (1 - q^n)` fitted to the observed fulls, nursery
///   pauses at the window mean.
#[allow(clippy::too_many_arguments)]
fn project_gc(
    trace: &ExecutionTrace,
    probe_gcs: usize,
    probe_exec: TimeDelta,
    r: f64,
    fallback_gcs: u64,
    window_gc: TimeDelta,
    window_gcs: u64,
    cfg: &SamplingConfig,
) -> GcProjection {
    let pauses = gc_pauses(trace);
    if pauses.is_empty() {
        // No pauses observed: price the rate-based count (usually zero)
        // at the aggregate window mean, the only estimate available.
        let mean = if window_gcs > 0 {
            window_gc.as_secs() / window_gcs as f64
        } else {
            0.0
        };
        return GcProjection {
            tail_gcs: fallback_gcs,
            tail_gc_time: mean * fallback_gcs as f64,
            pause_std: 0.0,
        };
    }

    // Cumulative instruction counts at every pause boundary plus the
    // probe's end and the trace's end, in one pass over the epochs.
    let mut boundaries: Vec<Time> = Vec::with_capacity(pauses.len() * 2 + 2);
    for (start, dur) in &pauses {
        boundaries.push(*start);
        boundaries.push(*start + *dur);
    }
    boundaries.push(trace.start + probe_exec);
    boundaries.push(trace.start + trace.total);
    let instr = instructions_at(trace, &boundaries);
    let pause_instr = |i: usize| instr[2 * i + 1] - instr[2 * i];
    let probe_end_instr = instr[pauses.len() * 2];
    let total_instr = instr[pauses.len() * 2 + 1];

    // Mutator-instruction offset of each pause start: cumulative
    // instructions minus those retired inside earlier pauses (full-heap
    // collections execute a non-trivial instruction stream of their own,
    // which would otherwise smear the fill spacing).
    let mut u = Vec::with_capacity(pauses.len());
    let mut in_gc = 0.0f64;
    for i in 0..pauses.len() {
        u.push(instr[2 * i] - in_gc);
        in_gc += pause_instr(i);
    }

    // The run's projected mutator instructions: the measure region's,
    // extended through the marginal window at the round ratio. The probe
    // boundary splits the prefix exactly (prefix runs are
    // step-identical), with the probe's own pauses deducted.
    let probe_pause_instr: f64 = (0..probe_gcs.min(pauses.len())).map(pause_instr).sum();
    let measure_mut_instr = total_instr - in_gc;
    let probe_mut_instr = (probe_end_instr - probe_pause_instr).max(0.0);
    let window_mut_instr = (measure_mut_instr - probe_mut_instr).max(0.0);
    let mut_instr_total = measure_mut_instr + window_mut_instr * r;

    // Nursery-fill spacing. The offsets form a random walk with
    // independent per-fill jitter, so the minimum-variance estimate is
    // the endpoint difference over an averaged stretch — the LATE half
    // of the window, because JIT warmup stretches early fills well past
    // the probe and the tail continues the late rate. Short streams fall
    // back to the median of consecutive diffs, then to the single
    // offset (one observed pause IS one fill).
    let n = u.len();
    let lo = probe_gcs.max(n / 2).min(n - 1);
    let spacing = if n - 1 - lo >= 2 {
        (u[n - 1] - u[lo]) / (n - 1 - lo) as f64
    } else {
        let diffs_from = |lo: usize| -> Vec<f64> {
            u.iter()
                .zip(u.iter().skip(1))
                .skip(lo)
                .map(|(a, b)| b - a)
                .collect()
        };
        let mut diffs = diffs_from(probe_gcs.saturating_sub(1).min(n - 1));
        if diffs.is_empty() {
            diffs = diffs_from(0);
        }
        if diffs.is_empty() {
            u[0]
        } else {
            diffs.sort_by(f64::total_cmp);
            diffs[diffs.len() / 2]
        }
    };
    let u_last = *u.last().expect("pauses is non-empty");
    let ratio = if spacing > 0.0 {
        ((mut_instr_total - u_last) / spacing).max(0.0)
    } else {
        fallback_gcs as f64
    };
    let tail_gcs = ratio.floor() as u64;

    // Classify by duration against the whole region's median pause.
    let mut sorted: Vec<f64> = pauses.iter().map(|(_, d)| d.as_secs()).collect();
    sorted.sort_by(f64::total_cmp);
    let threshold = sorted[sorted.len() / 2] * cfg.full_pause_ratio.max(1.0);
    let mut fulls: Vec<(usize, f64)> = Vec::new();
    let (mut n_sum, mut n_count) = (0.0f64, 0u64);
    for (k, (_, dur)) in pauses.iter().enumerate() {
        let secs = dur.as_secs();
        if secs > threshold {
            fulls.push((k, secs));
        } else if k >= probe_gcs {
            n_sum += secs;
            n_count += 1;
        }
    }
    let nursery_mean = if n_count > 0 {
        n_sum / n_count as f64
    } else if !sorted.is_empty() {
        sorted[sorted.len() / 2]
    } else {
        0.0
    };

    // Full-heap period: spacing of observed fulls in collection indices;
    // a single full at index k implies period k + 1 (the first full is
    // the period-th collection). No observed full means none can be
    // priced — the tail is assumed nursery-only.
    let period = match fulls.len() {
        0 => None,
        1 => Some(fulls[0].0 + 1),
        _ => {
            let mut gaps: Vec<usize> =
                fulls.iter().zip(fulls.iter().skip(1)).map(|(a, b)| b.0 - a.0).collect();
            gaps.sort_unstable();
            Some(gaps[gaps.len() / 2].max(1))
        }
    };

    // Geometric ramp fit. Ordinals follow the period; with two or more
    // observed fulls the ratio of the first two determines q (exact for
    // consecutive ordinals: d2/d1 = 1 + q), with one the configured
    // prior stands in. d_inf anchors on the LAST observed full, the most
    // saturated and hence least model-sensitive point.
    let ordinal = |k: usize, p: usize| (k + 1).div_ceil(p).max(1) as i32;
    let (ramp_q, d_inf) = match (period, fulls.as_slice()) {
        (Some(p), [(k1, d1), (k2, d2), ..]) if fulls.len() >= 2 => {
            let q = if ordinal(*k2, p) == ordinal(*k1, p) + 1 && *d1 > 0.0 {
                (d2 / d1 - 1.0).clamp(0.0, 0.9)
            } else {
                cfg.full_ramp_ratio.clamp(0.0, 0.9)
            };
            let (k_last, d_last) = *fulls.last().expect("fulls is non-empty");
            let denom = 1.0 - q.powi(ordinal(k_last, p));
            (q, if denom > 0.0 { d_last / denom } else { d_last })
        }
        (Some(p), [(k1, d1)]) => {
            let q = cfg.full_ramp_ratio.clamp(0.0, 0.9);
            let denom = 1.0 - q.powi(ordinal(*k1, p));
            (q, if denom > 0.0 { d1 / denom } else { *d1 })
        }
        _ => (0.0, 0.0),
    };

    // Price the tail. Nursery pauses follow the floored collection
    // count, but a full-heap pause straddling the tail's end is priced
    // by its fractional coverage of the fill ratio: the count estimate
    // carries sub-percent noise, and flooring away a full the run is 90%
    // of the way to would swing the estimate by ten nursery pauses'
    // worth on a knife edge (runs routinely end right after a scheduled
    // full — the final rounds trigger the last fill of the period).
    let len = pauses.len();
    let mut tail_gc_time = 0.0f64;
    let mut tail_fulls = 0u64;
    if let Some(p) = period {
        for k in len..len + ratio.ceil() as usize {
            if (k + 1) % p == 0 {
                let w = (ratio - (k - len) as f64).clamp(0.0, 1.0);
                tail_gc_time += w * d_inf * (1.0 - ramp_q.powi(ordinal(k, p)));
                if ((k - len) as u64) < tail_gcs {
                    tail_fulls += 1;
                }
            }
        }
    }
    tail_gc_time += nursery_mean * tail_gcs.saturating_sub(tail_fulls) as f64;

    // Pooled within-class deviation of the window pauses: between-class
    // spread is modelled, only residual variation is uncertainty.
    let mut ss = 0.0f64;
    let mut total = 0u64;
    for (k, (_, dur)) in pauses.iter().enumerate().skip(probe_gcs) {
        let secs = dur.as_secs();
        let mean = if secs > threshold {
            period.map_or(secs, |p| d_inf * (1.0 - ramp_q.powi(ordinal(k, p))))
        } else {
            nursery_mean
        };
        ss += (secs - mean).powi(2);
        total += 1;
    }
    let pause_std = if total > 1 {
        (ss / (total - 1) as f64).sqrt()
    } else {
        0.0
    };

    GcProjection {
        tail_gcs,
        tail_gc_time,
        pause_std,
    }
}

/// Cumulative all-thread instruction count at each of `times`: epoch
/// prefix sums, linearly pro-rated inside the epoch containing the
/// query (epochs attribute their counters uniformly over their span,
/// exactly like `ExecutionTrace::totals_in_window`).
fn instructions_at(trace: &ExecutionTrace, times: &[Time]) -> Vec<f64> {
    let mut prefix = Vec::with_capacity(trace.epochs.len() + 1);
    let mut acc = 0.0f64;
    prefix.push(0.0);
    for epoch in &trace.epochs {
        acc += epoch
            .threads
            .iter()
            .map(|s| s.counters.instructions as f64)
            .sum::<f64>();
        prefix.push(acc);
    }
    times
        .iter()
        .map(|&t| {
            let i = trace.epochs.partition_point(|e| e.end_time() <= t);
            if i >= trace.epochs.len() {
                return acc;
            }
            let epoch = &trace.epochs[i];
            let frac = if epoch.duration == TimeDelta::ZERO {
                0.0
            } else {
                (t.since(epoch.start) / epoch.duration).clamp(0.0, 1.0)
            };
            prefix[i] + (prefix[i + 1] - prefix[i]) * frac
        })
        .collect()
}

/// Naive linear scaling of the measure region alone, used when the
/// marginal window is degenerate. The confidence interval is the
/// estimate itself: the caller learns it got an order of magnitude, not
/// a measurement.
fn linear_fallback(
    measure: &RegionMeasurement,
    report: dvfs_trace::RecurrenceReport,
) -> Extrapolation {
    let inv = if measure.fraction > 0.0 && measure.fraction < 1.0 {
        1.0 / measure.fraction
    } else {
        1.0
    };
    let exec = measure.exec * inv;
    let gc_time = measure.gc_time * inv;
    Extrapolation {
        exec,
        gc_time,
        gc_count: (measure.gc_count as f64 * inv).round() as u64,
        allocated: (measure.allocated as f64 * inv).round() as u64,
        total_active: measure.total_active * inv,
        exec_half_ci: exec,
        gc_half_ci: gc_time,
        recurrence: report.recurrence,
        clusters: report.clusters,
    }
}

/// The trace's individual stop-the-world pauses as `(start, duration)`,
/// in time order (depth-tolerant marker pairing, like
/// `ExecutionTrace::phase_windows`).
fn gc_pauses(trace: &ExecutionTrace) -> Vec<(Time, TimeDelta)> {
    let mut pauses = Vec::new();
    let mut depth = 0u32;
    let mut begin = trace.start;
    for marker in &trace.markers {
        match marker.kind {
            PhaseKind::GcStart => {
                if depth == 0 {
                    begin = marker.time;
                }
                depth += 1;
            }
            PhaseKind::GcEnd => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    pauses.push((begin, marker.time.since(begin).clamp_non_negative()));
                }
            }
        }
    }
    pauses
}

/// Standard error of the extrapolated mutator time: the marginal window
/// is split into equal-time sub-windows, each yields a seconds-per-
/// instruction rate, and the rate's standard error — scaled by the
/// tail's projected instruction count — bounds the drift risk of
/// assuming the window rate holds for the rest of the run.
fn mutator_rate_half_ci(
    trace: &ExecutionTrace,
    probe_exec: TimeDelta,
    window_mut: TimeDelta,
    r: f64,
    cfg: &SamplingConfig,
) -> TimeDelta {
    let k = cfg.ci_subwindows.max(2) as usize;
    let w_start = trace.start + probe_exec;
    let w_end = trace.start + trace.total;
    let width = w_end.since(w_start);
    if width <= TimeDelta::ZERO {
        return TimeDelta::ZERO;
    }
    let step = width * (1.0 / k as f64);
    let mut rates = Vec::with_capacity(k);
    let mut total_instr = 0u64;
    for i in 0..k {
        let lo = w_start + step * i as f64;
        let hi = if i + 1 == k { w_end } else { w_start + step * (i + 1) as f64 };
        let instr: u64 = trace
            .totals_in_window(lo, hi)
            .values()
            .map(|c| c.instructions)
            .sum();
        total_instr += instr;
        if instr > 0 {
            rates.push(hi.since(lo).as_secs() / instr as f64);
        }
    }
    if rates.len() < 2 || total_instr == 0 {
        // Not enough structure to estimate variance; report the whole
        // extrapolated increment as the uncertainty.
        return window_mut * r;
    }
    let n = rates.len() as f64;
    let mean = rates.iter().sum::<f64>() / n;
    let var = rates.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
    let se_rate = (var / n).sqrt();
    let tail_instr = total_instr as f64 * r;
    TimeDelta::from_secs(se_rate * tail_instr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvfs_trace::{Freq, PhaseMarker, Time};

    fn region(fraction: f64, exec_s: f64, gc_s: f64, gcs: u64, alloc: u64) -> RegionMeasurement {
        RegionMeasurement {
            fraction,
            exec: TimeDelta::from_secs(exec_s),
            gc_time: TimeDelta::from_secs(gc_s),
            gc_count: gcs,
            allocated: alloc,
            total_active: TimeDelta::from_secs(exec_s * 3.0),
        }
    }

    /// A trace whose epochs tile `total` seconds with uniform activity
    /// and whose markers carry `pauses` (start, duration) GC pauses.
    fn uniform_trace(total_s: f64, pauses: &[(f64, f64)]) -> ExecutionTrace {
        let mut epochs = Vec::new();
        let n = 40;
        let step = total_s / n as f64;
        for i in 0..n {
            epochs.push(dvfs_trace::EpochRecord {
                start: Time::from_secs(i as f64 * step),
                duration: TimeDelta::from_secs(step),
                threads: vec![dvfs_trace::ThreadSlice {
                    thread: dvfs_trace::ThreadId(1),
                    counters: dvfs_trace::DvfsCounters {
                        active: TimeDelta::from_secs(step),
                        instructions: 1_000_000,
                        ..Default::default()
                    },
                }],
                end: dvfs_trace::EpochEnd::QuantumBoundary,
            });
        }
        let mut markers = Vec::new();
        for &(start, dur) in pauses {
            markers.push(PhaseMarker::new(Time::from_secs(start), PhaseKind::GcStart));
            markers.push(PhaseMarker::new(Time::from_secs(start + dur), PhaseKind::GcEnd));
        }
        ExecutionTrace {
            base: Freq::from_ghz(1.0),
            start: Time::ZERO,
            total: TimeDelta::from_secs(total_s),
            epochs,
            markers,
            threads: vec![],
        }
    }

    #[test]
    fn linear_run_extrapolates_exactly() {
        // A perfectly linear run: exec = 10 s/fraction, no GC. The
        // window difference must recover the full-run time exactly.
        let probe = region(0.1, 1.0, 0.0, 0, 100);
        let measure = region(0.4, 4.0, 0.0, 0, 400);
        let trace = uniform_trace(4.0, &[]);
        let x = extrapolate(&probe, &measure, &trace, &SamplingConfig::default());
        assert!((x.exec.as_secs() - 10.0).abs() < 1e-9, "{}", x.exec);
        assert_eq!(x.gc_time, TimeDelta::ZERO);
        assert_eq!(x.allocated, 1000);
        assert!((x.total_active.as_secs() - 30.0).abs() < 1e-9);
        // Uniform rates mean a tight interval.
        assert!(x.exec_half_ci.as_secs() < 0.2, "{}", x.exec_half_ci);
    }

    #[test]
    fn startup_transient_cancels_in_the_window() {
        // Both prefixes carry the same 0.5 s startup cost; linear
        // scaling of the measure region alone would inflate the estimate
        // (4.5/0.4 = 11.25 s), the window difference must not.
        let probe = region(0.1, 1.5, 0.0, 0, 0);
        let measure = region(0.4, 4.5, 0.0, 0, 0);
        let trace = uniform_trace(4.5, &[]);
        let x = extrapolate(&probe, &measure, &trace, &SamplingConfig::default());
        assert!((x.exec.as_secs() - 10.5).abs() < 1e-9, "{}", x.exec);
    }

    /// Synthesises the measure-region view of a run with `total_gcs`
    /// collections spaced `spacing` apart in mutator time, nursery
    /// pauses of `nursery_dur`, and a full-heap pause every `period`-th
    /// collection priced on the ramp `d_inf * (1 - q^n)`. Returns the
    /// whole-run ground truth alongside the prefix measurements.
    struct RampRun {
        probe: RegionMeasurement,
        measure: RegionMeasurement,
        trace: ExecutionTrace,
        true_exec: f64,
        true_gc: f64,
        true_gcs: u64,
    }

    fn ramp_run(
        total_gcs: usize,
        spacing: f64,
        nursery_dur: f64,
        period: usize,
        d_inf: f64,
        q: f64,
        probe_fraction: f64,
        measure_fraction: f64,
    ) -> RampRun {
        let dur = |k: usize| {
            if (k + 1) % period == 0 {
                let n = ((k + 1) / period) as i32;
                d_inf * (1.0 - q.powi(n))
            } else {
                nursery_dur
            }
        };
        // Mutator runs `spacing` past the last fill before finishing.
        let mut_total = spacing * total_gcs as f64 + spacing * 0.5;
        let gc_total: f64 = (0..total_gcs).map(dur).sum();

        // Prefix view at `fraction`: every collection whose fill point
        // lands inside the prefix's mutator time.
        let prefix = |fraction: f64| {
            let mut_in = mut_total * fraction;
            let (mut gc, mut gcs) = (0.0, 0u64);
            let mut wall_pauses = Vec::new();
            for k in 0..total_gcs {
                let u = spacing * (k + 1) as f64;
                if u <= mut_in {
                    wall_pauses.push((u + gc, dur(k)));
                    gc += dur(k);
                    gcs += 1;
                }
            }
            (mut_in + gc, gc, gcs, wall_pauses)
        };
        let (p_exec, p_gc, p_gcs, _) = prefix(probe_fraction);
        let (m_exec, m_gc, m_gcs, m_pauses) = prefix(measure_fraction);
        RampRun {
            probe: region(
                probe_fraction,
                p_exec,
                p_gc,
                p_gcs,
                (probe_fraction * 1000.0) as u64,
            ),
            measure: region(
                measure_fraction,
                m_exec,
                m_gc,
                m_gcs,
                (measure_fraction * 1000.0) as u64,
            ),
            trace: uniform_trace(m_exec, &m_pauses),
            true_exec: mut_total + gc_total,
            true_gc: gc_total,
            true_gcs: total_gcs as u64,
        }
    }

    #[test]
    fn gc_projection_recovers_periodic_ramp_exactly() {
        // 30 collections 0.2 s apart in mutator time, nursery pauses of
        // 10 ms, every 8th a full-heap pause on the ramp
        // 0.12 * (1 - 0.25^n) (fulls at indices 7, 15, 23 costing 0.09,
        // 0.1125, 0.118125 s). The measure prefix sees ten pauses — ONE
        // full — yet the projection must price the two unseen fulls at
        // their own ramp ordinals, recovering the run exactly: a flat
        // window mean would miss the ramp, a blended mean the mix.
        let run = ramp_run(30, 0.2, 0.010, 8, 0.12, 0.25, 0.05, 0.35);
        assert_eq!(run.probe.gc_count, 1, "probe sees the first fill");
        assert_eq!(run.measure.gc_count, 10, "measure sees one full");
        let x = extrapolate(&run.probe, &run.measure, &run.trace, &SamplingConfig::default());
        assert_eq!(x.gc_count, run.true_gcs);
        assert!(
            (x.gc_time.as_secs() - run.true_gc).abs() < 1e-6,
            "gc_time {} want {}",
            x.gc_time,
            run.true_gc
        );
        assert!(
            (x.exec.as_secs() - run.true_exec).abs() < 1e-6,
            "exec {} want {}",
            x.exec,
            run.true_exec
        );
        // The synthetic run matches the model perfectly, so the
        // within-class residual — and with it the GC interval — is zero.
        assert!(x.gc_half_ci.as_secs() < 1e-9, "{}", x.gc_half_ci);
    }

    #[test]
    fn gc_projection_fits_ramp_from_two_observed_fulls() {
        // A wider measure region sees the fulls at ordinals 1 and 2;
        // their ratio determines q without consulting the configured
        // prior. Poison the prior to prove it: recovery stays exact.
        let run = ramp_run(30, 0.2, 0.010, 8, 0.12, 0.25, 0.05, 0.55);
        assert_eq!(run.measure.gc_count, 16, "measure sees both early fulls");
        let cfg = SamplingConfig {
            full_ramp_ratio: 0.9,
            ..SamplingConfig::default()
        };
        let x = extrapolate(&run.probe, &run.measure, &run.trace, &cfg);
        assert_eq!(x.gc_count, run.true_gcs);
        assert!(
            (x.gc_time.as_secs() - run.true_gc).abs() < 1e-6,
            "gc_time {} want {}",
            x.gc_time,
            run.true_gc
        );
    }

    #[test]
    fn degenerate_window_falls_back_to_linear() {
        // Identical prefixes (tiny smoke scales collapse the regions).
        let probe = region(0.2, 2.0, 0.1, 3, 100);
        let measure = region(0.2, 2.0, 0.1, 3, 100);
        let trace = uniform_trace(2.0, &[]);
        let x = extrapolate(&probe, &measure, &trace, &SamplingConfig::default());
        assert!((x.exec.as_secs() - 10.0).abs() < 1e-9);
        assert_eq!(x.gc_count, 15);
        // The fallback interval is as wide as the estimate itself.
        assert_eq!(x.exec_half_ci, x.exec);
    }

    #[test]
    fn scheduler_extends_only_on_low_recurrence() {
        let cfg = SamplingConfig::default();
        assert_eq!(cfg.extension(0.9), None);
        assert_eq!(cfg.extension(cfg.min_recurrence), None);
        assert_eq!(cfg.extension(0.0), Some(cfg.extend_fraction));
        // An extension narrower than the measure region is never taken.
        let no_room = SamplingConfig {
            extend_fraction: 0.3,
            measure_fraction: 0.35,
            ..cfg
        };
        assert_eq!(no_room.extension(0.0), None);
    }

    #[test]
    fn config_digest_separates_region_placement() {
        use depburst_core::stablehash::StableHasher;
        let digest = |cfg: &SamplingConfig| {
            let mut h = StableHasher::new();
            cfg.hash_into(&mut h);
            h.finish()
        };
        let base = SamplingConfig::default();
        let wider = SamplingConfig {
            measure_fraction: 0.5,
            ..base
        };
        assert_ne!(digest(&base), digest(&wider));
        assert_eq!(digest(&base), digest(&SamplingConfig::default()));
    }

    #[test]
    fn pause_extraction_tolerates_nesting_and_imbalance() {
        let trace = ExecutionTrace {
            base: Freq::from_ghz(1.0),
            start: Time::ZERO,
            total: TimeDelta::from_secs(1.0),
            epochs: vec![],
            markers: vec![
                PhaseMarker::new(Time::from_secs(0.1), PhaseKind::GcStart),
                PhaseMarker::new(Time::from_secs(0.15), PhaseKind::GcStart),
                PhaseMarker::new(Time::from_secs(0.18), PhaseKind::GcEnd),
                PhaseMarker::new(Time::from_secs(0.2), PhaseKind::GcEnd),
                // Dangling start: never closed, never reported.
                PhaseMarker::new(Time::from_secs(0.9), PhaseKind::GcStart),
            ],
        threads: vec![],
        };
        let pauses = gc_pauses(&trace);
        assert_eq!(pauses.len(), 1);
        // The outermost pair wins: start 0.1, duration 0.1.
        assert!((pauses[0].0.since(Time::ZERO).as_secs() - 0.1).abs() < 1e-12);
        assert!((pauses[0].1.as_secs() - 0.1).abs() < 1e-12);
    }
}
