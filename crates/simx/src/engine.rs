//! Discrete-event simulation engine: a deterministic time-ordered event
//! queue with FIFO tie-breaking.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use dvfs_trace::{CoreId, ThreadId, Time};

/// Events dispatched by the simulation loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A core finished its current work chunk. The generation stamp guards
    /// against stale events after preemption or a DVFS transition
    /// re-timed the chunk.
    ChunkDone {
        /// The core that finished.
        core: CoreId,
        /// The core's chunk generation at scheduling time.
        generation: u64,
    },
    /// A sleeping thread's timer expired.
    TimerFire {
        /// The thread to wake.
        thread: ThreadId,
    },
    /// The scheduler time slice of a core expired (round-robin among
    /// oversubscribed runnable threads).
    TimeSlice {
        /// The core whose slice expired.
        core: CoreId,
        /// The core's generation at scheduling time.
        generation: u64,
    },
}

/// A scheduled event with deterministic ordering: earliest time first,
/// FIFO among equal times.
#[derive(Debug, Clone, Copy)]
struct Scheduled {
    time: Time,
    seq: u64,
    event: Event,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl Eq for Scheduled {}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Deterministic discrete-event queue.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Scheduled>,
    next_seq: u64,
}

impl EventQueue {
    /// An empty queue.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `event` at `time`. Events scheduled for the same instant
    /// pop in scheduling order.
    pub fn push(&mut self, time: Time, event: Event) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { time, seq, event });
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(Time, Event)> {
        self.heap.pop().map(|s| (s.time, s.event))
    }

    /// The time of the earliest pending event.
    #[must_use]
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|s| s.time)
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> Time {
        Time::from_secs(s)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(t(3.0), Event::TimerFire { thread: ThreadId(3) });
        q.push(t(1.0), Event::TimerFire { thread: ThreadId(1) });
        q.push(t(2.0), Event::TimerFire { thread: ThreadId(2) });
        let order: Vec<_> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Event::TimerFire { thread } => thread.0,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.push(t(1.0), Event::TimerFire { thread: ThreadId(i) });
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Event::TimerFire { thread } => thread.0,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(t(5.0), Event::TimerFire { thread: ThreadId(0) });
        assert_eq!(q.peek_time(), Some(t(5.0)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }
}
