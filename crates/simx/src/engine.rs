//! Discrete-event simulation engine: a deterministic time-ordered event
//! queue with FIFO tie-breaking.
//!
//! The queue is a flat calendar (bucket ring) rather than a binary heap:
//! the simulator's event times are near-monotone — events are always
//! scheduled at `now + delta` with small `delta`, and the population is a
//! handful of events per core — so almost every push lands in a bucket at
//! or just ahead of the cursor, and almost every pop scans one short
//! bucket. Events beyond the calendar horizon (timers, long sleeps) wait
//! in an overflow band and are folded in when the cursor reaches them.
//! Ordering is exactly the heap's contract: earliest `time` first, FIFO by
//! insertion `seq` among equal times (see [`reference::HeapQueue`], kept
//! as the oracle for the equivalence proptest).

use dvfs_trace::{CoreId, ThreadId, Time};

/// Events dispatched by the simulation loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A core finished its current work chunk. The generation stamp guards
    /// against stale events after preemption or a DVFS transition
    /// re-timed the chunk.
    ChunkDone {
        /// The core that finished.
        core: CoreId,
        /// The core's chunk generation at scheduling time.
        generation: u64,
    },
    /// A sleeping thread's timer expired.
    TimerFire {
        /// The thread to wake.
        thread: ThreadId,
    },
    /// The scheduler time slice of a core expired (round-robin among
    /// oversubscribed runnable threads).
    TimeSlice {
        /// The core whose slice expired.
        core: CoreId,
        /// The core's generation at scheduling time.
        generation: u64,
    },
}

/// A scheduled event with deterministic ordering: earliest time first,
/// FIFO among equal times.
#[derive(Debug, Clone, Copy)]
struct Scheduled {
    time: Time,
    seq: u64,
    event: Event,
}

impl Scheduled {
    /// The deterministic ordering key.
    #[inline]
    fn key(&self) -> (Time, u64) {
        (self.time, self.seq)
    }
}

/// Number of day-buckets in the calendar ring (power of two).
const N_BUCKETS: usize = 64;
/// Bucket width in seconds. Chunk events arrive a few microseconds apart,
/// so one bucket holds roughly one dispatch round's worth of events and
/// the 64-bucket horizon (64 µs) covers everything but timers and long
/// sleeps, which ride in the overflow band. Any width is *correct* — only
/// the bucket occupancy changes.
const BUCKET_WIDTH: f64 = 1e-6;

/// Deterministic discrete-event queue (flat calendar).
#[derive(Debug)]
pub struct EventQueue {
    /// Ring of day-buckets; `buckets[cursor]` covers `[base, base + width)`.
    /// Buckets are unsorted — pops select the minimum `(time, seq)` by
    /// scanning, which keeps ties exact regardless of storage order.
    buckets: Vec<Vec<Scheduled>>,
    /// Start time (seconds) of the bucket at `cursor`.
    base: f64,
    /// Index of the current bucket.
    cursor: usize,
    /// Events at or beyond `base + N_BUCKETS * width`.
    overflow: Vec<Scheduled>,
    /// Events currently stored in `buckets` (not `overflow`).
    in_buckets: usize,
    /// Occupancy bitmask: bit `i` set iff `buckets[i]` is non-empty.
    /// With exactly 64 buckets the "first occupied bucket at or after the
    /// cursor" query is one rotate + `trailing_zeros`.
    occupied: u64,
    /// Total pending events.
    len: usize,
    /// Monotone insertion stamp for FIFO tie-breaking.
    next_seq: u64,
    /// The earliest pending `(time, seq)`, maintained across push/pop so
    /// `peek_time` is O(1) (the run loop peeks before every dispatch).
    cached_min: Option<(Time, u64)>,
    /// Cached minimum key of the overflow band (recomputed only when an
    /// overflow event is removed, which is rare).
    over_min: Option<(Time, u64)>,
}

// The occupancy mask is a u64: one bit per bucket.
const _: () = assert!(N_BUCKETS == 64);

impl Default for EventQueue {
    fn default() -> Self {
        EventQueue {
            buckets: (0..N_BUCKETS).map(|_| Vec::new()).collect(),
            base: 0.0,
            cursor: 0,
            overflow: Vec::new(),
            in_buckets: 0,
            occupied: 0,
            len: 0,
            next_seq: 0,
            cached_min: None,
            over_min: None,
        }
    }
}

impl EventQueue {
    /// An empty queue.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Horizon of the bucket ring in seconds.
    #[inline]
    fn horizon() -> f64 {
        N_BUCKETS as f64 * BUCKET_WIDTH
    }

    /// Schedules `event` at `time`. Events scheduled for the same instant
    /// pop in scheduling order.
    pub fn push(&mut self, time: Time, event: Event) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let s = Scheduled { time, seq, event };
        let t = time.as_secs();
        if t >= self.base + Self::horizon() {
            self.overflow.push(s);
            if self.over_min.is_none_or(|m| s.key() < m) {
                self.over_min = Some(s.key());
            }
        } else {
            // Times before `base` (possible only through FP rounding at a
            // bucket boundary) clamp into the cursor bucket; the min-scan
            // still orders them correctly since every other bucket holds
            // strictly later times.
            let k = if t <= self.base {
                0
            } else {
                ((t - self.base) / BUCKET_WIDTH) as usize
            };
            let k = k.min(N_BUCKETS - 1);
            let slot = (self.cursor + k) & (N_BUCKETS - 1);
            self.buckets[slot].push(s);
            self.occupied |= 1 << slot;
            self.in_buckets += 1;
        }
        self.len += 1;
        if self.cached_min.is_none_or(|m| s.key() < m) {
            self.cached_min = Some(s.key());
        }
    }

    /// Removes and returns the earliest event.
    ///
    /// The minimum is the smaller of two candidates: the first occupied
    /// bucket's minimum, and the overflow band's minimum. Overflow must be
    /// consulted even when buckets are occupied — an event filed beyond
    /// the horizon *at push time* can fall inside the ring's range once
    /// the cursor has advanced, without having been migrated.
    pub fn pop(&mut self) -> Option<(Time, Event)> {
        if self.len == 0 {
            return None;
        }
        if self.in_buckets == 0 {
            // Every ring bucket is empty: jump the calendar to the
            // overflow band and fold the near future back in.
            self.refill_from_overflow();
        }
        // Jump the cursor to the first occupied bucket and find its
        // minimum (one rotate + count-trailing-zeros on the mask).
        let ahead = self.occupied.rotate_right(self.cursor as u32).trailing_zeros() as usize;
        if ahead > 0 {
            self.cursor = (self.cursor + ahead) & (N_BUCKETS - 1);
            self.base += ahead as f64 * BUCKET_WIDTH;
        }
        let bucket = &self.buckets[self.cursor];
        let mut best = 0;
        for i in 1..bucket.len() {
            if bucket[i].key() < bucket[best].key() {
                best = i;
            }
        }
        let s = match self.over_min {
            Some(m) if m < bucket[best].key() => self.take_overflow(m),
            _ => {
                self.in_buckets -= 1;
                let s = self.buckets[self.cursor].swap_remove(best);
                if self.buckets[self.cursor].is_empty() {
                    self.occupied &= !(1 << self.cursor);
                }
                s
            }
        };
        self.len -= 1;
        self.cached_min = self.find_min();
        Some((s.time, s.event))
    }

    /// Removes the overflow event whose key is `m` (the cached overflow
    /// minimum) and recomputes the cache.
    fn take_overflow(&mut self, m: (Time, u64)) -> Scheduled {
        let i = self
            .overflow
            .iter()
            .position(|s| s.key() == m)
            .expect("cached overflow minimum must be present");
        let s = self.overflow.swap_remove(i);
        self.over_min = self.overflow.iter().map(Scheduled::key).min();
        s
    }

    /// Jumps the calendar to the earliest overflow event and moves every
    /// overflow event within the new horizon into the ring. Only called
    /// when all buckets are empty and overflow is not.
    fn refill_from_overflow(&mut self) {
        debug_assert!(self.in_buckets == 0 && !self.overflow.is_empty());
        let min_t = self
            .overflow
            .iter()
            .map(|s| s.time.as_secs())
            .fold(f64::INFINITY, f64::min);
        // Re-anchor the ring at the minimum's bucket boundary (never
        // behind the current base — time only moves forward).
        let base = (min_t / BUCKET_WIDTH).floor() * BUCKET_WIDTH;
        self.base = base.max(self.base);
        self.cursor = 0;
        let horizon_end = self.base + Self::horizon();
        let mut i = 0;
        while i < self.overflow.len() {
            let t = self.overflow[i].time.as_secs();
            if t < horizon_end {
                let s = self.overflow.swap_remove(i);
                let k = if t <= self.base {
                    0
                } else {
                    ((t - self.base) / BUCKET_WIDTH) as usize
                };
                let slot = k.min(N_BUCKETS - 1);
                self.buckets[slot].push(s);
                self.occupied |= 1 << slot;
                self.in_buckets += 1;
            } else {
                i += 1;
            }
        }
        self.over_min = self.overflow.iter().map(Scheduled::key).min();
    }

    /// The earliest pending `(time, seq)` without mutating the calendar:
    /// the smaller of the first occupied bucket's minimum (buckets
    /// partition time monotonically along the ring) and the overflow
    /// band's minimum (see [`EventQueue::pop`] for why both matter).
    fn find_min(&self) -> Option<(Time, u64)> {
        if self.len == 0 {
            return None;
        }
        let bucket_min = (self.in_buckets > 0).then(|| {
            let ahead = self.occupied.rotate_right(self.cursor as u32).trailing_zeros();
            let bucket = &self.buckets[(self.cursor + ahead as usize) & (N_BUCKETS - 1)];
            bucket
                .iter()
                .map(Scheduled::key)
                .min()
                .expect("occupied bucket must be non-empty")
        });
        match (bucket_min, self.over_min) {
            (Some(b), Some(o)) => Some(b.min(o)),
            (m, None) | (None, m) => m,
        }
    }

    /// The time of the earliest pending event.
    #[must_use]
    #[inline]
    pub fn peek_time(&self) -> Option<Time> {
        self.cached_min.map(|(t, _)| t)
    }

    /// Number of pending events.
    #[must_use]
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no events are pending.
    #[must_use]
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// The original `BinaryHeap` event queue, kept as the ordering oracle for
/// the calendar queue's equivalence proptest.
#[doc(hidden)]
pub mod reference {
    use std::cmp::Ordering;
    use std::collections::BinaryHeap;

    use super::{Event, Scheduled};
    use dvfs_trace::Time;

    impl PartialEq for Scheduled {
        fn eq(&self, other: &Self) -> bool {
            self.time == other.time && self.seq == other.seq
        }
    }

    impl Eq for Scheduled {}

    impl PartialOrd for Scheduled {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }

    impl Ord for Scheduled {
        fn cmp(&self, other: &Self) -> Ordering {
            // BinaryHeap is a max-heap; invert so the earliest pops first.
            other
                .time
                .cmp(&self.time)
                .then_with(|| other.seq.cmp(&self.seq))
        }
    }

    /// Deterministic discrete-event queue backed by a binary heap.
    #[derive(Debug, Default)]
    pub struct HeapQueue {
        heap: BinaryHeap<Scheduled>,
        next_seq: u64,
    }

    impl HeapQueue {
        /// An empty queue.
        #[must_use]
        pub fn new() -> Self {
            Self::default()
        }

        /// Schedules `event` at `time` (FIFO among equal times).
        pub fn push(&mut self, time: Time, event: Event) {
            let seq = self.next_seq;
            self.next_seq += 1;
            self.heap.push(Scheduled { time, seq, event });
        }

        /// Removes and returns the earliest event.
        pub fn pop(&mut self) -> Option<(Time, Event)> {
            self.heap.pop().map(|s| (s.time, s.event))
        }

        /// The time of the earliest pending event.
        #[must_use]
        pub fn peek_time(&self) -> Option<Time> {
            self.heap.peek().map(|s| s.time)
        }

        /// Number of pending events.
        #[must_use]
        pub fn len(&self) -> usize {
            self.heap.len()
        }

        /// True if no events are pending.
        #[must_use]
        pub fn is_empty(&self) -> bool {
            self.heap.is_empty()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> Time {
        Time::from_secs(s)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(t(3.0), Event::TimerFire { thread: ThreadId(3) });
        q.push(t(1.0), Event::TimerFire { thread: ThreadId(1) });
        q.push(t(2.0), Event::TimerFire { thread: ThreadId(2) });
        let order: Vec<_> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Event::TimerFire { thread } => thread.0,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.push(t(1.0), Event::TimerFire { thread: ThreadId(i) });
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Event::TimerFire { thread } => thread.0,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(t(5.0), Event::TimerFire { thread: ThreadId(0) });
        assert_eq!(q.peek_time(), Some(t(5.0)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn far_future_events_ride_the_overflow_band() {
        let mut q = EventQueue::new();
        // Well beyond the 64 µs horizon: seconds apart.
        q.push(t(2.0), Event::TimerFire { thread: ThreadId(2) });
        q.push(t(0.5), Event::TimerFire { thread: ThreadId(1) });
        q.push(t(1e-7), Event::TimerFire { thread: ThreadId(0) });
        assert_eq!(q.peek_time(), Some(t(1e-7)));
        let order: Vec<_> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Event::TimerFire { thread } => thread.0,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![0, 1, 2]);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// The calendar queue is observationally equivalent to the
            /// heap oracle on arbitrary interleaved schedules: same pop
            /// order (FIFO under ties included), same peeks, same lengths.
            /// The op encoding drives every structural path — exact ties
            /// with an earlier push (including times now behind the
            /// calendar cursor), in-horizon deltas, and far-future events
            /// that ride the overflow band.
            #[test]
            fn calendar_matches_heap_on_arbitrary_schedules(
                ops in proptest::collection::vec((0u8..4, 0u32..=u32::MAX), 1..300)
            ) {
                let mut cal = EventQueue::new();
                let mut heap = reference::HeapQueue::new();
                let mut now = 0.0f64;
                let mut last_push = Time::from_secs(0.0);
                for (i, &(kind, raw)) in ops.iter().enumerate() {
                    if kind == 0 {
                        prop_assert_eq!(cal.pop(), heap.pop(), "pop at op {}", i);
                    } else {
                        let r = f64::from(raw) / f64::from(u32::MAX);
                        let tm = match kind {
                            1 => last_push, // exact tie, possibly in the past
                            2 => Time::from_secs(now + r * 4e-5), // in horizon
                            _ => Time::from_secs(now + r * 1e-2), // overflow band
                        };
                        last_push = tm;
                        let ev = Event::TimerFire {
                            thread: ThreadId(i as u32 % 8),
                        };
                        cal.push(tm, ev);
                        heap.push(tm, ev);
                    }
                    prop_assert_eq!(cal.peek_time(), heap.peek_time(), "peek at op {}", i);
                    prop_assert_eq!(cal.len(), heap.len(), "len at op {}", i);
                    if let Some(pt) = heap.peek_time() {
                        now = now.max(pt.as_secs());
                    }
                }
                while let Some(e) = heap.pop() {
                    prop_assert_eq!(cal.pop(), Some(e));
                }
                prop_assert!(cal.is_empty());
            }
        }
    }

    #[test]
    fn interleaved_push_pop_tracks_the_heap_oracle() {
        // Deterministic mixed workload: near-monotone times with ties and
        // occasional far-future jumps, interleaved pushes and pops.
        let mut cal = EventQueue::new();
        let mut heap = reference::HeapQueue::new();
        let mut state = 0x2545_F491_4F6C_DD1Du64;
        let mut now = 0.0f64;
        for step in 0..2000 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let r = (state >> 11) as f64 / (1u64 << 53) as f64;
            if state & 3 == 0 {
                assert_eq!(cal.pop(), heap.pop(), "step {step}");
                assert_eq!(cal.peek_time(), heap.peek_time());
            } else {
                let dt = match state & 15 {
                    1 => 0.0, // exact tie with `now`
                    2..=5 => r * 1e-6,
                    6..=13 => r * 4e-5,
                    _ => r * 3e-3, // beyond the horizon
                };
                let tm = t(now + dt);
                let ev = Event::TimerFire {
                    thread: ThreadId((state >> 20) as u32 % 8),
                };
                cal.push(tm, ev);
                heap.push(tm, ev);
                assert_eq!(cal.peek_time(), heap.peek_time());
                assert_eq!(cal.len(), heap.len());
            }
            if let Some(pt) = heap.peek_time() {
                now = now.max(pt.as_secs());
            }
        }
        while let Some(e) = heap.pop() {
            assert_eq!(cal.pop(), Some(e));
        }
        assert!(cal.is_empty());
    }
}
