//! Discrete-event simulation engine: a deterministic time-ordered event
//! queue with FIFO tie-breaking.
//!
//! The queue is a flat calendar (bucket ring) rather than a binary heap:
//! the simulator's event times are near-monotone — events are always
//! scheduled at `now + delta` with small `delta`, and the population is a
//! handful of events per core — so almost every push lands in a bucket at
//! or just ahead of the cursor, and almost every pop scans one short
//! bucket. Events beyond the calendar horizon (timers, long sleeps) wait
//! in an overflow band and are folded in when the cursor reaches them.
//! Ordering is exactly the heap's contract: earliest `time` first, FIFO by
//! insertion `seq` among equal times (see [`reference::HeapQueue`], kept
//! as the oracle for the equivalence proptest).

use dvfs_trace::{CoreId, ThreadId, Time};

/// Events dispatched by the simulation loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A core finished its current work chunk. The generation stamp guards
    /// against stale events after preemption or a DVFS transition
    /// re-timed the chunk.
    ChunkDone {
        /// The core that finished.
        core: CoreId,
        /// The core's chunk generation at scheduling time.
        generation: u64,
    },
    /// A sleeping thread's timer expired.
    TimerFire {
        /// The thread to wake.
        thread: ThreadId,
    },
    /// The scheduler time slice of a core expired (round-robin among
    /// oversubscribed runnable threads).
    TimeSlice {
        /// The core whose slice expired.
        core: CoreId,
        /// The core's generation at scheduling time.
        generation: u64,
    },
}

/// A scheduled event with deterministic ordering: earliest time first,
/// FIFO among equal times.
#[derive(Debug, Clone, Copy)]
struct Scheduled {
    time: Time,
    seq: u64,
    event: Event,
}

impl Scheduled {
    /// The deterministic ordering key.
    #[inline]
    fn key(&self) -> (Time, u64) {
        (self.time, self.seq)
    }
}

/// Number of day-buckets in the calendar ring (power of two).
const N_BUCKETS: usize = 64;
/// Bucket width in seconds. Chunk events arrive a few microseconds apart,
/// so one bucket holds roughly one dispatch round's worth of events and
/// the 64-bucket horizon (64 µs) covers everything but timers and long
/// sleeps, which ride in the overflow band. Any width is *correct* — only
/// the bucket occupancy changes.
const BUCKET_WIDTH: f64 = 1e-6;

/// Deterministic discrete-event queue (flat calendar).
#[derive(Debug)]
pub struct EventQueue {
    /// Ring of day-buckets; the bucket holding an event is a pure function
    /// of its time — `bucket_index(t) & 63` — never of queue state.
    /// Buckets are unsorted — pops select the minimum `(time, seq)` by
    /// scanning, which keeps ties exact regardless of storage order.
    ///
    /// The purity is load-bearing: an earlier implementation derived the
    /// slot from a drifting f64 `base` (advanced by `+= width` on every
    /// cursor step), and the accumulated rounding let two pushes of the
    /// *same* time land in adjacent buckets — popping a later-seq tie
    /// first and silently breaking the heap contract. The adversarial
    /// boundary-cluster proptest below pins this.
    buckets: Vec<Vec<Scheduled>>,
    /// Bucket number (global, not ring slot) of the current bucket; the
    /// ring covers bucket numbers `[base_idx, base_idx + N_BUCKETS)`.
    base_idx: u64,
    /// Events in buckets at or beyond `base_idx + N_BUCKETS`.
    overflow: Vec<Scheduled>,
    /// Events currently stored in `buckets` (not `overflow`).
    in_buckets: usize,
    /// Occupancy bitmask: bit `i` set iff `buckets[i]` is non-empty.
    /// With exactly 64 buckets the "first occupied bucket at or after the
    /// cursor" query is one rotate + `trailing_zeros`.
    occupied: u64,
    /// Total pending events.
    len: usize,
    /// Monotone insertion stamp for FIFO tie-breaking.
    next_seq: u64,
    /// The earliest pending `(time, seq)`, maintained across push/pop so
    /// `peek_time` is O(1) (the run loop peeks before every dispatch).
    cached_min: Option<(Time, u64)>,
    /// Cached minimum key of the overflow band (recomputed only when an
    /// overflow event is removed, which is rare).
    over_min: Option<(Time, u64)>,
}

// The occupancy mask is a u64: one bit per bucket.
const _: () = assert!(N_BUCKETS == 64);

impl Default for EventQueue {
    fn default() -> Self {
        EventQueue {
            buckets: (0..N_BUCKETS).map(|_| Vec::new()).collect(),
            base_idx: 0,
            overflow: Vec::new(),
            in_buckets: 0,
            occupied: 0,
            len: 0,
            next_seq: 0,
            cached_min: None,
            over_min: None,
        }
    }
}

impl EventQueue {
    /// An empty queue.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Global bucket number of a time. A pure function of `t` alone:
    /// monotone in `t`, so bucket order always agrees with time order,
    /// and equal times always share a bucket (FIFO reduces to the
    /// in-bucket seq scan).
    #[inline]
    fn bucket_index(t: f64) -> u64 {
        (t / BUCKET_WIDTH) as u64
    }

    /// Ring slot of the current bucket.
    #[inline]
    fn cursor(&self) -> usize {
        (self.base_idx & (N_BUCKETS as u64 - 1)) as usize
    }

    /// Files `s` (bucket number `idx`) into the ring. Bucket numbers at or
    /// behind the cursor (possible only through FP rounding at a bucket
    /// boundary, or for overflow events the cursor has overtaken) clamp
    /// into the cursor bucket; the min-scan still orders them correctly
    /// since every other bucket holds strictly later times.
    #[inline]
    fn file(&mut self, s: Scheduled, idx: u64) {
        let slot = if idx <= self.base_idx {
            self.cursor()
        } else {
            (idx & (N_BUCKETS as u64 - 1)) as usize
        };
        self.buckets[slot].push(s);
        self.occupied |= 1 << slot;
        self.in_buckets += 1;
    }

    /// Schedules `event` at `time`. Events scheduled for the same instant
    /// pop in scheduling order.
    pub fn push(&mut self, time: Time, event: Event) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let s = Scheduled { time, seq, event };
        let idx = Self::bucket_index(time.as_secs());
        if idx >= self.base_idx + N_BUCKETS as u64 {
            self.overflow.push(s);
            if self.over_min.is_none_or(|m| s.key() < m) {
                self.over_min = Some(s.key());
            }
        } else {
            self.file(s, idx);
        }
        self.len += 1;
        if self.cached_min.is_none_or(|m| s.key() < m) {
            self.cached_min = Some(s.key());
        }
    }

    /// Removes and returns the earliest event.
    ///
    /// The minimum is the smaller of two candidates: the first occupied
    /// bucket's minimum, and the overflow band's minimum. Overflow must be
    /// consulted even when buckets are occupied — an event filed beyond
    /// the horizon *at push time* can fall inside the ring's range once
    /// the cursor has advanced, without having been migrated.
    pub fn pop(&mut self) -> Option<(Time, Event)> {
        if self.len == 0 {
            return None;
        }
        if self.in_buckets == 0 {
            // Every ring bucket is empty: jump the calendar to the
            // overflow band and fold the near future back in.
            self.refill_from_overflow();
        }
        // Jump the cursor to the first occupied bucket and find its
        // minimum (one rotate + count-trailing-zeros on the mask).
        let ahead = self
            .occupied
            .rotate_right(self.cursor() as u32)
            .trailing_zeros() as u64;
        self.base_idx += ahead;
        let cur = self.cursor();
        let bucket = &self.buckets[cur];
        let mut best = 0;
        for i in 1..bucket.len() {
            if bucket[i].key() < bucket[best].key() {
                best = i;
            }
        }
        let s = match self.over_min {
            Some(m) if m < bucket[best].key() => self.take_overflow(m),
            _ => {
                self.in_buckets -= 1;
                let s = self.buckets[cur].swap_remove(best);
                if self.buckets[cur].is_empty() {
                    self.occupied &= !(1 << cur);
                }
                s
            }
        };
        self.len -= 1;
        self.cached_min = self.find_min();
        Some((s.time, s.event))
    }

    /// Removes the overflow event whose key is `m` (the cached overflow
    /// minimum) and recomputes the cache.
    fn take_overflow(&mut self, m: (Time, u64)) -> Scheduled {
        let i = self
            .overflow
            .iter()
            .position(|s| s.key() == m)
            .expect("cached overflow minimum must be present");
        let s = self.overflow.swap_remove(i);
        self.over_min = self.overflow.iter().map(Scheduled::key).min();
        s
    }

    /// Jumps the calendar to the earliest overflow event and moves every
    /// overflow event within the new horizon into the ring. Only called
    /// when all buckets are empty and overflow is not.
    fn refill_from_overflow(&mut self) {
        debug_assert!(self.in_buckets == 0 && !self.overflow.is_empty());
        // Re-anchor the ring at the minimum's bucket (never behind the
        // current base — time only moves forward).
        let min_idx = self
            .overflow
            .iter()
            .map(|s| Self::bucket_index(s.time.as_secs()))
            .min()
            .expect("refill requires a non-empty overflow band");
        self.base_idx = self.base_idx.max(min_idx);
        let horizon_end = self.base_idx + N_BUCKETS as u64;
        let mut i = 0;
        while i < self.overflow.len() {
            let idx = Self::bucket_index(self.overflow[i].time.as_secs());
            if idx < horizon_end {
                let s = self.overflow.swap_remove(i);
                self.file(s, idx);
            } else {
                i += 1;
            }
        }
        self.over_min = self.overflow.iter().map(Scheduled::key).min();
    }

    /// The earliest pending `(time, seq)` without mutating the calendar:
    /// the smaller of the first occupied bucket's minimum (buckets
    /// partition time monotonically along the ring) and the overflow
    /// band's minimum (see [`EventQueue::pop`] for why both matter).
    fn find_min(&self) -> Option<(Time, u64)> {
        if self.len == 0 {
            return None;
        }
        let bucket_min = (self.in_buckets > 0).then(|| {
            let cursor = self.cursor();
            let ahead = self.occupied.rotate_right(cursor as u32).trailing_zeros();
            let bucket = &self.buckets[(cursor + ahead as usize) & (N_BUCKETS - 1)];
            bucket
                .iter()
                .map(Scheduled::key)
                .min()
                .expect("occupied bucket must be non-empty")
        });
        match (bucket_min, self.over_min) {
            (Some(b), Some(o)) => Some(b.min(o)),
            (m, None) | (None, m) => m,
        }
    }

    /// The time of the earliest pending event.
    #[must_use]
    #[inline]
    pub fn peek_time(&self) -> Option<Time> {
        self.cached_min.map(|(t, _)| t)
    }

    /// Number of pending events.
    #[must_use]
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no events are pending.
    #[must_use]
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// The original `BinaryHeap` event queue, kept as the ordering oracle for
/// the calendar queue's equivalence proptest.
#[doc(hidden)]
pub mod reference {
    use std::cmp::Ordering;
    use std::collections::BinaryHeap;

    use super::{Event, Scheduled};
    use dvfs_trace::Time;

    impl PartialEq for Scheduled {
        fn eq(&self, other: &Self) -> bool {
            self.time == other.time && self.seq == other.seq
        }
    }

    impl Eq for Scheduled {}

    impl PartialOrd for Scheduled {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }

    impl Ord for Scheduled {
        fn cmp(&self, other: &Self) -> Ordering {
            // BinaryHeap is a max-heap; invert so the earliest pops first.
            other
                .time
                .cmp(&self.time)
                .then_with(|| other.seq.cmp(&self.seq))
        }
    }

    /// Deterministic discrete-event queue backed by a binary heap.
    #[derive(Debug, Default)]
    pub struct HeapQueue {
        heap: BinaryHeap<Scheduled>,
        next_seq: u64,
    }

    impl HeapQueue {
        /// An empty queue.
        #[must_use]
        pub fn new() -> Self {
            Self::default()
        }

        /// Schedules `event` at `time` (FIFO among equal times).
        pub fn push(&mut self, time: Time, event: Event) {
            let seq = self.next_seq;
            self.next_seq += 1;
            self.heap.push(Scheduled { time, seq, event });
        }

        /// Removes and returns the earliest event.
        pub fn pop(&mut self) -> Option<(Time, Event)> {
            self.heap.pop().map(|s| (s.time, s.event))
        }

        /// The time of the earliest pending event.
        #[must_use]
        pub fn peek_time(&self) -> Option<Time> {
            self.heap.peek().map(|s| s.time)
        }

        /// Number of pending events.
        #[must_use]
        pub fn len(&self) -> usize {
            self.heap.len()
        }

        /// True if no events are pending.
        #[must_use]
        pub fn is_empty(&self) -> bool {
            self.heap.is_empty()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> Time {
        Time::from_secs(s)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(t(3.0), Event::TimerFire { thread: ThreadId(3) });
        q.push(t(1.0), Event::TimerFire { thread: ThreadId(1) });
        q.push(t(2.0), Event::TimerFire { thread: ThreadId(2) });
        let order: Vec<_> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Event::TimerFire { thread } => thread.0,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.push(t(1.0), Event::TimerFire { thread: ThreadId(i) });
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Event::TimerFire { thread } => thread.0,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(t(5.0), Event::TimerFire { thread: ThreadId(0) });
        assert_eq!(q.peek_time(), Some(t(5.0)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn far_future_events_ride_the_overflow_band() {
        let mut q = EventQueue::new();
        // Well beyond the 64 µs horizon: seconds apart.
        q.push(t(2.0), Event::TimerFire { thread: ThreadId(2) });
        q.push(t(0.5), Event::TimerFire { thread: ThreadId(1) });
        q.push(t(1e-7), Event::TimerFire { thread: ThreadId(0) });
        assert_eq!(q.peek_time(), Some(t(1e-7)));
        let order: Vec<_> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Event::TimerFire { thread } => thread.0,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![0, 1, 2]);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// The calendar queue is observationally equivalent to the
            /// heap oracle on arbitrary interleaved schedules: same pop
            /// order (FIFO under ties included), same peeks, same lengths.
            /// The op encoding drives every structural path — exact ties
            /// with an earlier push (including times now behind the
            /// calendar cursor), in-horizon deltas, and far-future events
            /// that ride the overflow band.
            #[test]
            fn calendar_matches_heap_on_arbitrary_schedules(
                ops in proptest::collection::vec((0u8..4, 0u32..=u32::MAX), 1..300)
            ) {
                let mut cal = EventQueue::new();
                let mut heap = reference::HeapQueue::new();
                let mut now = 0.0f64;
                let mut last_push = Time::from_secs(0.0);
                for (i, &(kind, raw)) in ops.iter().enumerate() {
                    if kind == 0 {
                        prop_assert_eq!(cal.pop(), heap.pop(), "pop at op {}", i);
                    } else {
                        let r = f64::from(raw) / f64::from(u32::MAX);
                        let tm = match kind {
                            1 => last_push, // exact tie, possibly in the past
                            2 => Time::from_secs(now + r * 4e-5), // in horizon
                            _ => Time::from_secs(now + r * 1e-2), // overflow band
                        };
                        last_push = tm;
                        let ev = Event::TimerFire {
                            thread: ThreadId(i as u32 % 8),
                        };
                        cal.push(tm, ev);
                        heap.push(tm, ev);
                    }
                    prop_assert_eq!(cal.peek_time(), heap.peek_time(), "peek at op {}", i);
                    prop_assert_eq!(cal.len(), heap.len(), "len at op {}", i);
                    if let Some(pt) = heap.peek_time() {
                        now = now.max(pt.as_secs());
                    }
                }
                while let Some(e) = heap.pop() {
                    prop_assert_eq!(cal.pop(), Some(e));
                }
                prop_assert!(cal.is_empty());
            }

            /// Adversarial schedules aimed squarely at the cached-minima
            /// bookkeeping (`cached_min` / `over_min`): clusters of exact
            /// ties placed on bucket-boundary multiples (FP clamp paths),
            /// deep far-future clusters that make the overflow band the
            /// true minimum while buckets are still occupied, pushes tied
            /// to the current cached minimum (which must NOT displace it —
            /// FIFO), pushes behind the cursor, and pop bursts that drain
            /// the ring so `refill_from_overflow` re-anchors the calendar.
            /// Every step cross-checks peek/len/pop against the heap
            /// oracle, so a stale cached minimum shows up immediately as a
            /// divergent peek.
            #[test]
            fn cached_minima_survive_adversarial_overflow_schedules(
                ops in proptest::collection::vec(
                    (0u8..6, 0u32..=u32::MAX, 1usize..6),
                    1..200,
                )
            ) {
                let mut cal = EventQueue::new();
                let mut heap = reference::HeapQueue::new();
                let mut now = 0.0f64;
                let mut thread = 0u32;
                for (i, &(kind, raw, count)) in ops.iter().enumerate() {
                    let r = f64::from(raw) / f64::from(u32::MAX);
                    match kind {
                        0 => {
                            // Pop burst: drains buckets (forcing overflow
                            // refills) and invalidates cached minima
                            // `count` times in a row.
                            for _ in 0..count {
                                prop_assert_eq!(cal.pop(), heap.pop(), "pop at op {}", i);
                            }
                        }
                        1 => {
                            // Tie cluster pinned to an exact bucket
                            // boundary: `t = k * BUCKET_WIDTH` lands on
                            // the FP seam between two buckets, and may be
                            // in the ring or the overflow band depending
                            // on how far the cursor has advanced.
                            let k = (now / BUCKET_WIDTH).ceil() + (raw % 200) as f64;
                            let tm = Time::from_secs(k * BUCKET_WIDTH);
                            for _ in 0..count {
                                let ev = Event::TimerFire { thread: ThreadId(thread % 8) };
                                thread += 1;
                                cal.push(tm, ev);
                                heap.push(tm, ev);
                            }
                        }
                        2 => {
                            // Deep far-future cluster: overflow band holds
                            // these for many horizons; identical times
                            // exercise over_min's FIFO tie handling.
                            let tm = Time::from_secs(now + 1e-3 + r * 1e-2);
                            for _ in 0..count {
                                let ev = Event::TimerFire { thread: ThreadId(thread % 8) };
                                thread += 1;
                                cal.push(tm, ev);
                                heap.push(tm, ev);
                            }
                        }
                        3 => {
                            // Push at exactly the current minimum: the
                            // cached minimum must keep the earlier seq.
                            let tm = heap.peek_time().unwrap_or(Time::from_secs(now));
                            let ev = Event::TimerFire { thread: ThreadId(thread % 8) };
                            thread += 1;
                            cal.push(tm, ev);
                            heap.push(tm, ev);
                        }
                        4 => {
                            // Push behind the cursor (clamps into the
                            // cursor bucket) — possible through FP
                            // rounding in the real simulator.
                            let tm = Time::from_secs((now - r * 1e-6).max(0.0));
                            let ev = Event::TimerFire { thread: ThreadId(thread % 8) };
                            thread += 1;
                            cal.push(tm, ev);
                            heap.push(tm, ev);
                        }
                        _ => {
                            // In-horizon filler keeping the ring occupied
                            // while overflow holds the minimum's rivals.
                            let tm = Time::from_secs(now + r * 4e-5);
                            let ev = Event::TimerFire { thread: ThreadId(thread % 8) };
                            thread += 1;
                            cal.push(tm, ev);
                            heap.push(tm, ev);
                        }
                    }
                    prop_assert_eq!(cal.peek_time(), heap.peek_time(), "peek at op {}", i);
                    prop_assert_eq!(cal.len(), heap.len(), "len at op {}", i);
                    if let Some(pt) = heap.peek_time() {
                        now = now.max(pt.as_secs());
                    }
                }
                while let Some(e) = heap.pop() {
                    prop_assert_eq!(cal.pop(), Some(e));
                    prop_assert_eq!(cal.peek_time(), heap.peek_time());
                }
                prop_assert!(cal.is_empty());
            }
        }
    }

    #[test]
    fn interleaved_push_pop_tracks_the_heap_oracle() {
        // Deterministic mixed workload: near-monotone times with ties and
        // occasional far-future jumps, interleaved pushes and pops.
        let mut cal = EventQueue::new();
        let mut heap = reference::HeapQueue::new();
        let mut state = 0x2545_F491_4F6C_DD1Du64;
        let mut now = 0.0f64;
        for step in 0..2000 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let r = (state >> 11) as f64 / (1u64 << 53) as f64;
            if state & 3 == 0 {
                assert_eq!(cal.pop(), heap.pop(), "step {step}");
                assert_eq!(cal.peek_time(), heap.peek_time());
            } else {
                let dt = match state & 15 {
                    1 => 0.0, // exact tie with `now`
                    2..=5 => r * 1e-6,
                    6..=13 => r * 4e-5,
                    _ => r * 3e-3, // beyond the horizon
                };
                let tm = t(now + dt);
                let ev = Event::TimerFire {
                    thread: ThreadId((state >> 20) as u32 % 8),
                };
                cal.push(tm, ev);
                heap.push(tm, ev);
                assert_eq!(cal.peek_time(), heap.peek_time());
                assert_eq!(cal.len(), heap.len());
            }
            if let Some(pt) = heap.peek_time() {
                now = now.max(pt.as_secs());
            }
        }
        while let Some(e) = heap.pop() {
            assert_eq!(cal.pop(), Some(e));
        }
        assert!(cal.is_empty());
    }
}
