//! Aggregate run statistics.

use std::collections::BTreeMap;

use dvfs_trace::{DvfsCounters, ThreadId, TimeDelta};

use crate::mem::DramStats;

/// Machine-level statistics for a run (or the portion of a run so far).
#[derive(Debug, Clone, Default)]
pub struct RunStats {
    /// Wall-clock time simulated.
    pub elapsed: TimeDelta,
    /// Per-core accumulated busy time.
    pub core_busy: Vec<TimeDelta>,
    /// Per-thread cumulative counters.
    pub thread_counters: BTreeMap<ThreadId, DvfsCounters>,
    /// DRAM statistics.
    pub dram: DramStats,
    /// Synchronization epochs recorded.
    pub epochs: usize,
    /// Futex wait calls that actually slept.
    pub futex_sleeps: u64,
    /// Futex wake calls.
    pub futex_wakes: u64,
    /// Scheduler preemptions (time-slice expiries).
    pub preemptions: u64,
    /// DVFS transitions applied.
    pub dvfs_transitions: u64,
    /// DVFS transitions refused by an injected fault.
    pub transitions_denied: u64,
    /// Discrete events dispatched by the engine (the denominator of the
    /// benchmark suite's events-per-second throughput metric).
    pub events_dispatched: u64,
}

impl RunStats {
    /// Total committed instructions across all threads.
    #[must_use]
    pub fn total_instructions(&self) -> u64 {
        self.thread_counters.values().map(|c| c.instructions).sum()
    }

    /// Total busy (scheduled) time across all threads.
    #[must_use]
    pub fn total_active(&self) -> TimeDelta {
        self.thread_counters.values().map(|c| c.active).sum()
    }
}
