//! The program abstraction: what simulated threads execute.
//!
//! A [`ThreadProgram`] is a state machine that yields [`Action`]s — timed
//! work items or OS interactions (futex wait/wake, sleep, spawn, exit).
//! The managed-runtime crate (`mrt`) builds mutator and GC-worker programs
//! out of these primitives; the workload crate builds benchmarks on top of
//! `mrt`.

use std::fmt;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use dvfs_trace::{PhaseKind, ThreadId, ThreadRole, Time, TimeDelta};

use crate::mem::AccessPattern;

/// Identifier of a futex word registered with the machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FutexId(pub u32);

/// The storage behind a [`SharedWord`]: a `u32` cell that is `Sync` so
/// whole machines can move between worker threads of the experiment pool.
/// The simulation itself stays single-threaded — one machine is only ever
/// touched by one OS thread at a time — so `Relaxed` ordering suffices;
/// the atomic is for `Send`/`Sync`, not for cross-thread races.
#[derive(Debug, Default)]
pub struct WordCell(AtomicU32);

impl WordCell {
    /// A cell holding `initial`.
    #[must_use]
    pub fn new(initial: u32) -> Self {
        WordCell(AtomicU32::new(initial))
    }

    /// Reads the word.
    #[must_use]
    pub fn get(&self) -> u32 {
        self.0.load(Ordering::Relaxed)
    }

    /// Writes the word.
    pub fn set(&self, value: u32) {
        self.0.store(value, Ordering::Relaxed);
    }
}

/// A user-space word a futex is keyed on. Programs mutate it directly
/// (compare-and-swap style logic is modelled in program code); the kernel
/// reads it under `futex_wait` to decide whether to sleep, exactly like the
/// real futex contract — so lost-wakeup races cannot occur.
pub type SharedWord = Arc<WordCell>;

/// A timed unit of execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WorkItem {
    /// Pure core work: `instructions` executed at `ipc` instructions per
    /// cycle. Time scales perfectly with frequency.
    Compute {
        /// Instructions to execute.
        instructions: u64,
        /// Sustained instructions per cycle.
        ipc: f64,
    },
    /// A load-dominated region: `accesses` loads drawn from `pattern`,
    /// with `compute_per_access` instructions of work interleaved.
    Memory {
        /// Number of loads.
        accesses: u64,
        /// Where the loads go.
        pattern: AccessPattern,
        /// Memory-level parallelism: average number of independent miss
        /// chains outstanding together (1 = pointer chasing, 8 = streaming).
        mlp: f64,
        /// Instructions of compute per load.
        compute_per_access: f64,
        /// IPC of the interleaved compute.
        ipc: f64,
        /// Seed for the deterministic address stream.
        seed: u64,
    },
    /// A burst of stores (zero-initialisation, GC copy): `bytes` written
    /// through the store queue to `pattern` addresses.
    StoreBurst {
        /// Bytes written.
        bytes: u64,
        /// Where the stores go.
        pattern: AccessPattern,
        /// Seed for the deterministic address stream.
        seed: u64,
    },
}

/// What a program asks the machine to do next.
pub enum Action {
    /// Execute a timed work item.
    Work(WorkItem),
    /// Kernel futex wait: sleep if the futex word still holds `expected`,
    /// otherwise return immediately with [`WaitOutcome::ValueMismatch`].
    FutexWait {
        /// The futex to wait on.
        futex: FutexId,
        /// The expected word value (sleep only if it still matches).
        expected: u32,
    },
    /// Kernel futex wake: make up to `count` waiters runnable.
    FutexWake {
        /// The futex to wake.
        futex: FutexId,
        /// Maximum number of waiters to wake.
        count: u32,
    },
    /// Sleep for a fixed duration (timer).
    SleepFor(TimeDelta),
    /// Spawn a new thread.
    Spawn(SpawnRequest),
    /// Emit a runtime phase marker into the execution trace (the "JVM
    /// signal" COOP listens to).
    MarkPhase(PhaseKind),
    /// Terminate this thread.
    Exit,
}

impl fmt::Debug for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Action::Work(w) => f.debug_tuple("Work").field(w).finish(),
            Action::FutexWait { futex, expected } => f
                .debug_struct("FutexWait")
                .field("futex", futex)
                .field("expected", expected)
                .finish(),
            Action::FutexWake { futex, count } => f
                .debug_struct("FutexWake")
                .field("futex", futex)
                .field("count", count)
                .finish(),
            Action::SleepFor(d) => f.debug_tuple("SleepFor").field(d).finish(),
            Action::Spawn(r) => f.debug_tuple("Spawn").field(&r.name).finish(),
            Action::MarkPhase(k) => f.debug_tuple("MarkPhase").field(k).finish(),
            Action::Exit => write!(f, "Exit"),
        }
    }
}

/// A request to create a new thread.
pub struct SpawnRequest {
    /// Human-readable thread name.
    pub name: String,
    /// The thread's role (application / GC worker / JIT).
    pub role: ThreadRole,
    /// The program the thread runs.
    pub program: Box<dyn ThreadProgram>,
    /// Core-affinity bitmask: bit `c` set = the thread may run on core
    /// `c`. `None` = any core. Used by the per-core DVFS extension to pin
    /// application and service threads to disjoint core sets.
    pub affinity: Option<u8>,
}

impl SpawnRequest {
    /// Convenience constructor (no affinity).
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        role: ThreadRole,
        program: Box<dyn ThreadProgram>,
    ) -> Self {
        SpawnRequest {
            name: name.into(),
            role,
            program,
            affinity: None,
        }
    }

    /// Restricts the thread to the cores set in `mask`.
    #[must_use]
    pub fn with_affinity(mut self, mask: u8) -> Self {
        self.affinity = Some(mask);
        self
    }
}

impl fmt::Debug for SpawnRequest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SpawnRequest")
            .field("name", &self.name)
            .field("role", &self.role)
            .finish_non_exhaustive()
    }
}

/// The result of the most recent blocking action, visible to the program on
/// its next `next()` call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WaitOutcome {
    /// No wait has happened yet (or the last action was not a wait).
    #[default]
    None,
    /// The thread slept on a futex and was woken.
    Woken,
    /// `futex_wait` found the word already changed and did not sleep.
    ValueMismatch,
    /// A timer sleep completed.
    TimerFired,
}

/// Execution context handed to [`ThreadProgram::next`].
#[derive(Debug)]
pub struct ProgContext {
    /// Current simulated time.
    pub now: Time,
    /// This thread's id.
    pub tid: ThreadId,
    /// Outcome of the immediately preceding blocking action.
    pub last_wait: WaitOutcome,
    /// Thread id created by the immediately preceding `Spawn`, if any.
    pub last_spawned: Option<ThreadId>,
}

/// A simulated thread's behaviour.
///
/// `next` is called whenever the thread needs something to do: at spawn, and
/// after each completed action. Returning [`Action::Exit`] ends the thread.
pub trait ThreadProgram: Send + 'static {
    /// Produce the next action.
    fn next(&mut self, ctx: &mut ProgContext) -> Action;
}

/// A program defined by a boxed closure — convenient for tests and simple
/// workloads.
pub struct FnProgram<F>(pub F);

impl<F: FnMut(&mut ProgContext) -> Action + Send + 'static> ThreadProgram for FnProgram<F> {
    fn next(&mut self, ctx: &mut ProgContext) -> Action {
        (self.0)(ctx)
    }
}

impl<F> fmt::Debug for FnProgram<F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FnProgram")
    }
}

/// A program that plays a fixed script of actions, then exits.
#[derive(Debug, Default)]
pub struct ScriptProgram {
    actions: std::collections::VecDeque<Action>,
}

impl ScriptProgram {
    /// Builds a script from a list of actions ( `Exit` is appended
    /// automatically when the script drains).
    #[must_use]
    pub fn new(actions: Vec<Action>) -> Self {
        ScriptProgram {
            actions: actions.into(),
        }
    }
}

impl ThreadProgram for ScriptProgram {
    fn next(&mut self, _ctx: &mut ProgContext) -> Action {
        self.actions.pop_front().unwrap_or(Action::Exit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn script_program_drains_then_exits() {
        let mut p = ScriptProgram::new(vec![
            Action::Work(WorkItem::Compute {
                instructions: 10,
                ipc: 1.0,
            }),
            Action::MarkPhase(PhaseKind::GcStart),
        ]);
        let mut ctx = ProgContext {
            now: Time::ZERO,
            tid: ThreadId(0),
            last_wait: WaitOutcome::None,
            last_spawned: None,
        };
        assert!(matches!(p.next(&mut ctx), Action::Work(_)));
        assert!(matches!(p.next(&mut ctx), Action::MarkPhase(_)));
        assert!(matches!(p.next(&mut ctx), Action::Exit));
        assert!(matches!(p.next(&mut ctx), Action::Exit));
    }

    #[test]
    fn fn_program_invokes_closure() {
        let mut calls = 0;
        let mut p = FnProgram(move |_ctx: &mut ProgContext| {
            calls += 1;
            if calls > 1 {
                Action::Exit
            } else {
                Action::SleepFor(TimeDelta::from_micros(1.0))
            }
        });
        let mut ctx = ProgContext {
            now: Time::ZERO,
            tid: ThreadId(0),
            last_wait: WaitOutcome::None,
            last_spawned: None,
        };
        assert!(matches!(p.next(&mut ctx), Action::SleepFor(_)));
        assert!(matches!(p.next(&mut ctx), Action::Exit));
    }
}
