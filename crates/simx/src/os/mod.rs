//! The simulated operating system: threads, futexes, and the scheduler.

mod futex;
mod sched;
mod thread;

pub use futex::{FutexTable, FutexWaitResult};
pub use sched::Scheduler;
pub use thread::{SleepKind, Thread, ThreadState};
