//! Fast user-space mutex (futex) kernel support (paper §III-B).
//!
//! Programs synchronise through user-space words ([`SharedWord`]) and only
//! enter the kernel on contention, exactly like pthreads on Linux. The
//! kernel's `futex_wait` re-checks the word against the caller's expected
//! value before sleeping, which rules out lost wakeups. Every sleep and
//! wake transition here is what delimits the DEP predictor's
//! synchronization epochs.

use std::collections::{HashMap, VecDeque};

use dvfs_trace::ThreadId;

use crate::program::{FutexId, SharedWord};

/// Result of a `futex_wait` call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FutexWaitResult {
    /// The word still held the expected value: the caller must sleep.
    Sleep,
    /// The word changed before the kernel could sleep the caller: return
    /// immediately (EAGAIN in Linux terms).
    ValueMismatch,
}

/// Kernel-side futex state: registered words and per-futex wait queues.
#[derive(Debug, Default)]
pub struct FutexTable {
    words: HashMap<FutexId, SharedWord>,
    waiters: HashMap<FutexId, VecDeque<ThreadId>>,
    next_id: u32,
}

impl FutexTable {
    /// An empty table.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a new futex word with an initial value; returns its id and
    /// the shared word programs read/write directly.
    pub fn register(&mut self, initial: u32) -> (FutexId, SharedWord) {
        let id = FutexId(self.next_id);
        self.next_id += 1;
        let word = SharedWord::new(crate::program::WordCell::new(initial));
        self.words.insert(id, word.clone());
        (id, word)
    }

    /// Current value of a futex word.
    ///
    /// # Panics
    /// Panics if the futex was never registered.
    #[must_use]
    pub fn value(&self, futex: FutexId) -> u32 {
        self.words[&futex].get()
    }

    /// Kernel `futex_wait`: if the word still equals `expected`, enqueue
    /// the caller and report [`FutexWaitResult::Sleep`]; otherwise report
    /// a mismatch and do not enqueue.
    pub fn wait(&mut self, thread: ThreadId, futex: FutexId, expected: u32) -> FutexWaitResult {
        let word = self.words.get(&futex).expect("futex not registered");
        if word.get() != expected {
            return FutexWaitResult::ValueMismatch;
        }
        self.waiters.entry(futex).or_default().push_back(thread);
        FutexWaitResult::Sleep
    }

    /// Kernel `futex_wake`: dequeues up to `count` waiters in FIFO order
    /// and returns them (the caller makes them runnable).
    pub fn wake(&mut self, futex: FutexId, count: u32) -> Vec<ThreadId> {
        let Some(queue) = self.waiters.get_mut(&futex) else {
            return Vec::new();
        };
        let n = (count as usize).min(queue.len());
        queue.drain(..n).collect()
    }

    /// Number of threads currently blocked on `futex`.
    #[must_use]
    pub fn waiter_count(&self, futex: FutexId) -> usize {
        self.waiters.get(&futex).map_or(0, VecDeque::len)
    }

    /// Total threads blocked on any futex.
    #[must_use]
    pub fn total_waiters(&self) -> usize {
        self.waiters.values().map(VecDeque::len).sum()
    }

    /// Removes a specific thread from a futex queue (used when a sleeping
    /// thread is killed).
    pub fn remove_waiter(&mut self, thread: ThreadId, futex: FutexId) -> bool {
        if let Some(q) = self.waiters.get_mut(&futex) {
            if let Some(pos) = q.iter().position(|&t| t == thread) {
                q.remove(pos);
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wait_sleeps_only_when_value_matches() {
        let mut t = FutexTable::new();
        let (id, word) = t.register(0);
        assert_eq!(t.wait(ThreadId(1), id, 0), FutexWaitResult::Sleep);
        word.set(1);
        assert_eq!(t.wait(ThreadId(2), id, 0), FutexWaitResult::ValueMismatch);
        assert_eq!(t.waiter_count(id), 1);
    }

    #[test]
    fn wake_is_fifo_and_bounded() {
        let mut t = FutexTable::new();
        let (id, _) = t.register(0);
        for i in 0..5 {
            assert_eq!(t.wait(ThreadId(i), id, 0), FutexWaitResult::Sleep);
        }
        let woken = t.wake(id, 2);
        assert_eq!(woken, vec![ThreadId(0), ThreadId(1)]);
        let rest = t.wake(id, 10);
        assert_eq!(rest, vec![ThreadId(2), ThreadId(3), ThreadId(4)]);
        assert_eq!(t.wake(id, 1), Vec::<ThreadId>::new());
    }

    #[test]
    fn no_lost_wakeup_with_value_protocol() {
        // Classic race: waker flips the word before the waiter calls wait.
        let mut t = FutexTable::new();
        let (id, word) = t.register(0);
        word.set(1); // waker already signalled
        // Waiter's wait(expected=0) must not sleep.
        assert_eq!(t.wait(ThreadId(1), id, 0), FutexWaitResult::ValueMismatch);
        assert_eq!(t.total_waiters(), 0);
    }

    #[test]
    fn remove_waiter_works() {
        let mut t = FutexTable::new();
        let (id, _) = t.register(0);
        t.wait(ThreadId(1), id, 0);
        t.wait(ThreadId(2), id, 0);
        assert!(t.remove_waiter(ThreadId(1), id));
        assert!(!t.remove_waiter(ThreadId(1), id));
        assert_eq!(t.wake(id, 5), vec![ThreadId(2)]);
    }

    #[test]
    fn distinct_futexes_are_independent() {
        let mut t = FutexTable::new();
        let (a, _) = t.register(0);
        let (b, _) = t.register(0);
        t.wait(ThreadId(1), a, 0);
        t.wait(ThreadId(2), b, 0);
        assert_eq!(t.wake(a, 10), vec![ThreadId(1)]);
        assert_eq!(t.wake(b, 10), vec![ThreadId(2)]);
    }
}
