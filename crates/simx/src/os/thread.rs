//! Simulated software threads.

use std::fmt;

use dvfs_trace::{CoreId, DvfsCounters, Freq, ThreadId, ThreadRole, Time};

use crate::cpu::{Chunk, WorkCursor};
use crate::program::{FutexId, ProgContext, ThreadProgram, WaitOutcome};

/// Why a thread is asleep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SleepKind {
    /// Blocked in `futex_wait`.
    Futex(FutexId),
    /// Blocked on a timer.
    Timer,
}

/// Scheduling state of a thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadState {
    /// Ready to run, waiting for a core.
    Runnable,
    /// Executing on a core.
    Running(CoreId),
    /// Asleep in the kernel.
    Sleeping(SleepKind),
    /// Finished.
    Exited,
}

/// A simulated software thread: program, scheduling state, committed
/// counters, and any partially-executed work to resume.
pub struct Thread {
    /// The thread's id.
    pub id: ThreadId,
    /// Display name.
    pub name: String,
    /// Role (application / GC worker / JIT).
    pub role: ThreadRole,
    /// The behaviour state machine.
    pub program: Box<dyn ThreadProgram>,
    /// Scheduling state.
    pub state: ThreadState,
    /// Counters committed by finished chunks (in-flight chunk counters are
    /// interpolated separately by the tracer).
    pub counters: DvfsCounters,
    /// The current work item's remaining chunks.
    pub cursor: Option<WorkCursor>,
    /// A partially-executed chunk to resume first, with the frequency it
    /// was timed at (set on preemption; retimed to the current frequency
    /// before resuming).
    pub resume_chunk: Option<(Chunk, Freq)>,
    /// Outcome to report to the program on its next `next()` call.
    pub last_wait: WaitOutcome,
    /// Thread id produced by the program's most recent `Spawn`.
    pub last_spawned: Option<ThreadId>,
    /// Spawn time.
    pub spawn: Time,
    /// Exit time, once exited.
    pub exit: Option<Time>,
    /// Core-affinity bitmask (bit `c` = may run on core `c`); `None` = any.
    pub affinity: Option<u8>,
}

impl Thread {
    /// Creates a runnable thread.
    pub fn new(
        id: ThreadId,
        name: String,
        role: ThreadRole,
        program: Box<dyn ThreadProgram>,
        now: Time,
    ) -> Self {
        Thread {
            id,
            name,
            role,
            program,
            state: ThreadState::Runnable,
            counters: DvfsCounters::zero(),
            cursor: None,
            resume_chunk: None,
            last_wait: WaitOutcome::None,
            last_spawned: None,
            spawn: now,
            exit: None,
            affinity: None,
        }
    }

    /// True if the thread may run on core `c`.
    #[must_use]
    pub fn allowed_on(&self, c: usize) -> bool {
        match self.affinity {
            None => true,
            Some(mask) => c < 8 && (mask >> c) & 1 == 1,
        }
    }

    /// Builds the context handed to the program.
    #[must_use]
    pub fn context(&self, now: Time) -> ProgContext {
        ProgContext {
            now,
            tid: self.id,
            last_wait: self.last_wait,
            last_spawned: self.last_spawned,
        }
    }

    /// True if the thread has ended.
    #[must_use]
    pub fn is_exited(&self) -> bool {
        matches!(self.state, ThreadState::Exited)
    }
}

impl fmt::Debug for Thread {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Thread")
            .field("id", &self.id)
            .field("name", &self.name)
            .field("role", &self.role)
            .field("state", &self.state)
            .field("counters", &self.counters)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ScriptProgram;

    #[test]
    fn new_thread_is_runnable_with_zero_counters() {
        let t = Thread::new(
            ThreadId(3),
            "app-3".into(),
            ThreadRole::Application,
            Box::new(ScriptProgram::new(vec![])),
            Time::from_secs(1.0),
        );
        assert_eq!(t.state, ThreadState::Runnable);
        assert!(t.counters.is_zero());
        assert!(!t.is_exited());
        let ctx = t.context(Time::from_secs(2.0));
        assert_eq!(ctx.tid, ThreadId(3));
        assert_eq!(ctx.last_wait, WaitOutcome::None);
    }
}
