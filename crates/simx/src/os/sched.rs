//! A simple FIFO run-queue scheduler with round-robin time slicing.
//!
//! Threads are dispatched to idle cores in wake order. When more threads
//! are runnable than cores exist, each running thread is preempted after a
//! time slice — a preemption is a "scheduled out" event and therefore also
//! a synchronization-epoch boundary (paper §III-B).

use std::collections::VecDeque;

use dvfs_trace::ThreadId;

/// FIFO run queue.
#[derive(Debug, Default)]
pub struct Scheduler {
    run_queue: VecDeque<ThreadId>,
}

impl Scheduler {
    /// An empty scheduler.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a thread to the back of the run queue.
    pub fn enqueue(&mut self, thread: ThreadId) {
        debug_assert!(
            !self.run_queue.contains(&thread),
            "{thread} enqueued twice"
        );
        self.run_queue.push_back(thread);
    }

    /// Takes the next thread to dispatch.
    pub fn dequeue(&mut self) -> Option<ThreadId> {
        self.run_queue.pop_front()
    }

    /// True if any thread is waiting for a core.
    #[must_use]
    pub fn has_waiting(&self) -> bool {
        !self.run_queue.is_empty()
    }

    /// Number of threads waiting for a core.
    #[must_use]
    pub fn waiting(&self) -> usize {
        self.run_queue.len()
    }

    /// Removes a thread from the queue (e.g. killed while runnable).
    pub fn remove(&mut self, thread: ThreadId) -> bool {
        if let Some(pos) = self.run_queue.iter().position(|&t| t == thread) {
            self.run_queue.remove(pos);
            true
        } else {
            false
        }
    }

    /// Takes the first queued thread satisfying `eligible` (affinity-aware
    /// dispatch: FIFO among the threads allowed on a given core).
    pub fn dequeue_matching(&mut self, mut eligible: impl FnMut(ThreadId) -> bool) -> Option<ThreadId> {
        let pos = self.run_queue.iter().position(|&t| eligible(t))?;
        self.run_queue.remove(pos)
    }

    /// True if any queued thread satisfies `eligible`.
    #[must_use]
    pub fn has_waiting_matching(&self, mut eligible: impl FnMut(ThreadId) -> bool) -> bool {
        self.run_queue.iter().any(|&t| eligible(t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let mut s = Scheduler::new();
        s.enqueue(ThreadId(1));
        s.enqueue(ThreadId(2));
        s.enqueue(ThreadId(3));
        assert_eq!(s.waiting(), 3);
        assert_eq!(s.dequeue(), Some(ThreadId(1)));
        assert_eq!(s.dequeue(), Some(ThreadId(2)));
        assert!(s.has_waiting());
        assert_eq!(s.dequeue(), Some(ThreadId(3)));
        assert_eq!(s.dequeue(), None);
        assert!(!s.has_waiting());
    }

    #[test]
    fn remove_mid_queue() {
        let mut s = Scheduler::new();
        s.enqueue(ThreadId(1));
        s.enqueue(ThreadId(2));
        s.enqueue(ThreadId(3));
        assert!(s.remove(ThreadId(2)));
        assert!(!s.remove(ThreadId(2)));
        assert_eq!(s.dequeue(), Some(ThreadId(1)));
        assert_eq!(s.dequeue(), Some(ThreadId(3)));
    }
}
