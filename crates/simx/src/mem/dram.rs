//! A banked DRAM model with row-buffer locality, per-bank queueing, and a
//! shared write-drain path.
//!
//! The point of this model (vs. a fixed latency) is the paper's §II-A
//! observation: the leading-loads predictor assumes every long-latency miss
//! costs the same, while real memory latency varies with bank conflicts,
//! row-buffer state, scheduling, and write interference. CRIT was designed
//! to survive that variability; this model supplies it.
//!
//! All DRAM timing is expressed in wall-clock time and therefore does not
//! scale with core frequency — it is the physical source of every
//! "non-scaling" component the predictors estimate.

use dvfs_trace::{Time, TimeDelta};

use crate::config::DramConfig;
use crate::faults::{SplitMix64, DRAM_SALT};

/// Injected read-latency perturbation (see [`crate::faults`]): models a
/// memory subsystem whose service latency is less predictable than the
/// banked model alone — thermal throttling, refresh storms, shared-bus
/// interference from devices outside the simulated chip.
#[derive(Debug, Clone)]
struct LatencyJitter {
    amplitude: f64,
    rng: SplitMix64,
}

/// Aggregate DRAM statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DramStats {
    /// Read (line-fill) requests serviced.
    pub reads: u64,
    /// Row-buffer hits among reads.
    pub read_row_hits: u64,
    /// Line writes drained.
    pub writes: u64,
    /// Total read latency accumulated (for mean-latency reporting).
    pub total_read_latency: TimeDelta,
    /// Portion of read latency spent queued behind earlier requests.
    pub total_queue_delay: TimeDelta,
}

/// How line addresses map to (bank, row): shift/mask when the bank and
/// row counts are powers of two (the common case — `read` is the hottest
/// call in the whole simulator and u64 division dominates it otherwise),
/// with a division fallback for arbitrary geometries. Both paths compute
/// the exact same mapping.
#[derive(Debug, Clone, Copy)]
enum AddrMap {
    /// `bank = addr & bank_mask`, `row = (addr >> row_shift) & row_mask`.
    Pow2 {
        bank_mask: u64,
        row_shift: u32,
        row_mask: u64,
    },
    /// General geometry: divide/modulo as documented on `bank_and_row`.
    Div,
}

/// The DRAM device shared by all cores.
#[derive(Debug, Clone)]
pub struct Dram {
    config: DramConfig,
    /// Per-bank time at which the bank becomes free.
    bank_free: Vec<Time>,
    /// Per-bank currently open row.
    open_row: Vec<u64>,
    /// Time at which the shared write-drain path becomes free.
    write_free: Time,
    stats: DramStats,
    jitter: Option<LatencyJitter>,
    addr_map: AddrMap,
    /// Hoisted per-read constants (pure functions of `config`).
    service_cap_secs: f64,
    write_cap_secs: f64,
}

impl Dram {
    /// Builds the device.
    #[must_use]
    pub fn new(config: DramConfig) -> Self {
        let banks = config.banks as usize;
        let addr_map = if config.banks.is_power_of_two() && config.rows_per_bank.is_power_of_two()
        {
            AddrMap::Pow2 {
                bank_mask: u64::from(config.banks) - 1,
                // 64 lines (4 KB) per row page: drop the bank bits and the
                // 6 in-row line bits before masking the row index.
                row_shift: config.banks.trailing_zeros() + 6,
                row_mask: u64::from(config.rows_per_bank) - 1,
            }
        } else {
            AddrMap::Div
        };
        let service_cap_secs = 3.0
            * (config.cas + config.row_miss_penalty + config.line_transfer).as_secs();
        let write_cap_secs = 4.0 * config.write_line_service.as_secs();
        Dram {
            config,
            bank_free: vec![Time::ZERO; banks],
            open_row: vec![u64::MAX; banks],
            write_free: Time::ZERO,
            stats: DramStats::default(),
            jitter: None,
            addr_map,
            service_cap_secs,
            write_cap_secs,
        }
    }

    /// Enables (`amplitude > 0`) or disables deterministic read-latency
    /// jitter. This perturbs the *ground truth* the predictors must track,
    /// not just what they observe.
    pub fn set_jitter(&mut self, amplitude: f64, seed: u64) {
        self.jitter = (amplitude > 0.0).then(|| LatencyJitter {
            amplitude: amplitude.clamp(0.0, 1.0),
            rng: SplitMix64::new(seed ^ DRAM_SALT),
        });
    }

    #[inline]
    fn bank_and_row(&self, line_addr: u64) -> (usize, u64) {
        match self.addr_map {
            AddrMap::Pow2 {
                bank_mask,
                row_shift,
                row_mask,
            } => (
                (line_addr & bank_mask) as usize,
                (line_addr >> row_shift) & row_mask,
            ),
            AddrMap::Div => {
                let banks = u64::from(self.config.banks);
                let bank = (line_addr % banks) as usize;
                // 64 lines (4 KB) per row page.
                let row = (line_addr / banks / 64) % u64::from(self.config.rows_per_bank);
                (bank, row)
            }
        }
    }

    /// Services a read (line fill) for the line containing `line_addr`
    /// issued at `now`; returns the request's total latency, including any
    /// time queued behind earlier requests to the same bank and a bounded
    /// penalty for in-progress write drains (controllers prioritise reads,
    /// so a read waits for at most the write burst currently on the bus,
    /// not the whole write backlog).
    pub fn read(&mut self, now: Time, line_addr: u64) -> TimeDelta {
        let (bank, row) = self.bank_and_row(line_addr);
        let write_penalty = if self.write_free > now {
            // Proportional to write-path pressure, capped at one write
            // burst's worth of bus occupancy.
            let backlog = self.write_free.since(now).as_secs();
            TimeDelta::from_secs(backlog.min(self.write_cap_secs))
        } else {
            TimeDelta::ZERO
        };
        // Bank queueing, bounded at a few service times: the simulator
        // times whole chunks in one batch, so `bank_free` may hold
        // reservations from a concurrent chunk's *future* requests that a
        // real out-of-order controller would interleave around. The cap
        // keeps genuine contention (a couple of queued services) while
        // clipping the batch artifact.
        let queue = if self.bank_free[bank] > now {
            TimeDelta::from_secs(
                self.bank_free[bank]
                    .since(now)
                    .as_secs()
                    .min(self.service_cap_secs),
            )
        } else {
            TimeDelta::ZERO
        };
        let start = now + queue + write_penalty;
        self.stats.total_queue_delay += start.since(now);
        let row_hit = self.open_row[bank] == row;
        let access = if row_hit {
            self.config.cas
        } else {
            self.config.cas + self.config.row_miss_penalty
        };
        let done = start + access + self.config.line_transfer;
        self.bank_free[bank] = done;
        self.open_row[bank] = row;

        let mut latency = self.config.controller_overhead + done.since(now);
        if let Some(j) = &mut self.jitter {
            latency = (latency * (1.0 + j.amplitude * j.rng.next_signed())).clamp_non_negative();
        }
        self.stats.reads += 1;
        if row_hit {
            self.stats.read_row_hits += 1;
        }
        self.stats.total_read_latency += latency;
        latency
    }

    /// Credits statistics for reads that were *extrapolated* rather than
    /// individually serviced (see `MachineConfig::dram_round_sample_cap`):
    /// a memory chunk that samples only a prefix of its miss rounds reports
    /// the unsimulated remainder here so aggregate read counts, row-hit
    /// rates, and mean latencies still describe the whole run.
    pub fn credit_extrapolated_reads(
        &mut self,
        reads: u64,
        row_hits: u64,
        total_latency: TimeDelta,
        queue_delay: TimeDelta,
    ) {
        self.stats.reads += reads;
        self.stats.read_row_hits += row_hits;
        self.stats.total_read_latency += total_latency;
        self.stats.total_queue_delay += queue_delay;
    }

    /// Reserves write-drain bandwidth for `lines` line writes starting at
    /// `now`; returns the time the last line has drained. Write drains
    /// occupy the shared write path and delay subsequent reads, but do not
    /// block the issuing core (the store queue does that).
    pub fn drain_writes(&mut self, now: Time, lines: u64) -> Time {
        let start = now.max(self.write_free);
        let done = start + self.config.write_line_service * lines as f64;
        self.write_free = done;
        self.stats.writes += lines;
        done
    }

    /// The earliest time a new write drain could begin.
    #[must_use]
    pub fn write_path_free_at(&self) -> Time {
        self.write_free
    }

    /// Statistics so far.
    #[must_use]
    pub fn stats(&self) -> DramStats {
        self.stats
    }

    /// Mean read latency so far.
    #[must_use]
    pub fn mean_read_latency(&self) -> TimeDelta {
        if self.stats.reads == 0 {
            TimeDelta::ZERO
        } else {
            self.stats.total_read_latency / self.stats.reads as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dram() -> Dram {
        Dram::new(crate::MachineConfig::haswell_quad().dram)
    }

    #[test]
    fn row_hit_is_faster_than_row_miss() {
        let mut d = dram();
        let cold = d.read(Time::ZERO, 0);
        // Same line again, bank now free in the future; issue after it frees.
        let t1 = Time::from_secs(1.0);
        let warm = d.read(t1, 0);
        assert!(
            warm < cold,
            "row hit {warm} should beat row miss {cold}"
        );
    }

    #[test]
    fn same_bank_requests_queue() {
        let mut d = dram();
        let banks = u64::from(crate::MachineConfig::haswell_quad().dram.banks);
        let first = d.read(Time::ZERO, 0);
        // Immediately issue to the same bank (line_addr multiple of banks).
        let second = d.read(Time::ZERO, banks * 64);
        assert!(
            second > first,
            "queued request {second} must see more latency than {first}"
        );
    }

    #[test]
    fn different_banks_do_not_queue() {
        let mut d = dram();
        let a = d.read(Time::ZERO, 0); // bank 0
        let b = d.read(Time::ZERO, 1); // bank 1
        // Both are cold row misses with no queueing: equal latency.
        assert!((a.as_nanos() - b.as_nanos()).abs() < 1e-9);
    }

    #[test]
    fn writes_delay_reads() {
        let mut d = dram();
        let quiet = d.read(Time::ZERO, 2);
        let mut d2 = dram();
        d2.drain_writes(Time::ZERO, 100);
        let busy = d2.read(Time::ZERO, 2);
        assert!(
            busy > quiet,
            "read behind write drain ({busy}) must exceed quiet read ({quiet})"
        );
    }

    #[test]
    fn write_drain_accumulates_bandwidth() {
        let mut d = dram();
        let done1 = d.drain_writes(Time::ZERO, 10);
        let done2 = d.drain_writes(Time::ZERO, 10);
        assert!(done2 > done1);
        let per_line = crate::MachineConfig::haswell_quad()
            .dram
            .write_line_service;
        assert!((done2.since(Time::ZERO).as_secs() - 20.0 * per_line.as_secs()).abs() < 1e-12);
    }

    #[test]
    fn jitter_perturbs_latency_deterministically() {
        let quiet = dram().read(Time::ZERO, 0);
        let mut a = dram();
        a.set_jitter(0.5, 11);
        let mut b = dram();
        b.set_jitter(0.5, 11);
        let la = a.read(Time::ZERO, 0);
        let lb = b.read(Time::ZERO, 0);
        assert_eq!(la, lb, "same seed must give the same perturbation");
        assert_ne!(la, quiet, "amplitude 0.5 must move the latency");
        assert!(!la.is_negative());
        // Disabling restores the nominal path.
        let mut c = dram();
        c.set_jitter(0.5, 11);
        c.set_jitter(0.0, 11);
        assert_eq!(c.read(Time::ZERO, 0), quiet);
    }

    #[test]
    fn stats_track_requests() {
        let mut d = dram();
        d.read(Time::ZERO, 0);
        d.read(Time::from_secs(1.0), 0);
        d.drain_writes(Time::ZERO, 5);
        let s = d.stats();
        assert_eq!(s.reads, 2);
        assert_eq!(s.writes, 5);
        assert_eq!(s.read_row_hits, 1);
        assert!(d.mean_read_latency() > TimeDelta::ZERO);
    }
}
