//! A set-associative cache with true-LRU replacement.
//!
//! The caches track tags only (this is a timing simulator, not a functional
//! one). Associativity is small (4–16), so each set is a recency-ordered
//! `Vec` scanned linearly — faster than pointer-chasing structures at these
//! sizes and trivially correct.

use crate::config::CacheConfig;

/// A set-associative, true-LRU, write-allocate cache.
#[derive(Debug, Clone)]
pub struct Cache {
    sets: Vec<Vec<u64>>,
    associativity: usize,
    line_shift: u32,
    set_mask: u64,
    accesses: u64,
    /// Counted independently in the hit branch (not derived as
    /// `accesses - misses`) so `hits + misses == accesses` is a real
    /// cross-check for the invariant monitor.
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Builds a cache from its configuration.
    ///
    /// # Panics
    /// Panics if the line size or set count is not a power of two.
    #[must_use]
    pub fn new(config: &CacheConfig) -> Self {
        let sets = config.sets();
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        assert!(
            config.line_size.is_power_of_two(),
            "line size must be a power of two"
        );
        Cache {
            sets: vec![Vec::with_capacity(config.associativity as usize); sets as usize],
            associativity: config.associativity as usize,
            line_shift: config.line_size.trailing_zeros(),
            set_mask: sets - 1,
            accesses: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Looks up `addr`; on a miss, allocates the line (evicting LRU).
    /// Returns `true` on a hit.
    pub fn access(&mut self, addr: u64) -> bool {
        self.accesses += 1;
        let line = addr >> self.line_shift;
        let set_idx = (line & self.set_mask) as usize;
        let tag = line >> self.set_mask.count_ones();
        let set = &mut self.sets[set_idx];
        if let Some(pos) = set.iter().position(|&t| t == tag) {
            // Move to MRU position (front).
            let t = set.remove(pos);
            set.insert(0, t);
            self.hits += 1;
            true
        } else {
            self.misses += 1;
            if set.len() == self.associativity {
                set.pop();
            }
            set.insert(0, tag);
            false
        }
    }

    /// Checks residency without updating recency or allocating.
    #[must_use]
    pub fn probe(&self, addr: u64) -> bool {
        let line = addr >> self.line_shift;
        let set_idx = (line & self.set_mask) as usize;
        let tag = line >> self.set_mask.count_ones();
        self.sets[set_idx].contains(&tag)
    }

    /// Total accesses since construction.
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Total hits since construction (counted independently of misses).
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Total misses since construction.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of lines currently resident.
    #[must_use]
    pub fn resident_lines(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// Maximum lines the cache can hold.
    #[must_use]
    pub fn capacity_lines(&self) -> usize {
        self.sets.len() * self.associativity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CacheConfig;

    fn tiny() -> Cache {
        // 4 sets x 2 ways x 64 B lines = 512 B.
        Cache::new(&CacheConfig {
            capacity: 512,
            associativity: 2,
            line_size: 64,
            latency_cycles: 1,
        })
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        assert!(!c.access(0x1000));
        assert!(c.access(0x1000));
        assert!(c.access(0x1001)); // same line
        assert_eq!(c.misses(), 1);
        assert_eq!(c.hits(), 2);
        assert_eq!(c.accesses(), 3);
    }

    #[test]
    fn hits_plus_misses_account_for_every_access() {
        let mut c = tiny();
        for i in 0..500u64 {
            c.access((i % 37) * 64);
        }
        assert_eq!(c.hits() + c.misses(), c.accesses());
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Three lines mapping to the same set (stride = sets * line = 256).
        let (a, b, d) = (0x0, 0x100, 0x200);
        c.access(a);
        c.access(b);
        c.access(a); // a is MRU, b is LRU
        c.access(d); // evicts b
        assert!(c.probe(a));
        assert!(!c.probe(b));
        assert!(c.probe(d));
    }

    #[test]
    fn probe_does_not_allocate() {
        let mut c = tiny();
        assert!(!c.probe(0x40));
        assert!(!c.access(0x40));
        assert!(c.probe(0x40));
    }

    #[test]
    fn residency_bounded_by_capacity() {
        let mut c = tiny();
        for i in 0..1000 {
            c.access(i * 64);
        }
        assert!(c.resident_lines() <= c.capacity_lines());
        assert_eq!(c.capacity_lines(), 8);
    }

    #[test]
    fn distinct_sets_do_not_interfere() {
        let mut c = tiny();
        c.access(0x00); // set 0
        c.access(0x40); // set 1
        c.access(0x80); // set 2
        c.access(0xC0); // set 3
        assert!(c.probe(0x00));
        assert!(c.probe(0x40));
        assert!(c.probe(0x80));
        assert!(c.probe(0xC0));
    }
}
