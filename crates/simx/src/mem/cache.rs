//! A set-associative cache with true-LRU replacement.
//!
//! The caches track tags only (this is a timing simulator, not a functional
//! one). Associativity is small (4–16), so each set is a recency-ordered
//! run scanned linearly — faster than pointer-chasing structures at these
//! sizes and trivially correct. Sets live in one flat preallocated tag
//! array (`ways` slots per set) rather than a `Vec` per set: `access` is
//! called for every sampled address of every chunk, and the flat layout
//! spares the per-set pointer chase and keeps neighbouring sets on the
//! same cache line of the *host* machine.

use crate::config::CacheConfig;

/// A set-associative, true-LRU, write-allocate cache.
#[derive(Debug, Clone)]
pub struct Cache {
    /// Flat tag store: `associativity` slots per set, slots `0..lens[set]`
    /// valid and recency-ordered (MRU first).
    tags: Vec<u64>,
    /// Number of resident lines per set.
    lens: Vec<u8>,
    associativity: usize,
    line_shift: u32,
    set_mask: u64,
    /// Bits consumed by the set index (precomputed `set_mask.count_ones()`).
    index_bits: u32,
    accesses: u64,
    /// Counted independently in the hit branch (not derived as
    /// `accesses - misses`) so `hits + misses == accesses` is a real
    /// cross-check for the invariant monitor.
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Builds a cache from its configuration.
    ///
    /// # Panics
    /// Panics if the line size or set count is not a power of two.
    #[must_use]
    pub fn new(config: &CacheConfig) -> Self {
        let sets = config.sets();
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        assert!(
            config.line_size.is_power_of_two(),
            "line size must be a power of two"
        );
        let ways = config.associativity as usize;
        assert!(ways <= u8::MAX as usize, "associativity must fit in u8");
        Cache {
            tags: vec![0; sets as usize * ways],
            lens: vec![0; sets as usize],
            associativity: ways,
            line_shift: config.line_size.trailing_zeros(),
            set_mask: sets - 1,
            index_bits: (sets - 1).count_ones(),
            accesses: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Looks up `addr`; on a miss, allocates the line (evicting LRU).
    /// Returns `true` on a hit.
    pub fn access(&mut self, addr: u64) -> bool {
        self.accesses += 1;
        let line = addr >> self.line_shift;
        let set_idx = (line & self.set_mask) as usize;
        let tag = line >> self.index_bits;
        let base = set_idx * self.associativity;
        let len = usize::from(self.lens[set_idx]);
        let set = &mut self.tags[base..base + len];
        // Fast path: repeated accesses to the hottest line hit at the MRU
        // slot and need no reordering.
        if len > 0 && set[0] == tag {
            self.hits += 1;
            return true;
        }
        if let Some(pos) = set.iter().position(|&t| t == tag) {
            // Move to MRU position (front), sliding the more recent
            // entries down one slot.
            set.copy_within(0..pos, 1);
            set[0] = tag;
            self.hits += 1;
            true
        } else {
            self.misses += 1;
            // On a full set the LRU (last) entry falls off the end of the
            // shifted window; otherwise the set grows by one.
            let keep = if len == self.associativity {
                len - 1
            } else {
                self.lens[set_idx] = (len + 1) as u8;
                len
            };
            let set = &mut self.tags[base..=base + keep];
            set.copy_within(0..keep, 1);
            set[0] = tag;
            false
        }
    }

    /// Checks residency without updating recency or allocating.
    #[must_use]
    pub fn probe(&self, addr: u64) -> bool {
        let line = addr >> self.line_shift;
        let set_idx = (line & self.set_mask) as usize;
        let tag = line >> self.index_bits;
        let base = set_idx * self.associativity;
        let len = usize::from(self.lens[set_idx]);
        self.tags[base..base + len].contains(&tag)
    }

    /// Total accesses since construction.
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Total hits since construction (counted independently of misses).
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Total misses since construction.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of lines currently resident.
    #[must_use]
    pub fn resident_lines(&self) -> usize {
        self.lens.iter().map(|&l| usize::from(l)).sum()
    }

    /// Maximum lines the cache can hold.
    #[must_use]
    pub fn capacity_lines(&self) -> usize {
        self.lens.len() * self.associativity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CacheConfig;

    fn tiny() -> Cache {
        // 4 sets x 2 ways x 64 B lines = 512 B.
        Cache::new(&CacheConfig {
            capacity: 512,
            associativity: 2,
            line_size: 64,
            latency_cycles: 1,
        })
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        assert!(!c.access(0x1000));
        assert!(c.access(0x1000));
        assert!(c.access(0x1001)); // same line
        assert_eq!(c.misses(), 1);
        assert_eq!(c.hits(), 2);
        assert_eq!(c.accesses(), 3);
    }

    #[test]
    fn hits_plus_misses_account_for_every_access() {
        let mut c = tiny();
        for i in 0..500u64 {
            c.access((i % 37) * 64);
        }
        assert_eq!(c.hits() + c.misses(), c.accesses());
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Three lines mapping to the same set (stride = sets * line = 256).
        let (a, b, d) = (0x0, 0x100, 0x200);
        c.access(a);
        c.access(b);
        c.access(a); // a is MRU, b is LRU
        c.access(d); // evicts b
        assert!(c.probe(a));
        assert!(!c.probe(b));
        assert!(c.probe(d));
    }

    #[test]
    fn probe_does_not_allocate() {
        let mut c = tiny();
        assert!(!c.probe(0x40));
        assert!(!c.access(0x40));
        assert!(c.probe(0x40));
    }

    #[test]
    fn residency_bounded_by_capacity() {
        let mut c = tiny();
        for i in 0..1000 {
            c.access(i * 64);
        }
        assert!(c.resident_lines() <= c.capacity_lines());
        assert_eq!(c.capacity_lines(), 8);
    }

    #[test]
    fn distinct_sets_do_not_interfere() {
        let mut c = tiny();
        c.access(0x00); // set 0
        c.access(0x40); // set 1
        c.access(0x80); // set 2
        c.access(0xC0); // set 3
        assert!(c.probe(0x00));
        assert!(c.probe(0x40));
        assert!(c.probe(0x80));
        assert!(c.probe(0xC0));
    }

    #[test]
    fn full_set_eviction_keeps_mru_order() {
        let mut c = tiny();
        // Fill set 0 (stride 256), then keep inserting: each new line must
        // evict exactly the least-recently-used one.
        c.access(0x000);
        c.access(0x100); // set full: [0x100, 0x000]
        c.access(0x200); // evicts 0x000: [0x200, 0x100]
        assert!(!c.probe(0x000));
        assert!(c.probe(0x100));
        c.access(0x100); // MRU refresh: [0x100, 0x200]
        c.access(0x300); // evicts 0x200
        assert!(c.probe(0x100));
        assert!(!c.probe(0x200));
        assert_eq!(c.resident_lines(), 4 - 2); // only set 0 holds 2 lines
    }
}
