//! Synthetic memory-access patterns and deterministic address streams.
//!
//! Work items describe their memory behaviour with an [`AccessPattern`];
//! the hierarchy samples addresses from the pattern to estimate hit rates.
//! Streams are seeded so the same work item generates the same addresses
//! regardless of when (or at what frequency) it executes.

use serde::{Deserialize, Serialize};

/// How a memory work item touches its data.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AccessPattern {
    /// Sequential lines from `base` (streaming scans, GC copy reads).
    Streaming {
        /// First byte address.
        base: u64,
    },
    /// Constant-stride accesses within a working set (array walks with a
    /// fixed element size).
    Strided {
        /// First byte address.
        base: u64,
        /// Stride in bytes.
        stride: u64,
        /// Working-set size in bytes (wraps around).
        working_set: u64,
    },
    /// Uniformly random accesses within a working set (hash tables, object
    /// graphs with poor locality).
    Random {
        /// Region base address.
        base: u64,
        /// Region size in bytes.
        working_set: u64,
    },
}

/// A deterministic stream of byte addresses drawn from a pattern.
///
/// Address generation runs once per *sampled* access, which adds up to
/// tens of millions of calls per point, so the per-call arithmetic avoids
/// hardware division: the strided offset is carried incrementally (one
/// conditional subtract replaces the modulo) and the random pattern maps
/// the PRNG output into the working set by multiplicative range reduction
/// (a high-half multiply) instead of a remainder. Both are exact,
/// deterministic functions of (pattern, seed, index).
#[derive(Debug, Clone)]
pub struct AddressStream {
    pattern: AccessPattern,
    state: u64,
    index: u64,
    /// Strided patterns: `(index * stride) mod ws`, carried across calls.
    stride_pos: u64,
}

impl AddressStream {
    /// Creates a stream; `seed` pins the random sequence.
    #[must_use]
    pub fn new(pattern: AccessPattern, seed: u64) -> Self {
        AddressStream {
            pattern,
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
            index: 0,
            stride_pos: 0,
        }
    }

    /// The next byte address.
    pub fn next_addr(&mut self) -> u64 {
        let i = self.index;
        self.index += 1;
        match self.pattern {
            AccessPattern::Streaming { base } => base + i * 64,
            AccessPattern::Strided {
                base,
                stride,
                working_set,
            } => {
                let ws = working_set.max(stride.max(1));
                let addr = base + self.stride_pos;
                // stride <= ws by construction, so one conditional
                // subtract keeps the carried position in [0, ws).
                self.stride_pos += stride;
                if self.stride_pos >= ws {
                    self.stride_pos -= ws;
                }
                addr
            }
            AccessPattern::Random { base, working_set } => {
                let r = splitmix64(&mut self.state);
                // Multiplicative range reduction: maps uniform u64 `r` to
                // uniform [0, ws) with a high-half multiply.
                let ws = working_set.max(1);
                base + ((u128::from(r) * u128::from(ws)) >> 64) as u64
            }
        }
    }
}

/// SplitMix64: tiny, fast, stable PRNG for address generation.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streaming_walks_lines() {
        let mut s = AddressStream::new(AccessPattern::Streaming { base: 4096 }, 1);
        assert_eq!(s.next_addr(), 4096);
        assert_eq!(s.next_addr(), 4096 + 64);
        assert_eq!(s.next_addr(), 4096 + 128);
    }

    #[test]
    fn strided_wraps_at_working_set() {
        let p = AccessPattern::Strided {
            base: 0,
            stride: 128,
            working_set: 256,
        };
        let mut s = AddressStream::new(p, 1);
        assert_eq!(s.next_addr(), 0);
        assert_eq!(s.next_addr(), 128);
        assert_eq!(s.next_addr(), 0);
    }

    #[test]
    fn random_is_deterministic_per_seed_and_in_range() {
        let p = AccessPattern::Random {
            base: 1 << 20,
            working_set: 4096,
        };
        let a: Vec<u64> = {
            let mut s = AddressStream::new(p, 42);
            (0..100).map(|_| s.next_addr()).collect()
        };
        let b: Vec<u64> = {
            let mut s = AddressStream::new(p, 42);
            (0..100).map(|_| s.next_addr()).collect()
        };
        assert_eq!(a, b);
        assert!(a.iter().all(|&x| (1 << 20..(1 << 20) + 4096).contains(&x)));
        let mut s2 = AddressStream::new(p, 43);
        let c: Vec<u64> = (0..100).map(|_| s2.next_addr()).collect();
        assert_ne!(a, c, "different seeds must give different streams");
    }
}
