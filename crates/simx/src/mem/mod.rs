//! The memory subsystem: private L1/L2 caches, a shared fixed-frequency
//! L3, and banked DRAM with variable service latency.

mod cache;
mod dram;
mod hierarchy;
mod pattern;

pub use cache::Cache;
pub use dram::{Dram, DramStats};
pub use hierarchy::{AccessClass, AccessOutcome, MemoryHierarchy, SampledMix};
pub use pattern::{AccessPattern, AddressStream};
