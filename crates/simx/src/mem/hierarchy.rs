//! The cache hierarchy: private L1D/L2 per core, shared L3.
//!
//! Work items do not simulate every access individually; instead the
//! hierarchy samples **one access in K** (`MachineConfig::sample_ratio`)
//! and classifies it against caches whose capacity is scaled down by the
//! same factor K, with addresses compressed by K so spatial structure is
//! preserved. Scaling both the access stream and the capacities keeps
//! footprint-to-capacity ratios — and therefore hit rates — faithful,
//! while paying per-access cost for only a bounded sample. The cache
//! structures themselves are real (sets, associativity, LRU, a shared L3),
//! so cross-thread L3 interference emerges naturally.

use dvfs_trace::CoreId;

use super::{AccessPattern, AddressStream, Cache};
use crate::config::MachineConfig;

/// Which level serviced an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessClass {
    /// L1 data cache hit.
    L1,
    /// L2 hit.
    L2,
    /// Shared L3 hit (fixed uncore clock — non-scaling!).
    L3,
    /// DRAM access.
    Dram,
}

/// Outcome of classifying one sampled access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// The servicing level.
    pub class: AccessClass,
    /// The line address (byte address >> 6), for DRAM bank mapping.
    pub line_addr: u64,
}

/// Fractions of accesses serviced per level. Sums to 1 (within fp noise)
/// whenever at least one access was sampled.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SampledMix {
    /// Fraction hitting L1.
    pub l1: f64,
    /// Fraction hitting L2.
    pub l2: f64,
    /// Fraction hitting the shared L3.
    pub l3: f64,
    /// Fraction going to DRAM.
    pub dram: f64,
    /// Representative DRAM line addresses observed in the sample (used by
    /// the DRAM model for bank/row assignment).
    pub dram_lines: SampleLines,
}

/// A small fixed buffer of sampled DRAM line addresses.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SampleLines {
    lines: [u64; 8],
    len: u8,
}

impl SampleLines {
    /// Records a line address if space remains.
    pub fn push(&mut self, line: u64) {
        if (self.len as usize) < self.lines.len() {
            self.lines[self.len as usize] = line;
            self.len += 1;
        }
    }

    /// The `i`-th representative line, cycling if fewer were sampled.
    #[must_use]
    pub fn get_cyclic(&self, i: u64) -> u64 {
        if self.len == 0 {
            // No DRAM access sampled: derive a line from the index.
            i
        } else {
            self.lines[(i % u64::from(self.len)) as usize]
        }
    }

    /// The `i`-th recorded line without cycling. Hot callers that already
    /// track a wrapped cursor use this to skip `get_cyclic`'s modulo.
    ///
    /// # Panics
    /// Panics if `i >= self.len()`.
    #[must_use]
    #[inline]
    pub fn get(&self, i: usize) -> u64 {
        assert!(i < self.len as usize, "SampleLines index out of range");
        self.lines[i]
    }

    /// Number of recorded lines.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True if no lines were recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// Private L1/L2 per core plus the shared L3, in sampled form.
#[derive(Debug)]
pub struct MemoryHierarchy {
    l1d: Vec<Cache>,
    l2: Vec<Cache>,
    l3: Cache,
    sample_cap: u32,
    sample_ratio: u64,
}

/// Scales a cache's capacity down by the sampling ratio, keeping at least
/// one set.
fn scaled(config: &crate::config::CacheConfig, k: u64) -> crate::config::CacheConfig {
    let min_capacity = u64::from(config.line_size) * u64::from(config.associativity);
    crate::config::CacheConfig {
        capacity: (config.capacity / k).max(min_capacity),
        ..*config
    }
}

impl MemoryHierarchy {
    /// Builds the hierarchy for `config.cores` cores.
    #[must_use]
    pub fn new(config: &MachineConfig) -> Self {
        let k = u64::from(config.sample_ratio.max(1));
        MemoryHierarchy {
            l1d: (0..config.cores)
                .map(|_| Cache::new(&scaled(&config.l1d, k)))
                .collect(),
            l2: (0..config.cores)
                .map(|_| Cache::new(&scaled(&config.l2, k)))
                .collect(),
            l3: Cache::new(&scaled(&config.l3, k)),
            sample_cap: config.cache_sample_cap,
            sample_ratio: k,
        }
    }

    /// Classifies one access from `core`, updating all levels touched.
    pub fn access(&mut self, core: CoreId, addr: u64) -> AccessOutcome {
        let line_addr = addr >> 6;
        let c = core.index();
        if self.l1d[c].access(addr) {
            return AccessOutcome {
                class: AccessClass::L1,
                line_addr,
            };
        }
        if self.l2[c].access(addr) {
            return AccessOutcome {
                class: AccessClass::L2,
                line_addr,
            };
        }
        if self.l3.access(addr) {
            return AccessOutcome {
                class: AccessClass::L3,
                line_addr,
            };
        }
        AccessOutcome {
            class: AccessClass::Dram,
            line_addr,
        }
    }

    /// Samples one access in `sample_ratio` of the `accesses`-long stream
    /// described by `pattern` and returns the per-level service mix.
    /// Sampled addresses are compressed by the same ratio before probing
    /// the capacity-scaled caches, preserving footprint/capacity ratios.
    pub fn sample_mix(
        &mut self,
        core: CoreId,
        pattern: AccessPattern,
        seed: u64,
        accesses: u64,
    ) -> SampledMix {
        if accesses == 0 {
            return SampledMix::default();
        }
        let k = self.sample_ratio;
        let n = accesses
            .div_ceil(k)
            .clamp(1, u64::from(self.sample_cap));
        // Sample every k-th access of the stream so the sample spans the
        // same footprint as the full stream. The default ratio is a power
        // of two, so address compression is a shift on that path.
        let k_shift = if k.is_power_of_two() {
            Some(k.trailing_zeros())
        } else {
            None
        };
        let mut stream = AddressStream::new(scaled_pattern(pattern, k), seed);
        let mut mix = SampledMix::default();
        // Hoisted borrows + integer tallies: this loop runs for every
        // sampled access of every chunk, so the per-level walk is inlined
        // here (same levels, same order, same state updates as `access`)
        // instead of paying two indexed lookups and an enum round-trip per
        // sample.
        let c = core.index();
        let l1 = &mut self.l1d[c];
        let l2 = &mut self.l2[c];
        let l3 = &mut self.l3;
        let (mut n_l1, mut n_l2, mut n_l3, mut n_dram) = (0u64, 0u64, 0u64, 0u64);
        for _ in 0..n {
            let raw = stream.next_addr();
            let addr = match k_shift {
                Some(s) => raw >> s,
                None => raw / k,
            };
            if l1.access(addr) {
                n_l1 += 1;
            } else if l2.access(addr) {
                n_l2 += 1;
            } else if l3.access(addr) {
                n_l3 += 1;
            } else {
                n_dram += 1;
                mix.dram_lines.push(addr >> 6);
            }
        }
        let total = n as f64;
        mix.l1 = n_l1 as f64 / total;
        mix.l2 = n_l2 as f64 / total;
        mix.l3 = n_l3 as f64 / total;
        mix.dram = n_dram as f64 / total;
        mix
    }

    /// L3 miss count so far (reads that reached DRAM).
    #[must_use]
    pub fn l3_misses(&self) -> u64 {
        self.l3.misses()
    }

    /// Walks every cache and returns a description of each accounting
    /// inconsistency: hit + miss counters that do not sum to the access
    /// count, or residency exceeding capacity. Empty on a healthy
    /// hierarchy. (The hierarchy is non-inclusive by design, so no
    /// inclusion property is checked.) Used by the invariant monitor's
    /// `full` tier.
    #[must_use]
    pub fn sanity_issues(&self) -> Vec<String> {
        let mut issues = Vec::new();
        let labelled = self
            .l1d
            .iter()
            .enumerate()
            .map(|(c, cache)| (format!("l1d[{c}]"), cache))
            .chain(
                self.l2
                    .iter()
                    .enumerate()
                    .map(|(c, cache)| (format!("l2[{c}]"), cache)),
            )
            .chain(std::iter::once(("l3".to_owned(), &self.l3)));
        for (label, cache) in labelled {
            if cache.hits() + cache.misses() != cache.accesses() {
                issues.push(format!(
                    "{label}: hits {} + misses {} != accesses {}",
                    cache.hits(),
                    cache.misses(),
                    cache.accesses()
                ));
            }
            if cache.resident_lines() > cache.capacity_lines() {
                issues.push(format!(
                    "{label}: {} resident lines exceed capacity {}",
                    cache.resident_lines(),
                    cache.capacity_lines()
                ));
            }
        }
        issues
    }
}

/// When only every k-th access is sampled, widen sequential patterns so the
/// sample covers the same address footprint as the full stream (random
/// patterns are self-similar and need no adjustment).
fn scaled_pattern(pattern: AccessPattern, k: u64) -> AccessPattern {
    match pattern {
        AccessPattern::Streaming { base } => AccessPattern::Strided {
            base,
            stride: 64 * k,
            working_set: u64::MAX,
        },
        AccessPattern::Strided {
            base,
            stride,
            working_set,
        } => AccessPattern::Strided {
            base,
            stride: stride.saturating_mul(k),
            working_set,
        },
        random @ AccessPattern::Random { .. } => random,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hierarchy() -> MemoryHierarchy {
        MemoryHierarchy::new(&MachineConfig::haswell_quad())
    }

    /// Warm the hierarchy with `rounds` passes, then measure one more.
    fn warmed_mix(
        h: &mut MemoryHierarchy,
        core: CoreId,
        p: AccessPattern,
        accesses: u64,
        rounds: u64,
    ) -> SampledMix {
        for r in 0..rounds {
            h.sample_mix(core, p, 100 + r, accesses);
        }
        h.sample_mix(core, p, 999, accesses)
    }

    #[test]
    fn small_working_set_hits_l1() {
        let mut h = hierarchy();
        let p = AccessPattern::Random {
            base: 0,
            working_set: 8 * 1024, // fits in 32 KB L1
        };
        let mix = warmed_mix(&mut h, CoreId(0), p, 50_000, 4);
        assert!(mix.l1 > 0.8, "expected mostly L1 hits, got {mix:?}");
    }

    #[test]
    fn huge_working_set_goes_to_dram() {
        let mut h = hierarchy();
        let p = AccessPattern::Random {
            base: 0,
            working_set: 512 * 1024 * 1024, // 512 MB >> 4 MB L3
        };
        let mix = warmed_mix(&mut h, CoreId(0), p, 100_000, 2);
        assert!(mix.dram > 0.9, "expected mostly DRAM, got {mix:?}");
        assert!(!mix.dram_lines.is_empty());
    }

    #[test]
    fn medium_working_set_hits_l3() {
        let mut h = hierarchy();
        let p = AccessPattern::Random {
            base: 0,
            working_set: 2 * 1024 * 1024, // fits in 4 MB L3, exceeds 256 KB L2
        };
        let mix = warmed_mix(&mut h, CoreId(0), p, 100_000, 8);
        assert!(
            mix.l1 + mix.l2 + mix.l3 > 0.7,
            "expected mostly on-chip hits, got {mix:?}"
        );
        assert!(mix.l3 > 0.3, "expected substantial L3 fraction, got {mix:?}");
    }

    #[test]
    fn l3_is_shared_between_cores() {
        let mut h = hierarchy();
        let p = AccessPattern::Random {
            base: 0,
            working_set: 2 * 1024 * 1024,
        };
        // Core 0 warms the (shared) L3 thoroughly.
        for r in 0..12 {
            h.sample_mix(CoreId(0), p, r, 100_000);
        }
        // Core 1 misses its private caches but hits the warmed L3.
        let mix = h.sample_mix(CoreId(1), p, 999, 100_000);
        assert!(
            mix.l3 > mix.dram,
            "core 1 should reuse core 0's L3 contents: {mix:?}"
        );
    }

    #[test]
    fn mix_fractions_sum_to_one() {
        let mut h = hierarchy();
        let p = AccessPattern::Strided {
            base: 0,
            stride: 64,
            working_set: 1 << 20,
        };
        let mix = h.sample_mix(CoreId(2), p, 7, 5_000);
        let sum = mix.l1 + mix.l2 + mix.l3 + mix.dram;
        assert!((sum - 1.0).abs() < 1e-9, "sum {sum}");
    }

    #[test]
    fn zero_accesses_yield_default_mix() {
        let mut h = hierarchy();
        let p = AccessPattern::Streaming { base: 0 };
        let mix = h.sample_mix(CoreId(0), p, 1, 0);
        assert_eq!(mix.l1 + mix.l2 + mix.l3 + mix.dram, 0.0);
    }

    #[test]
    fn warm_hierarchy_has_no_sanity_issues() {
        let mut h = hierarchy();
        let p = AccessPattern::Random {
            base: 0,
            working_set: 2 * 1024 * 1024,
        };
        for r in 0..4 {
            h.sample_mix(CoreId((r % 4) as u8), p, r, 50_000);
        }
        assert_eq!(h.sanity_issues(), Vec::<String>::new());
    }

    #[test]
    fn sample_lines_cycle() {
        let mut s = SampleLines::default();
        s.push(10);
        s.push(20);
        assert_eq!(s.len(), 2);
        assert_eq!(s.get_cyclic(0), 10);
        assert_eq!(s.get_cyclic(1), 20);
        assert_eq!(s.get_cyclic(2), 10);
        let empty = SampleLines::default();
        assert_eq!(empty.get_cyclic(5), 5);
    }
}
