//! Deterministic per-machine thermal RC model and the power-integrity
//! throttle ladder.
//!
//! The fleet simulation's machines burn watts; real machines turn those
//! watts into heat, and the heat feeds back into both power (leakage
//! grows with temperature) and control (sensors throttle the part before
//! silicon limits do). This module gives every simulated machine that
//! physics at PPT-Multicore fidelity: an analytical model cheap enough to
//! run in the round loop, not a circuit simulation.
//!
//! Design rules, inherited from [`crate::faults`] and [`crate::fleet`]:
//!
//! * **Fixed-point state.** Temperature is an `i64` in milli-°C and the
//!   per-round update is integer arithmetic (a Q16 low-pass toward the
//!   power-implied steady state), so a schedule of power draws maps to a
//!   byte-reproducible temperature trajectory on every platform, worker
//!   count, and cache temperature.
//! * **Zero draws when disabled.** A [`ThermalConfig`] with
//!   `enabled = false` (or `sensor_noise = 0`) consumes no randomness at
//!   all — the same contract as `FaultConfig`/`ChaosConfig` at zero
//!   intensity, which is what pins thermal-off fleet runs byte-identical
//!   to the pre-thermal baseline.
//! * **Two temperatures.** The *true* junction temperature drives the
//!   physics (leakage feedback, the hardware shutdown trip); the *sensor*
//!   reading — noisy, and freezable by the `thermal-sensor-stuck` chaos
//!   class — is all the software throttle ladder gets to see. A stuck
//!   sensor therefore disables software protection and lets the true
//!   temperature run to the hardware trip: exactly the failure mode the
//!   black-start path exists for.
//!
//! The [`ThrottleLadder`] is the power-integrity state machine layered on
//! the sensor: proactive throttle below the cap, emergency throttle with a
//! forced V/f floor at T_crit, thermal shutdown + staggered black-start at
//! the hardware trip, with hysteretic one-rung cooldown so a temperature
//! hovering at a threshold cannot oscillate the machine. Like
//! `energyx::DegradationLadder`, it is a pure state machine over its
//! observation sequence, and [`ThrottleLadder::monotonicity_issue`] feeds
//! the `throttle-monotonicity` invariant.

use core::fmt;

use crate::faults::SplitMix64;

/// Stream salt of the per-machine sensor-noise draws.
const SENSOR_SALT: u64 = 0x7365_6E73_6F72;

/// Post-emergency ceiling margin over the emergency entry point, in
/// milli-°C: once the forced V/f floor engages, the true temperature may
/// coast this far above `max(entry, T_crit)` while the RC settles, and no
/// further. Feeds `Invariant::ThermalCeiling`.
pub const CEILING_MARGIN_MC: i64 = 4_000;

/// Rounds after an emergency engages before the ceiling bound is
/// enforced (the RC needs a few time constants' head start to turn).
pub const CEILING_SETTLE_ROUNDS: u64 = 3;

/// Per-machine thermal parameters. All temperatures in milli-°C.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThermalConfig {
    /// Master switch: disabled models update nothing and draw nothing.
    pub enabled: bool,
    /// Seed of the per-machine sensor-noise streams.
    pub seed: u64,
    /// Inlet/ambient temperature the machine cools toward at zero power.
    pub ambient_mc: i64,
    /// Thermal resistance junction→ambient, milli-K per watt.
    pub r_mk_per_w: i64,
    /// Q16 low-pass coefficient of the per-round RC update
    /// (`65536` ≈ instant; `10486` ≈ a 6-round time constant).
    pub alpha_q16: i64,
    /// Q16 extra leakage per kelvin above ambient (temperature→power
    /// feedback; `328` ≈ +0.5%/K, a runaway ingredient at high load).
    pub leak_q16_per_k: i64,
    /// Sensor-noise intensity in `[0, 1]`; zero draws no randomness.
    pub sensor_noise: f64,
    /// Peak sensor-noise amplitude at intensity 1.0, milli-°C.
    pub noise_amp_mc: i64,
    /// Proactive-throttle threshold (the thermal cap).
    pub t_cap_mc: i64,
    /// Emergency-throttle threshold (T_crit: forced V/f floor).
    pub t_crit_mc: i64,
    /// Hardware trip (thermal shutdown; checked on the *true*
    /// temperature, so a stuck sensor cannot defeat it).
    pub t_shutdown_mc: i64,
}

impl ThermalConfig {
    /// The inert configuration: no physics, no draws. Fleet runs built on
    /// it are byte-identical to runs predating the thermal layer.
    #[must_use]
    pub fn disabled() -> Self {
        ThermalConfig {
            enabled: false,
            seed: 0,
            ambient_mc: 45_000,
            r_mk_per_w: 500,
            alpha_q16: 10_486,
            leak_q16_per_k: 328,
            sensor_noise: 0.0,
            noise_amp_mc: 1_500,
            t_cap_mc: 85_000,
            t_crit_mc: 95_000,
            t_shutdown_mc: 105_000,
        }
    }

    /// A datacenter-default enabled model: 45 °C inlet, 0.5 K/W to
    /// ambient, ~6-round time constant, +1.5%/K leakage feedback, caps at
    /// 85/95/105 °C, mild sensor noise.
    ///
    /// The leakage slope is deliberately steep: a machine parked at its
    /// ladder maximum sits *past* the runaway knee, so an unthrottled
    /// (stuck-sensor) climb escalates to the hardware trip instead of
    /// settling — the regime the power-integrity ladder exists for.
    #[must_use]
    pub fn datacenter(seed: u64) -> Self {
        ThermalConfig {
            enabled: true,
            seed,
            sensor_noise: 0.25,
            leak_q16_per_k: 983,
            ..Self::disabled()
        }
    }
}

/// The per-machine thermal RC state: true junction temperature, the last
/// sensor reading (held while the sensor is stuck), and the sensor-noise
/// stream.
#[derive(Debug, Clone)]
pub struct ThermalModel {
    config: ThermalConfig,
    t_mc: i64,
    sensor_mc: i64,
    rng: SplitMix64,
}

impl ThermalModel {
    /// A machine's model, starting at ambient. The noise stream is salted
    /// per machine so one machine's draws never shift another's.
    #[must_use]
    pub fn new(config: ThermalConfig, machine: usize) -> Self {
        let msalt = (machine as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        ThermalModel {
            t_mc: config.ambient_mc,
            sensor_mc: config.ambient_mc,
            rng: SplitMix64::new(config.seed ^ SENSOR_SALT ^ msalt),
            config,
        }
    }

    /// The true junction temperature, milli-°C.
    #[must_use]
    pub fn true_mc(&self) -> i64 {
        self.t_mc
    }

    /// The configuration the model runs under.
    #[must_use]
    pub fn config(&self) -> &ThermalConfig {
        &self.config
    }

    /// Advances one round at `p_mw` milliwatts of electrical power and
    /// returns the *effective* power including temperature-dependent
    /// leakage (what the machine actually drew from the feed). Disabled
    /// models return `p_mw` unchanged and keep temperature at ambient.
    pub fn update(&mut self, p_mw: i64) -> i64 {
        if !self.config.enabled {
            return p_mw;
        }
        let over_mk = (self.t_mc - self.config.ambient_mc).max(0);
        // Leakage multiplier in Q16: 1 + leak_per_k * kelvin_over_ambient.
        let leak_q16 = 65_536 + self.config.leak_q16_per_k * over_mk / 1_000;
        let eff_mw = (p_mw * leak_q16) >> 16;
        // Steady state the RC relaxes toward at this power.
        let target_mc = self.config.ambient_mc + self.config.r_mk_per_w * eff_mw / 1_000;
        self.t_mc += ((target_mc - self.t_mc) * self.config.alpha_q16) >> 16;
        eff_mw
    }

    /// Reads the thermal sensor. A `stuck` sensor returns its previous
    /// reading without drawing (the `thermal-sensor-stuck` chaos class);
    /// otherwise the true temperature plus seeded noise. At
    /// `sensor_noise = 0` no randomness is consumed.
    pub fn read_sensor(&mut self, stuck: bool) -> i64 {
        if !self.config.enabled || stuck {
            return self.sensor_mc;
        }
        let mut reading = self.t_mc;
        if self.config.sensor_noise > 0.0 {
            let amp = self.config.noise_amp_mc as f64 * self.config.sensor_noise;
            reading += (amp * self.rng.next_signed()) as i64;
        }
        self.sensor_mc = reading;
        reading
    }

    /// The last sensor reading, milli-°C — what the machine's telemetry
    /// reports upstream between harvests.
    #[must_use]
    pub fn last_sensor_mc(&self) -> i64 {
        self.sensor_mc
    }

    /// The leakage multiplier the reported temperature implies: a
    /// thermal-aware governor must derate its raw (electrical) power
    /// plans by this factor, or its "within budget" allocations draw
    /// `leak × planned` watts from the feed and trip the overshoot
    /// breaker on machines that obeyed every order. Disabled models
    /// report `1.0`.
    #[must_use]
    pub fn leak_factor(&self) -> f64 {
        if !self.config.enabled {
            return 1.0;
        }
        let over_mk = (self.sensor_mc - self.config.ambient_mc).max(0) as f64;
        1.0 + self.config.leak_q16_per_k as f64 * over_mk / 1_000.0 / 65_536.0
    }
}

/// The power-integrity ladder's stages, from healthy to off.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ThrottleStage {
    /// No thermal constraint on frequency selection.
    #[default]
    Normal,
    /// Sensor at or above the cap: frequency capped below the governor's
    /// choice to bend the trajectory before T_crit.
    Proactive,
    /// Sensor at or above T_crit: forced V/f floor, whatever any governor
    /// wants.
    Emergency,
    /// True temperature hit the hardware trip: the machine is off and
    /// will black-start after its (staggered) hold.
    Shutdown,
}

impl ThrottleStage {
    /// Severity height: higher is more throttled.
    #[must_use]
    pub fn severity(self) -> u8 {
        match self {
            ThrottleStage::Normal => 0,
            ThrottleStage::Proactive => 1,
            ThrottleStage::Emergency => 2,
            ThrottleStage::Shutdown => 3,
        }
    }

    /// Stable kebab-case name used in reports and transition logs.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ThrottleStage::Normal => "normal",
            ThrottleStage::Proactive => "proactive",
            ThrottleStage::Emergency => "emergency",
            ThrottleStage::Shutdown => "shutdown",
        }
    }
}

impl fmt::Display for ThrottleStage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Hysteresis and hold parameters of the throttle ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThrottleConfig {
    /// De-escalation margin below a stage's threshold, milli-°C.
    pub hysteresis_mc: i64,
    /// Consecutive rounds below threshold − hysteresis required per
    /// one-rung cooldown.
    pub cooldown_rounds: u32,
    /// Minimum rounds a thermal shutdown keeps the machine off.
    pub shutdown_rounds: u32,
    /// Black-start stagger stride: machine `m` extends its hold by
    /// `m % stagger_rounds` extra rounds, so a rack that tripped together
    /// does not re-inrush together.
    pub stagger_rounds: u32,
}

impl Default for ThrottleConfig {
    fn default() -> Self {
        ThrottleConfig {
            hysteresis_mc: 3_000,
            cooldown_rounds: 3,
            shutdown_rounds: 4,
            stagger_rounds: 3,
        }
    }
}

/// One recorded stage change of a machine's throttle ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThrottleTransition {
    /// Fleet round the transition happened in.
    pub round: u64,
    /// Stage before.
    pub from: ThrottleStage,
    /// Stage after.
    pub to: ThrottleStage,
    /// Why (static label: "proactive-throttle", "emergency-throttle",
    /// "thermal-shutdown", "black-start", "cooldown").
    pub reason: &'static str,
}

impl fmt::Display for ThrottleTransition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "r{} {}→{} ({})",
            self.round,
            self.from.name(),
            self.to.name(),
            self.reason
        )
    }
}

/// The per-machine power-integrity state machine. Deterministic: the
/// stage sequence is a pure function of the observation sequence.
#[derive(Debug, Clone)]
pub struct ThrottleLadder {
    config: ThrottleConfig,
    stage: ThrottleStage,
    cool_streak: u32,
    down_remaining: u32,
    /// Extra black-start hold of this machine (`machine % stagger`).
    stagger_offset: u32,
    transitions: Vec<ThrottleTransition>,
}

impl ThrottleLadder {
    /// A fresh ladder for `machine`, starting at [`ThrottleStage::Normal`].
    #[must_use]
    pub fn new(config: ThrottleConfig, machine: usize) -> Self {
        let stagger_offset = (machine as u32) % config.stagger_rounds.max(1);
        ThrottleLadder {
            config,
            stage: ThrottleStage::Normal,
            cool_streak: 0,
            down_remaining: 0,
            stagger_offset,
            transitions: Vec::new(),
        }
    }

    /// The current stage.
    #[must_use]
    pub fn stage(&self) -> ThrottleStage {
        self.stage
    }

    /// Every recorded transition, in round order.
    #[must_use]
    pub fn transitions(&self) -> &[ThrottleTransition] {
        &self.transitions
    }

    /// Feeds one round's temperatures and returns the stage that governs
    /// the *next* round. `sensor_mc` drives the software stages
    /// (proactive, emergency, cooldown); `true_mc` drives only the
    /// hardware trip. Escalation is immediate (a single reading at T_crit
    /// forces the floor); de-escalation is hysteretic and one rung per
    /// confirmed-cool window.
    pub fn observe(&mut self, round: u64, sensor_mc: i64, true_mc: i64, thermal: &ThermalConfig) -> ThrottleStage {
        // Shutdown is a hold, not a threshold: count it down, then
        // black-start into Emergency (the floor) — never straight to an
        // unconstrained stage.
        if self.stage == ThrottleStage::Shutdown {
            if self.down_remaining > 0 {
                self.down_remaining -= 1;
                return self.stage;
            }
            self.shift(round, ThrottleStage::Emergency, "black-start");
            self.cool_streak = 0;
            return self.stage;
        }

        // The hardware trip reads the true temperature: a stuck or lying
        // sensor cannot defeat it.
        if true_mc >= thermal.t_shutdown_mc {
            self.shift(round, ThrottleStage::Shutdown, "thermal-shutdown");
            self.down_remaining = self.config.shutdown_rounds + self.stagger_offset;
            self.cool_streak = 0;
            return self.stage;
        }

        // Software escalation on the sensor, immediate and possibly
        // multi-rung upward (Normal → Emergency on one hot reading).
        if sensor_mc >= thermal.t_crit_mc {
            if self.stage.severity() < ThrottleStage::Emergency.severity() {
                self.shift(round, ThrottleStage::Emergency, "emergency-throttle");
            }
            self.cool_streak = 0;
            return self.stage;
        }
        if sensor_mc >= thermal.t_cap_mc {
            if self.stage == ThrottleStage::Normal {
                self.shift(round, ThrottleStage::Proactive, "proactive-throttle");
            }
            self.cool_streak = 0;
            return self.stage;
        }

        // Hysteretic cooldown: one rung per confirmed-cool window, and
        // only once the sensor sits clear below the governing threshold.
        let clear = match self.stage {
            ThrottleStage::Emergency => sensor_mc < thermal.t_crit_mc - self.config.hysteresis_mc,
            ThrottleStage::Proactive => sensor_mc < thermal.t_cap_mc - self.config.hysteresis_mc,
            _ => false,
        };
        if clear {
            self.cool_streak += 1;
            if self.cool_streak >= self.config.cooldown_rounds {
                let down = match self.stage {
                    ThrottleStage::Emergency => ThrottleStage::Proactive,
                    _ => ThrottleStage::Normal,
                };
                self.shift(round, down, "cooldown");
                self.cool_streak = 0;
            }
        } else {
            self.cool_streak = 0;
        }
        self.stage
    }

    fn shift(&mut self, round: u64, to: ThrottleStage, reason: &'static str) {
        self.transitions.push(ThrottleTransition {
            round,
            from: self.stage,
            to,
            reason,
        });
        self.stage = to;
    }

    /// Test-only forgery hook for the sabotage path: appends a raw
    /// transition so CI can prove `monotonicity_issue` fires.
    pub fn forge_transition(&mut self, t: ThrottleTransition) {
        self.transitions.push(t);
    }

    /// Checks the recorded transition log for throttle-ladder
    /// monotonicity: rounds non-decreasing, every transition an actual
    /// change, every *de-escalation* exactly one rung, and every exit
    /// from shutdown a black-start into the emergency floor. Feeds
    /// `Invariant::ThrottleMonotonicity`.
    #[must_use]
    pub fn monotonicity_issue(&self) -> Option<String> {
        let mut prev_round = 0u64;
        for t in &self.transitions {
            if t.round < prev_round {
                return Some(format!("transition log out of order at {t}"));
            }
            prev_round = t.round;
            if t.from == t.to {
                return Some(format!("self-transition at {t}"));
            }
            if t.from == ThrottleStage::Shutdown && t.to != ThrottleStage::Emergency {
                return Some(format!("shutdown exit skips the emergency floor at {t}"));
            }
            if t.from.severity() > t.to.severity() && t.from.severity() - t.to.severity() != 1 {
                return Some(format!("multi-rung de-escalation at {t}"));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ThermalConfig {
        ThermalConfig::datacenter(7)
    }

    #[test]
    fn disabled_model_is_inert_and_drawless() {
        let mut m = ThermalModel::new(ThermalConfig::disabled(), 3);
        let rng_before = m.rng;
        for _ in 0..50 {
            assert_eq!(m.update(99_000), 99_000, "disabled: power passes through");
            let _ = m.read_sensor(false);
        }
        assert_eq!(m.true_mc(), ThermalConfig::disabled().ambient_mc);
        assert_eq!(m.rng, rng_before, "disabled model must not draw");
    }

    #[test]
    fn zero_noise_consumes_no_randomness() {
        let mut config = cfg();
        config.sensor_noise = 0.0;
        let mut m = ThermalModel::new(config, 0);
        let rng_before = m.rng;
        for _ in 0..20 {
            m.update(80_000);
            let _ = m.read_sensor(false);
        }
        assert_eq!(m.rng, rng_before);
        assert!(m.true_mc() > config.ambient_mc, "the physics still runs");
    }

    #[test]
    fn temperature_relaxes_toward_the_power_implied_steady_state() {
        let mut config = cfg();
        config.sensor_noise = 0.0;
        config.leak_q16_per_k = 0;
        let mut m = ThermalModel::new(config, 0);
        for _ in 0..200 {
            m.update(80_000); // 80 W
        }
        let steady = config.ambient_mc + config.r_mk_per_w * 80_000 / 1_000;
        assert!((m.true_mc() - steady).abs() < 500, "{} vs {steady}", m.true_mc());
        for _ in 0..200 {
            m.update(0);
        }
        assert!((m.true_mc() - config.ambient_mc).abs() < 500, "cools to ambient");
    }

    #[test]
    fn leakage_feedback_raises_effective_power_when_hot() {
        let mut m = ThermalModel::new(cfg(), 0);
        let cold = m.update(90_000);
        for _ in 0..100 {
            m.update(90_000);
        }
        let hot = m.update(90_000);
        assert!(hot > cold, "leakage must grow with temperature: {cold} → {hot}");
    }

    #[test]
    fn trajectory_is_a_pure_function_of_the_power_schedule() {
        let run = || {
            let mut m = ThermalModel::new(cfg(), 5);
            let mut out = Vec::new();
            for r in 0..100i64 {
                let p = 40_000 + (r % 7) * 9_000;
                out.push((m.update(p), m.read_sensor(r % 11 == 0), m.true_mc()));
            }
            out
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn stuck_sensor_holds_its_reading_while_truth_moves() {
        let mut config = cfg();
        config.sensor_noise = 0.0;
        let mut m = ThermalModel::new(config, 0);
        m.update(60_000);
        let before = m.read_sensor(false);
        for _ in 0..50 {
            m.update(110_000);
            assert_eq!(m.read_sensor(true), before, "stuck reading frozen");
        }
        assert!(m.true_mc() > before, "true temperature keeps rising");
    }

    #[test]
    fn ladder_escalates_immediately_and_cools_one_rung_with_hysteresis() {
        let thermal = cfg();
        let mut l = ThrottleLadder::new(ThrottleConfig::default(), 0);
        assert_eq!(l.observe(0, 70_000, 70_000, &thermal), ThrottleStage::Normal);
        assert_eq!(l.observe(1, 96_000, 96_000, &thermal), ThrottleStage::Emergency);
        assert_eq!(l.transitions()[0].reason, "emergency-throttle");
        // Inside the hysteresis band: no cooldown progress.
        for r in 2..10 {
            assert_eq!(l.observe(r, 93_000, 93_000, &thermal), ThrottleStage::Emergency);
        }
        // Clear below T_crit − hysteresis for the window: one rung only.
        for r in 10..13 {
            l.observe(r, 80_000, 80_000, &thermal);
        }
        assert_eq!(l.stage(), ThrottleStage::Proactive);
        for r in 13..16 {
            l.observe(r, 70_000, 70_000, &thermal);
        }
        assert_eq!(l.stage(), ThrottleStage::Normal);
        assert!(l.monotonicity_issue().is_none());
    }

    #[test]
    fn hardware_trip_ignores_the_sensor_and_black_starts_staggered() {
        let thermal = cfg();
        let config = ThrottleConfig::default();
        let mut hold_of = |machine: usize| {
            let mut l = ThrottleLadder::new(config, machine);
            // Sensor stuck cold; the truth trips the hardware.
            assert_eq!(l.observe(0, 50_000, 106_000, &thermal), ThrottleStage::Shutdown);
            assert_eq!(l.transitions()[0].reason, "thermal-shutdown");
            let mut rounds = 0u64;
            let mut r = 1;
            while l.stage() == ThrottleStage::Shutdown {
                l.observe(r, 50_000, 60_000, &thermal);
                r += 1;
                rounds += 1;
                assert!(rounds < 64, "shutdown must end");
            }
            assert_eq!(l.stage(), ThrottleStage::Emergency, "black-start lands on the floor");
            assert_eq!(l.transitions().last().unwrap().reason, "black-start");
            assert!(l.monotonicity_issue().is_none());
            rounds
        };
        let h0 = hold_of(0);
        let h1 = hold_of(1);
        let h2 = hold_of(2);
        assert!(h0 < h1 && h1 < h2, "staggered holds: {h0} {h1} {h2}");
    }

    #[test]
    fn monotonicity_catches_forged_multi_rung_cooldown_and_bad_shutdown_exit() {
        let mut l = ThrottleLadder::new(ThrottleConfig::default(), 0);
        l.forge_transition(ThrottleTransition {
            round: 1,
            from: ThrottleStage::Emergency,
            to: ThrottleStage::Normal,
            reason: "forged",
        });
        assert!(l.monotonicity_issue().unwrap().contains("multi-rung"));

        let mut l = ThrottleLadder::new(ThrottleConfig::default(), 0);
        l.forge_transition(ThrottleTransition {
            round: 1,
            from: ThrottleStage::Shutdown,
            to: ThrottleStage::Proactive,
            reason: "forged",
        });
        assert!(l.monotonicity_issue().unwrap().contains("emergency floor"));
    }

    #[test]
    fn stage_names_round_trip_severity_order() {
        let stages = [
            ThrottleStage::Normal,
            ThrottleStage::Proactive,
            ThrottleStage::Emergency,
            ThrottleStage::Shutdown,
        ];
        for w in stages.windows(2) {
            assert!(w[0].severity() < w[1].severity());
        }
        let mut names: Vec<_> = stages.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), stages.len());
    }
}
