//! Fleet topology and the seeded deterministic chaos schedule.
//!
//! The ROADMAP's north star is a fleet-scale energy-management service: a
//! central DVFS governor allocating frequencies to many machines under a
//! global power budget. This module holds the simulator-side substrate —
//! how machines map onto shards, how per-machine random streams derive
//! from one fleet seed, and the **chaos schedule**: a pure function of
//! `(ChaosConfig, machines, rounds)` stating, for every round and
//! machine, which fleet-level faults ([`crate::FaultClass::CHAOS`]) are
//! active.
//!
//! Design rules, inherited from [`crate::faults`]:
//!
//! * every stream is a per-(class, machine) [`SplitMix64`], so one
//!   machine's chaos never perturbs another's and one class's intensity
//!   never shifts another class's draws;
//! * zero intensity consumes no randomness: an all-zero [`ChaosConfig`]
//!   yields a schedule of default [`ChaosState`]s, bit-identical to not
//!   generating one at all;
//! * crash and partition faults are *outages with duration* (a machine
//!   that crashes stays down for a drawn number of rounds, then
//!   restarts); telemetry dropout and staleness are per-round Bernoulli
//!   events; a slow link delays a round's telemetry by one to three
//!   rounds.

use crate::faults::{FaultClass, SplitMix64};

/// How machines map onto shards, and how per-machine streams derive from
/// the fleet seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetTopology {
    /// Number of simulated machines.
    pub machines: usize,
    /// Number of shards machines are partitioned into (contiguous
    /// blocks; clamped to `[1, machines]`).
    pub shards: usize,
    /// The fleet seed every per-machine stream derives from.
    pub seed: u64,
}

impl FleetTopology {
    /// A topology of `machines` machines in `shards` contiguous shards.
    #[must_use]
    pub fn new(machines: usize, shards: usize, seed: u64) -> Self {
        let machines = machines.max(1);
        FleetTopology {
            machines,
            shards: shards.clamp(1, machines),
            seed,
        }
    }

    /// The shard owning `machine`. Machines are split into contiguous
    /// blocks, the first `machines % shards` shards holding one extra.
    #[must_use]
    pub fn shard_of(&self, machine: usize) -> usize {
        let base = self.machines / self.shards;
        let extra = self.machines % self.shards;
        // The first `extra` shards hold `base + 1` machines each.
        let boundary = extra * (base + 1);
        if machine < boundary {
            machine / (base + 1)
        } else {
            extra + (machine - boundary) / base
        }
    }

    /// The machines of `shard`, as a contiguous range.
    #[must_use]
    pub fn machines_in(&self, shard: usize) -> std::ops::Range<usize> {
        let base = self.machines / self.shards;
        let extra = self.machines % self.shards;
        let start = shard.min(extra) * (base + 1) + shard.saturating_sub(extra) * base;
        let len = base + usize::from(shard < extra);
        start..(start + len).min(self.machines)
    }

    /// The per-machine seed for machine-local streams (traffic, local
    /// decisions). Derived, not sequential, so adjacent machines'
    /// streams are uncorrelated.
    #[must_use]
    pub fn machine_seed(&self, machine: usize) -> u64 {
        SplitMix64::new(self.seed ^ (machine as u64).wrapping_mul(0xA076_1D64_78BD_642F)).next_u64()
    }
}

/// The region owning `machine` when `machines` machines tile `regions`
/// contiguous regions (the first `machines % regions` regions holding
/// one extra — the same tiling as [`FleetTopology::shard_of`]). Regions
/// are the governor hierarchy's granularity; shards remain the parallel
/// stepping granularity, and the two tilings are independent.
#[must_use]
pub fn region_of(machines: usize, regions: usize, machine: usize) -> usize {
    let machines = machines.max(1);
    let regions = regions.clamp(1, machines);
    let base = machines / regions;
    let extra = machines % regions;
    let boundary = extra * (base + 1);
    if machine < boundary {
        machine / (base + 1)
    } else {
        (extra + (machine - boundary) / base).min(regions - 1)
    }
}

/// Per-class chaos intensities (each in `[0, 1]`; zero disables the
/// class) plus the seed every chaos stream derives from. The fleet
/// counterpart of [`crate::FaultConfig`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosConfig {
    /// Seed for all chaos streams (independent of the workload seed).
    pub seed: u64,
    /// Machine crash/restart outages.
    pub crash: f64,
    /// Per-round whole-telemetry loss.
    pub telemetry_loss: f64,
    /// Per-round stale (previous-round) telemetry delivery.
    pub stale_telemetry: f64,
    /// Governor↔machine partition outages.
    pub partition: f64,
    /// Per-round slow-link telemetry delay.
    pub slow_link: f64,
    /// Thermal-sensor-stuck windows (the software throttle ladder goes
    /// blind; the hardware trip still reads the true temperature).
    pub sensor_stuck: f64,
    /// Region-aggregator (and, on its own stream, root-governor) crash
    /// outages.
    pub aggregator_crash: f64,
    /// Power-brownout windows: the global budget drops to a drawn
    /// fraction for the window's duration.
    pub brownout: f64,
    /// Mean duration, in rounds, of crash and partition outages.
    pub mean_outage_rounds: u32,
}

impl ChaosConfig {
    /// An inert configuration: every class disabled.
    #[must_use]
    pub fn none(seed: u64) -> Self {
        ChaosConfig {
            seed,
            crash: 0.0,
            telemetry_loss: 0.0,
            stale_telemetry: 0.0,
            partition: 0.0,
            slow_link: 0.0,
            sensor_stuck: 0.0,
            aggregator_crash: 0.0,
            brownout: 0.0,
            mean_outage_rounds: 6,
        }
    }

    /// Every *legacy* class at the same intensity (the fleet binary's
    /// single `--chaos` knob). The thermal/hierarchy classes
    /// (sensor-stuck, aggregator-crash, brownout) stay at zero: they are
    /// opt-in knobs, and keeping them out of `uniform` pins every
    /// pre-thermal chaos run — including the committed fleet goldens —
    /// byte-identical.
    #[must_use]
    pub fn uniform(intensity: f64, seed: u64) -> Self {
        let i = intensity.clamp(0.0, 1.0);
        ChaosConfig {
            crash: i,
            telemetry_loss: i,
            stale_telemetry: i,
            partition: i,
            slow_link: i,
            ..Self::none(seed)
        }
    }

    /// The intensity slot of a chaos class (`None` for machine-local
    /// classes, which live in [`crate::FaultConfig`] instead).
    #[must_use]
    pub fn intensity(&self, class: FaultClass) -> Option<f64> {
        match class {
            FaultClass::MachineCrash => Some(self.crash),
            FaultClass::TelemetryLoss => Some(self.telemetry_loss),
            FaultClass::StaleTelemetry => Some(self.stale_telemetry),
            FaultClass::GovernorPartition => Some(self.partition),
            FaultClass::SlowLink => Some(self.slow_link),
            FaultClass::ThermalSensorStuck => Some(self.sensor_stuck),
            FaultClass::RegionAggregatorCrash => Some(self.aggregator_crash),
            FaultClass::Brownout => Some(self.brownout),
            _ => None,
        }
    }

    /// True if every class is disabled (the schedule is all-default).
    #[must_use]
    pub fn is_inert(&self) -> bool {
        self.crash <= 0.0
            && self.telemetry_loss <= 0.0
            && self.stale_telemetry <= 0.0
            && self.partition <= 0.0
            && self.slow_link <= 0.0
            && self.sensor_stuck <= 0.0
            && self.aggregator_crash <= 0.0
            && self.brownout <= 0.0
    }
}

/// The chaos active on one machine in one round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChaosState {
    /// The machine is down (crashed, not yet restarted).
    pub crashed: bool,
    /// This round's telemetry is lost entirely.
    pub telemetry_lost: bool,
    /// This round's telemetry delivers the previous round's snapshot.
    pub stale: bool,
    /// The governor↔machine control link is partitioned.
    pub partitioned: bool,
    /// Rounds this round's telemetry is delayed by the slow link
    /// (0 = on time).
    pub link_delay: u8,
    /// The machine's thermal sensor is stuck at its last reading.
    pub sensor_stuck: bool,
}

impl ChaosState {
    /// True if no chaos touches the machine this round.
    #[must_use]
    pub fn is_clear(&self) -> bool {
        *self == ChaosState::default()
    }
}

/// Per-class stream salts, in the style of [`crate::faults`].
const CRASH_SALT: u64 = 0x0063_7261_7368;
const LOSS_SALT: u64 = 0x6C6F_7373;
const STALE_SALT: u64 = 0x0073_7461_6C65;
const PARTITION_SALT: u64 = 0x7061_7274;
const LINK_SALT: u64 = 0x6C69_6E6B;
const STUCK_SALT: u64 = 0x0073_7475_636B;
const REGION_SALT: u64 = 0x7265_6769_6F6E;
const ROOT_SALT: u64 = 0x726F_6F74;
const BROWNOUT_SALT: u64 = 0x62726F776E;
const BROWNOUT_DEPTH_SALT: u64 = 0x6465707468;

/// Per-round event probability at intensity 1.0 for the Bernoulli
/// classes (dropout, staleness, slow link).
const BERNOULLI_RATE: f64 = 0.35;

/// Per-round outage-start probability at intensity 1.0 for the windowed
/// classes (crash, partition), while no outage is in progress.
const OUTAGE_RATE: f64 = 0.08;

/// The full chaos schedule of a fleet run: for every `(round, machine)`,
/// the active [`ChaosState`]. A pure function of
/// `(ChaosConfig, machines, rounds)` — regenerating it, on any worker
/// count, in any process, yields identical states.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosSchedule {
    machines: usize,
    rounds: usize,
    regions: usize,
    /// Round-major: `states[round * machines + machine]`.
    states: Vec<ChaosState>,
    /// Round-major: `aggregator_down[round * regions + region]`.
    aggregator_down: Vec<bool>,
    /// Per round: the root governor is down.
    root_down: Vec<bool>,
    /// Per round: the global-budget multiplier in thousandths
    /// (1000 = full budget; a brownout window holds a drawn fraction).
    budget_milli: Vec<u16>,
}

impl ChaosSchedule {
    /// Generates a single-region schedule. Each (class, machine) pair
    /// draws from its own salted stream, walked over the rounds in order;
    /// disabled classes consume no randomness at all.
    #[must_use]
    pub fn generate(config: &ChaosConfig, machines: usize, rounds: usize) -> Self {
        Self::generate_with_regions(config, machines, rounds, 1)
    }

    /// Generates the schedule for a fleet of `regions` regions: the
    /// per-machine classes as in [`ChaosSchedule::generate`], plus one
    /// aggregator-outage stream per region, one root-outage stream, and
    /// the global brownout stream. The region count only adds streams —
    /// it never shifts the per-machine draws, so a one-region schedule's
    /// machine states equal an N-region schedule's.
    #[must_use]
    pub fn generate_with_regions(
        config: &ChaosConfig,
        machines: usize,
        rounds: usize,
        regions: usize,
    ) -> Self {
        let regions = regions.clamp(1, machines.max(1));
        let mut states = vec![ChaosState::default(); rounds * machines];
        for machine in 0..machines {
            let msalt = (machine as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let mut crash = OutageWalk::new(
                SplitMix64::new(config.seed ^ CRASH_SALT ^ msalt),
                config.crash,
                config.mean_outage_rounds,
            );
            let mut partition = OutageWalk::new(
                SplitMix64::new(config.seed ^ PARTITION_SALT ^ msalt),
                config.partition,
                config.mean_outage_rounds,
            );
            let mut stuck = OutageWalk::new(
                SplitMix64::new(config.seed ^ STUCK_SALT ^ msalt),
                config.sensor_stuck,
                config.mean_outage_rounds,
            );
            let mut loss = SplitMix64::new(config.seed ^ LOSS_SALT ^ msalt);
            let mut stale = SplitMix64::new(config.seed ^ STALE_SALT ^ msalt);
            let mut link = SplitMix64::new(config.seed ^ LINK_SALT ^ msalt);
            for round in 0..rounds {
                let state = &mut states[round * machines + machine];
                state.crashed = crash.step();
                state.partitioned = partition.step();
                state.sensor_stuck = stuck.step();
                state.telemetry_lost = loss.chance(config.telemetry_loss * BERNOULLI_RATE);
                state.stale = stale.chance(config.stale_telemetry * BERNOULLI_RATE);
                if link.chance(config.slow_link * BERNOULLI_RATE) {
                    // One to three rounds of delay; the draw is made only
                    // when the event fires, so lower intensities do not
                    // shift later rounds' delays.
                    state.link_delay = 1 + (link.next_u64() % 3) as u8;
                }
            }
        }

        // Governor-tier outages: one windowed walk per region aggregator
        // plus one for the root, all on the aggregator-crash intensity.
        let mut aggregator_down = vec![false; rounds * regions];
        for region in 0..regions {
            let rsalt = (region as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let mut walk = OutageWalk::new(
                SplitMix64::new(config.seed ^ REGION_SALT ^ rsalt),
                config.aggregator_crash,
                config.mean_outage_rounds,
            );
            for round in 0..rounds {
                aggregator_down[round * regions + region] = walk.step();
            }
        }
        let mut root_walk = OutageWalk::new(
            SplitMix64::new(config.seed ^ ROOT_SALT),
            config.aggregator_crash,
            config.mean_outage_rounds,
        );
        let root_down: Vec<bool> = (0..rounds).map(|_| root_walk.step()).collect();

        // Brownouts: a windowed walk; the budget fraction of each window
        // is drawn once, from its own stream, only when a window starts.
        let mut brown_walk = OutageWalk::new(
            SplitMix64::new(config.seed ^ BROWNOUT_SALT),
            config.brownout,
            config.mean_outage_rounds,
        );
        let mut depth_rng = SplitMix64::new(config.seed ^ BROWNOUT_SALT ^ BROWNOUT_DEPTH_SALT);
        let mut budget_milli = vec![1000u16; rounds];
        let mut prev = false;
        let mut depth = 1000u16;
        for slot in &mut budget_milli {
            let down = brown_walk.step();
            if down && !prev {
                // Uniform in [550, 850] thousandths: a 15–45% budget cut.
                depth = 550 + (depth_rng.next_u64() % 301) as u16;
            }
            if down {
                *slot = depth;
            }
            prev = down;
        }

        ChaosSchedule {
            machines,
            rounds,
            regions,
            states,
            aggregator_down,
            root_down,
            budget_milli,
        }
    }

    /// Number of regions the governor-tier streams were generated for.
    #[must_use]
    pub fn regions(&self) -> usize {
        self.regions
    }

    /// The region owning `machine` (contiguous blocks, the first
    /// `machines % regions` regions holding one extra — the same tiling
    /// as [`FleetTopology::shard_of`]).
    #[must_use]
    pub fn region_of(&self, machine: usize) -> usize {
        region_of(self.machines, self.regions, machine)
    }

    /// True if `region`'s aggregator is down in `round`. Out-of-range
    /// queries are healthy.
    #[must_use]
    pub fn aggregator_down(&self, round: usize, region: usize) -> bool {
        if round >= self.rounds || region >= self.regions {
            return false;
        }
        self.aggregator_down[round * self.regions + region]
    }

    /// True if the root governor is down in `round`.
    #[must_use]
    pub fn root_down(&self, round: usize) -> bool {
        self.root_down.get(round).copied().unwrap_or(false)
    }

    /// The global-budget multiplier of `round`, in thousandths
    /// (1000 = no brownout; out-of-range queries are full budget).
    #[must_use]
    pub fn budget_milli(&self, round: usize) -> u16 {
        self.budget_milli.get(round).copied().unwrap_or(1000)
    }

    /// Rounds spent in a brownout window.
    #[must_use]
    pub fn brownout_rounds(&self) -> usize {
        self.budget_milli.iter().filter(|&&m| m < 1000).count()
    }

    /// Distinct governor-tier outages (region-aggregator plus root
    /// down-transitions).
    #[must_use]
    pub fn aggregator_events(&self) -> usize {
        let mut events = 0;
        for region in 0..self.regions {
            let mut prev = false;
            for round in 0..self.rounds {
                let now = self.aggregator_down[round * self.regions + region];
                events += usize::from(now && !prev);
                prev = now;
            }
        }
        let mut prev = false;
        for round in 0..self.rounds {
            let now = self.root_down[round];
            events += usize::from(now && !prev);
            prev = now;
        }
        events
    }

    /// The chaos on `machine` in `round`. Out-of-range queries (a fleet
    /// loop probing past the horizon) are clear.
    #[must_use]
    pub fn state(&self, round: usize, machine: usize) -> ChaosState {
        if round >= self.rounds || machine >= self.machines {
            return ChaosState::default();
        }
        self.states[round * self.machines + machine]
    }

    /// Number of scheduled rounds.
    #[must_use]
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// True if no `(round, machine)` cell, governor-tier stream, or
    /// brownout window carries any chaos.
    #[must_use]
    pub fn is_clear(&self) -> bool {
        self.states.iter().all(ChaosState::is_clear)
            && !self.aggregator_down.iter().any(|&d| d)
            && !self.root_down.iter().any(|&d| d)
            && self.budget_milli.iter().all(|&m| m == 1000)
    }

    /// How many distinct crash outages (down-transitions) the schedule
    /// contains, summed over machines.
    #[must_use]
    pub fn crash_events(&self) -> usize {
        self.transitions(|s| s.crashed)
    }

    /// How many distinct partition outages the schedule contains.
    #[must_use]
    pub fn partition_events(&self) -> usize {
        self.transitions(|s| s.partitioned)
    }

    fn transitions(&self, flag: impl Fn(&ChaosState) -> bool) -> usize {
        let mut events = 0;
        for machine in 0..self.machines {
            let mut prev = false;
            for round in 0..self.rounds {
                let now = flag(&self.states[round * self.machines + machine]);
                events += usize::from(now && !prev);
                prev = now;
            }
        }
        events
    }
}

/// A windowed-outage walk: while healthy, each round draws the start
/// event; on a start, the outage duration is drawn once and the walk
/// reports "down" for that many rounds. At zero intensity no randomness
/// is consumed.
#[derive(Debug)]
struct OutageWalk {
    rng: SplitMix64,
    intensity: f64,
    mean_rounds: u32,
    remaining: u32,
}

impl OutageWalk {
    fn new(rng: SplitMix64, intensity: f64, mean_rounds: u32) -> Self {
        OutageWalk {
            rng,
            intensity,
            mean_rounds: mean_rounds.max(1),
            remaining: 0,
        }
    }

    fn step(&mut self) -> bool {
        if self.remaining > 0 {
            self.remaining -= 1;
            return true;
        }
        if self.rng.chance(self.intensity * OUTAGE_RATE) {
            // Uniform in [1, 2·mean − 1]: mean `mean_rounds`, never zero.
            let span = u64::from(2 * self.mean_rounds - 1);
            self.remaining = (1 + self.rng.next_u64() % span) as u32;
            self.remaining -= 1; // this round is the first down round
            return true;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shards_partition_the_machines_contiguously() {
        for (machines, shards) in [(1, 1), (8, 2), (10, 3), (7, 7), (5, 9)] {
            let topo = FleetTopology::new(machines, shards, 1);
            let mut covered = Vec::new();
            for shard in 0..topo.shards {
                for m in topo.machines_in(shard) {
                    assert_eq!(topo.shard_of(m), shard, "{machines}/{shards} machine {m}");
                    covered.push(m);
                }
            }
            assert_eq!(
                covered,
                (0..machines).collect::<Vec<_>>(),
                "{machines} machines over {shards} shards must tile exactly"
            );
        }
    }

    #[test]
    fn machine_seeds_are_deterministic_and_distinct() {
        let topo = FleetTopology::new(16, 4, 99);
        let seeds: Vec<u64> = (0..16).map(|m| topo.machine_seed(m)).collect();
        let again: Vec<u64> = (0..16).map(|m| topo.machine_seed(m)).collect();
        assert_eq!(seeds, again);
        let mut unique = seeds.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), seeds.len(), "per-machine seeds must differ");
    }

    #[test]
    fn zero_intensity_schedule_is_all_clear() {
        let schedule = ChaosSchedule::generate(&ChaosConfig::none(5), 8, 64);
        assert!(schedule.is_clear());
        assert_eq!(schedule.crash_events(), 0);
        assert!(ChaosConfig::none(5).is_inert());
        assert!(!ChaosConfig::uniform(0.5, 5).is_inert());
    }

    #[test]
    fn schedule_is_a_pure_function_of_its_inputs() {
        let config = ChaosConfig::uniform(0.7, 42);
        let a = ChaosSchedule::generate(&config, 6, 80);
        let b = ChaosSchedule::generate(&config, 6, 80);
        assert_eq!(a, b);
        let c = ChaosSchedule::generate(&ChaosConfig::uniform(0.7, 43), 6, 80);
        assert_ne!(a, c, "a different chaos seed must change the schedule");
    }

    #[test]
    fn classes_draw_from_independent_streams() {
        // Turning one class off must not shift another class's events.
        let full = ChaosSchedule::generate(&ChaosConfig::uniform(0.8, 7), 4, 60);
        let mut no_crash = ChaosConfig::uniform(0.8, 7);
        no_crash.crash = 0.0;
        let partial = ChaosSchedule::generate(&no_crash, 4, 60);
        for round in 0..60 {
            for m in 0..4 {
                let f = full.state(round, m);
                let p = partial.state(round, m);
                assert!(!p.crashed);
                assert_eq!(f.telemetry_lost, p.telemetry_lost);
                assert_eq!(f.stale, p.stale);
                assert_eq!(f.partitioned, p.partitioned);
                assert_eq!(f.link_delay, p.link_delay);
            }
        }
    }

    #[test]
    fn crashes_are_outages_with_duration() {
        let config = ChaosConfig {
            crash: 1.0,
            mean_outage_rounds: 4,
            ..ChaosConfig::none(3)
        };
        let schedule = ChaosSchedule::generate(&config, 2, 200);
        assert!(schedule.crash_events() >= 2, "full intensity must crash");
        // Outages have duration: some crash run must span several rounds
        // (a pure per-round Bernoulli at this rate would make multi-round
        // runs rare), and machines must also spend time healthy.
        let mut longest = 0u32;
        let mut healthy = 0usize;
        for m in 0..2 {
            let mut run = 0u32;
            for round in 0..200 {
                if schedule.state(round, m).crashed {
                    run += 1;
                    longest = longest.max(run);
                } else {
                    run = 0;
                    healthy += 1;
                }
            }
        }
        assert!(longest >= 2, "no multi-round outage in 400 machine-rounds");
        assert!(healthy > 0, "machines must restart after an outage");
    }

    #[test]
    fn slow_link_delays_are_bounded() {
        let config = ChaosConfig {
            slow_link: 1.0,
            ..ChaosConfig::none(11)
        };
        let schedule = ChaosSchedule::generate(&config, 3, 100);
        let mut fired = false;
        for round in 0..100 {
            for m in 0..3 {
                let d = schedule.state(round, m).link_delay;
                assert!(d <= 3);
                fired |= d > 0;
            }
        }
        assert!(fired, "full intensity must delay some telemetry");
    }

    #[test]
    fn out_of_range_queries_are_clear() {
        let schedule = ChaosSchedule::generate(&ChaosConfig::uniform(1.0, 1), 2, 10);
        assert!(schedule.state(10, 0).is_clear());
        assert!(schedule.state(0, 2).is_clear());
    }

    #[test]
    fn intensity_maps_chaos_classes_only() {
        let config = ChaosConfig::uniform(0.4, 1);
        for class in FaultClass::CHAOS {
            let expected = match class {
                // The thermal/hierarchy classes are opt-in: `uniform`
                // must leave them inert so pre-thermal runs stay
                // byte-identical.
                FaultClass::ThermalSensorStuck
                | FaultClass::RegionAggregatorCrash
                | FaultClass::Brownout => 0.0,
                _ => 0.4,
            };
            assert_eq!(config.intensity(class), Some(expected), "{class}");
        }
        assert_eq!(config.intensity(FaultClass::CounterNoise), None);
        assert_eq!(config.intensity(FaultClass::PanicPoint), None);
    }

    fn storm(seed: u64) -> ChaosConfig {
        ChaosConfig {
            sensor_stuck: 0.8,
            aggregator_crash: 0.8,
            brownout: 0.8,
            ..ChaosConfig::none(seed)
        }
    }

    #[test]
    fn regions_tile_the_machines_contiguously() {
        for (machines, regions) in [(1, 1), (9, 3), (10, 3), (7, 7), (5, 9)] {
            let mut covered = Vec::new();
            let r = regions.clamp(1, machines);
            for region in 0..r {
                for m in 0..machines {
                    if region_of(machines, regions, m) == region {
                        covered.push(m);
                    }
                }
            }
            covered.sort_unstable();
            assert_eq!(covered, (0..machines).collect::<Vec<_>>());
            // Contiguity: region index is non-decreasing in machine id.
            let ids: Vec<usize> = (0..machines).map(|m| region_of(machines, regions, m)).collect();
            assert!(ids.windows(2).all(|w| w[0] <= w[1]), "{ids:?}");
        }
    }

    #[test]
    fn new_classes_are_windowed_bounded_and_deterministic() {
        let schedule = ChaosSchedule::generate_with_regions(&storm(13), 6, 200, 3);
        assert_eq!(schedule, ChaosSchedule::generate_with_regions(&storm(13), 6, 200, 3));
        assert!(schedule.aggregator_events() > 0, "aggregators must crash");
        assert!(schedule.brownout_rounds() > 0, "brownouts must occur");
        let mut stuck_rounds = 0;
        for round in 0..200 {
            let milli = schedule.budget_milli(round);
            assert!(milli == 1000 || (550..=850).contains(&milli), "depth {milli}");
            for m in 0..6 {
                stuck_rounds += usize::from(schedule.state(round, m).sensor_stuck);
            }
        }
        assert!(stuck_rounds > 0, "sensors must stick");
        // Out-of-range queries are healthy.
        assert!(!schedule.aggregator_down(200, 0));
        assert!(!schedule.aggregator_down(0, 3));
        assert!(!schedule.root_down(200));
        assert_eq!(schedule.budget_milli(200), 1000);
    }

    #[test]
    fn region_count_never_shifts_per_machine_draws() {
        let config = ChaosConfig {
            sensor_stuck: 0.6,
            ..ChaosConfig::uniform(0.7, 21)
        };
        let one = ChaosSchedule::generate_with_regions(&config, 5, 80, 1);
        let four = ChaosSchedule::generate_with_regions(&config, 5, 80, 4);
        for round in 0..80 {
            for m in 0..5 {
                assert_eq!(one.state(round, m), four.state(round, m));
            }
        }
    }

    #[test]
    fn inert_new_classes_draw_nothing_and_clear_schedules_stay_clear() {
        // Legacy-only chaos: the governor-tier and brownout streams must
        // be all-healthy, and the machine states must equal a schedule
        // generated before those streams existed (same seeds, same
        // draws).
        let legacy = ChaosSchedule::generate_with_regions(&ChaosConfig::uniform(0.5, 7), 4, 60, 3);
        for round in 0..60 {
            assert!(!legacy.root_down(round));
            assert_eq!(legacy.budget_milli(round), 1000);
            for r in 0..3 {
                assert!(!legacy.aggregator_down(round, r));
            }
            for m in 0..4 {
                assert!(!legacy.state(round, m).sensor_stuck);
            }
        }
        assert!(ChaosSchedule::generate_with_regions(&ChaosConfig::none(5), 4, 60, 3).is_clear());
        assert!(!ChaosSchedule::generate_with_regions(&storm(5), 4, 200, 2).is_clear());
    }
}
