//! Fleet topology and the seeded deterministic chaos schedule.
//!
//! The ROADMAP's north star is a fleet-scale energy-management service: a
//! central DVFS governor allocating frequencies to many machines under a
//! global power budget. This module holds the simulator-side substrate —
//! how machines map onto shards, how per-machine random streams derive
//! from one fleet seed, and the **chaos schedule**: a pure function of
//! `(ChaosConfig, machines, rounds)` stating, for every round and
//! machine, which fleet-level faults ([`crate::FaultClass::CHAOS`]) are
//! active.
//!
//! Design rules, inherited from [`crate::faults`]:
//!
//! * every stream is a per-(class, machine) [`SplitMix64`], so one
//!   machine's chaos never perturbs another's and one class's intensity
//!   never shifts another class's draws;
//! * zero intensity consumes no randomness: an all-zero [`ChaosConfig`]
//!   yields a schedule of default [`ChaosState`]s, bit-identical to not
//!   generating one at all;
//! * crash and partition faults are *outages with duration* (a machine
//!   that crashes stays down for a drawn number of rounds, then
//!   restarts); telemetry dropout and staleness are per-round Bernoulli
//!   events; a slow link delays a round's telemetry by one to three
//!   rounds.

use crate::faults::{FaultClass, SplitMix64};

/// How machines map onto shards, and how per-machine streams derive from
/// the fleet seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetTopology {
    /// Number of simulated machines.
    pub machines: usize,
    /// Number of shards machines are partitioned into (contiguous
    /// blocks; clamped to `[1, machines]`).
    pub shards: usize,
    /// The fleet seed every per-machine stream derives from.
    pub seed: u64,
}

impl FleetTopology {
    /// A topology of `machines` machines in `shards` contiguous shards.
    #[must_use]
    pub fn new(machines: usize, shards: usize, seed: u64) -> Self {
        let machines = machines.max(1);
        FleetTopology {
            machines,
            shards: shards.clamp(1, machines),
            seed,
        }
    }

    /// The shard owning `machine`. Machines are split into contiguous
    /// blocks, the first `machines % shards` shards holding one extra.
    #[must_use]
    pub fn shard_of(&self, machine: usize) -> usize {
        let base = self.machines / self.shards;
        let extra = self.machines % self.shards;
        // The first `extra` shards hold `base + 1` machines each.
        let boundary = extra * (base + 1);
        if machine < boundary {
            machine / (base + 1)
        } else {
            extra + (machine - boundary) / base
        }
    }

    /// The machines of `shard`, as a contiguous range.
    #[must_use]
    pub fn machines_in(&self, shard: usize) -> std::ops::Range<usize> {
        let base = self.machines / self.shards;
        let extra = self.machines % self.shards;
        let start = shard.min(extra) * (base + 1) + shard.saturating_sub(extra) * base;
        let len = base + usize::from(shard < extra);
        start..(start + len).min(self.machines)
    }

    /// The per-machine seed for machine-local streams (traffic, local
    /// decisions). Derived, not sequential, so adjacent machines'
    /// streams are uncorrelated.
    #[must_use]
    pub fn machine_seed(&self, machine: usize) -> u64 {
        SplitMix64::new(self.seed ^ (machine as u64).wrapping_mul(0xA076_1D64_78BD_642F)).next_u64()
    }
}

/// Per-class chaos intensities (each in `[0, 1]`; zero disables the
/// class) plus the seed every chaos stream derives from. The fleet
/// counterpart of [`crate::FaultConfig`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosConfig {
    /// Seed for all chaos streams (independent of the workload seed).
    pub seed: u64,
    /// Machine crash/restart outages.
    pub crash: f64,
    /// Per-round whole-telemetry loss.
    pub telemetry_loss: f64,
    /// Per-round stale (previous-round) telemetry delivery.
    pub stale_telemetry: f64,
    /// Governor↔machine partition outages.
    pub partition: f64,
    /// Per-round slow-link telemetry delay.
    pub slow_link: f64,
    /// Mean duration, in rounds, of crash and partition outages.
    pub mean_outage_rounds: u32,
}

impl ChaosConfig {
    /// An inert configuration: every class disabled.
    #[must_use]
    pub fn none(seed: u64) -> Self {
        ChaosConfig {
            seed,
            crash: 0.0,
            telemetry_loss: 0.0,
            stale_telemetry: 0.0,
            partition: 0.0,
            slow_link: 0.0,
            mean_outage_rounds: 6,
        }
    }

    /// Every class at the same intensity (the fleet binary's single
    /// `--chaos` knob).
    #[must_use]
    pub fn uniform(intensity: f64, seed: u64) -> Self {
        let i = intensity.clamp(0.0, 1.0);
        ChaosConfig {
            crash: i,
            telemetry_loss: i,
            stale_telemetry: i,
            partition: i,
            slow_link: i,
            ..Self::none(seed)
        }
    }

    /// The intensity slot of a chaos class (`None` for machine-local
    /// classes, which live in [`crate::FaultConfig`] instead).
    #[must_use]
    pub fn intensity(&self, class: FaultClass) -> Option<f64> {
        match class {
            FaultClass::MachineCrash => Some(self.crash),
            FaultClass::TelemetryLoss => Some(self.telemetry_loss),
            FaultClass::StaleTelemetry => Some(self.stale_telemetry),
            FaultClass::GovernorPartition => Some(self.partition),
            FaultClass::SlowLink => Some(self.slow_link),
            _ => None,
        }
    }

    /// True if every class is disabled (the schedule is all-default).
    #[must_use]
    pub fn is_inert(&self) -> bool {
        self.crash <= 0.0
            && self.telemetry_loss <= 0.0
            && self.stale_telemetry <= 0.0
            && self.partition <= 0.0
            && self.slow_link <= 0.0
    }
}

/// The chaos active on one machine in one round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChaosState {
    /// The machine is down (crashed, not yet restarted).
    pub crashed: bool,
    /// This round's telemetry is lost entirely.
    pub telemetry_lost: bool,
    /// This round's telemetry delivers the previous round's snapshot.
    pub stale: bool,
    /// The governor↔machine control link is partitioned.
    pub partitioned: bool,
    /// Rounds this round's telemetry is delayed by the slow link
    /// (0 = on time).
    pub link_delay: u8,
}

impl ChaosState {
    /// True if no chaos touches the machine this round.
    #[must_use]
    pub fn is_clear(&self) -> bool {
        *self == ChaosState::default()
    }
}

/// Per-class stream salts, in the style of [`crate::faults`].
const CRASH_SALT: u64 = 0x0063_7261_7368;
const LOSS_SALT: u64 = 0x6C6F_7373;
const STALE_SALT: u64 = 0x0073_7461_6C65;
const PARTITION_SALT: u64 = 0x7061_7274;
const LINK_SALT: u64 = 0x6C69_6E6B;

/// Per-round event probability at intensity 1.0 for the Bernoulli
/// classes (dropout, staleness, slow link).
const BERNOULLI_RATE: f64 = 0.35;

/// Per-round outage-start probability at intensity 1.0 for the windowed
/// classes (crash, partition), while no outage is in progress.
const OUTAGE_RATE: f64 = 0.08;

/// The full chaos schedule of a fleet run: for every `(round, machine)`,
/// the active [`ChaosState`]. A pure function of
/// `(ChaosConfig, machines, rounds)` — regenerating it, on any worker
/// count, in any process, yields identical states.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosSchedule {
    machines: usize,
    rounds: usize,
    /// Round-major: `states[round * machines + machine]`.
    states: Vec<ChaosState>,
}

impl ChaosSchedule {
    /// Generates the schedule. Each (class, machine) pair draws from its
    /// own salted stream, walked over the rounds in order; disabled
    /// classes consume no randomness at all.
    #[must_use]
    pub fn generate(config: &ChaosConfig, machines: usize, rounds: usize) -> Self {
        let mut states = vec![ChaosState::default(); rounds * machines];
        for machine in 0..machines {
            let msalt = (machine as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let mut crash = OutageWalk::new(
                SplitMix64::new(config.seed ^ CRASH_SALT ^ msalt),
                config.crash,
                config.mean_outage_rounds,
            );
            let mut partition = OutageWalk::new(
                SplitMix64::new(config.seed ^ PARTITION_SALT ^ msalt),
                config.partition,
                config.mean_outage_rounds,
            );
            let mut loss = SplitMix64::new(config.seed ^ LOSS_SALT ^ msalt);
            let mut stale = SplitMix64::new(config.seed ^ STALE_SALT ^ msalt);
            let mut link = SplitMix64::new(config.seed ^ LINK_SALT ^ msalt);
            for round in 0..rounds {
                let state = &mut states[round * machines + machine];
                state.crashed = crash.step();
                state.partitioned = partition.step();
                state.telemetry_lost = loss.chance(config.telemetry_loss * BERNOULLI_RATE);
                state.stale = stale.chance(config.stale_telemetry * BERNOULLI_RATE);
                if link.chance(config.slow_link * BERNOULLI_RATE) {
                    // One to three rounds of delay; the draw is made only
                    // when the event fires, so lower intensities do not
                    // shift later rounds' delays.
                    state.link_delay = 1 + (link.next_u64() % 3) as u8;
                }
            }
        }
        ChaosSchedule {
            machines,
            rounds,
            states,
        }
    }

    /// The chaos on `machine` in `round`. Out-of-range queries (a fleet
    /// loop probing past the horizon) are clear.
    #[must_use]
    pub fn state(&self, round: usize, machine: usize) -> ChaosState {
        if round >= self.rounds || machine >= self.machines {
            return ChaosState::default();
        }
        self.states[round * self.machines + machine]
    }

    /// Number of scheduled rounds.
    #[must_use]
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// True if no `(round, machine)` cell carries any chaos.
    #[must_use]
    pub fn is_clear(&self) -> bool {
        self.states.iter().all(ChaosState::is_clear)
    }

    /// How many distinct crash outages (down-transitions) the schedule
    /// contains, summed over machines.
    #[must_use]
    pub fn crash_events(&self) -> usize {
        self.transitions(|s| s.crashed)
    }

    /// How many distinct partition outages the schedule contains.
    #[must_use]
    pub fn partition_events(&self) -> usize {
        self.transitions(|s| s.partitioned)
    }

    fn transitions(&self, flag: impl Fn(&ChaosState) -> bool) -> usize {
        let mut events = 0;
        for machine in 0..self.machines {
            let mut prev = false;
            for round in 0..self.rounds {
                let now = flag(&self.states[round * self.machines + machine]);
                events += usize::from(now && !prev);
                prev = now;
            }
        }
        events
    }
}

/// A windowed-outage walk: while healthy, each round draws the start
/// event; on a start, the outage duration is drawn once and the walk
/// reports "down" for that many rounds. At zero intensity no randomness
/// is consumed.
#[derive(Debug)]
struct OutageWalk {
    rng: SplitMix64,
    intensity: f64,
    mean_rounds: u32,
    remaining: u32,
}

impl OutageWalk {
    fn new(rng: SplitMix64, intensity: f64, mean_rounds: u32) -> Self {
        OutageWalk {
            rng,
            intensity,
            mean_rounds: mean_rounds.max(1),
            remaining: 0,
        }
    }

    fn step(&mut self) -> bool {
        if self.remaining > 0 {
            self.remaining -= 1;
            return true;
        }
        if self.rng.chance(self.intensity * OUTAGE_RATE) {
            // Uniform in [1, 2·mean − 1]: mean `mean_rounds`, never zero.
            let span = u64::from(2 * self.mean_rounds - 1);
            self.remaining = (1 + self.rng.next_u64() % span) as u32;
            self.remaining -= 1; // this round is the first down round
            return true;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shards_partition_the_machines_contiguously() {
        for (machines, shards) in [(1, 1), (8, 2), (10, 3), (7, 7), (5, 9)] {
            let topo = FleetTopology::new(machines, shards, 1);
            let mut covered = Vec::new();
            for shard in 0..topo.shards {
                for m in topo.machines_in(shard) {
                    assert_eq!(topo.shard_of(m), shard, "{machines}/{shards} machine {m}");
                    covered.push(m);
                }
            }
            assert_eq!(
                covered,
                (0..machines).collect::<Vec<_>>(),
                "{machines} machines over {shards} shards must tile exactly"
            );
        }
    }

    #[test]
    fn machine_seeds_are_deterministic_and_distinct() {
        let topo = FleetTopology::new(16, 4, 99);
        let seeds: Vec<u64> = (0..16).map(|m| topo.machine_seed(m)).collect();
        let again: Vec<u64> = (0..16).map(|m| topo.machine_seed(m)).collect();
        assert_eq!(seeds, again);
        let mut unique = seeds.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), seeds.len(), "per-machine seeds must differ");
    }

    #[test]
    fn zero_intensity_schedule_is_all_clear() {
        let schedule = ChaosSchedule::generate(&ChaosConfig::none(5), 8, 64);
        assert!(schedule.is_clear());
        assert_eq!(schedule.crash_events(), 0);
        assert!(ChaosConfig::none(5).is_inert());
        assert!(!ChaosConfig::uniform(0.5, 5).is_inert());
    }

    #[test]
    fn schedule_is_a_pure_function_of_its_inputs() {
        let config = ChaosConfig::uniform(0.7, 42);
        let a = ChaosSchedule::generate(&config, 6, 80);
        let b = ChaosSchedule::generate(&config, 6, 80);
        assert_eq!(a, b);
        let c = ChaosSchedule::generate(&ChaosConfig::uniform(0.7, 43), 6, 80);
        assert_ne!(a, c, "a different chaos seed must change the schedule");
    }

    #[test]
    fn classes_draw_from_independent_streams() {
        // Turning one class off must not shift another class's events.
        let full = ChaosSchedule::generate(&ChaosConfig::uniform(0.8, 7), 4, 60);
        let mut no_crash = ChaosConfig::uniform(0.8, 7);
        no_crash.crash = 0.0;
        let partial = ChaosSchedule::generate(&no_crash, 4, 60);
        for round in 0..60 {
            for m in 0..4 {
                let f = full.state(round, m);
                let p = partial.state(round, m);
                assert!(!p.crashed);
                assert_eq!(f.telemetry_lost, p.telemetry_lost);
                assert_eq!(f.stale, p.stale);
                assert_eq!(f.partitioned, p.partitioned);
                assert_eq!(f.link_delay, p.link_delay);
            }
        }
    }

    #[test]
    fn crashes_are_outages_with_duration() {
        let config = ChaosConfig {
            crash: 1.0,
            mean_outage_rounds: 4,
            ..ChaosConfig::none(3)
        };
        let schedule = ChaosSchedule::generate(&config, 2, 200);
        assert!(schedule.crash_events() >= 2, "full intensity must crash");
        // Outages have duration: some crash run must span several rounds
        // (a pure per-round Bernoulli at this rate would make multi-round
        // runs rare), and machines must also spend time healthy.
        let mut longest = 0u32;
        let mut healthy = 0usize;
        for m in 0..2 {
            let mut run = 0u32;
            for round in 0..200 {
                if schedule.state(round, m).crashed {
                    run += 1;
                    longest = longest.max(run);
                } else {
                    run = 0;
                    healthy += 1;
                }
            }
        }
        assert!(longest >= 2, "no multi-round outage in 400 machine-rounds");
        assert!(healthy > 0, "machines must restart after an outage");
    }

    #[test]
    fn slow_link_delays_are_bounded() {
        let config = ChaosConfig {
            slow_link: 1.0,
            ..ChaosConfig::none(11)
        };
        let schedule = ChaosSchedule::generate(&config, 3, 100);
        let mut fired = false;
        for round in 0..100 {
            for m in 0..3 {
                let d = schedule.state(round, m).link_delay;
                assert!(d <= 3);
                fired |= d > 0;
            }
        }
        assert!(fired, "full intensity must delay some telemetry");
    }

    #[test]
    fn out_of_range_queries_are_clear() {
        let schedule = ChaosSchedule::generate(&ChaosConfig::uniform(1.0, 1), 2, 10);
        assert!(schedule.state(10, 0).is_clear());
        assert!(schedule.state(0, 2).is_clear());
    }

    #[test]
    fn intensity_maps_chaos_classes_only() {
        let config = ChaosConfig::uniform(0.4, 1);
        for class in FaultClass::CHAOS {
            assert_eq!(config.intensity(class), Some(0.4));
        }
        assert_eq!(config.intensity(FaultClass::CounterNoise), None);
        assert_eq!(config.intensity(FaultClass::PanicPoint), None);
    }
}
