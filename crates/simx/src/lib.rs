//! `simx` — a multicore interval-model timing simulator.
//!
//! This crate is the reproduction's substitute for the Sniper 6.0 simulator
//! used in the DEP+BURST paper (ISPASS 2016, §IV). It simulates a small
//! chip multiprocessor — out-of-order cores behind private L1/L2 caches, a
//! shared fixed-frequency L3, and banked DRAM with variable service latency
//! — executing multithreaded *programs* expressed as streams of abstract
//! work items (compute, load-miss clusters, store bursts) and OS actions
//! (futex wait/wake, timers, spawn/exit).
//!
//! Faithfulness goals (what the DVFS predictors can observe must behave like
//! real hardware):
//!
//! * core work scales with frequency, DRAM and L3 time does not;
//! * miss latency varies with bank and row-buffer state and with
//!   cross-core contention;
//! * store bursts saturate a finite store queue and stall the pipeline at
//!   memory speed;
//! * the four DVFS counter models of the paper — stall time, leading loads,
//!   CRIT, and the new store-queue-full counter — are computed by their
//!   published estimation algorithms, *not* read off the ground truth;
//! * every futex transition closes a synchronization epoch in the emitted
//!   [`dvfs_trace::ExecutionTrace`].
//!
//! The top-level entry point is [`Machine`].

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod config;
pub mod cpu;
pub mod engine;
pub mod faults;
pub mod fleet;
pub mod invariants;
pub mod mem;
pub mod os;
pub mod program;
pub mod sampling;
pub mod thermal;
pub mod watchdog;

mod machine;
mod stats;
mod tracebuild;

pub use config::MachineConfig;
pub use faults::{FaultClass, FaultConfig, FaultInjector};
pub use fleet::{ChaosConfig, ChaosSchedule, ChaosState, FleetTopology};
pub use invariants::{Invariant, InvariantMode, InvariantViolation, Monitor};
pub use machine::{Machine, MachineError, RunOutcome, WATCHDOG_STRIDE};
pub use program::{
    Action, FutexId, ProgContext, SpawnRequest, ThreadProgram, WaitOutcome, WorkItem,
};
pub use sampling::{Extrapolation, RegionMeasurement, RegionSchedule, SamplingConfig};
pub use stats::RunStats;
pub use thermal::{
    ThermalConfig, ThermalModel, ThrottleConfig, ThrottleLadder, ThrottleStage,
    ThrottleTransition,
};

#[cfg(test)]
mod send_tests {
    /// The experiment pool moves whole machines between worker threads, so
    /// `Machine` (and everything a program can capture) must stay `Send`.
    #[test]
    fn machine_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<crate::Machine>();
        assert_send::<Box<dyn crate::ThreadProgram>>();
    }
}
