//! Deterministic fault injection between the machine and its observers.
//!
//! The DEP+BURST energy manager (paper §VI-A) trusts its per-quantum
//! counter harvests and frequency transitions unconditionally. On real
//! hardware, counters are noisy, sampled late, saturate, or go missing,
//! and DVFS transitions take time and can be denied by the voltage
//! regulator. This module injects those failure modes — deterministically,
//! from a seed — so experiments can measure how gracefully the predictors
//! and the hardened manager degrade.
//!
//! Fault classes ([`FaultClass`]):
//!
//! * **CounterNoise** — multiplicative jitter on the four DVFS time
//!   counters (CRIT, leading loads, stall, store-queue-full) of every
//!   harvested thread slice;
//! * **CounterDropout** — an entire harvest returns
//!   [`DvfsCounters::zero`] for every slice (the kernel module missed the
//!   quantum);
//! * **CounterSaturation** — time counters pin at a fraction of full
//!   scale, as when a narrow hardware counter saturates;
//! * **DelayedHarvest** — the observer receives the *previous* quantum's
//!   segment instead of the fresh one (late sampling);
//! * **TransitionLatency** — the DVFS transition stall is stretched by a
//!   random factor;
//! * **TransitionDenied** — `set_frequency` fails outright;
//! * **DramJitter** — DRAM read latency is perturbed, changing the ground
//!   truth the predictors must track (wired in [`crate::mem::Dram`]).
//!
//! All randomness comes from per-class SplitMix64 streams derived from one
//! seed, so each class's behaviour is reproducible and independent of the
//! intensities chosen for the other classes. A class at zero intensity
//! consumes no random numbers and leaves the machine bit-identical to an
//! un-instrumented run.
//!
//! # Fleet-level chaos classes
//!
//! The [`FaultClass::CHAOS`] classes — machine crash, telemetry loss,
//! stale telemetry, governor partition, slow link — describe failures of
//! a *fleet*, not of one machine's counter path. They have no
//! [`FaultConfig`] slot and never reach a [`FaultInjector`]; instead they
//! are scheduled by [`crate::fleet::ChaosSchedule`] and injected by the
//! fleet simulation's round loop. Keeping them out of [`FaultClass::ALL`]
//! (and out of the config hash) follows the `PanicPoint` precedent:
//! every pre-existing `sim_key`, golden, and warm cache entry stays
//! byte-identical.

use dvfs_trace::{DvfsCounters, ExecutionTrace, TimeDelta};

/// The injectable fault classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultClass {
    /// Multiplicative jitter on harvested DVFS time counters.
    CounterNoise,
    /// A whole harvest loses its counters.
    CounterDropout,
    /// Time counters pin at a fraction of full scale.
    CounterSaturation,
    /// The observer receives the previous segment instead of the fresh one.
    DelayedHarvest,
    /// DVFS transition stalls stretch by a random factor.
    TransitionLatency,
    /// `set_frequency` is denied.
    TransitionDenied,
    /// DRAM read latency is perturbed (changes ground truth).
    DramJitter,
    /// The point evaluation itself panics (at most once per machine, with
    /// configurable probability) — exercises the harness's panic-isolation
    /// and retry paths end to end. Deliberately **not** in [`ALL`]: the
    /// default fault sweeps measure predictor degradation, and a panicking
    /// cell produces no row to measure.
    PanicPoint,
    /// Fleet chaos: a machine crashes and later restarts (sheds its
    /// request backlog, consumes no energy, reboots into the deepest
    /// degradation rung). Scheduled per round by
    /// [`crate::fleet::ChaosSchedule`]; not in [`ALL`].
    MachineCrash,
    /// Fleet chaos: a machine's telemetry for a round is lost entirely —
    /// the central governor sees nothing from it. Not in [`ALL`].
    TelemetryLoss,
    /// Fleet chaos: a machine's counter harvest arrives one round stale
    /// (the governor allocates against last round's state). Not in
    /// [`ALL`].
    StaleTelemetry,
    /// Fleet chaos: the governor↔machine control link partitions; the
    /// machine can neither report telemetry nor receive allocations.
    /// Not in [`ALL`].
    GovernorPartition,
    /// Fleet chaos: the telemetry link slows down, delaying a machine's
    /// report by one to three rounds. Not in [`ALL`].
    SlowLink,
    /// Fleet chaos: a machine's thermal sensor sticks at its last reading
    /// for a window, blinding the software throttle ladder while the true
    /// temperature keeps moving (the hardware trip still works). Not in
    /// [`ALL`].
    ThermalSensorStuck,
    /// Fleet chaos: a region aggregator (or, on its own stream, the root
    /// governor) crashes for a window. Under the hierarchical governor a
    /// root outage freezes region budgets while regions run autonomously;
    /// under a flat central governor it partitions every machine at once.
    /// Not in [`ALL`].
    RegionAggregatorCrash,
    /// Fleet chaos: a power brownout — the global budget drops to a drawn
    /// fraction for a window, forcing the governors to reallocate without
    /// oscillating the fleet. Not in [`ALL`].
    Brownout,
}

impl FaultClass {
    /// Every *measurable* fault class, for sweeps. Excludes
    /// [`PanicPoint`](FaultClass::PanicPoint), which kills the run instead
    /// of degrading it (opt in via the faults binary's `--panic-point`).
    pub const ALL: [FaultClass; 7] = [
        FaultClass::CounterNoise,
        FaultClass::CounterDropout,
        FaultClass::CounterSaturation,
        FaultClass::DelayedHarvest,
        FaultClass::TransitionLatency,
        FaultClass::TransitionDenied,
        FaultClass::DramJitter,
    ];

    /// The fleet-level chaos classes, scheduled by
    /// [`crate::fleet::ChaosSchedule`] rather than a [`FaultInjector`].
    /// Deliberately disjoint from [`ALL`](Self::ALL) so their existence
    /// cannot perturb any single-machine sweep or cache key.
    pub const CHAOS: [FaultClass; 8] = [
        FaultClass::MachineCrash,
        FaultClass::TelemetryLoss,
        FaultClass::StaleTelemetry,
        FaultClass::GovernorPartition,
        FaultClass::SlowLink,
        FaultClass::ThermalSensorStuck,
        FaultClass::RegionAggregatorCrash,
        FaultClass::Brownout,
    ];

    /// Parses a [`name`](Self::name) back to its class (`None` for
    /// unknown names). Round-trips every class, including
    /// [`PanicPoint`](FaultClass::PanicPoint) and the
    /// [`CHAOS`](Self::CHAOS) classes.
    #[must_use]
    pub fn from_name(name: &str) -> Option<FaultClass> {
        let mut classes = FaultClass::ALL.to_vec();
        classes.push(FaultClass::PanicPoint);
        classes.extend(FaultClass::CHAOS);
        classes.into_iter().find(|c| c.name() == name)
    }

    /// A short stable name (used in reports and JSON).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            FaultClass::CounterNoise => "counter-noise",
            FaultClass::CounterDropout => "counter-dropout",
            FaultClass::CounterSaturation => "counter-saturation",
            FaultClass::DelayedHarvest => "delayed-harvest",
            FaultClass::TransitionLatency => "transition-latency",
            FaultClass::TransitionDenied => "transition-denied",
            FaultClass::DramJitter => "dram-jitter",
            FaultClass::PanicPoint => "panic-point",
            FaultClass::MachineCrash => "machine-crash",
            FaultClass::TelemetryLoss => "telemetry-loss",
            FaultClass::StaleTelemetry => "stale-telemetry",
            FaultClass::GovernorPartition => "governor-partition",
            FaultClass::SlowLink => "slow-link",
            FaultClass::ThermalSensorStuck => "thermal-sensor-stuck",
            FaultClass::RegionAggregatorCrash => "region-aggregator-crash",
            FaultClass::Brownout => "brownout",
        }
    }
}

impl std::fmt::Display for FaultClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-class fault intensities (each in `[0, 1]`; zero disables the class)
/// plus the seed every stream derives from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Seed for all per-class random streams.
    pub seed: u64,
    /// Relative jitter amplitude on harvested time counters.
    pub counter_noise: f64,
    /// Probability that a harvest loses all its counters.
    pub counter_dropout: f64,
    /// How far the saturation ceiling drops below full scale.
    pub counter_saturation: f64,
    /// Probability that a harvest delivers the previous segment.
    pub delayed_harvest: f64,
    /// How much DVFS transition stalls stretch (1.0 ≈ 50× the nominal).
    pub transition_latency: f64,
    /// Probability that a frequency change is denied.
    pub transition_denied: f64,
    /// Relative jitter amplitude on DRAM read latency.
    pub dram_jitter: f64,
    /// Probability that the point evaluation panics (drawn once per
    /// machine, at the start of its first `run_until`).
    pub point_panic: f64,
}

impl FaultConfig {
    /// An inert configuration: every class disabled.
    #[must_use]
    pub fn none(seed: u64) -> Self {
        FaultConfig {
            seed,
            counter_noise: 0.0,
            counter_dropout: 0.0,
            counter_saturation: 0.0,
            delayed_harvest: 0.0,
            transition_latency: 0.0,
            transition_denied: 0.0,
            dram_jitter: 0.0,
            point_panic: 0.0,
        }
    }

    /// One class at the given intensity, everything else disabled. The
    /// fleet-level [`FaultClass::CHAOS`] classes have no machine-local
    /// slot (they are configured through `crate::fleet::ChaosConfig`),
    /// so for them this returns the inert config — installing it is
    /// bit-identical to not installing an injector at all, and the
    /// resulting cache key equals the fault-free one.
    #[must_use]
    pub fn single(class: FaultClass, intensity: f64, seed: u64) -> Self {
        let mut config = FaultConfig::none(seed);
        let slot = match class {
            FaultClass::CounterNoise => Some(&mut config.counter_noise),
            FaultClass::CounterDropout => Some(&mut config.counter_dropout),
            FaultClass::CounterSaturation => Some(&mut config.counter_saturation),
            FaultClass::DelayedHarvest => Some(&mut config.delayed_harvest),
            FaultClass::TransitionLatency => Some(&mut config.transition_latency),
            FaultClass::TransitionDenied => Some(&mut config.transition_denied),
            FaultClass::DramJitter => Some(&mut config.dram_jitter),
            FaultClass::PanicPoint => Some(&mut config.point_panic),
            FaultClass::MachineCrash
            | FaultClass::TelemetryLoss
            | FaultClass::StaleTelemetry
            | FaultClass::GovernorPartition
            | FaultClass::SlowLink
            | FaultClass::ThermalSensorStuck
            | FaultClass::RegionAggregatorCrash
            | FaultClass::Brownout => None,
        };
        if let Some(slot) = slot {
            *slot = intensity.clamp(0.0, 1.0);
        }
        config
    }

    /// Folds every field into `h` in declaration order, for the simulation
    /// memo cache key. An inert config hashes identically regardless of its
    /// seed: a disabled injector consumes no randomness, so the run result
    /// does not depend on the seed and conflating them buys extra hits.
    pub fn hash_into(&self, h: &mut depburst_core::stablehash::StableHasher) {
        h.write_tag("simx::FaultConfig");
        if self.is_inert() {
            h.write_bool(false);
            return;
        }
        h.write_bool(true);
        h.write_u64(self.seed);
        h.write_f64(self.counter_noise);
        h.write_f64(self.counter_dropout);
        h.write_f64(self.counter_saturation);
        h.write_f64(self.delayed_harvest);
        h.write_f64(self.transition_latency);
        h.write_f64(self.transition_denied);
        h.write_f64(self.dram_jitter);
        // Appended last (and only on the non-inert branch) so keys of
        // pre-existing configs are unchanged by the field's introduction.
        h.write_f64(self.point_panic);
    }

    /// True if every class is disabled (installing the injector changes
    /// nothing).
    #[must_use]
    pub fn is_inert(&self) -> bool {
        self.counter_noise <= 0.0
            && self.counter_dropout <= 0.0
            && self.counter_saturation <= 0.0
            && self.delayed_harvest <= 0.0
            && self.transition_latency <= 0.0
            && self.transition_denied <= 0.0
            && self.dram_jitter <= 0.0
            && self.point_panic <= 0.0
    }
}

/// A small deterministic random stream (SplitMix64). Distinct from the
/// workload RNGs so fault streams never perturb workload generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A stream seeded with `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `[-1, 1)`.
    pub fn next_signed(&mut self) -> f64 {
        2.0 * self.next_f64() - 1.0
    }

    /// Bernoulli draw. Consumes no randomness when `p <= 0` (so disabled
    /// classes leave their stream untouched).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        self.next_f64() < p
    }
}

/// Salts separating the per-class streams derived from one seed.
const NOISE_SALT: u64 = 0x006E_6F69_7365;
const DROPOUT_SALT: u64 = 0x6472_6F70;
const HARVEST_SALT: u64 = 0x6861_7276;
const LATENCY_SALT: u64 = 0x6C61_7465;
const DENIED_SALT: u64 = 0x6465_6E79;
const PANIC_SALT: u64 = 0x7061_6E69;
/// Salt for the DRAM jitter stream (the [`crate::mem::Dram`] device owns
/// its own stream so the hot read path never borrows the injector).
pub(crate) const DRAM_SALT: u64 = 0x6472_616D;

/// The runtime fault injector a [`crate::Machine`] consults.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    config: FaultConfig,
    noise: SplitMix64,
    dropout: SplitMix64,
    harvest: SplitMix64,
    latency: SplitMix64,
    denied: SplitMix64,
    panic_point: SplitMix64,
    /// Whether the once-per-machine panic draw has been made.
    panic_decided: bool,
    /// The segment held back by a fired delayed-harvest fault.
    pending: Option<ExecutionTrace>,
}

impl FaultInjector {
    /// Builds the injector from a configuration.
    #[must_use]
    pub fn new(config: FaultConfig) -> Self {
        FaultInjector {
            noise: SplitMix64::new(config.seed ^ NOISE_SALT),
            dropout: SplitMix64::new(config.seed ^ DROPOUT_SALT),
            harvest: SplitMix64::new(config.seed ^ HARVEST_SALT),
            latency: SplitMix64::new(config.seed ^ LATENCY_SALT),
            denied: SplitMix64::new(config.seed ^ DENIED_SALT),
            panic_point: SplitMix64::new(config.seed ^ PANIC_SALT),
            panic_decided: false,
            pending: None,
            config,
        }
    }

    /// The configuration in force.
    #[must_use]
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// Filters one harvested trace segment on its way to the observer,
    /// applying dropout, noise, saturation, and delayed delivery.
    pub fn filter_harvest(&mut self, mut trace: ExecutionTrace) -> ExecutionTrace {
        if self.dropout.chance(self.config.counter_dropout) {
            for epoch in &mut trace.epochs {
                for slice in &mut epoch.threads {
                    slice.counters = DvfsCounters::zero();
                }
            }
            return self.deliver(trace);
        }
        if self.config.counter_noise > 0.0 || self.config.counter_saturation > 0.0 {
            for epoch in &mut trace.epochs {
                let cap = epoch.duration * (1.0 - self.config.counter_saturation);
                for slice in &mut epoch.threads {
                    if self.config.counter_noise > 0.0 {
                        slice.counters = self.jitter(slice.counters);
                    }
                    if self.config.counter_saturation > 0.0 {
                        slice.counters = saturate(slice.counters, cap);
                    }
                }
            }
        }
        self.deliver(trace)
    }

    /// Multiplicative jitter on the four DVFS time counters. `active` and
    /// the event counts are left honest: on real hardware the noisy
    /// counters are the estimation algorithms' accumulators, not the
    /// scheduler clock.
    fn jitter(&mut self, c: DvfsCounters) -> DvfsCounters {
        let amplitude = self.config.counter_noise;
        let mut wobble = |t: TimeDelta| {
            (t * (1.0 + amplitude * self.noise.next_signed())).clamp_non_negative()
        };
        DvfsCounters {
            crit: wobble(c.crit),
            leading_loads: wobble(c.leading_loads),
            stall: wobble(c.stall),
            sq_full: wobble(c.sq_full),
            ..c
        }
    }

    /// Applies delayed-harvest delivery: when the fault fires, the fresh
    /// segment is held back and the observer receives the previously held
    /// segment (or an empty window on the first firing); a held segment
    /// that is not delivered by the next firing is discarded — it was
    /// sampled too late to be useful.
    fn deliver(&mut self, fresh: ExecutionTrace) -> ExecutionTrace {
        if self.harvest.chance(self.config.delayed_harvest) {
            let stale = self.pending.take().unwrap_or_else(|| ExecutionTrace {
                base: fresh.base,
                start: fresh.start,
                total: fresh.total,
                epochs: Vec::new(),
                markers: Vec::new(),
                threads: fresh.threads.clone(),
            });
            self.pending = Some(fresh);
            stale
        } else {
            self.pending = None;
            fresh
        }
    }

    /// The (possibly stretched) DVFS transition stall. Drawn once per
    /// `set_frequency` call, not per core.
    #[must_use]
    pub fn transition_stall(&mut self, nominal: TimeDelta) -> TimeDelta {
        if self.config.transition_latency <= 0.0 {
            return nominal;
        }
        // Intensity 1.0 stretches the 2 µs nominal stall up to ~100 µs,
        // the order of measured worst-case voltage-regulator settling.
        let stretch = 1.0 + self.config.transition_latency * 50.0 * self.latency.next_f64();
        nominal * stretch
    }

    /// True if this frequency change is denied.
    pub fn transition_denied(&mut self) -> bool {
        self.denied.chance(self.config.transition_denied)
    }

    /// The seeded panic-point fault: draws once per injector lifetime (the
    /// machine calls this at the start of its first `run_until`) and, when
    /// the draw fires, panics — simulating a point evaluation that dies
    /// mid-sweep. Deterministic for a fixed seed; consumes no randomness
    /// at zero intensity.
    ///
    /// # Panics
    /// By design, with probability `point_panic` on the first call.
    pub fn maybe_panic_point(&mut self) {
        if self.panic_decided || self.config.point_panic <= 0.0 {
            return;
        }
        self.panic_decided = true;
        if self.panic_point.chance(self.config.point_panic) {
            panic!(
                "injected panic-point fault (intensity {}, seed {})",
                self.config.point_panic, self.config.seed
            );
        }
    }
}

/// Derives the fault seed for retry `attempt` of a point whose first
/// attempt used `seed`. Attempt 0 is the identity, so retry-aware callers
/// are bit-compatible with pre-retry ones; later attempts step the seed by
/// the SplitMix64 increment, giving transient (probabilistic) faults an
/// independent, reproducible draw per attempt while keeping the schedule
/// a pure function of `(seed, attempt)`.
#[must_use]
pub fn retry_seed(seed: u64, attempt: u32) -> u64 {
    seed.wrapping_add(u64::from(attempt).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Pins every DVFS time counter at `cap` — the saturation ceiling a narrow
/// hardware counter register imposes. `active` (the scheduler clock) and
/// the wide event counts are unaffected.
fn saturate(c: DvfsCounters, cap: TimeDelta) -> DvfsCounters {
    let cap = cap.clamp_non_negative();
    let pin = |t: TimeDelta| if t > cap { cap } else { t };
    DvfsCounters {
        crit: pin(c.crit),
        leading_loads: pin(c.leading_loads),
        stall: pin(c.stall),
        sq_full: pin(c.sq_full),
        ..c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvfs_trace::{
        EpochEnd, EpochRecord, Freq, ThreadId, ThreadInfo, ThreadRole, ThreadSlice, Time,
    };

    fn sample_trace() -> ExecutionTrace {
        let counters = |active_us: f64| DvfsCounters {
            active: TimeDelta::from_micros(active_us),
            crit: TimeDelta::from_micros(active_us * 0.4),
            leading_loads: TimeDelta::from_micros(active_us * 0.3),
            stall: TimeDelta::from_micros(active_us * 0.2),
            sq_full: TimeDelta::from_micros(active_us * 0.1),
            instructions: (active_us * 1000.0) as u64,
            loads: (active_us * 300.0) as u64,
            stores: (active_us * 100.0) as u64,
            llc_misses: (active_us * 10.0) as u64,
        };
        ExecutionTrace {
            base: Freq::from_ghz(2.0),
            start: Time::ZERO,
            total: TimeDelta::from_micros(100.0),
            epochs: vec![EpochRecord {
                start: Time::ZERO,
                duration: TimeDelta::from_micros(100.0),
                threads: vec![
                    ThreadSlice {
                        thread: ThreadId(0),
                        counters: counters(90.0),
                    },
                    ThreadSlice {
                        thread: ThreadId(1),
                        counters: counters(60.0),
                    },
                ],
                end: EpochEnd::TraceEnd,
            }],
            markers: vec![],
            threads: vec![ThreadInfo {
                id: ThreadId(0),
                role: ThreadRole::Application,
                name: "t0".into(),
                spawn: Time::ZERO,
                exit: None,
            }],
        }
    }

    #[test]
    fn inert_config_is_an_identity_filter() {
        let mut inj = FaultInjector::new(FaultConfig::none(7));
        assert!(inj.config().is_inert());
        let trace = sample_trace();
        let filtered = inj.filter_harvest(trace.clone());
        assert_eq!(filtered, trace);
        assert_eq!(
            inj.transition_stall(TimeDelta::from_micros(2.0)),
            TimeDelta::from_micros(2.0)
        );
        assert!(!inj.transition_denied());
    }

    #[test]
    fn each_class_is_deterministic_under_a_fixed_seed() {
        for class in FaultClass::ALL {
            let config = FaultConfig::single(class, 0.5, 42);
            let mut a = FaultInjector::new(config);
            let mut b = FaultInjector::new(config);
            for _ in 0..16 {
                assert_eq!(
                    a.filter_harvest(sample_trace()),
                    b.filter_harvest(sample_trace()),
                    "{class} harvest filtering must be seed-deterministic"
                );
                assert_eq!(
                    a.transition_stall(TimeDelta::from_micros(2.0)),
                    b.transition_stall(TimeDelta::from_micros(2.0)),
                    "{class} transition stalls must be seed-deterministic"
                );
                assert_eq!(a.transition_denied(), b.transition_denied());
            }
        }
    }

    #[test]
    fn noise_perturbs_only_time_counters_and_depends_on_seed() {
        let config = FaultConfig::single(FaultClass::CounterNoise, 0.5, 1);
        let mut inj = FaultInjector::new(config);
        let trace = sample_trace();
        let noisy = inj.filter_harvest(trace.clone());
        let before = trace.epochs[0].threads[0].counters;
        let after = noisy.epochs[0].threads[0].counters;
        assert_ne!(before.crit, after.crit);
        assert_eq!(before.active, after.active);
        assert_eq!(before.instructions, after.instructions);
        assert!(!after.crit.is_negative());

        let mut other = FaultInjector::new(FaultConfig::single(FaultClass::CounterNoise, 0.5, 2));
        let diverged = other.filter_harvest(trace);
        assert_ne!(diverged.epochs[0].threads[0].counters.crit, after.crit);
    }

    #[test]
    fn dropout_at_full_intensity_zeroes_every_slice() {
        let mut inj = FaultInjector::new(FaultConfig::single(FaultClass::CounterDropout, 1.0, 3));
        let dropped = inj.filter_harvest(sample_trace());
        for epoch in &dropped.epochs {
            for slice in &epoch.threads {
                assert_eq!(slice.counters, DvfsCounters::zero());
            }
        }
        // Window structure survives; only the counters vanish.
        assert_eq!(dropped.total, sample_trace().total);
    }

    #[test]
    fn saturation_pins_time_counters_at_the_ceiling() {
        let mut inj =
            FaultInjector::new(FaultConfig::single(FaultClass::CounterSaturation, 0.8, 4));
        let trace = sample_trace();
        let cap = trace.epochs[0].duration * 0.2;
        let pinned = inj.filter_harvest(trace);
        let c = pinned.epochs[0].threads[0].counters;
        assert!(c.crit <= cap + TimeDelta::from_nanos(1.0));
        assert!(c.leading_loads <= cap + TimeDelta::from_nanos(1.0));
        // Zero intensity leaves counters alone (cap = full scale).
        let mut inert =
            FaultInjector::new(FaultConfig::single(FaultClass::CounterSaturation, 0.0, 4));
        let same = inert.filter_harvest(sample_trace());
        assert_eq!(same, sample_trace());
    }

    #[test]
    fn delayed_harvest_replays_the_previous_segment() {
        let mut inj = FaultInjector::new(FaultConfig::single(FaultClass::DelayedHarvest, 1.0, 5));
        let first = inj.filter_harvest(sample_trace());
        // First firing: the observer gets an empty window.
        assert!(first.epochs.is_empty());
        assert_eq!(first.total, sample_trace().total);
        // Second firing: the held-back first segment arrives late.
        let second = inj.filter_harvest(sample_trace());
        assert_eq!(second, sample_trace());
    }

    #[test]
    fn transition_faults_fire_at_full_intensity() {
        let mut inj =
            FaultInjector::new(FaultConfig::single(FaultClass::TransitionLatency, 1.0, 6));
        let nominal = TimeDelta::from_micros(2.0);
        let stretched = inj.transition_stall(nominal);
        assert!(stretched >= nominal);
        let mut denier =
            FaultInjector::new(FaultConfig::single(FaultClass::TransitionDenied, 1.0, 6));
        assert!(denier.transition_denied());
    }

    #[test]
    fn panic_point_is_seeded_and_fires_at_most_once() {
        // Certain panic at full intensity.
        let mut hot = FaultInjector::new(FaultConfig::single(FaultClass::PanicPoint, 1.0, 11));
        let blown = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            hot.maybe_panic_point();
        }));
        assert!(blown.is_err(), "intensity 1.0 must panic on the first draw");

        // Zero intensity never panics and consumes no randomness.
        let mut cold = FaultInjector::new(FaultConfig::single(FaultClass::PanicPoint, 0.0, 11));
        cold.maybe_panic_point();
        assert!(cold.config().is_inert());

        // Fractional intensity: deterministic per seed, decided once.
        let outcome = |seed: u64| {
            let mut inj = FaultInjector::new(FaultConfig::single(FaultClass::PanicPoint, 0.5, seed));
            let first = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                inj.maybe_panic_point();
            }))
            .is_err();
            // The draw is made; later calls are no-ops even for panicking seeds.
            inj.maybe_panic_point();
            first
        };
        let survivors: Vec<u64> = (0..32).filter(|&s| !outcome(s)).collect();
        assert!(!survivors.is_empty() && survivors.len() < 32, "p=0.5 must split seeds");
        for &s in survivors.iter().take(4) {
            assert!(!outcome(s), "same seed, same draw");
        }
    }

    #[test]
    fn class_names_round_trip() {
        for class in FaultClass::ALL {
            assert_eq!(FaultClass::from_name(class.name()), Some(class));
        }
        for class in FaultClass::CHAOS {
            assert_eq!(FaultClass::from_name(class.name()), Some(class));
        }
        assert_eq!(
            FaultClass::from_name("panic-point"),
            Some(FaultClass::PanicPoint)
        );
        assert_eq!(FaultClass::from_name("no-such-fault"), None);
    }

    /// Satellite regression: the chaos classes must never perturb the
    /// measurable sweep set or any cache key. `ALL` is pinned to exactly
    /// the seven pre-chaos names (order included — the faults sweep's row
    /// order and every golden depend on it), the chaos classes stay out
    /// of it, and a chaos `single` config is inert and hashes identically
    /// to the fault-free config.
    #[test]
    fn chaos_classes_leave_the_sweep_set_and_keys_unchanged() {
        let names: Vec<&str> = FaultClass::ALL.iter().map(|c| c.name()).collect();
        assert_eq!(
            names,
            [
                "counter-noise",
                "counter-dropout",
                "counter-saturation",
                "delayed-harvest",
                "transition-latency",
                "transition-denied",
                "dram-jitter",
            ],
            "FaultClass::ALL must stay byte-for-byte what PR 1 shipped"
        );
        let digest = |c: &FaultConfig| {
            let mut h = depburst_core::stablehash::StableHasher::new();
            c.hash_into(&mut h);
            h.finish()
        };
        for class in FaultClass::CHAOS {
            assert!(
                !FaultClass::ALL.contains(&class),
                "{class} must stay out of FaultClass::ALL"
            );
            let config = FaultConfig::single(class, 1.0, 7);
            assert!(config.is_inert(), "{class} has no machine-local slot");
            assert_eq!(
                digest(&config),
                digest(&FaultConfig::none(0)),
                "{class} config must hash like the fault-free config"
            );
        }
    }

    #[test]
    fn panic_point_stays_out_of_the_default_sweep() {
        assert!(!FaultClass::ALL.contains(&FaultClass::PanicPoint));
        assert_eq!(FaultClass::PanicPoint.name(), "panic-point");
        // A panic-point config is not inert (it must not collapse to the
        // fault-free cache key), and the field reaches hash_into.
        let config = FaultConfig::single(FaultClass::PanicPoint, 0.7, 1);
        assert!(!config.is_inert());
        let digest = |c: &FaultConfig| {
            let mut h = depburst_core::stablehash::StableHasher::new();
            c.hash_into(&mut h);
            h.finish()
        };
        assert_ne!(digest(&config), digest(&FaultConfig::none(1)));
        assert_ne!(
            digest(&config),
            digest(&FaultConfig::single(FaultClass::PanicPoint, 0.3, 1))
        );
    }

    #[test]
    fn retry_seeds_step_deterministically_from_the_base() {
        assert_eq!(retry_seed(42, 0), 42, "attempt 0 is the identity");
        let series: Vec<u64> = (0..5).map(|a| retry_seed(42, a)).collect();
        let again: Vec<u64> = (0..5).map(|a| retry_seed(42, a)).collect();
        assert_eq!(series, again);
        for window in series.windows(2) {
            assert_ne!(window[0], window[1], "attempts draw distinct seeds");
        }
    }

    #[test]
    fn splitmix_streams_are_reproducible() {
        let mut a = SplitMix64::new(99);
        let mut b = SplitMix64::new(99);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let f = SplitMix64::new(1).next_f64();
        assert!((0.0..1.0).contains(&f));
        let s = SplitMix64::new(1).next_signed();
        assert!((-1.0..1.0).contains(&s));
    }
}
