//! A chunk: the atomic unit of timed execution.
//!
//! The core slices each work item into chunks of roughly
//! [`MachineConfig::chunk_target`](crate::MachineConfig) wall-clock length.
//! A chunk knows its total duration, how much of that duration scales with
//! core frequency, and the counter increments it contributes. Chunks can be
//! *split* at an arbitrary fraction (preemption, quantum boundaries) and
//! *retimed* to a different frequency (DVFS transitions), both by linear
//! interpolation — exact for compute, and a faithful first-order
//! approximation for memory chunks at the 10–50 µs granularity used here.

use dvfs_trace::{DvfsCounters, TimeDelta};

/// One slice of timed execution on a core.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Chunk {
    /// Total wall-clock duration at the frequency it was timed for.
    pub duration: TimeDelta,
    /// The portion of `duration` that scales with core frequency.
    pub scaling: TimeDelta,
    /// Counter increments accrued over the whole chunk
    /// (`counters.active == duration`).
    pub counters: DvfsCounters,
}

impl Chunk {
    /// A pure-compute chunk: everything scales.
    #[must_use]
    pub fn compute(duration: TimeDelta, instructions: u64) -> Self {
        let counters = DvfsCounters {
            active: duration,
            instructions,
            ..DvfsCounters::zero()
        };
        Chunk {
            duration,
            scaling: duration,
            counters,
        }
    }

    /// The non-scaling portion of the chunk's duration.
    #[must_use]
    pub fn non_scaling(&self) -> TimeDelta {
        (self.duration - self.scaling).clamp_non_negative()
    }

    /// Counter increments after a fraction `frac` of the chunk has elapsed
    /// (linear interpolation).
    #[must_use]
    pub fn counters_at_fraction(&self, frac: f64) -> DvfsCounters {
        let f = frac.clamp(0.0, 1.0);
        DvfsCounters {
            active: self.counters.active * f,
            crit: self.counters.crit * f,
            leading_loads: self.counters.leading_loads * f,
            stall: self.counters.stall * f,
            sq_full: self.counters.sq_full * f,
            instructions: (self.counters.instructions as f64 * f).round() as u64,
            loads: (self.counters.loads as f64 * f).round() as u64,
            stores: (self.counters.stores as f64 * f).round() as u64,
            llc_misses: (self.counters.llc_misses as f64 * f).round() as u64,
        }
    }

    /// Splits the chunk at elapsed fraction `frac`, returning
    /// `(completed, remaining)`.
    #[must_use]
    pub fn split(&self, frac: f64) -> (Chunk, Chunk) {
        let f = frac.clamp(0.0, 1.0);
        let done_counters = self.counters_at_fraction(f);
        let rem_counters = self.counters.delta_since(&done_counters);
        let done = Chunk {
            duration: self.duration * f,
            scaling: self.scaling * f,
            counters: done_counters,
        };
        let rem = Chunk {
            duration: self.duration * (1.0 - f),
            scaling: self.scaling * (1.0 - f),
            counters: rem_counters,
        };
        (done, rem)
    }

    /// Re-times the chunk for a frequency change: the scaling portion is
    /// multiplied by `ratio` (old frequency / new frequency); the
    /// non-scaling portion is untouched. Time-valued non-scaling counters
    /// (CRIT, leading loads, SQ-full) are physical memory time and stay
    /// fixed; the stall estimate keeps its ratio to the non-scaling part.
    #[must_use]
    pub fn retimed(&self, ratio: f64) -> Chunk {
        let non_scaling = self.non_scaling();
        let new_scaling = self.scaling * ratio;
        let new_duration = new_scaling + non_scaling;
        let mut counters = self.counters;
        counters.active = new_duration;
        Chunk {
            duration: new_duration,
            scaling: new_scaling,
            counters,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem_chunk() -> Chunk {
        // 40 us total: 10 us scaling, 30 us non-scaling memory time.
        Chunk {
            duration: TimeDelta::from_micros(40.0),
            scaling: TimeDelta::from_micros(10.0),
            counters: DvfsCounters {
                active: TimeDelta::from_micros(40.0),
                crit: TimeDelta::from_micros(28.0),
                leading_loads: TimeDelta::from_micros(25.0),
                stall: TimeDelta::from_micros(22.0),
                sq_full: TimeDelta::ZERO,
                instructions: 4000,
                loads: 1000,
                stores: 0,
                llc_misses: 50,
            },
        }
    }

    #[test]
    fn compute_chunk_fully_scales() {
        let c = Chunk::compute(TimeDelta::from_micros(20.0), 1_000_000);
        assert_eq!(c.non_scaling(), TimeDelta::ZERO);
        assert_eq!(c.counters.instructions, 1_000_000);
        assert_eq!(c.counters.active, c.duration);
    }

    #[test]
    fn split_conserves_everything() {
        let c = mem_chunk();
        let (a, b) = c.split(0.25);
        assert!((a.duration.as_micros() - 10.0).abs() < 1e-9);
        assert!((b.duration.as_micros() - 30.0).abs() < 1e-9);
        assert!(((a.scaling + b.scaling).as_micros() - 10.0).abs() < 1e-9);
        assert_eq!(a.counters.instructions + b.counters.instructions, 4000);
        assert!(
            ((a.counters.crit + b.counters.crit).as_micros() - 28.0).abs() < 1e-9
        );
    }

    #[test]
    fn retime_scales_only_the_scaling_part() {
        let c = mem_chunk();
        // 1 GHz -> 4 GHz: ratio 0.25.
        let fast = c.retimed(0.25);
        assert!((fast.scaling.as_micros() - 2.5).abs() < 1e-9);
        assert!((fast.duration.as_micros() - 32.5).abs() < 1e-9);
        assert_eq!(fast.counters.crit, c.counters.crit);
        assert_eq!(fast.counters.active, fast.duration);
        // 4 GHz -> 1 GHz round trip restores the original.
        let back = fast.retimed(4.0);
        assert!((back.duration.as_micros() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn interpolation_is_monotone() {
        let c = mem_chunk();
        let half = c.counters_at_fraction(0.5);
        let full = c.counters_at_fraction(1.0);
        assert!(half.active < full.active);
        assert!(half.crit < full.crit);
        assert_eq!(full, c.counters);
        let clamped = c.counters_at_fraction(2.0);
        assert_eq!(clamped, c.counters);
    }
}
