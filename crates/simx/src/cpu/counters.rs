//! The hardware DVFS counter estimation algorithms, implemented as the
//! papers describe them: streaming over observed miss (issue, completion)
//! intervals, independent of how the ground-truth timing was produced.
//!
//! * [`CritEstimator`] — Miftakhutdinov et al.'s CRIT: accumulate the
//!   length of the *critical path* through possibly-overlapping
//!   long-latency misses. A miss that begins after the current path end
//!   starts a new critical segment (its full latency counts); a miss that
//!   overlaps the path only counts the part by which it *extends* the
//!   path. Handles variable-latency memory exactly as designed.
//! * [`LeadingLoadsEstimator`] — the leading-loads rule: misses that
//!   overlap an outstanding burst are assumed to cost nothing; only the
//!   *leading* load of each burst contributes its full latency. Accurate
//!   when all misses in a burst have similar latency; undercounts when a
//!   non-leading miss is slower (exactly the weakness CRIT fixes,
//!   paper §II-A).

use dvfs_trace::{Time, TimeDelta};

/// Streaming CRIT estimator over miss intervals.
#[derive(Debug, Clone, Copy)]
pub struct CritEstimator {
    path_end: Time,
    accumulated: TimeDelta,
}

impl Default for CritEstimator {
    fn default() -> Self {
        Self::new()
    }
}

impl CritEstimator {
    /// A fresh estimator.
    #[must_use]
    pub fn new() -> Self {
        CritEstimator {
            path_end: Time::ZERO,
            accumulated: TimeDelta::ZERO,
        }
    }

    /// Observes one long-latency miss occupying `[issue, completion]`.
    /// Misses must be fed in non-decreasing issue order.
    pub fn observe(&mut self, issue: Time, completion: Time) {
        if completion <= issue {
            return;
        }
        if issue >= self.path_end {
            // A new critical segment: nothing else was outstanding on the
            // path, so this miss's entire latency is critical.
            self.accumulated += completion.since(issue);
            self.path_end = completion;
        } else if completion > self.path_end {
            // Overlaps the current path but outlives it: only the
            // extension is additional critical time.
            self.accumulated += completion.since(self.path_end);
            self.path_end = completion;
        }
        // Fully contained in the current path: contributes nothing.
    }

    /// The accumulated non-scaling estimate.
    #[must_use]
    pub fn non_scaling(&self) -> TimeDelta {
        self.accumulated
    }
}

/// Streaming leading-loads estimator over miss intervals.
#[derive(Debug, Clone, Copy)]
pub struct LeadingLoadsEstimator {
    burst_end: Time,
    accumulated: TimeDelta,
}

impl Default for LeadingLoadsEstimator {
    fn default() -> Self {
        Self::new()
    }
}

impl LeadingLoadsEstimator {
    /// A fresh estimator.
    #[must_use]
    pub fn new() -> Self {
        LeadingLoadsEstimator {
            burst_end: Time::ZERO,
            accumulated: TimeDelta::ZERO,
        }
    }

    /// Observes one miss occupying `[issue, completion]`, in non-decreasing
    /// issue order.
    pub fn observe(&mut self, issue: Time, completion: Time) {
        if completion <= issue {
            return;
        }
        if issue >= self.burst_end {
            // This miss leads a new burst: its full latency counts, and it
            // defines the burst window.
            self.accumulated += completion.since(issue);
            self.burst_end = completion;
        }
        // Non-leading misses of a burst are assumed covered by the leading
        // load (the model's titular approximation). They do not extend the
        // burst window: the window is the leading load's shadow.
    }

    /// The accumulated non-scaling estimate.
    #[must_use]
    pub fn non_scaling(&self) -> TimeDelta {
        self.accumulated
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: f64) -> Time {
        Time::from_secs(ns * 1e-9)
    }

    #[test]
    fn serial_misses_accumulate_fully_in_both_models() {
        let mut crit = CritEstimator::new();
        let mut ll = LeadingLoadsEstimator::new();
        for i in 0..5 {
            let issue = t(i as f64 * 100.0);
            let done = t(i as f64 * 100.0 + 60.0);
            crit.observe(issue, done);
            ll.observe(issue, done);
        }
        assert!((crit.non_scaling().as_nanos() - 300.0).abs() < 1e-9);
        assert!((ll.non_scaling().as_nanos() - 300.0).abs() < 1e-9);
    }

    #[test]
    fn fully_parallel_equal_misses_count_once() {
        let mut crit = CritEstimator::new();
        let mut ll = LeadingLoadsEstimator::new();
        for _ in 0..4 {
            crit.observe(t(0.0), t(60.0));
            ll.observe(t(0.0), t(60.0));
        }
        assert!((crit.non_scaling().as_nanos() - 60.0).abs() < 1e-9);
        assert!((ll.non_scaling().as_nanos() - 60.0).abs() < 1e-9);
    }

    #[test]
    fn crit_captures_slow_non_leading_miss_ll_does_not() {
        // The paper's §II-A motivating case: the leading miss is fast, a
        // parallel miss is slow (bank conflict). CRIT charges the full
        // critical path; leading-loads only the leading (fast) one.
        let mut crit = CritEstimator::new();
        let mut ll = LeadingLoadsEstimator::new();
        crit.observe(t(0.0), t(50.0)); // leading, fast
        crit.observe(t(1.0), t(120.0)); // parallel, slow
        ll.observe(t(0.0), t(50.0));
        ll.observe(t(1.0), t(120.0));
        assert!((crit.non_scaling().as_nanos() - 120.0).abs() < 1e-9);
        assert!((ll.non_scaling().as_nanos() - 50.0).abs() < 1e-9);
        assert!(ll.non_scaling() < crit.non_scaling());
    }

    #[test]
    fn contained_miss_contributes_nothing_to_crit() {
        let mut crit = CritEstimator::new();
        crit.observe(t(0.0), t(100.0));
        crit.observe(t(10.0), t(50.0)); // fully inside the path
        assert!((crit.non_scaling().as_nanos() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn chained_overlaps_accumulate_extensions() {
        // Three misses, each extending the previous by 40 ns.
        let mut crit = CritEstimator::new();
        crit.observe(t(0.0), t(60.0));
        crit.observe(t(20.0), t(100.0));
        crit.observe(t(40.0), t(140.0));
        assert!((crit.non_scaling().as_nanos() - 140.0).abs() < 1e-9);
    }

    #[test]
    fn gap_after_burst_starts_fresh() {
        let mut ll = LeadingLoadsEstimator::new();
        ll.observe(t(0.0), t(60.0));
        ll.observe(t(30.0), t(80.0)); // inside the leading shadow: free
        ll.observe(t(200.0), t(260.0)); // new burst
        assert!((ll.non_scaling().as_nanos() - 120.0).abs() < 1e-9);
    }

    #[test]
    fn jittered_latencies_keep_estimates_bounded() {
        // With DRAM jitter injected (crate::faults), miss latencies vary
        // wildly; the estimators must stay non-negative and never exceed
        // the wall-clock span they observed.
        let mut rng = crate::faults::SplitMix64::new(77);
        let mut crit = CritEstimator::new();
        let mut ll = LeadingLoadsEstimator::new();
        let mut issue = 0.0;
        let mut last_done = 0.0f64;
        for _ in 0..200 {
            issue += rng.next_f64() * 80.0;
            let latency = rng.next_f64() * 200.0;
            let done = issue + latency;
            crit.observe(t(issue), t(done));
            ll.observe(t(issue), t(done));
            last_done = last_done.max(done);
        }
        for estimate in [crit.non_scaling(), ll.non_scaling()] {
            assert!(!estimate.is_negative());
            assert!(estimate.as_nanos() <= last_done + 1e-9);
        }
        assert!(ll.non_scaling() <= crit.non_scaling());
    }

    #[test]
    fn degenerate_intervals_are_ignored() {
        let mut crit = CritEstimator::new();
        let mut ll = LeadingLoadsEstimator::new();
        crit.observe(t(10.0), t(10.0));
        crit.observe(t(10.0), t(5.0));
        ll.observe(t(10.0), t(10.0));
        assert_eq!(crit.non_scaling(), TimeDelta::ZERO);
        assert_eq!(ll.non_scaling(), TimeDelta::ZERO);
    }
}
