//! The core timing model: interval-style chunked execution of work items,
//! the store-queue model, and the DVFS counter estimation algorithms.

mod chunk;
mod core_unit;
mod counters;
mod storeq;
mod work;

pub use chunk::Chunk;
pub use counters::{CritEstimator, LeadingLoadsEstimator};
pub use core_unit::{CoreBank, Running};
pub use storeq::{AbsorbResult, StoreQueue, StoreQueues};
pub use work::{ChunkEnv, WorkCursor};
