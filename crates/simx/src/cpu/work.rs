//! Slicing work items into timed chunks — the interval core model.
//!
//! This module is where ground-truth timing *and* the four counter
//! estimation algorithms are computed, deliberately as separate
//! calculations:
//!
//! * ground truth comes from the DRAM/bank model, the fixed-clock L3, and
//!   the store-queue fluid model;
//! * the **CRIT** counter accumulates the critical path through dependent
//!   miss rounds (Miftakhutdinov et al.);
//! * the **leading-loads** counter accumulates only the first miss latency
//!   of each round;
//! * the **stall-time** counter accumulates commit-blocked time, which
//!   systematically undercounts because commit proceeds beneath misses;
//! * the **store-queue-full** counter (the paper's new hardware counter)
//!   accumulates time the store queue is saturated.
//!
//! Their divergence from ground truth — L3 hits nobody counts, round
//! serialization gaps, queueing shifts at the target frequency — is what
//! gives the predictors realistic error behaviour.

use dvfs_trace::{CoreId, DvfsCounters, Freq, Time, TimeDelta};

use super::{Chunk, StoreQueues};
use crate::config::MachineConfig;
use crate::mem::{AccessPattern, Dram, MemoryHierarchy};
use crate::program::WorkItem;

/// Everything a cursor needs to time one chunk.
#[derive(Debug)]
pub struct ChunkEnv<'a> {
    /// Current simulated time (chunk start).
    pub now: Time,
    /// Current chip frequency.
    pub freq: Freq,
    /// The core executing the chunk.
    pub core: CoreId,
    /// Machine configuration.
    pub config: &'a MachineConfig,
    /// The cache hierarchy (shared).
    pub hierarchy: &'a mut MemoryHierarchy,
    /// The DRAM device (shared).
    pub dram: &'a mut Dram,
    /// All cores' store queues (indexed by `core`).
    pub store_queues: &'a mut StoreQueues,
}

/// Progress state of a work item being executed chunk by chunk.
#[derive(Debug, Clone)]
pub enum WorkCursor {
    /// Remaining pure compute.
    Compute {
        /// Instructions left.
        remaining: u64,
        /// Sustained IPC.
        ipc: f64,
    },
    /// Remaining load-dominated work.
    Memory {
        /// Loads left.
        remaining: u64,
        /// Loads already issued (offsets the address stream).
        issued: u64,
        /// Access pattern.
        pattern: AccessPattern,
        /// Memory-level parallelism (independent miss chains).
        mlp: f64,
        /// Instructions per load.
        compute_per_access: f64,
        /// IPC of interleaved compute.
        ipc: f64,
        /// Address-stream seed.
        seed: u64,
        /// Adaptive estimate of seconds per access (picks chunk size).
        est_access_time: f64,
    },
    /// Remaining store burst.
    Store {
        /// Cache lines left to write.
        remaining_lines: u64,
        /// Lines already written.
        issued_lines: u64,
        /// Store target pattern.
        pattern: AccessPattern,
        /// Address-stream seed.
        seed: u64,
    },
}

impl WorkCursor {
    /// Builds a cursor over `item`.
    #[must_use]
    pub fn new(item: WorkItem) -> Self {
        match item {
            WorkItem::Compute { instructions, ipc } => WorkCursor::Compute {
                remaining: instructions,
                ipc: ipc.max(0.05),
            },
            WorkItem::Memory {
                accesses,
                pattern,
                mlp,
                compute_per_access,
                ipc,
                seed,
            } => WorkCursor::Memory {
                remaining: accesses,
                issued: 0,
                pattern,
                mlp: mlp.max(1.0),
                compute_per_access,
                ipc: ipc.max(0.05),
                seed,
                est_access_time: 5e-9,
            },
            WorkItem::StoreBurst {
                bytes,
                pattern,
                seed,
            } => WorkCursor::Store {
                remaining_lines: bytes.div_ceil(64),
                issued_lines: 0,
                pattern,
                seed,
            },
        }
    }

    /// A cursor that charges `cycles` of kernel/syscall overhead.
    #[must_use]
    pub fn syscall(cycles: u64) -> Self {
        WorkCursor::Compute {
            remaining: cycles,
            ipc: 1.0,
        }
    }

    /// Produces the next chunk, or `None` when the work item is finished.
    pub fn next_chunk(&mut self, env: &mut ChunkEnv<'_>) -> Option<Chunk> {
        match self {
            WorkCursor::Compute { remaining, ipc } => {
                if *remaining == 0 {
                    return None;
                }
                let f = env.freq.hz();
                let target_instr = (*ipc * f * env.config.chunk_target.as_secs()) as u64;
                let n = (*remaining).min(target_instr.max(1));
                *remaining -= n;
                let duration = TimeDelta::from_secs(n as f64 / (*ipc * f));
                Some(Chunk::compute(duration, n))
            }
            WorkCursor::Memory {
                remaining,
                issued,
                pattern,
                mlp,
                compute_per_access,
                ipc,
                seed,
                est_access_time,
            } => {
                if *remaining == 0 {
                    return None;
                }
                // Memory chunks are kept short so concurrent chunks from
                // different cores interleave at fine granularity in the
                // shared DRAM (each chunk's requests are issued in a batch).
                let target = env.config.chunk_target.as_secs() / 6.0;
                let mut n = (target / est_access_time.max(1e-10)) as u64;
                n = n.clamp(64, 50_000).min(*remaining);
                let chunk = memory_chunk(
                    env,
                    MemoryChunkSpec {
                        accesses: n,
                        pattern: offset_pattern(*pattern, *issued),
                        mlp: *mlp,
                        compute_per_access: *compute_per_access,
                        ipc: *ipc,
                        seed: seed.wrapping_add(*issued),
                    },
                );
                *issued += n;
                *remaining -= n;
                *est_access_time = (chunk.duration.as_secs() / n as f64).max(1e-11);
                Some(chunk)
            }
            WorkCursor::Store {
                remaining_lines,
                issued_lines,
                pattern,
                seed,
            } => {
                if *remaining_lines == 0 {
                    return None;
                }
                // Short chunks: write-path bandwidth reservations from
                // concurrent bursts then interleave fairly.
                let per_line = env.config.dram.core_fill_line_time.as_secs();
                let max_lines =
                    (env.config.chunk_target.as_secs() / 6.0 / per_line) as u64;
                let lines = (*remaining_lines).min(max_lines.max(16));
                let chunk = store_chunk(
                    env,
                    offset_pattern(*pattern, *issued_lines),
                    lines,
                    seed.wrapping_add(*issued_lines),
                );
                *issued_lines += lines;
                *remaining_lines -= lines;
                Some(chunk)
            }
        }
    }

    /// True if no work remains.
    #[must_use]
    pub fn is_finished(&self) -> bool {
        match self {
            WorkCursor::Compute { remaining, .. } => *remaining == 0,
            WorkCursor::Memory { remaining, .. } => *remaining == 0,
            WorkCursor::Store { remaining_lines, .. } => *remaining_lines == 0,
        }
    }
}

/// Shifts a pattern's base so successive chunks continue where the previous
/// one left off (streaming/strided patterns advance; random does not need
/// to).
fn offset_pattern(pattern: AccessPattern, issued: u64) -> AccessPattern {
    match pattern {
        AccessPattern::Streaming { base } => AccessPattern::Streaming {
            base: base + issued * 64,
        },
        strided @ AccessPattern::Strided { .. } => strided,
        random @ AccessPattern::Random { .. } => random,
    }
}

/// A 16-bit hash of (seed, index), used to jitter miss line addresses.
fn mix16(seed: u64, idx: u64) -> u64 {
    let mut z = seed ^ idx.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (z ^ (z >> 31)) & 0xFFFF
}

struct MemoryChunkSpec {
    accesses: u64,
    pattern: AccessPattern,
    mlp: f64,
    compute_per_access: f64,
    ipc: f64,
    seed: u64,
}

/// Times one load-dominated chunk and computes all counter estimates.
fn memory_chunk(env: &mut ChunkEnv<'_>, spec: MemoryChunkSpec) -> Chunk {
    let cm = &env.config.core_model;
    let f = env.freq.hz();
    let cycle = 1.0 / f;
    let a = spec.accesses;

    let mix = env
        .hierarchy
        .sample_mix(env.core, spec.pattern, spec.seed, a);
    let l2_count = a as f64 * mix.l2;
    let l3_count = a as f64 * mix.l3;
    let miss_count = (a as f64 * mix.dram).round() as u64;

    let width = spec.mlp.round().max(1.0) as u64;
    let rounds = miss_count.div_ceil(width.max(1));

    // --- Shared L3 hits: fixed uncore latency, partially hidden by the ROB
    // (hiding shrinks, in wall-clock terms, as core frequency rises).
    let l3_hit = env.config.l3_hit_time().as_secs();
    let l3_visible_unit = (l3_hit - cm.rob_hide_cycles * cycle).max(0.0);
    let l3_par = (spec.mlp * cm.l3_mlp_boost).clamp(1.0, 8.0);
    let l3_time = l3_count * l3_visible_unit / l3_par;

    // --- Scaling compute: the interleaved instructions, L2 hit service,
    // and per-round dependence gaps. Computed before the miss loop so the
    // per-round stall contribution can be folded in as rounds complete
    // instead of buffering every round's critical latency.
    let instructions = (a as f64 * spec.compute_per_access).round() as u64;
    let l2_cycles = f64::from(env.config.l2.latency_cycles);
    let compute_time = instructions as f64 / (spec.ipc * f)
        + l2_count * l2_cycles * cycle / 2.0
        + rounds as f64 * cm.round_gap_cycles * cycle;
    let compute_per_round = if rounds > 0 {
        compute_time / rounds as f64
    } else {
        0.0
    };
    let slack = cm.stall_slack_cycles * cycle;
    let round_gap = cm.round_gap_cycles * cycle;

    // --- DRAM miss rounds: `width` independent chains progress together;
    // rounds are serialized by dependence. Ground truth comes from the
    // per-round critical latency; the CRIT and leading-loads *counters*
    // observe the same (issue, completion) intervals through their
    // published streaming algorithms.
    //
    // This loop is the simulator's hottest code (profiling: >80% of a
    // single-point run at tens of millions of iterations), and it is
    // latency-bound on the serial FP dependence t_cursor → read →
    // round_max → t_cursor, so shaving instructions barely helps. Instead,
    // a chunk with more rounds than `dram_round_sample_cap` simulates only
    // that many rounds exactly and extrapolates the rest from the sample's
    // mean round timing (the cap guarantees every sampled round is
    // full-width, since `rounds > cap` implies `miss_count > cap * width`).
    let cap = u64::from(env.config.dram_round_sample_cap);
    let sim_rounds = if cap > 0 { rounds.min(cap) } else { rounds };
    let stats_before = env.dram.stats();
    let mut dram_time = 0.0; // ground truth: sum of per-round critical latency
    let mut stall = 0.0f64; // per-round stall, folded in round order
    let mut crit_est = super::CritEstimator::new();
    let mut ll_est = super::LeadingLoadsEstimator::new();
    let mut issued = 0u64;
    let mut t_cursor = env.now;
    // The representative-line cursor walks the sample buffer cyclically;
    // tracking it incrementally avoids a u64 modulo per miss.
    let n_lines = mix.dram_lines.len() as u64;
    let mut line_cursor = 0u64;
    for _ in 0..sim_rounds {
        let in_round = width.min(miss_count - issued);
        let mut round_max = 0.0f64;
        for k in 0..in_round {
            let idx = issued + k;
            // Spread successive misses across banks/rows with a cheap hash
            // of the request index (a linear stride would alias with the
            // bank interleave and create systematic conflicts).
            let base = if n_lines == 0 {
                idx
            } else {
                mix.dram_lines.get(line_cursor as usize)
            };
            line_cursor += 1;
            if line_cursor == n_lines {
                line_cursor = 0;
            }
            let line = base.wrapping_add(mix16(spec.seed, idx));
            let lat = env.dram.read(t_cursor, line).as_secs();
            crit_est.observe(t_cursor, t_cursor + TimeDelta::from_secs(lat));
            ll_est.observe(t_cursor, t_cursor + TimeDelta::from_secs(lat));
            round_max = round_max.max(lat);
        }
        issued += in_round;
        dram_time += round_max;
        stall += (round_max - compute_per_round - slack).max(0.0);
        // Advance the issue clock past this round plus its dependence gap.
        t_cursor += TimeDelta::from_secs(round_max + round_gap);
    }
    // Counter estimates from the simulated rounds (the estimators saw the
    // same miss stream the ground truth was built from, but through their
    // own algorithms).
    let mut crit = crit_est.non_scaling().as_secs();
    let mut ll = ll_est.non_scaling();
    if sim_rounds < rounds {
        // Extrapolate the unsimulated tail: remaining rounds are charged
        // the sampled rounds' mean timing, and the DRAM device is credited
        // the remaining reads so aggregate stats (read counts, row-hit
        // rate, mean latency) still describe the whole run.
        let grow = rounds as f64 / sim_rounds as f64;
        let tail = grow - 1.0;
        dram_time += dram_time * tail;
        stall += stall * tail;
        crit += crit * tail;
        ll += ll * tail;
        let sampled = env.dram.stats();
        let rem_misses = miss_count - issued;
        let miss_ratio = rem_misses as f64 / issued as f64;
        let hits = sampled.read_row_hits - stats_before.read_row_hits;
        env.dram.credit_extrapolated_reads(
            rem_misses,
            (hits as f64 * miss_ratio).round() as u64,
            (sampled.total_read_latency - stats_before.total_read_latency) * miss_ratio,
            (sampled.total_queue_delay - stats_before.total_queue_delay) * miss_ratio,
        );
    }

    // --- Composition: the OoO engine overlaps part of the compute under
    // outstanding misses.
    let overlap = compute_time.min(cm.overlap_frac * dram_time);
    let duration = compute_time + dram_time + l3_time - overlap;
    let scaling = compute_time - overlap;

    Chunk {
        duration: TimeDelta::from_secs(duration),
        scaling: TimeDelta::from_secs(scaling),
        counters: DvfsCounters {
            active: TimeDelta::from_secs(duration),
            crit: TimeDelta::from_secs(crit),
            leading_loads: ll,
            stall: TimeDelta::from_secs(stall),
            sq_full: TimeDelta::ZERO,
            instructions: instructions + a,
            loads: a,
            stores: 0,
            llc_misses: miss_count,
        },
    }
}

/// Times one store-burst chunk through the store queue.
fn store_chunk(
    env: &mut ChunkEnv<'_>,
    pattern: AccessPattern,
    lines: u64,
    seed: u64,
) -> Chunk {
    let f = env.freq.hz();
    let stores = lines * 8; // eight 8-byte stores per 64-byte line
    let issue_rate = env.config.store_issue_per_cycle * f;

    // Which levels absorb the lines? Lines that miss all caches drain
    // through the shared DRAM write path (slow, contended); lines hitting
    // on-chip caches retire quickly.
    let mix = env.hierarchy.sample_mix(env.core, pattern, seed, lines);
    let dram_lines = (lines as f64 * mix.dram).round() as u64;
    let dram_line_time = if dram_lines > 0 {
        let done = env.dram.drain_writes(env.now, dram_lines);
        let shared_path = done.since(env.now).as_secs() / dram_lines as f64;
        // One core's drain is additionally limited by its line-fill
        // buffers (RFO round trips), even when the shared path is idle.
        shared_path.max(env.config.dram.core_fill_line_time.as_secs())
    } else {
        0.0
    };
    let l3_line_time = env.config.l3_hit_time().as_secs() / 8.0;
    let l2_line_time = f64::from(env.config.l2.latency_cycles) / f / 4.0;
    let mean_line_time = mix.dram * dram_line_time
        + mix.l3 * l3_line_time
        + (mix.l1 + mix.l2) * l2_line_time;
    // Stores per second the memory system retires.
    let drain_rate = if mean_line_time > 0.0 {
        8.0 / mean_line_time
    } else {
        issue_rate * 16.0
    };

    let absorbed = env
        .store_queues
        .absorb(env.core.index(), env.now, stores as f64, issue_rate, drain_rate);
    let duration = absorbed.duration;
    let sq_full = absorbed.sq_full;
    let scaling = (duration - sq_full).clamp_non_negative();

    Chunk {
        duration,
        scaling,
        counters: DvfsCounters {
            active: duration,
            crit: TimeDelta::ZERO,
            leading_loads: TimeDelta::ZERO,
            // Commit blocks while the store queue is full; the stall-time
            // counter does observe that on real hardware.
            stall: sq_full,
            sq_full,
            instructions: stores,
            loads: 0,
            stores,
            llc_misses: 0,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::{Dram, MemoryHierarchy};

    fn env_parts() -> (MachineConfig, MemoryHierarchy, Dram, StoreQueues) {
        let config = MachineConfig::haswell_quad();
        let hierarchy = MemoryHierarchy::new(&config);
        let dram = Dram::new(config.dram);
        let sq = StoreQueues::new(config.store_queue_entries, config.cores);
        (config, hierarchy, dram, sq)
    }

    fn run_to_completion(item: WorkItem, ghz: f64) -> (TimeDelta, DvfsCounters) {
        let (config, mut hierarchy, mut dram, mut sq) = env_parts();
        let mut cursor = WorkCursor::new(item);
        let mut now = Time::ZERO;
        let mut total = DvfsCounters::zero();
        loop {
            let mut env = ChunkEnv {
                now,
                freq: Freq::from_ghz(ghz),
                core: CoreId(0),
                config: &config,
                hierarchy: &mut hierarchy,
                dram: &mut dram,
                store_queues: &mut sq,
            };
            match cursor.next_chunk(&mut env) {
                Some(chunk) => {
                    now += chunk.duration;
                    total += chunk.counters;
                }
                None => break,
            }
        }
        (now.since(Time::ZERO), total)
    }

    #[test]
    fn compute_scales_perfectly_with_frequency() {
        let item = WorkItem::Compute {
            instructions: 10_000_000,
            ipc: 2.0,
        };
        let (t1, c1) = run_to_completion(item, 1.0);
        let (t4, c4) = run_to_completion(item, 4.0);
        assert!((t1.as_secs() / t4.as_secs() - 4.0).abs() < 1e-9);
        assert_eq!(c1.instructions, 10_000_000);
        assert_eq!(c4.instructions, 10_000_000);
        assert_eq!(c1.crit, TimeDelta::ZERO);
    }

    #[test]
    fn dram_bound_work_barely_scales() {
        let item = WorkItem::Memory {
            accesses: 50_000,
            pattern: AccessPattern::Random {
                base: 0,
                working_set: 256 << 20,
            },
            mlp: 1.0,
            compute_per_access: 2.0,
            ipc: 2.0,
            seed: 7,
        };
        let (t1, c1) = run_to_completion(item, 1.0);
        let (t4, _) = run_to_completion(item, 4.0);
        let speedup = t1.as_secs() / t4.as_secs();
        assert!(
            speedup < 1.5,
            "pointer-chasing through DRAM should barely speed up, got {speedup}"
        );
        // CRIT should capture most of the non-scaling time.
        assert!(c1.crit > t1 * 0.5, "crit {} vs total {}", c1.crit, t1);
        assert!(c1.llc_misses > 40_000);
    }

    #[test]
    fn counter_estimates_are_bounded_by_crit() {
        // CRIT tracks the full critical path; leading-loads and stall-time
        // are both partial views of it, and none exceed the elapsed time.
        let item = WorkItem::Memory {
            accesses: 20_000,
            pattern: AccessPattern::Random {
                base: 0,
                working_set: 256 << 20,
            },
            mlp: 4.0,
            compute_per_access: 4.0,
            ipc: 2.0,
            seed: 3,
        };
        let (t, c) = run_to_completion(item, 2.0);
        let eps = TimeDelta::from_nanos(1.0);
        assert!(c.stall <= c.crit + eps);
        assert!(c.leading_loads <= c.crit + eps);
        assert!(c.crit <= t + eps);
        assert!(c.crit > TimeDelta::ZERO);
        // Leading loads misses the slow non-leading misses of each round.
        assert!(c.leading_loads < c.crit);
    }

    #[test]
    fn mlp_speeds_up_memory_work() {
        let mk = |mlp| WorkItem::Memory {
            accesses: 30_000,
            pattern: AccessPattern::Random {
                base: 0,
                working_set: 256 << 20,
            },
            mlp,
            compute_per_access: 1.0,
            ipc: 2.0,
            seed: 11,
        };
        let (serial, _) = run_to_completion(mk(1.0), 2.0);
        let (parallel, _) = run_to_completion(mk(8.0), 2.0);
        assert!(
            serial.as_secs() > 3.0 * parallel.as_secs(),
            "mlp=8 should be much faster: {serial} vs {parallel}"
        );
    }

    #[test]
    fn store_burst_is_drain_bound_and_flags_sq_full() {
        let item = WorkItem::StoreBurst {
            bytes: 8 << 20, // 8 MB zero-init
            pattern: AccessPattern::Streaming { base: 1 << 32 },
            seed: 1,
        };
        let (t1, c1) = run_to_completion(item, 1.0);
        let (t4, c4) = run_to_completion(item, 4.0);
        // Drain-bound: barely faster at 4 GHz.
        assert!(
            t1.as_secs() / t4.as_secs() < 1.4,
            "store burst should be memory-bound: {t1} vs {t4}"
        );
        // Store queue must saturate at both frequencies, more at 4 GHz.
        assert!(c1.sq_full > t1 * 0.3, "sq_full {} of {}", c1.sq_full, t1);
        assert!(c4.sq_full.ratio(t4) > c1.sq_full.ratio(t1));
        assert_eq!(c1.stores, (8 << 20) / 8);
    }

    #[test]
    fn cached_store_burst_does_not_stall() {
        // A tiny burst fits in L1/L2 after the first pass: re-run the same
        // small region so lines are resident.
        let (config, mut hierarchy, mut dram, mut sq) = env_parts();
        let pattern = AccessPattern::Strided {
            base: 0,
            stride: 64,
            working_set: 16 * 1024,
        };
        let mut total_sq_full = TimeDelta::ZERO;
        let mut now = Time::ZERO;
        for i in 0..4 {
            let mut cursor = WorkCursor::new(WorkItem::StoreBurst {
                bytes: 16 * 1024,
                pattern,
                seed: i,
            });
            let mut env = ChunkEnv {
                now,
                freq: Freq::from_ghz(2.0),
                core: CoreId(0),
                config: &config,
                hierarchy: &mut hierarchy,
                dram: &mut dram,
                store_queues: &mut sq,
            };
            while let Some(chunk) = cursor.next_chunk(&mut env) {
                env.now += chunk.duration;
                total_sq_full += chunk.counters.sq_full;
                now = env.now;
            }
        }
        // After warmup the lines are on-chip; drains keep up with issue.
        assert!(
            total_sq_full < TimeDelta::from_micros(200.0),
            "cached stores should not saturate the queue: {total_sq_full}"
        );
    }

    #[test]
    fn chunks_tile_the_work_item_exactly() {
        let (config, mut hierarchy, mut dram, mut sq) = env_parts();
        let mut cursor = WorkCursor::new(WorkItem::Memory {
            accesses: 12_345,
            pattern: AccessPattern::Streaming { base: 0 },
            mlp: 4.0,
            compute_per_access: 3.0,
            ipc: 2.0,
            seed: 9,
        });
        let mut loads = 0;
        let mut now = Time::ZERO;
        loop {
            let mut env = ChunkEnv {
                now,
                freq: Freq::from_ghz(3.0),
                core: CoreId(1),
                config: &config,
                hierarchy: &mut hierarchy,
                dram: &mut dram,
                store_queues: &mut sq,
            };
            match cursor.next_chunk(&mut env) {
                Some(c) => {
                    loads += c.counters.loads;
                    now += c.duration;
                }
                None => break,
            }
        }
        assert_eq!(loads, 12_345);
        assert!(cursor.is_finished());
    }

    #[test]
    fn syscall_cursor_charges_cycles() {
        let (t, c) = run_to_completion_cursor(WorkCursor::syscall(1200), 1.0);
        assert_eq!(c.instructions, 1200);
        assert!((t.as_nanos() - 1200.0).abs() < 1e-6);
    }

    mod round_sampling_properties {
        use super::*;
        use crate::mem::DramStats;
        use proptest::prelude::*;

        /// Runs `item` to completion on a fresh machine whose
        /// `dram_round_sample_cap` is `cap`, returning everything the cap
        /// could possibly perturb: elapsed time, the full counter set,
        /// and the DRAM device's aggregate statistics.
        fn run_with_cap(item: WorkItem, ghz: f64, cap: u32) -> (TimeDelta, DvfsCounters, DramStats) {
            let mut config = MachineConfig::haswell_quad();
            config.dram_round_sample_cap = cap;
            let mut hierarchy = MemoryHierarchy::new(&config);
            let mut dram = Dram::new(config.dram);
            let mut sq = StoreQueues::new(config.store_queue_entries, config.cores);
            let mut cursor = WorkCursor::new(item);
            let mut now = Time::ZERO;
            let mut total = DvfsCounters::zero();
            loop {
                let mut env = ChunkEnv {
                    now,
                    freq: Freq::from_ghz(ghz),
                    core: CoreId(0),
                    config: &config,
                    hierarchy: &mut hierarchy,
                    dram: &mut dram,
                    store_queues: &mut sq,
                };
                match cursor.next_chunk(&mut env) {
                    Some(chunk) => {
                        now += chunk.duration;
                        total += chunk.counters;
                    }
                    None => break,
                }
            }
            (now.since(Time::ZERO), total, dram.stats())
        }

        fn memory_item(accesses: u64, ws_log: u32, mlp: u8, seed: u64) -> WorkItem {
            WorkItem::Memory {
                accesses,
                pattern: AccessPattern::Random {
                    base: 0,
                    working_set: 1 << ws_log,
                },
                mlp: f64::from(mlp),
                compute_per_access: 2.0,
                ipc: 2.0,
                seed,
            }
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(12))]

            /// cap = 0 (sampling disabled) and a cap no chunk can exceed
            /// must take the exact same code path — both simulate every
            /// round — so their outputs are byte-identical down to the
            /// last f64 bit: time, every counter, every DRAM statistic.
            #[test]
            fn cap_zero_and_saturating_cap_are_byte_identical(
                accesses in 2_000u64..30_000,
                ws_log in 22u32..29,
                mlp in 1u8..=8,
                seed in 0u64..=u64::MAX,
            ) {
                let item = memory_item(accesses, ws_log, mlp, seed);
                let exact = run_with_cap(item, 2.0, 0);
                let saturating = run_with_cap(item, 2.0, u32::MAX);
                prop_assert_eq!(exact.0, saturating.0, "elapsed time diverged");
                prop_assert_eq!(exact.1, saturating.1, "counters diverged");
                prop_assert_eq!(exact.2, saturating.2, "DRAM stats diverged");
            }

            /// A tiny cap extrapolates almost every round, and
            /// `credit_extrapolated_reads` must keep the aggregate DRAM
            /// statistics describing the *whole* run: the device's read
            /// count equals the LLC-miss counter exactly (every miss is a
            /// DRAM read, simulated or credited), row hits never exceed
            /// reads, and the credited latencies stay physical.
            #[test]
            fn tiny_cap_conserves_aggregate_dram_read_stats(
                accesses in 5_000u64..30_000,
                ws_log in 26u32..29,
                mlp in 1u8..=8,
                cap in 1u32..12,
                seed in 0u64..=u64::MAX,
            ) {
                let item = memory_item(accesses, ws_log, mlp, seed);
                let (elapsed, counters, stats) = run_with_cap(item, 2.0, cap);
                prop_assert_eq!(
                    stats.reads, counters.llc_misses,
                    "extrapolated reads must be credited back to the device"
                );
                prop_assert!(stats.read_row_hits <= stats.reads);
                prop_assert!(stats.total_read_latency >= TimeDelta::ZERO);
                prop_assert!(stats.total_queue_delay >= TimeDelta::ZERO);
                if stats.reads > 0 {
                    prop_assert!(
                        stats.total_read_latency > TimeDelta::ZERO,
                        "credited reads must carry latency"
                    );
                }
                prop_assert!(elapsed > TimeDelta::ZERO);
            }
        }
    }

    fn run_to_completion_cursor(mut cursor: WorkCursor, ghz: f64) -> (TimeDelta, DvfsCounters) {
        let (config, mut hierarchy, mut dram, mut sq) = env_parts();
        let mut now = Time::ZERO;
        let mut total = DvfsCounters::zero();
        loop {
            let mut env = ChunkEnv {
                now,
                freq: Freq::from_ghz(ghz),
                core: CoreId(0),
                config: &config,
                hierarchy: &mut hierarchy,
                dram: &mut dram,
                store_queues: &mut sq,
            };
            match cursor.next_chunk(&mut env) {
                Some(chunk) => {
                    now += chunk.duration;
                    total += chunk.counters;
                }
                None => break,
            }
        }
        (now.since(Time::ZERO), total)
    }
}
