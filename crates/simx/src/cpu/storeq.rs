//! The store-queue occupancy model (paper §III-D).
//!
//! Committed stores park in a finite store queue until the memory hierarchy
//! retires them. Isolated store misses are invisible to performance (load
//! bypassing and store-to-load forwarding hide them), but a *burst* of
//! stores fills the queue, after which the pipeline stalls at the memory
//! drain rate — time that does not scale with frequency. The paper's BURST
//! component introduces a hardware counter for exactly this "store queue
//! full" time; this module computes both the ground-truth timing and that
//! counter from a fluid model of queue occupancy.

use dvfs_trace::{Time, TimeDelta};

/// Result of absorbing a batch of stores through the queue.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AbsorbResult {
    /// Wall-clock time until the core has issued every store of the batch
    /// into the queue (the core is free to continue after this).
    pub duration: TimeDelta,
    /// Portion of `duration` during which the queue was full and the
    /// pipeline was therefore stalled (non-scaling; the BURST counter).
    pub sq_full: TimeDelta,
}

/// Fluid-approximation store queue: tracks fractional occupancy in stores.
#[derive(Debug, Clone, Copy)]
pub struct StoreQueue {
    capacity: f64,
    level: f64,
    last_update: Time,
}

impl StoreQueue {
    /// An empty queue with `entries` slots.
    #[must_use]
    pub fn new(entries: u32) -> Self {
        StoreQueue {
            capacity: f64::from(entries),
            level: 0.0,
            last_update: Time::ZERO,
        }
    }

    /// Current occupancy in stores.
    #[must_use]
    pub fn level(&self) -> f64 {
        self.level
    }

    /// The queue's configured capacity in stores (the occupancy invariant:
    /// [`StoreQueue::level`] must never exceed this).
    #[must_use]
    pub fn capacity(&self) -> f64 {
        self.capacity
    }

    /// Drains the queue in the background for the elapsed time since the
    /// last update, at `drain_rate` stores/second.
    pub fn decay(&mut self, now: Time, drain_rate: f64) {
        if now > self.last_update {
            let elapsed = now.since(self.last_update).as_secs();
            self.level = (self.level - elapsed * drain_rate).max(0.0);
        }
        self.last_update = now.max(self.last_update);
    }

    /// Absorbs `stores` stores starting at `now`, issued by the core at
    /// `issue_rate` stores/second and drained by memory at `drain_rate`
    /// stores/second. Returns the time until the last store enters the
    /// queue and how long the queue was full along the way.
    ///
    /// Fluid model: occupancy rises at `issue_rate - drain_rate` until it
    /// hits capacity; from then on the core can only issue at the drain
    /// rate (pipeline stalled on a full queue).
    pub fn absorb(
        &mut self,
        now: Time,
        stores: f64,
        issue_rate: f64,
        drain_rate: f64,
    ) -> AbsorbResult {
        assert!(issue_rate > 0.0, "issue rate must be positive");
        assert!(drain_rate > 0.0, "drain rate must be positive");
        self.decay(now, drain_rate);

        let net = issue_rate - drain_rate;
        let (duration, sq_full) = if net <= 0.0 {
            // Memory keeps up: never fills beyond the current level.
            let d = stores / issue_rate;
            self.level = (self.level + stores - d * drain_rate).max(0.0);
            (d, 0.0)
        } else {
            let headroom = (self.capacity - self.level).max(0.0);
            let t_fill = headroom / net;
            let stores_until_full = t_fill * issue_rate;
            if stores <= stores_until_full {
                // Finished issuing before the queue filled.
                let d = stores / issue_rate;
                self.level = (self.level + stores - d * drain_rate).min(self.capacity);
                (d, 0.0)
            } else {
                // Queue fills; the rest is issued at the drain rate.
                let remaining = stores - stores_until_full;
                let full_time = remaining / drain_rate;
                self.level = self.capacity;
                (t_fill + full_time, full_time)
            }
        };
        self.last_update = now + TimeDelta::from_secs(duration);
        AbsorbResult {
            duration: TimeDelta::from_secs(duration),
            sq_full: TimeDelta::from_secs(sq_full),
        }
    }
}

/// All cores' store queues, struct-of-arrays: one shared capacity (the
/// queues are architecturally identical) plus per-core occupancy columns,
/// preallocated at machine construction. The scalar fluid model lives in
/// [`StoreQueue`]; this collection loads one core's slots into a register
/// copy, runs the same model, and writes the slots back — so the per-core
/// and scalar paths cannot drift apart.
#[derive(Debug, Clone)]
pub struct StoreQueues {
    capacity: f64,
    level: Vec<f64>,
    last_update: Vec<Time>,
}

impl StoreQueues {
    /// Empty queues with `entries` slots each for `cores` cores.
    #[must_use]
    pub fn new(entries: u32, cores: usize) -> Self {
        StoreQueues {
            capacity: f64::from(entries),
            level: vec![0.0; cores],
            last_update: vec![Time::ZERO; cores],
        }
    }

    /// Number of store queues (one per core).
    #[must_use]
    pub fn len(&self) -> usize {
        self.level.len()
    }

    /// True if the bank has no queues.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.level.is_empty()
    }

    /// Core `c`'s current occupancy in stores.
    #[must_use]
    pub fn level(&self, c: usize) -> f64 {
        self.level[c]
    }

    /// The configured capacity in stores (shared by all queues; the
    /// occupancy invariant: no level may exceed this).
    #[must_use]
    pub fn capacity(&self) -> f64 {
        self.capacity
    }

    /// Runs the scalar model `f` against core `c`'s queue state.
    fn with_queue<R>(&mut self, c: usize, f: impl FnOnce(&mut StoreQueue) -> R) -> R {
        let mut q = StoreQueue {
            capacity: self.capacity,
            level: self.level[c],
            last_update: self.last_update[c],
        };
        let r = f(&mut q);
        self.level[c] = q.level;
        self.last_update[c] = q.last_update;
        r
    }

    /// [`StoreQueue::decay`] applied to core `c`'s queue.
    pub fn decay(&mut self, c: usize, now: Time, drain_rate: f64) {
        self.with_queue(c, |q| q.decay(now, drain_rate));
    }

    /// [`StoreQueue::absorb`] applied to core `c`'s queue.
    pub fn absorb(
        &mut self,
        c: usize,
        now: Time,
        stores: f64,
        issue_rate: f64,
        drain_rate: f64,
    ) -> AbsorbResult {
        self.with_queue(c, |q| q.absorb(now, stores, issue_rate, drain_rate))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CAP: u32 = 42;

    #[test]
    fn fast_memory_never_fills() {
        let mut q = StoreQueue::new(CAP);
        // Drain faster than issue: purely issue-bound, no stall.
        let r = q.absorb(Time::ZERO, 1000.0, 1e9, 2e9);
        assert!((r.duration.as_micros() - 1.0).abs() < 1e-9);
        assert_eq!(r.sq_full, TimeDelta::ZERO);
        assert_eq!(q.level(), 0.0);
    }

    #[test]
    fn slow_memory_fills_then_stalls() {
        let mut q = StoreQueue::new(CAP);
        // Issue 4e9 stores/s, drain 1e9 stores/s: fills 42 entries in 14 ns.
        let r = q.absorb(Time::ZERO, 10_000.0, 4e9, 1e9);
        let t_fill = 42.0 / 3e9;
        let stores_until_full = t_fill * 4e9;
        let expect_full = (10_000.0 - stores_until_full) / 1e9;
        assert!((r.sq_full.as_secs() - expect_full).abs() < 1e-15);
        assert!((r.duration.as_secs() - (t_fill + expect_full)).abs() < 1e-15);
        assert!((q.level() - 42.0).abs() < 1e-9);
    }

    #[test]
    fn small_burst_fits_without_stall() {
        let mut q = StoreQueue::new(CAP);
        let r = q.absorb(Time::ZERO, 20.0, 4e9, 1e9);
        assert_eq!(r.sq_full, TimeDelta::ZERO);
        assert!(q.level() > 0.0 && q.level() < 42.0);
    }

    #[test]
    fn decay_empties_queue_over_time() {
        let mut q = StoreQueue::new(CAP);
        q.absorb(Time::ZERO, 40.0, 1e12, 1e9); // nearly instant issue, queue ~40
        let lvl = q.level();
        assert!(lvl > 30.0);
        q.decay(Time::from_secs(1e-6), 1e9); // 1 us at 1e9/s drains 1000 >> 40
        assert_eq!(q.level(), 0.0);
    }

    #[test]
    fn pre_filled_queue_stalls_sooner() {
        let mut fresh = StoreQueue::new(CAP);
        let mut warm = StoreQueue::new(CAP);
        warm.absorb(Time::ZERO, 30.0, 1e12, 1.0); // leave ~30 in queue
        let burst = 500.0;
        let a = fresh.absorb(Time::from_secs(1e-9), burst, 4e9, 1e9);
        let b = warm.absorb(Time::from_secs(1e-9), burst, 4e9, 1e9);
        assert!(
            b.sq_full > a.sq_full,
            "warm queue must stall longer: {:?} vs {:?}",
            b.sq_full,
            a.sq_full
        );
    }

    #[test]
    fn duration_is_at_least_issue_bound_and_at_most_drain_bound() {
        let mut q = StoreQueue::new(CAP);
        let stores = 5_000.0;
        let (issue, drain) = (4e9, 1e9);
        let r = q.absorb(Time::ZERO, stores, issue, drain);
        assert!(r.duration.as_secs() >= stores / issue - 1e-15);
        assert!(r.duration.as_secs() <= stores / drain + 1e-15);
    }

    #[test]
    fn soa_bank_matches_scalar_queue_exactly() {
        let mut bank = StoreQueues::new(CAP, 3);
        let mut scalar = StoreQueue::new(CAP);
        // Interleave operations on several cores; core 1 must track the
        // scalar queue bit-for-bit, and its neighbours stay untouched.
        let a = bank.absorb(1, Time::ZERO, 10_000.0, 4e9, 1e9);
        let b = scalar.absorb(Time::ZERO, 10_000.0, 4e9, 1e9);
        assert_eq!(a, b);
        bank.absorb(0, Time::ZERO, 500.0, 4e9, 1e9);
        bank.decay(1, Time::from_secs(1e-6), 1e9);
        scalar.decay(Time::from_secs(1e-6), 1e9);
        assert_eq!(bank.level(1).to_bits(), scalar.level().to_bits());
        assert_eq!(bank.level(2), 0.0);
        assert_eq!(bank.capacity(), f64::from(CAP));
    }
}
