//! The hardware cores: each executes at most one thread's chunk at a time.
//!
//! Per-core state lives in a struct-of-arrays [`CoreBank`] rather than a
//! `Vec` of per-core structs: the event loop touches one field family at a
//! time (generation guards on every `ChunkDone`, busy time on every commit,
//! slice generations on every reschedule), and the SoA layout keeps each
//! family densely packed in host cache lines. All vectors are allocated
//! once at machine construction and never grow.

use depburst_core::DepburstError;
use dvfs_trace::{CoreId, DvfsCounters, ThreadId, Time};

use super::Chunk;

/// The chunk currently in flight on a core.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Running {
    /// The software thread executing.
    pub thread: ThreadId,
    /// The chunk being executed.
    pub chunk: Chunk,
    /// When the chunk started.
    pub started: Time,
}

impl Running {
    /// When the chunk will complete (absent interruptions).
    #[must_use]
    pub fn finish_time(&self) -> Time {
        self.started + self.chunk.duration
    }

    /// Fraction of the chunk elapsed at `now`, clamped to [0, 1].
    /// (`now` may precede `started` during a DVFS transition stall.)
    #[must_use]
    pub fn fraction_at(&self, now: Time) -> f64 {
        let d = self.chunk.duration.as_secs();
        if d <= 0.0 {
            1.0
        } else {
            ((now - self.started).as_secs() / d).clamp(0.0, 1.0)
        }
    }

    /// Counter increments accrued by `now` (linear interpolation).
    #[must_use]
    pub fn counters_at(&self, now: Time) -> DvfsCounters {
        self.chunk.counters_at_fraction(self.fraction_at(now))
    }
}

/// All cores of the simulated chip, struct-of-arrays. Core `c` everywhere
/// is the index into every column; its identity is `CoreId(c as u8)`.
#[derive(Debug)]
pub struct CoreBank {
    /// The in-flight chunk per core, if busy.
    running: Vec<Option<Running>>,
    /// A thread that occupies the core *between* chunks (its chunk just
    /// finished and the machine is deciding what it does next). Keeps the
    /// core from being handed to another thread mid-decision.
    reserved: Vec<Option<ThreadId>>,
    /// Monotone stamp guarding against stale `ChunkDone` events: bumped
    /// every time the core's occupancy changes.
    generation: Vec<u64>,
    /// When the running thread was last scheduled onto this core
    /// (time-slice accounting).
    slice_start: Vec<Time>,
    /// Per-core slice generation (survives chunk boundaries; bumped when
    /// the core's *thread* changes). Guards stale `TimeSlice` events.
    slice_gen: Vec<u64>,
    /// Per-core accumulated busy time (for per-core energy accounting).
    busy: Vec<dvfs_trace::TimeDelta>,
    /// Per-slice counter accumulator: the resident thread's cumulative
    /// counters (committed chunks only). Loaded from the thread at
    /// schedule-in, added to on every chunk commit while the thread stays
    /// on the core, and stored back to the thread when it leaves — so the
    /// hot commit path writes one slot that is already in cache instead of
    /// chasing into the thread table per event.
    slice_total: Vec<DvfsCounters>,
}

impl CoreBank {
    /// A bank of `n` idle cores.
    ///
    /// # Panics
    /// Panics if `n` does not fit the 8-bit [`CoreId`] space.
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(n <= usize::from(u8::MAX) + 1, "core index must fit in u8");
        CoreBank {
            running: vec![None; n],
            reserved: vec![None; n],
            generation: vec![0; n],
            slice_start: vec![Time::ZERO; n],
            slice_gen: vec![0; n],
            busy: vec![dvfs_trace::TimeDelta::ZERO; n],
            slice_total: vec![DvfsCounters::default(); n],
        }
    }

    /// Number of cores in the bank.
    #[must_use]
    pub fn len(&self) -> usize {
        self.running.len()
    }

    /// True if the bank has no cores.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.running.is_empty()
    }

    /// The identity of core `c`.
    #[must_use]
    pub fn id(&self, c: usize) -> CoreId {
        CoreId(c as u8)
    }

    /// True if no thread occupies core `c`.
    #[must_use]
    pub fn is_idle(&self, c: usize) -> bool {
        self.running[c].is_none() && self.reserved[c].is_none()
    }

    /// The thread currently occupying core `c` (running or reserved).
    #[must_use]
    pub fn occupant(&self, c: usize) -> Option<ThreadId> {
        self.running[c].as_ref().map(|r| r.thread).or(self.reserved[c])
    }

    /// Core `c`'s current generation stamp.
    #[must_use]
    pub fn generation(&self, c: usize) -> u64 {
        self.generation[c]
    }

    /// Core `c`'s current slice generation.
    #[must_use]
    pub fn slice_gen(&self, c: usize) -> u64 {
        self.slice_gen[c]
    }

    /// Bumps core `c`'s slice generation; returns the new value.
    pub fn bump_slice_gen(&mut self, c: usize) -> u64 {
        self.slice_gen[c] += 1;
        self.slice_gen[c]
    }

    /// The in-flight chunk on core `c`, if any.
    #[must_use]
    pub fn running(&self, c: usize) -> Option<&Running> {
        self.running[c].as_ref()
    }

    /// Adds committed busy time to core `c`.
    pub fn add_busy(&mut self, c: usize, delta: dvfs_trace::TimeDelta) {
        self.busy[c] += delta;
    }

    /// Committed busy time per core (excludes in-flight chunk progress).
    #[must_use]
    pub fn busy_snapshot(&self) -> Vec<dvfs_trace::TimeDelta> {
        self.busy.clone()
    }

    /// The resident thread's accumulated counters on core `c` (committed
    /// chunks only; in-flight progress is interpolated by the caller).
    #[must_use]
    pub fn slice_total(&self, c: usize) -> DvfsCounters {
        self.slice_total[c]
    }

    /// Accumulates a committed chunk's counters into core `c`'s slice
    /// accumulator. Must mirror every busy-time commit while a thread is
    /// resident — the invariant monitor's counter-conservation check
    /// catches a missed commit.
    pub fn add_slice_counters(&mut self, c: usize, counters: DvfsCounters) {
        self.slice_total[c] += counters;
    }

    /// Claims core `c` for `thread` at `now`, seeding the slice accumulator
    /// with the thread's counters so subsequent commits extend the same
    /// running total the thread table held.
    pub fn reserve(&mut self, c: usize, thread: ThreadId, now: Time, counters: DvfsCounters) {
        self.reserved[c] = Some(thread);
        self.slice_start[c] = now;
        self.slice_total[c] = counters;
    }

    /// Starts `chunk` for `thread` on core `c`; returns the new generation
    /// stamp to attach to the completion event.
    pub fn start_chunk(&mut self, c: usize, thread: ThreadId, chunk: Chunk, now: Time) -> u64 {
        debug_assert!(self.running[c].is_none(), "core {c} already busy");
        debug_assert!(
            self.reserved[c].is_none() || self.reserved[c] == Some(thread),
            "core {c} reserved for another thread"
        );
        self.reserved[c] = None;
        self.generation[c] += 1;
        self.running[c] = Some(Running {
            thread,
            chunk,
            started: now,
        });
        self.generation[c]
    }

    /// Completes the in-flight chunk on core `c`; the core stays reserved
    /// for the thread until it starts another chunk or releases the core.
    ///
    /// # Errors
    /// [`DepburstError::CoreProtocol`] if the core has no chunk in flight —
    /// a protocol violation by the caller (e.g. a stale completion event
    /// that slipped past the generation guard), reported instead of
    /// panicking so a faulted run can keep going.
    pub fn finish_chunk(&mut self, c: usize) -> Result<Running, DepburstError> {
        self.generation[c] += 1;
        let Some(running) = self.running[c].take() else {
            return Err(DepburstError::CoreProtocol {
                core: c as u8,
                detail: "finish_chunk on idle core",
            });
        };
        self.reserved[c] = Some(running.thread);
        Ok(running)
    }

    /// Releases core `c` entirely (thread blocked or exited).
    pub fn release(&mut self, c: usize) {
        self.generation[c] += 1;
        self.running[c] = None;
        self.reserved[c] = None;
    }

    /// Interrupts the in-flight chunk on core `c` at `now`; returns the
    /// completed part (for counter accounting) and the remaining part (to
    /// resume later). The core is left fully idle.
    pub fn interrupt(&mut self, c: usize, now: Time) -> Option<(ThreadId, Chunk, Chunk)> {
        let running = self.running[c].take()?;
        self.reserved[c] = None;
        self.generation[c] += 1;
        let frac = running.fraction_at(now);
        let (done, rest) = running.chunk.split(frac);
        Some((running.thread, done, rest))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvfs_trace::TimeDelta;

    fn chunk_us(us: f64) -> Chunk {
        Chunk::compute(TimeDelta::from_micros(us), (us * 1000.0) as u64)
    }

    #[test]
    fn lifecycle_start_finish() {
        let mut bank = CoreBank::new(1);
        assert!(bank.is_idle(0));
        let g1 = bank.start_chunk(0, ThreadId(5), chunk_us(10.0), Time::ZERO);
        assert!(!bank.is_idle(0));
        let running = *bank.running(0).expect("busy");
        assert_eq!(running.thread, ThreadId(5));
        assert!((running.finish_time().as_secs() - 10e-6).abs() < 1e-15);
        let done = bank.finish_chunk(0).expect("chunk in flight");
        assert_eq!(done.thread, ThreadId(5));
        // Between chunks the core stays reserved for the thread.
        assert!(!bank.is_idle(0));
        assert_eq!(bank.occupant(0), Some(ThreadId(5)));
        bank.release(0);
        assert!(bank.is_idle(0));
        assert!(bank.generation(0) > g1);
    }

    #[test]
    fn finish_on_idle_core_is_a_protocol_error() {
        let mut bank = CoreBank::new(5);
        let err = bank.finish_chunk(4).expect_err("idle core");
        assert_eq!(
            err,
            DepburstError::CoreProtocol {
                core: 4,
                detail: "finish_chunk on idle core",
            }
        );
    }

    #[test]
    fn interpolation_midway() {
        let mut bank = CoreBank::new(2);
        bank.start_chunk(1, ThreadId(1), chunk_us(10.0), Time::ZERO);
        let r = *bank.running(1).expect("busy");
        let mid = Time::from_secs(5e-6);
        assert!((r.fraction_at(mid) - 0.5).abs() < 1e-12);
        let c = r.counters_at(mid);
        assert!((c.active.as_micros() - 5.0).abs() < 1e-9);
        assert_eq!(c.instructions, 5000);
    }

    #[test]
    fn interrupt_splits_chunk() {
        let mut bank = CoreBank::new(3);
        bank.start_chunk(2, ThreadId(7), chunk_us(20.0), Time::ZERO);
        let (tid, done, rest) = bank
            .interrupt(2, Time::from_secs(15e-6))
            .expect("was running");
        assert_eq!(tid, ThreadId(7));
        assert!((done.duration.as_micros() - 15.0).abs() < 1e-9);
        assert!((rest.duration.as_micros() - 5.0).abs() < 1e-9);
        assert!(bank.is_idle(2));
        assert!(bank.interrupt(2, Time::ZERO).is_none());
    }

    #[test]
    fn fraction_clamps_outside_chunk() {
        let mut bank = CoreBank::new(4);
        bank.start_chunk(3, ThreadId(1), chunk_us(10.0), Time::from_secs(1.0));
        let r = bank.running(3).expect("busy");
        assert_eq!(r.fraction_at(Time::from_secs(0.5)), 0.0);
        assert_eq!(r.fraction_at(Time::from_secs(2.0)), 1.0);
    }

    #[test]
    fn slice_accumulator_round_trips_through_reserve() {
        let mut bank = CoreBank::new(2);
        let mut base = DvfsCounters::default();
        base.instructions = 1000;
        bank.reserve(0, ThreadId(3), Time::ZERO, base);
        assert_eq!(bank.occupant(0), Some(ThreadId(3)));
        let mut delta = DvfsCounters::default();
        delta.instructions = 234;
        bank.add_slice_counters(0, delta);
        assert_eq!(bank.slice_total(0).instructions, 1234);
        // A later reserve for another thread replaces, not extends.
        bank.release(0);
        bank.reserve(0, ThreadId(4), Time::ZERO, DvfsCounters::default());
        assert_eq!(bank.slice_total(0).instructions, 0);
    }

    #[test]
    fn slice_generations_are_independent_per_core() {
        let mut bank = CoreBank::new(3);
        assert_eq!(bank.bump_slice_gen(1), 1);
        assert_eq!(bank.bump_slice_gen(1), 2);
        assert_eq!(bank.slice_gen(0), 0);
        assert_eq!(bank.slice_gen(2), 0);
        assert_eq!(bank.id(2), CoreId(2));
    }
}
