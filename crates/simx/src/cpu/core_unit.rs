//! A hardware core: executes at most one thread's chunk at a time.

use depburst_core::DepburstError;
use dvfs_trace::{CoreId, DvfsCounters, ThreadId, Time};

use super::Chunk;

/// The chunk currently in flight on a core.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Running {
    /// The software thread executing.
    pub thread: ThreadId,
    /// The chunk being executed.
    pub chunk: Chunk,
    /// When the chunk started.
    pub started: Time,
}

impl Running {
    /// When the chunk will complete (absent interruptions).
    #[must_use]
    pub fn finish_time(&self) -> Time {
        self.started + self.chunk.duration
    }

    /// Fraction of the chunk elapsed at `now`, clamped to [0, 1].
    /// (`now` may precede `started` during a DVFS transition stall.)
    #[must_use]
    pub fn fraction_at(&self, now: Time) -> f64 {
        let d = self.chunk.duration.as_secs();
        if d <= 0.0 {
            1.0
        } else {
            ((now - self.started).as_secs() / d).clamp(0.0, 1.0)
        }
    }

    /// Counter increments accrued by `now` (linear interpolation).
    #[must_use]
    pub fn counters_at(&self, now: Time) -> DvfsCounters {
        self.chunk.counters_at_fraction(self.fraction_at(now))
    }
}

/// One core of the simulated chip.
#[derive(Debug)]
pub struct Core {
    /// The core's identity.
    pub id: CoreId,
    /// The in-flight chunk, if the core is busy.
    pub running: Option<Running>,
    /// A thread that occupies the core *between* chunks (its chunk just
    /// finished and the machine is deciding what it does next). Keeps the
    /// core from being handed to another thread mid-decision.
    pub reserved: Option<ThreadId>,
    /// Monotone stamp guarding against stale `ChunkDone`/`TimeSlice`
    /// events: bumped every time the core's occupancy changes.
    pub generation: u64,
    /// When the running thread was last scheduled onto this core
    /// (time-slice accounting).
    pub slice_start: Time,
}

impl Core {
    /// An idle core.
    #[must_use]
    pub fn new(id: CoreId) -> Self {
        Core {
            id,
            running: None,
            reserved: None,
            generation: 0,
            slice_start: Time::ZERO,
        }
    }

    /// True if no thread occupies the core.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.running.is_none() && self.reserved.is_none()
    }

    /// The thread currently occupying the core (running or reserved).
    #[must_use]
    pub fn occupant(&self) -> Option<ThreadId> {
        self.running.as_ref().map(|r| r.thread).or(self.reserved)
    }

    /// Starts `chunk` for `thread`; returns the new generation stamp to
    /// attach to the completion event.
    pub fn start_chunk(&mut self, thread: ThreadId, chunk: Chunk, now: Time) -> u64 {
        debug_assert!(self.running.is_none(), "core {} already busy", self.id);
        debug_assert!(
            self.reserved.is_none() || self.reserved == Some(thread),
            "core {} reserved for another thread",
            self.id
        );
        self.reserved = None;
        self.generation += 1;
        self.running = Some(Running {
            thread,
            chunk,
            started: now,
        });
        self.generation
    }

    /// Completes the in-flight chunk; the core stays reserved for the
    /// thread until it starts another chunk or releases the core.
    ///
    /// # Errors
    /// [`DepburstError::CoreProtocol`] if the core has no chunk in flight —
    /// a protocol violation by the caller (e.g. a stale completion event
    /// that slipped past the generation guard), reported instead of
    /// panicking so a faulted run can keep going.
    pub fn finish_chunk(&mut self) -> Result<Running, DepburstError> {
        self.generation += 1;
        let Some(running) = self.running.take() else {
            return Err(DepburstError::CoreProtocol {
                core: self.id.0,
                detail: "finish_chunk on idle core",
            });
        };
        self.reserved = Some(running.thread);
        Ok(running)
    }

    /// Releases the core entirely (thread blocked or exited).
    pub fn release(&mut self) {
        self.generation += 1;
        self.running = None;
        self.reserved = None;
    }

    /// Interrupts the in-flight chunk at `now`; returns the completed part
    /// (for counter accounting) and the remaining part (to resume later).
    /// The core is left fully idle.
    pub fn interrupt(&mut self, now: Time) -> Option<(ThreadId, Chunk, Chunk)> {
        let running = self.running.take()?;
        self.reserved = None;
        self.generation += 1;
        let frac = running.fraction_at(now);
        let (done, rest) = running.chunk.split(frac);
        Some((running.thread, done, rest))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvfs_trace::TimeDelta;

    fn chunk_us(us: f64) -> Chunk {
        Chunk::compute(TimeDelta::from_micros(us), (us * 1000.0) as u64)
    }

    #[test]
    fn lifecycle_start_finish() {
        let mut core = Core::new(CoreId(0));
        assert!(core.is_idle());
        let g1 = core.start_chunk(ThreadId(5), chunk_us(10.0), Time::ZERO);
        assert!(!core.is_idle());
        let running = core.running.expect("busy");
        assert_eq!(running.thread, ThreadId(5));
        assert!((running.finish_time().as_secs() - 10e-6).abs() < 1e-15);
        let done = core.finish_chunk().expect("chunk in flight");
        assert_eq!(done.thread, ThreadId(5));
        // Between chunks the core stays reserved for the thread.
        assert!(!core.is_idle());
        assert_eq!(core.occupant(), Some(ThreadId(5)));
        core.release();
        assert!(core.is_idle());
        assert!(core.generation > g1);
    }

    #[test]
    fn finish_on_idle_core_is_a_protocol_error() {
        let mut core = Core::new(CoreId(4));
        let err = core.finish_chunk().expect_err("idle core");
        assert_eq!(
            err,
            DepburstError::CoreProtocol {
                core: 4,
                detail: "finish_chunk on idle core",
            }
        );
    }

    #[test]
    fn interpolation_midway() {
        let mut core = Core::new(CoreId(1));
        core.start_chunk(ThreadId(1), chunk_us(10.0), Time::ZERO);
        let r = core.running.expect("busy");
        let mid = Time::from_secs(5e-6);
        assert!((r.fraction_at(mid) - 0.5).abs() < 1e-12);
        let c = r.counters_at(mid);
        assert!((c.active.as_micros() - 5.0).abs() < 1e-9);
        assert_eq!(c.instructions, 5000);
    }

    #[test]
    fn interrupt_splits_chunk() {
        let mut core = Core::new(CoreId(2));
        core.start_chunk(ThreadId(7), chunk_us(20.0), Time::ZERO);
        let (tid, done, rest) = core
            .interrupt(Time::from_secs(15e-6))
            .expect("was running");
        assert_eq!(tid, ThreadId(7));
        assert!((done.duration.as_micros() - 15.0).abs() < 1e-9);
        assert!((rest.duration.as_micros() - 5.0).abs() < 1e-9);
        assert!(core.is_idle());
        assert!(core.interrupt(Time::ZERO).is_none());
    }

    #[test]
    fn fraction_clamps_outside_chunk() {
        let mut core = Core::new(CoreId(3));
        core.start_chunk(ThreadId(1), chunk_us(10.0), Time::from_secs(1.0));
        let r = core.running.expect("busy");
        assert_eq!(r.fraction_at(Time::from_secs(0.5)), 0.0);
        assert_eq!(r.fraction_at(Time::from_secs(2.0)), 1.0);
    }
}
