//! Sanitizer-style runtime invariant monitor.
//!
//! The DEP+BURST method rests on counters that must stay self-consistent:
//! a CRIT estimate silently exceeding elapsed cycles or a GC pause that is
//! not conserved across the stop-the-world handoff corrupts every
//! downstream figure without failing a single functional test. This module
//! provides an always-available, zero-cost-when-off [`Monitor`] that the
//! machine (and, through it, the managed runtime and the energy manager)
//! consults at well-defined checkpoints.
//!
//! Every check is a named [`Invariant`] with a tier: `cheap` checks are
//! O(1)-per-harvest accounting identities, `full` adds walks over the
//! cache hierarchy, store queues and predictor outputs. The active tier
//! comes from the `DEPBURST_INVARIANTS` environment variable
//! (`off|cheap|full`, default `off`) or programmatically via
//! [`Monitor::new`]; individual checks can be suppressed with a
//! comma-separated `DEPBURST_INVARIANTS_SKIP` list of invariant names.
//!
//! Violations are recorded (bounded) rather than panicking, and surface as
//! `DepburstError::InvariantViolation` at run boundaries so the harness's
//! failure-report machinery can quarantine and report them. A test-only
//! *sabotage* hook deliberately weakens one named check so CI can prove
//! the monitor catches and the fuzzer shrinks a real violation.

use core::fmt;

use dvfs_trace::{ExecutionTrace, PhaseKind, TimeDelta};

/// How deep the invariant monitor checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum InvariantMode {
    /// No checks at all; the monitored code paths are byte-identical to an
    /// un-instrumented build (a handful of always-false branches).
    #[default]
    Off,
    /// O(1)-per-harvest accounting identities: event-time monotonicity,
    /// counter conservation, GC pause accounting, ladder membership, V/f
    /// monotonicity.
    Cheap,
    /// Everything in `cheap` plus cache-hierarchy walks, store-queue
    /// occupancy, and predictor-output bound checks.
    Full,
}

impl InvariantMode {
    /// Parses `off` / `cheap` / `full` (ASCII case-insensitive).
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s.trim().to_ascii_lowercase().as_str() {
            "off" | "0" | "" => Some(InvariantMode::Off),
            "cheap" => Some(InvariantMode::Cheap),
            "full" | "1" => Some(InvariantMode::Full),
            _ => None,
        }
    }

    /// The mode the `DEPBURST_INVARIANTS` environment variable selects
    /// (default [`InvariantMode::Off`]; unparsable values are `Off` too, so
    /// a typo can never slow a production sweep down).
    #[must_use]
    pub fn from_env() -> Self {
        match std::env::var("DEPBURST_INVARIANTS") {
            Ok(v) => Self::parse(&v).unwrap_or(InvariantMode::Off),
            Err(_) => InvariantMode::Off,
        }
    }

    /// The canonical knob spelling of this mode.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            InvariantMode::Off => "off",
            InvariantMode::Cheap => "cheap",
            InvariantMode::Full => "full",
        }
    }
}

impl fmt::Display for InvariantMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The catalog of named, individually toggleable invariants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Invariant {
    /// The event queue never pops a timestamp earlier than the previous
    /// one (simulated time only moves forward).
    EventMonotonicity,
    /// Per epoch and per thread slice, each non-scaling component estimate
    /// (CRIT, leading loads, stall, store-queue-full) stays within the
    /// slice's active time plus a small epoch-granularity tolerance, and
    /// the trace's structural identities (`ExecutionTrace::validate`)
    /// hold: epochs tile the window, deltas are non-negative.
    CounterConservation,
    /// Per cache, hits + misses equals accesses and the resident line
    /// count never exceeds capacity (the hierarchy is non-inclusive by
    /// design, so no inclusion check applies).
    CacheSanity,
    /// Each store queue's fluid occupancy level stays within its
    /// configured capacity.
    StoreQueueOccupancy,
    /// GC pause accounting is conserved across the mutator/collector
    /// handoff: collections begin only with the world stopped, stop
    /// counts never exceed the mutator population, and every GcStart
    /// marker is balanced by a GcEnd.
    GcPauseAccounting,
    /// DVFS transitions land only on frequencies of the active ladder.
    LadderMembership,
    /// The V/f curve assigns finite, positive, monotone non-decreasing
    /// voltages along the ladder.
    VfMonotonicity,
    /// Metamorphic: total non-scaling time is invariant under frequency
    /// change (fuzzer-driven, compares two runs of the same seed).
    MetamorphicNonScaling,
    /// Metamorphic: total execution time is monotone non-increasing in
    /// frequency (fuzzer-driven).
    MetamorphicMonotone,
    /// Predictor outputs are finite, non-negative and within the bounds
    /// the ladder's frequency ratios imply.
    PredictorBounds,
    /// Fleet: the sum of power the central governor allocates to
    /// reachable machines never exceeds the global budget (plus relative
    /// tolerance), in any round and under any chaos.
    PowerBudgetConservation,
    /// Fleet: a machine rejoining after a partition climbs the
    /// degradation ladder exactly one rung per confirmed-healthy window —
    /// never jumping from fallback-to-max straight to central control.
    RejoinMonotonicity,
    /// Thermal: once an emergency throttle engages, the machine's true
    /// temperature must settle under `max(entry, T_crit)` plus the
    /// ceiling margin within the settle window — the forced V/f floor
    /// actually bends the trajectory.
    ThermalCeiling,
    /// Thermal: the throttle ladder de-escalates exactly one rung per
    /// confirmed-cool window and every shutdown exit black-starts into
    /// the emergency floor (see `thermal::ThrottleLadder`).
    ThrottleMonotonicity,
    /// Fleet hierarchy: the region budgets the root hands out sum to the
    /// effective global budget every round — damping and brownout shocks
    /// redistribute watts, never mint or burn them.
    HierarchyBudgetConservation,
}

impl Invariant {
    /// Every invariant, in catalog order.
    pub const ALL: [Invariant; 15] = [
        Invariant::EventMonotonicity,
        Invariant::CounterConservation,
        Invariant::CacheSanity,
        Invariant::StoreQueueOccupancy,
        Invariant::GcPauseAccounting,
        Invariant::LadderMembership,
        Invariant::VfMonotonicity,
        Invariant::MetamorphicNonScaling,
        Invariant::MetamorphicMonotone,
        Invariant::PredictorBounds,
        Invariant::PowerBudgetConservation,
        Invariant::RejoinMonotonicity,
        Invariant::ThermalCeiling,
        Invariant::ThrottleMonotonicity,
        Invariant::HierarchyBudgetConservation,
    ];

    /// The stable kebab-case name used in reports, skip lists and the
    /// sabotage hook.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Invariant::EventMonotonicity => "event-monotonicity",
            Invariant::CounterConservation => "counter-conservation",
            Invariant::CacheSanity => "cache-sanity",
            Invariant::StoreQueueOccupancy => "store-queue-occupancy",
            Invariant::GcPauseAccounting => "gc-pause-accounting",
            Invariant::LadderMembership => "ladder-membership",
            Invariant::VfMonotonicity => "vf-monotonicity",
            Invariant::MetamorphicNonScaling => "metamorphic-nonscaling",
            Invariant::MetamorphicMonotone => "metamorphic-monotone",
            Invariant::PredictorBounds => "predictor-bounds",
            Invariant::PowerBudgetConservation => "power-budget-conservation",
            Invariant::RejoinMonotonicity => "rejoin-monotonicity",
            Invariant::ThermalCeiling => "thermal-ceiling",
            Invariant::ThrottleMonotonicity => "throttle-monotonicity",
            Invariant::HierarchyBudgetConservation => "hierarchy-budget-conservation",
        }
    }

    /// Looks an invariant up by its [`Invariant::name`].
    #[must_use]
    pub fn from_name(name: &str) -> Option<Self> {
        Invariant::ALL.into_iter().find(|i| i.name() == name)
    }

    /// The cheapest mode at which this check runs.
    #[must_use]
    pub fn tier(self) -> InvariantMode {
        match self {
            Invariant::EventMonotonicity
            | Invariant::CounterConservation
            | Invariant::GcPauseAccounting
            | Invariant::LadderMembership
            | Invariant::VfMonotonicity
            | Invariant::PowerBudgetConservation
            | Invariant::RejoinMonotonicity
            | Invariant::ThermalCeiling
            | Invariant::ThrottleMonotonicity
            | Invariant::HierarchyBudgetConservation => InvariantMode::Cheap,
            Invariant::CacheSanity
            | Invariant::StoreQueueOccupancy
            | Invariant::MetamorphicNonScaling
            | Invariant::MetamorphicMonotone
            | Invariant::PredictorBounds => InvariantMode::Full,
        }
    }

    fn bit(self) -> u16 {
        1 << (Invariant::ALL.iter().position(|&i| i == self).expect("in catalog") as u16)
    }
}

impl fmt::Display for Invariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One recorded invariant violation.
#[derive(Debug, Clone, PartialEq)]
pub struct InvariantViolation {
    /// Which invariant failed.
    pub invariant: Invariant,
    /// Simulated time of the violation, in seconds.
    pub at_secs: f64,
    /// What exactly was inconsistent.
    pub detail: String,
}

impl InvariantViolation {
    /// Renders this violation as the unified error type.
    #[must_use]
    pub fn to_error(&self) -> depburst_core::DepburstError {
        depburst_core::DepburstError::InvariantViolation {
            invariant: self.invariant.name().to_owned(),
            at_secs: self.at_secs,
            detail: self.detail.clone(),
        }
    }
}

/// How many violations are stored verbatim; further ones only bump the
/// total counter (a corrupted run can violate on every epoch).
const MAX_STORED: usize = 32;

/// Relative slack for counter-conservation: component estimates are
/// maintained at epoch granularity and may legitimately overshoot a
/// slice's active time slightly (see `dvfs_trace::counters`).
const CONSERVATION_REL_TOL: f64 = 0.05;

/// Absolute slack for counter-conservation, in seconds (one cycle at the
/// lowest paper frequency).
const CONSERVATION_ABS_TOL: f64 = 1e-9;

/// The runtime invariant monitor: a mode, a skip set, an optional
/// sabotage hook, and the bounded violation log.
#[derive(Debug, Clone, Default)]
pub struct Monitor {
    mode: InvariantMode,
    /// Bitmask of suppressed invariants (bit i = `Invariant::ALL[i]`).
    skip: u16,
    /// Test-only hook: the named check is deliberately weakened so that a
    /// *healthy* run violates it — proving the violation path end to end.
    sabotage: Option<Invariant>,
    violations: Vec<InvariantViolation>,
    total: u64,
}

impl Monitor {
    /// A monitor at the given mode with nothing skipped.
    #[must_use]
    pub fn new(mode: InvariantMode) -> Self {
        Monitor {
            mode,
            ..Monitor::default()
        }
    }

    /// A monitor configured from the environment: mode from
    /// `DEPBURST_INVARIANTS`, skip set from `DEPBURST_INVARIANTS_SKIP`
    /// (comma-separated invariant names; unknown names are ignored).
    #[must_use]
    pub fn from_env() -> Self {
        let mut monitor = Monitor::new(InvariantMode::from_env());
        if let Ok(list) = std::env::var("DEPBURST_INVARIANTS_SKIP") {
            for name in list.split(',') {
                if let Some(inv) = Invariant::from_name(name.trim()) {
                    monitor.skip |= inv.bit();
                }
            }
        }
        monitor
    }

    /// The active checking depth.
    #[must_use]
    pub fn mode(&self) -> InvariantMode {
        self.mode
    }

    /// True if any checking is active at all. The hot paths gate on this
    /// first so `off` costs one predictable branch.
    #[inline]
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.mode != InvariantMode::Off
    }

    /// True if the named check should run at the current mode.
    #[inline]
    #[must_use]
    pub fn on(&self, inv: Invariant) -> bool {
        self.mode >= inv.tier() && (self.skip & inv.bit()) == 0
    }

    /// Deliberately weakens `inv`'s check so a healthy run violates it.
    /// Only `counter-conservation` currently has a sabotaged variant; the
    /// hook exists purely so tests and CI can drive the violation path.
    pub fn sabotage(&mut self, inv: Invariant) {
        self.sabotage = Some(inv);
    }

    /// Whether `inv` is currently sabotaged.
    #[must_use]
    pub fn is_sabotaged(&self, inv: Invariant) -> bool {
        self.sabotage == Some(inv)
    }

    /// Records a violation (bounded storage, unbounded count).
    pub fn record(&mut self, invariant: Invariant, at_secs: f64, detail: String) {
        self.total += 1;
        if self.violations.len() < MAX_STORED {
            self.violations.push(InvariantViolation {
                invariant,
                at_secs,
                detail,
            });
        }
    }

    /// The stored violations (at most the first [`MAX_STORED`]).
    #[must_use]
    pub fn violations(&self) -> &[InvariantViolation] {
        &self.violations
    }

    /// Total violations observed, including any beyond the storage cap.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The first violation as a unified error, if any were recorded.
    #[must_use]
    pub fn first_error(&self) -> Option<depburst_core::DepburstError> {
        self.violations.first().map(InvariantViolation::to_error)
    }

    /// Runs the trace-level checks on a freshly harvested (pre-fault)
    /// segment: structural validity, per-slice counter conservation, and
    /// GC marker balance. The caller gates on [`Monitor::enabled`].
    pub fn check_trace(&mut self, trace: &ExecutionTrace) {
        if self.on(Invariant::CounterConservation) {
            if let Err(err) = trace.validate() {
                self.record(
                    Invariant::CounterConservation,
                    trace.start.as_secs(),
                    format!("trace structure: {err}"),
                );
            }
            self.check_conservation(trace);
        }
        if self.on(Invariant::GcPauseAccounting) {
            self.check_marker_balance(trace);
        }
    }

    /// Per epoch and per thread slice, every non-scaling component must
    /// stay within active time plus tolerance. Under sabotage the bound
    /// is replaced by `active <= duration / 4`, which any real slice that
    /// runs most of an epoch violates immediately.
    fn check_conservation(&mut self, trace: &ExecutionTrace) {
        let sabotaged = self.is_sabotaged(Invariant::CounterConservation);
        for (i, epoch) in trace.epochs.iter().enumerate() {
            for slice in &epoch.threads {
                let c = &slice.counters;
                let active = c.active.as_secs();
                if sabotaged {
                    let broken_bound = epoch.duration.as_secs() * 0.25;
                    if active > broken_bound + CONSERVATION_ABS_TOL {
                        self.record(
                            Invariant::CounterConservation,
                            epoch.start.as_secs(),
                            format!(
                                "epoch {i} thread {}: active {active:.3e} s exceeds \
                                 (sabotaged) bound {broken_bound:.3e} s",
                                slice.thread
                            ),
                        );
                    }
                    continue;
                }
                let bound = active + active * CONSERVATION_REL_TOL + CONSERVATION_ABS_TOL;
                for (label, value) in [
                    ("crit", c.crit),
                    ("leading-loads", c.leading_loads),
                    ("stall", c.stall),
                    ("sq-full", c.sq_full),
                ] {
                    let v = value.as_secs();
                    if v > bound {
                        self.record(
                            Invariant::CounterConservation,
                            epoch.start.as_secs(),
                            format!(
                                "epoch {i} thread {}: {label} {v:.3e} s exceeds active \
                                 {active:.3e} s (+tolerance)",
                                slice.thread
                            ),
                        );
                    }
                    if v < -CONSERVATION_ABS_TOL {
                        self.record(
                            Invariant::CounterConservation,
                            epoch.start.as_secs(),
                            format!(
                                "epoch {i} thread {}: {label} is negative ({v:.3e} s)",
                                slice.thread
                            ),
                        );
                    }
                }
                if epoch.duration > TimeDelta::ZERO
                    && active > epoch.duration.as_secs() * (1.0 + CONSERVATION_REL_TOL)
                        + CONSERVATION_ABS_TOL
                {
                    self.record(
                        Invariant::CounterConservation,
                        epoch.start.as_secs(),
                        format!(
                            "epoch {i} thread {}: active {active:.3e} s exceeds epoch \
                             duration {:.3e} s",
                            slice.thread,
                            epoch.duration.as_secs()
                        ),
                    );
                }
            }
        }
    }

    /// GC phase markers must alternate GcStart/GcEnd and balance out: an
    /// unbalanced stream means pause time was attributed to the wrong side
    /// of the mutator/collector handoff.
    fn check_marker_balance(&mut self, trace: &ExecutionTrace) {
        let mut depth: i64 = 0;
        for marker in &trace.markers {
            match marker.kind {
                PhaseKind::GcStart => depth += 1,
                PhaseKind::GcEnd => depth -= 1,
            }
            if depth < 0 {
                self.record(
                    Invariant::GcPauseAccounting,
                    marker.time.as_secs(),
                    "GcEnd marker without a matching GcStart".to_owned(),
                );
                depth = 0; // re-sync so one bad marker reports once
            }
            if depth > 1 {
                self.record(
                    Invariant::GcPauseAccounting,
                    marker.time.as_secs(),
                    format!("nested GcStart markers (depth {depth}): STW windows overlap"),
                );
            }
        }
        // A segment may end mid-collection (depth 1 at a quantum
        // boundary); deeper imbalance is a real accounting hole.
        if depth > 1 {
            self.record(
                Invariant::GcPauseAccounting,
                trace.start.as_secs() + trace.total.as_secs(),
                format!("segment ends with {depth} unclosed GcStart markers"),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvfs_trace::{
        DvfsCounters, EpochEnd, EpochRecord, Freq, PhaseMarker, ThreadId, ThreadSlice, Time,
    };

    fn trace_with(epochs: Vec<EpochRecord>, markers: Vec<PhaseMarker>) -> ExecutionTrace {
        let total = epochs
            .iter()
            .map(|e| e.duration)
            .fold(TimeDelta::ZERO, |a, b| a + b);
        ExecutionTrace {
            base: Freq::from_ghz(1.0),
            start: Time::ZERO,
            total,
            epochs,
            markers,
            threads: vec![],
        }
    }

    fn epoch(start_s: f64, dur_s: f64, counters: DvfsCounters) -> EpochRecord {
        EpochRecord {
            start: Time::from_secs(start_s),
            duration: TimeDelta::from_secs(dur_s),
            threads: vec![ThreadSlice {
                thread: ThreadId(0),
                counters,
            }],
            end: EpochEnd::TraceEnd,
        }
    }

    fn healthy_counters(active_s: f64) -> DvfsCounters {
        let mut c = DvfsCounters::zero();
        c.active = TimeDelta::from_secs(active_s);
        c.crit = TimeDelta::from_secs(active_s * 0.5);
        c.stall = TimeDelta::from_secs(active_s * 0.3);
        c
    }

    #[test]
    fn mode_parsing_and_ordering() {
        assert_eq!(InvariantMode::parse("off"), Some(InvariantMode::Off));
        assert_eq!(InvariantMode::parse("CHEAP"), Some(InvariantMode::Cheap));
        assert_eq!(InvariantMode::parse(" full "), Some(InvariantMode::Full));
        assert_eq!(InvariantMode::parse("bogus"), None);
        assert!(InvariantMode::Full > InvariantMode::Cheap);
        assert!(InvariantMode::Cheap > InvariantMode::Off);
    }

    #[test]
    fn names_roundtrip_and_are_unique() {
        for inv in Invariant::ALL {
            assert_eq!(Invariant::from_name(inv.name()), Some(inv));
        }
        let mut names: Vec<_> = Invariant::ALL.iter().map(|i| i.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Invariant::ALL.len());
    }

    #[test]
    fn gating_respects_tier_and_skip() {
        let off = Monitor::new(InvariantMode::Off);
        assert!(!off.enabled());
        assert!(!off.on(Invariant::EventMonotonicity));

        let cheap = Monitor::new(InvariantMode::Cheap);
        assert!(cheap.on(Invariant::CounterConservation));
        assert!(!cheap.on(Invariant::CacheSanity));

        let mut full = Monitor::new(InvariantMode::Full);
        assert!(full.on(Invariant::CacheSanity));
        full.skip |= Invariant::CacheSanity.bit();
        assert!(!full.on(Invariant::CacheSanity));
        assert!(full.on(Invariant::CounterConservation));
    }

    #[test]
    fn healthy_trace_is_clean() {
        let mut m = Monitor::new(InvariantMode::Full);
        let t = trace_with(
            vec![epoch(0.0, 1e-3, healthy_counters(9e-4))],
            vec![
                PhaseMarker::new(Time::from_secs(1e-4), PhaseKind::GcStart),
                PhaseMarker::new(Time::from_secs(2e-4), PhaseKind::GcEnd),
            ],
        );
        m.check_trace(&t);
        assert_eq!(m.total(), 0, "{:?}", m.violations());
    }

    #[test]
    fn overshooting_component_is_caught() {
        let mut m = Monitor::new(InvariantMode::Cheap);
        let mut c = healthy_counters(1e-4);
        c.crit = TimeDelta::from_secs(5e-4); // way past active + 5%
        m.check_trace(&trace_with(vec![epoch(0.0, 1e-3, c)], vec![]));
        assert!(m.total() >= 1);
        assert_eq!(
            m.violations()[0].invariant,
            Invariant::CounterConservation
        );
        assert!(m.first_error().is_some());
    }

    #[test]
    fn unbalanced_markers_are_caught() {
        let mut m = Monitor::new(InvariantMode::Cheap);
        let t = trace_with(
            vec![epoch(0.0, 1e-3, healthy_counters(5e-4))],
            vec![PhaseMarker::new(Time::from_secs(1e-4), PhaseKind::GcEnd)],
        );
        m.check_trace(&t);
        assert_eq!(m.violations()[0].invariant, Invariant::GcPauseAccounting);
    }

    #[test]
    fn sabotage_flags_a_healthy_trace() {
        let mut m = Monitor::new(InvariantMode::Full);
        m.sabotage(Invariant::CounterConservation);
        let t = trace_with(vec![epoch(0.0, 1e-3, healthy_counters(9e-4))], vec![]);
        m.check_trace(&t);
        assert!(m.total() >= 1, "sabotaged check must fire on healthy data");
        assert_eq!(
            m.violations()[0].invariant,
            Invariant::CounterConservation
        );
    }

    #[test]
    fn storage_is_bounded_but_count_is_not() {
        let mut m = Monitor::new(InvariantMode::Cheap);
        for i in 0..(MAX_STORED + 10) {
            m.record(
                Invariant::EventMonotonicity,
                i as f64,
                "regression".to_owned(),
            );
        }
        assert_eq!(m.violations().len(), MAX_STORED);
        assert_eq!(m.total(), (MAX_STORED + 10) as u64);
    }
}
