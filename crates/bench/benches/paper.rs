//! One Criterion benchmark group per table/figure of the DEP+BURST paper.
//!
//! Each group exercises the code path that regenerates its artefact, at a
//! reduced work scale so `cargo bench` completes quickly. The full-scale
//! regenerations are the `harness` binaries (`table1`, `table2`, `fig1`,
//! `fig3`, `fig4`, `fig6`, `fig7`).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use depburst::{paper_roster, Dep, DvfsPredictor};
use dvfs_trace::{ExecutionTrace, Freq};
use harness::experiments::{fig3, fig6, table2};
use harness::{run_benchmark, RunConfig};
use simx::MachineConfig;

/// Work scale for in-bench simulation runs.
const SCALE: f64 = 0.01;

/// Captures one small trace to feed the predictor benches.
fn captured_trace(name: &str) -> (ExecutionTrace, f64) {
    let bench = dacapo_sim::benchmark(name).expect("known benchmark");
    let r = run_benchmark(bench, RunConfig::at_ghz(1.0).scaled(0.05));
    (r.trace, r.exec.as_secs())
}

/// Simulator-core throughput: one benchmark point measured in dispatched
/// events per second (the metric `scripts/bench.sh` snapshots into
/// `BENCH_sim.json`). Criterion's throughput mode reports both wall time
/// and Kelem/s, so hot-path regressions show up in the unit the
/// benchmark trajectory tracks.
fn bench_simcore(c: &mut Criterion) {
    let mut g = c.benchmark_group("simcore_event_throughput");
    g.sample_size(10);
    for (name, ghz) in [("lusearch", 2.0), ("xalan", 2.0), ("sunflow", 1.0)] {
        let bench = dacapo_sim::benchmark(name).expect("known benchmark");
        // The event count is a deterministic function of (bench, freq,
        // scale, seed): measure it once, then feed it to Criterion as the
        // per-iteration element count.
        let events = run_benchmark(bench, RunConfig::at_ghz(ghz).scaled(SCALE))
            .stats
            .events_dispatched;
        g.throughput(Throughput::Elements(events));
        g.bench_function(format!("{name}_{ghz}ghz"), |b| {
            b.iter(|| {
                let r = run_benchmark(bench, RunConfig::at_ghz(ghz).scaled(SCALE));
                std::hint::black_box(r.stats.events_dispatched)
            });
        });
    }
    g.finish();
}

/// Table I: simulating one managed benchmark run at 1 GHz.
fn bench_table1(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1_benchmark_run");
    g.sample_size(10);
    for name in ["lusearch", "sunflow"] {
        g.bench_function(name, |b| {
            let bench = dacapo_sim::benchmark(name).expect("known");
            b.iter(|| {
                let r = run_benchmark(bench, RunConfig::at_ghz(1.0).scaled(SCALE));
                std::hint::black_box(r.exec)
            });
        });
    }
    g.finish();
}

/// Table II: rendering the machine configuration.
fn bench_table2(c: &mut Criterion) {
    c.bench_function("table2_render", |b| {
        let config = MachineConfig::haswell_quad();
        b.iter(|| std::hint::black_box(table2::render(&config)));
    });
}

/// Fig. 1: the headline M+CRIT vs DEP+BURST prediction on a real trace.
fn bench_fig1(c: &mut Criterion) {
    let (trace, _) = captured_trace("lusearch");
    let mut g = c.benchmark_group("fig1_headline_predictions");
    for model in paper_roster() {
        g.bench_function(model.name(), |b| {
            b.iter(|| std::hint::black_box(model.predict(&trace, Freq::from_ghz(4.0))));
        });
    }
    g.finish();
}

/// Fig. 3: collecting one benchmark's full model-error row (runs the
/// simulations and all six predictors).
fn bench_fig3(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3_error_collection");
    g.sample_size(10);
    g.bench_function("low_to_high_one_seed", |b| {
        b.iter(|| {
            std::hint::black_box(fig3::collect(fig3::Direction::LowToHigh, SCALE, &[1]))
        });
    });
    g.finish();
}

/// Fig. 4: Algorithm 1 (across-epoch CTP) vs per-epoch CTP on a captured
/// trace — the predictor-side cost of the paper's key mechanism.
fn bench_fig4(c: &mut Criterion) {
    let (trace, _) = captured_trace("xalan");
    let mut g = c.benchmark_group("fig4_ctp_modes");
    g.bench_function("across_epoch", |b| {
        let p = Dep::dep_burst();
        b.iter(|| std::hint::black_box(p.predict(&trace, Freq::from_ghz(4.0))));
    });
    g.bench_function("per_epoch", |b| {
        let p = Dep::dep_burst_per_epoch();
        b.iter(|| std::hint::black_box(p.predict(&trace, Freq::from_ghz(4.0))));
    });
    g.finish();
}

/// Fig. 6: one managed run under the energy manager.
fn bench_fig6(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6_energy_manager");
    g.sample_size(10);
    g.bench_function("pmd-scale_5pct", |b| {
        let bench = dacapo_sim::benchmark("pmd-scale").expect("known");
        b.iter(|| std::hint::black_box(fig6::managed(bench, SCALE, 1, 0.05)));
    });
    g.finish();
}

/// Fig. 7: one static-sweep point (constant-frequency run + energy).
fn bench_fig7(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7_static_sweep_point");
    g.sample_size(10);
    g.bench_function("sunflow_2ghz", |b| {
        let bench = dacapo_sim::benchmark("sunflow").expect("known");
        let power = energy_model();
        b.iter_batched(
            || (),
            |()| {
                let r = run_benchmark(bench, RunConfig::at_ghz(2.0).scaled(SCALE));
                std::hint::black_box(power.energy_of_run(
                    Freq::from_ghz(2.0),
                    r.exec,
                    r.stats.total_active(),
                    4,
                ))
            },
            BatchSize::PerIteration,
        );
    });
    g.finish();
}

fn energy_model() -> energyx::PowerModel {
    energyx::PowerModel::haswell_22nm()
}

criterion_group!(
    paper,
    bench_simcore,
    bench_table1,
    bench_table2,
    bench_fig1,
    bench_fig3,
    bench_fig4,
    bench_fig6,
    bench_fig7
);
criterion_main!(paper);
