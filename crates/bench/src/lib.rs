//! `depburst-bench` — Criterion benchmarks, one per table/figure of the
//! paper (see `benches/paper.rs`). The full-scale regeneration binaries
//! live in the `harness` crate; these benches exercise the same code paths
//! at reduced scale so `cargo bench` finishes in minutes and tracks
//! performance regressions of the simulator and the predictors.
