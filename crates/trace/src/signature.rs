//! Epoch signatures and online phase-recurrence detection.
//!
//! The sampled execution tier (see `simx::sampling`) extrapolates a whole
//! run from a simulated prefix. That is only sound when the workload's
//! phase behaviour *recurs*: the mix of compute, memory and
//! synchronization seen early must keep describing the unseen remainder.
//! This module gives the sampler the vocabulary to check that claim
//! online instead of assuming it:
//!
//! * [`EpochSignature`] — one synchronization epoch reduced to a small
//!   vector of scale-free rates over the DVFS counters the predictors
//!   already harvest, plus the GC/mutator phase the epoch fell in;
//! * [`SignatureClusterer`] — deterministic online leader clustering of
//!   those signatures (no RNG, no iteration-order dependence);
//! * [`RecurrenceReport`] — how much of the late trace lands in clusters
//!   that were already established early, i.e. how repetitive the
//!   workload actually measured.

use crate::{EpochRecord, ExecutionTrace, TimeDelta};

/// One epoch reduced to scale-free rates.
///
/// Every component is a dimensionless fraction or a normalized rate, so
/// signatures from long and short epochs are directly comparable and a
/// Euclidean distance between them is meaningful.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochSignature {
    /// CRIT (non-scaling critical path) share of active time.
    pub crit_frac: f64,
    /// Memory-stall share of active time.
    pub stall_frac: f64,
    /// Store-queue-full share of active time.
    pub sq_full_frac: f64,
    /// Committed instructions per microsecond of active time.
    pub ipus: f64,
    /// LLC misses per thousand committed instructions.
    pub mpki: f64,
    /// Threads that ran during the epoch (the DEP predictor's epoch
    /// parallelism).
    pub parallelism: f64,
    /// True when the epoch lies inside a stop-the-world collection.
    pub in_gc: bool,
}

impl EpochSignature {
    /// Builds the signature of `epoch`. `in_gc` is the phase
    /// classification of the epoch's midpoint (see
    /// [`ExecutionTrace::phase_windows`]).
    #[must_use]
    pub fn of(epoch: &EpochRecord, in_gc: bool) -> Self {
        let mut counters = crate::DvfsCounters::zero();
        for slice in &epoch.threads {
            counters += slice.counters;
        }
        let active = counters.active.as_secs();
        let frac = |part: TimeDelta| {
            if active > 0.0 {
                (part.as_secs() / active).clamp(0.0, 1.0)
            } else {
                0.0
            }
        };
        let instructions = counters.instructions as f64;
        EpochSignature {
            crit_frac: frac(counters.crit),
            stall_frac: frac(counters.stall),
            sq_full_frac: frac(counters.sq_full),
            ipus: if active > 0.0 {
                instructions / (active * 1e6)
            } else {
                0.0
            },
            mpki: if instructions > 0.0 {
                counters.llc_misses as f64 * 1e3 / instructions
            } else {
                0.0
            },
            parallelism: epoch.active_threads() as f64,
            in_gc,
        }
    }

    /// Squared Euclidean distance to `other` over the normalized
    /// components. GC and mutator epochs are infinitely far apart — a
    /// collector epoch must never absorb a mutator epoch however similar
    /// their counter rates look, because the sampler extrapolates the two
    /// phases separately.
    #[must_use]
    pub fn distance_sq(&self, other: &EpochSignature) -> f64 {
        if self.in_gc != other.in_gc {
            return f64::INFINITY;
        }
        // ipus spans orders of magnitude across frequencies; compare it in
        // a compressed (log1p) scale so it cannot drown the fractions.
        let d_ipus = (self.ipus.ln_1p() - other.ipus.ln_1p()) / 4.0;
        let d_mpki = (self.mpki.ln_1p() - other.mpki.ln_1p()) / 4.0;
        let d_par = (self.parallelism - other.parallelism) / 8.0;
        (self.crit_frac - other.crit_frac).powi(2)
            + (self.stall_frac - other.stall_frac).powi(2)
            + (self.sq_full_frac - other.sq_full_frac).powi(2)
            + d_ipus * d_ipus
            + d_mpki * d_mpki
            + d_par * d_par
    }
}

/// One cluster of an online leader clustering: the running centroid of
/// every signature assigned to it, weighted by epoch duration so a long
/// steady epoch anchors its phase against a swarm of sub-microsecond
/// synchronization epochs.
#[derive(Debug, Clone)]
pub struct SignatureCluster {
    /// Duration-weighted centroid.
    pub centroid: EpochSignature,
    /// Epochs assigned.
    pub members: usize,
    /// Summed duration of the members.
    pub weight: TimeDelta,
}

impl SignatureCluster {
    fn absorb(&mut self, sig: &EpochSignature, duration: TimeDelta) {
        let w_old = self.weight.as_secs();
        let w_new = duration.as_secs();
        let total = w_old + w_new;
        if total > 0.0 {
            let lerp = |a: f64, b: f64| (a * w_old + b * w_new) / total;
            self.centroid = EpochSignature {
                crit_frac: lerp(self.centroid.crit_frac, sig.crit_frac),
                stall_frac: lerp(self.centroid.stall_frac, sig.stall_frac),
                sq_full_frac: lerp(self.centroid.sq_full_frac, sig.sq_full_frac),
                ipus: lerp(self.centroid.ipus, sig.ipus),
                mpki: lerp(self.centroid.mpki, sig.mpki),
                parallelism: lerp(self.centroid.parallelism, sig.parallelism),
                in_gc: self.centroid.in_gc,
            };
        }
        self.members += 1;
        self.weight += duration;
    }
}

/// Deterministic online leader clustering over epoch signatures.
///
/// The first signature founds cluster 0; each subsequent signature joins
/// the nearest existing cluster when its squared distance to that
/// cluster's centroid is below the threshold, and founds a new cluster
/// otherwise. Processing order is trace order, so the assignment is a
/// pure function of the trace — re-clustering the same trace yields the
/// same clusters bit for bit.
#[derive(Debug, Clone)]
pub struct SignatureClusterer {
    threshold_sq: f64,
    clusters: Vec<SignatureCluster>,
}

impl SignatureClusterer {
    /// A clusterer that merges signatures within `threshold` (Euclidean,
    /// over the normalized signature components).
    #[must_use]
    pub fn new(threshold: f64) -> Self {
        SignatureClusterer {
            threshold_sq: threshold * threshold,
            clusters: Vec::new(),
        }
    }

    /// Assigns `sig` (an epoch of the given `duration`) to a cluster and
    /// returns the cluster index.
    pub fn observe(&mut self, sig: &EpochSignature, duration: TimeDelta) -> usize {
        let mut best: Option<(usize, f64)> = None;
        for (i, cluster) in self.clusters.iter().enumerate() {
            let d = sig.distance_sq(&cluster.centroid);
            if best.is_none_or(|(_, bd)| d < bd) {
                best = Some((i, d));
            }
        }
        if let Some((i, d)) = best {
            if d <= self.threshold_sq {
                self.clusters[i].absorb(sig, duration);
                return i;
            }
        }
        self.clusters.push(SignatureCluster {
            centroid: *sig,
            members: 1,
            weight: duration,
        });
        self.clusters.len() - 1
    }

    /// The clusters formed so far.
    #[must_use]
    pub fn clusters(&self) -> &[SignatureCluster] {
        &self.clusters
    }
}

/// How repetitive a trace measured: the duration share of its late
/// epochs that fall into clusters already established in the early part.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecurrenceReport {
    /// Duration-weighted fraction of post-split epochs assigned to a
    /// cluster founded before the split (1.0 = the late trace is made
    /// entirely of phases already seen early).
    pub recurrence: f64,
    /// Total clusters formed over the whole trace.
    pub clusters: usize,
    /// Clusters founded before the split point.
    pub early_clusters: usize,
}

/// Clusters every epoch of `trace` in time order and reports how much of
/// the trace after `split` (a fraction of the traced window, e.g. 0.5)
/// recurs in phases established before it.
///
/// GC/mutator classification comes from the trace's phase markers; an
/// epoch belongs to the phase its midpoint falls in.
#[must_use]
pub fn recurrence(trace: &ExecutionTrace, split: f64, threshold: f64) -> RecurrenceReport {
    let windows = trace.phase_windows();
    let split_at = trace.start + trace.total * split.clamp(0.0, 1.0);
    let mut clusterer = SignatureClusterer::new(threshold);
    let mut early_clusters = 0usize;
    let mut late_total = TimeDelta::ZERO;
    let mut late_recurrent = TimeDelta::ZERO;
    // phase_windows() tiles the trace in time order, as do the epochs, so
    // a single forward cursor classifies every epoch midpoint in O(n).
    let mut w = 0usize;
    for epoch in &trace.epochs {
        let mid = epoch.start + epoch.duration * 0.5;
        while w + 1 < windows.len() && windows[w].end < mid {
            w += 1;
        }
        let in_gc = windows.get(w).is_some_and(|win| win.is_gc);
        let sig = EpochSignature::of(epoch, in_gc);
        let cluster = clusterer.observe(&sig, epoch.duration);
        if epoch.start < split_at {
            early_clusters = early_clusters.max(cluster + 1);
        } else {
            late_total += epoch.duration;
            if cluster < early_clusters {
                late_recurrent += epoch.duration;
            }
        }
    }
    RecurrenceReport {
        recurrence: if late_total > TimeDelta::ZERO {
            late_recurrent.as_secs() / late_total.as_secs()
        } else {
            // No late epochs — vacuously recurrent (nothing unexplained).
            1.0
        },
        clusters: clusterer.clusters().len(),
        early_clusters,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DvfsCounters, EpochEnd, Freq, PhaseKind, PhaseMarker, ThreadId, ThreadSlice, Time};

    fn counters(active_us: f64, crit_share: f64, instr: u64) -> DvfsCounters {
        DvfsCounters {
            active: TimeDelta::from_micros(active_us),
            crit: TimeDelta::from_micros(active_us * crit_share),
            leading_loads: TimeDelta::from_micros(active_us * crit_share),
            stall: TimeDelta::from_micros(active_us * crit_share * 1.2),
            sq_full: TimeDelta::ZERO,
            instructions: instr,
            loads: instr / 4,
            stores: instr / 8,
            llc_misses: instr / 100,
        }
    }

    fn epoch(start_us: f64, dur_us: f64, crit_share: f64) -> EpochRecord {
        EpochRecord {
            start: Time::from_secs(start_us * 1e-6),
            duration: TimeDelta::from_micros(dur_us),
            threads: vec![ThreadSlice {
                thread: ThreadId(1),
                counters: counters(dur_us, crit_share, (dur_us * 1000.0) as u64),
            }],
            end: EpochEnd::QuantumBoundary,
        }
    }

    #[test]
    fn identical_epochs_share_a_cluster() {
        let a = EpochSignature::of(&epoch(0.0, 10.0, 0.3), false);
        let b = EpochSignature::of(&epoch(10.0, 10.0, 0.3), false);
        assert_eq!(a.distance_sq(&b), 0.0);
        let mut c = SignatureClusterer::new(0.1);
        assert_eq!(c.observe(&a, TimeDelta::from_micros(10.0)), 0);
        assert_eq!(c.observe(&b, TimeDelta::from_micros(10.0)), 0);
        assert_eq!(c.clusters().len(), 1);
        assert_eq!(c.clusters()[0].members, 2);
    }

    #[test]
    fn distinct_phases_form_distinct_clusters() {
        let compute = EpochSignature::of(&epoch(0.0, 10.0, 0.02), false);
        let memory = EpochSignature::of(&epoch(10.0, 10.0, 0.85), false);
        assert!(compute.distance_sq(&memory) > 0.25);
        let mut c = SignatureClusterer::new(0.2);
        assert_eq!(c.observe(&compute, TimeDelta::from_micros(10.0)), 0);
        assert_eq!(c.observe(&memory, TimeDelta::from_micros(10.0)), 1);
    }

    #[test]
    fn gc_and_mutator_never_merge() {
        let sig = EpochSignature::of(&epoch(0.0, 10.0, 0.3), false);
        let gc_sig = EpochSignature::of(&epoch(0.0, 10.0, 0.3), true);
        assert_eq!(sig.distance_sq(&gc_sig), f64::INFINITY);
        let mut c = SignatureClusterer::new(1e9); // even an absurd threshold
        assert_eq!(c.observe(&sig, TimeDelta::from_micros(10.0)), 0);
        assert_eq!(c.observe(&gc_sig, TimeDelta::from_micros(10.0)), 1);
    }

    #[test]
    fn zero_activity_epochs_are_finite() {
        let idle = EpochRecord {
            start: Time::ZERO,
            duration: TimeDelta::from_micros(5.0),
            threads: vec![],
            end: EpochEnd::QuantumBoundary,
        };
        let sig = EpochSignature::of(&idle, false);
        assert_eq!(sig.crit_frac, 0.0);
        assert_eq!(sig.ipus, 0.0);
        assert_eq!(sig.mpki, 0.0);
        assert!(sig.distance_sq(&sig).is_finite());
    }

    fn trace_of(epochs: Vec<EpochRecord>, markers: Vec<PhaseMarker>) -> ExecutionTrace {
        let total = epochs
            .iter()
            .map(|e| e.duration)
            .fold(TimeDelta::ZERO, |a, b| a + b);
        ExecutionTrace {
            base: Freq::from_ghz(1.0),
            start: Time::ZERO,
            total,
            epochs,
            markers,
            threads: vec![],
        }
    }

    #[test]
    fn repetitive_trace_scores_full_recurrence() {
        // Alternating compute/memory phases, repeated well past the split.
        let mut epochs = Vec::new();
        for i in 0..20 {
            let share = if i % 2 == 0 { 0.05 } else { 0.8 };
            epochs.push(epoch(i as f64 * 10.0, 10.0, share));
        }
        let report = recurrence(&trace_of(epochs, vec![]), 0.5, 0.2);
        assert_eq!(report.clusters, 2);
        assert_eq!(report.early_clusters, 2);
        assert!((report.recurrence - 1.0).abs() < 1e-12);
    }

    #[test]
    fn novel_late_phase_lowers_recurrence() {
        let mut epochs = Vec::new();
        for i in 0..10 {
            epochs.push(epoch(i as f64 * 10.0, 10.0, 0.05));
        }
        // Entirely new behaviour after the split.
        for i in 10..20 {
            epochs.push(epoch(i as f64 * 10.0, 10.0, 0.9));
        }
        let report = recurrence(&trace_of(epochs, vec![]), 0.5, 0.1);
        assert!(report.clusters >= 2);
        assert!(
            report.recurrence < 0.1,
            "novel late phase must not count as recurrent: {}",
            report.recurrence
        );
    }

    #[test]
    fn gc_windows_classify_epochs_by_midpoint() {
        // Epoch 1 of 3 sits inside a GC window; its signature must be
        // clustered apart from the mutator epochs around it.
        let epochs = vec![
            epoch(0.0, 10.0, 0.3),
            epoch(10.0, 10.0, 0.3),
            epoch(20.0, 10.0, 0.3),
        ];
        let markers = vec![
            PhaseMarker {
                time: Time::from_secs(10e-6),
                kind: PhaseKind::GcStart,
            },
            PhaseMarker {
                time: Time::from_secs(20e-6),
                kind: PhaseKind::GcEnd,
            },
        ];
        let report = recurrence(&trace_of(epochs, markers), 0.9, 0.2);
        assert_eq!(report.clusters, 2, "one mutator + one GC cluster");
    }

    #[test]
    fn empty_trace_is_vacuously_recurrent() {
        let report = recurrence(&trace_of(vec![], vec![]), 0.5, 0.2);
        assert_eq!(report.recurrence, 1.0);
        assert_eq!(report.clusters, 0);
    }
}
