//! Synchronization epochs (paper §III-B).
//!
//! A synchronization epoch is a maximal interval of execution during which
//! the set of running threads does not change. Two events close an epoch:
//! a thread goes to sleep (futex wait), or a sleeping/new thread is woken
//! and scheduled (futex wake, thread spawn). The DEP predictor consumes the
//! resulting epoch stream.

use serde::{Deserialize, Serialize};

use crate::{DvfsCounters, ThreadId, Time, TimeDelta};

/// Why an epoch ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EpochEnd {
    /// A thread went to sleep (futex wait / barrier wait / lock sleep).
    /// This is the `stall_tid` input of Algorithm 1: the stalled thread's
    /// delta counter is reset because its subsequent progress is gated by
    /// whoever wakes it, not by its own accumulated slack.
    Stall(ThreadId),
    /// A sleeping or newly spawned thread became runnable.
    Wake(ThreadId),
    /// A thread exited.
    Exit(ThreadId),
    /// The trace was cut at a measurement-quantum boundary (used by the
    /// energy manager, which harvests counters every scheduling quantum).
    QuantumBoundary,
    /// The application finished.
    TraceEnd,
}

impl EpochEnd {
    /// The stalled thread, if this boundary was caused by a thread going to
    /// sleep (Algorithm 1's `stall_tid`).
    #[must_use]
    pub fn stalled_thread(self) -> Option<ThreadId> {
        match self {
            EpochEnd::Stall(tid) => Some(tid),
            _ => None,
        }
    }
}

/// One thread's contribution to an epoch: the counter deltas it accumulated
/// while running during the epoch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThreadSlice {
    /// Which thread.
    pub thread: ThreadId,
    /// Counter increments attributed to this epoch.
    pub counters: DvfsCounters,
}

/// One synchronization epoch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpochRecord {
    /// When the epoch began.
    pub start: Time,
    /// Wall-clock duration of the epoch at the base frequency (`I` in
    /// Algorithm 1).
    pub duration: TimeDelta,
    /// Per-thread counter deltas for threads that were runnable during the
    /// epoch. Threads asleep for the whole epoch do not appear.
    pub threads: Vec<ThreadSlice>,
    /// Why the epoch ended.
    pub end: EpochEnd,
}

impl EpochRecord {
    /// When the epoch ended.
    #[must_use]
    pub fn end_time(&self) -> Time {
        self.start + self.duration
    }

    /// The slice for `thread`, if it was active this epoch.
    #[must_use]
    pub fn slice(&self, thread: ThreadId) -> Option<&ThreadSlice> {
        self.threads.iter().find(|s| s.thread == thread)
    }

    /// Number of threads active during the epoch.
    #[must_use]
    pub fn active_threads(&self) -> usize {
        self.threads.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stalled_thread_extraction() {
        assert_eq!(
            EpochEnd::Stall(ThreadId(3)).stalled_thread(),
            Some(ThreadId(3))
        );
        assert_eq!(EpochEnd::Wake(ThreadId(3)).stalled_thread(), None);
        assert_eq!(EpochEnd::TraceEnd.stalled_thread(), None);
    }

    #[test]
    fn record_accessors() {
        let rec = EpochRecord {
            start: Time::from_secs(1.0),
            duration: TimeDelta::from_millis(2.0),
            threads: vec![ThreadSlice {
                thread: ThreadId(1),
                counters: DvfsCounters::zero(),
            }],
            end: EpochEnd::Wake(ThreadId(2)),
        };
        assert!((rec.end_time().as_secs() - 1.002).abs() < 1e-12);
        assert!(rec.slice(ThreadId(1)).is_some());
        assert!(rec.slice(ThreadId(9)).is_none());
        assert_eq!(rec.active_threads(), 1);
    }
}
