//! Clock frequencies and DVFS operating-point ladders.

use core::fmt;

use serde::{Deserialize, Serialize};

use crate::TimeDelta;

/// A core clock frequency, stored with megahertz resolution.
///
/// Megahertz resolution matches the paper's 125 MHz DVFS step and keeps
/// `Freq` hashable and exactly comparable.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Freq(u32);

impl Freq {
    /// Creates a frequency from megahertz.
    #[must_use]
    #[inline]
    pub fn from_mhz(mhz: u32) -> Self {
        Freq(mhz)
    }

    /// Creates a frequency from gigahertz.
    ///
    /// # Panics
    /// Panics if `ghz` is not representable at megahertz resolution or is
    /// non-positive.
    #[must_use]
    #[inline]
    pub fn from_ghz(ghz: f64) -> Self {
        let mhz = ghz * 1e3;
        assert!(
            mhz > 0.0 && (mhz - mhz.round()).abs() < 1e-6,
            "frequency {ghz} GHz is not a whole number of MHz"
        );
        Freq(mhz.round() as u32)
    }

    /// This frequency in megahertz.
    #[must_use]
    #[inline]
    pub fn mhz(self) -> u32 {
        self.0
    }

    /// This frequency in gigahertz.
    #[must_use]
    #[inline]
    pub fn ghz(self) -> f64 {
        f64::from(self.0) * 1e-3
    }

    /// This frequency in hertz.
    #[must_use]
    #[inline]
    pub fn hz(self) -> f64 {
        f64::from(self.0) * 1e6
    }

    /// The duration of one clock cycle at this frequency.
    #[must_use]
    #[inline]
    pub fn cycle_time(self) -> TimeDelta {
        TimeDelta::from_secs(1.0 / self.hz())
    }

    /// The time taken to execute `cycles` clock cycles at this frequency.
    #[must_use]
    #[inline]
    pub fn cycles_to_time(self, cycles: f64) -> TimeDelta {
        TimeDelta::from_secs(cycles / self.hz())
    }

    /// The number of clock cycles elapsing in `delta` at this frequency.
    #[must_use]
    #[inline]
    pub fn time_to_cycles(self, delta: TimeDelta) -> f64 {
        delta.as_secs() * self.hz()
    }

    /// The scaling ratio `self / target`: the factor by which a purely
    /// frequency-scaled duration measured at `self` grows when re-run at
    /// `target` (paper §II-A: scaling component × base/target).
    #[must_use]
    #[inline]
    pub fn scaling_ratio_to(self, target: Freq) -> f64 {
        f64::from(self.0) / f64::from(target.0)
    }
}

impl fmt::Display for Freq {
    #[inline]
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_multiple_of(1000) {
            write!(f, "{} GHz", self.0 / 1000)
        } else {
            write!(f, "{:.3} GHz", self.ghz())
        }
    }
}

/// An inclusive ladder of DVFS operating points: `min`, `min + step`, …,
/// `max`, matching the paper's 1.0–4.0 GHz range with 125 MHz steps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FreqLadder {
    min: Freq,
    max: Freq,
    step_mhz: u32,
}

impl FreqLadder {
    /// The paper's ladder: 1.0 GHz to 4.0 GHz in 125 MHz steps (25 states).
    #[must_use]
    #[inline]
    pub fn paper_default() -> Self {
        Self::new(Freq::from_ghz(1.0), Freq::from_ghz(4.0), 125)
            .expect("the paper ladder is well-formed")
    }

    /// Creates a ladder. `max - min` must be a whole number of steps.
    #[inline]
    pub fn new(min: Freq, max: Freq, step_mhz: u32) -> Result<Self, LadderError> {
        if step_mhz == 0 {
            return Err(LadderError::ZeroStep);
        }
        if max < min {
            return Err(LadderError::Inverted { min, max });
        }
        if !(max.mhz() - min.mhz()).is_multiple_of(step_mhz) {
            return Err(LadderError::Misaligned { min, max, step_mhz });
        }
        Ok(FreqLadder { min, max, step_mhz })
    }

    /// The lowest operating point.
    #[must_use]
    #[inline]
    pub fn min(&self) -> Freq {
        self.min
    }

    /// The highest operating point.
    #[must_use]
    #[inline]
    pub fn max(&self) -> Freq {
        self.max
    }

    /// The step between adjacent operating points, in MHz.
    #[must_use]
    #[inline]
    pub fn step_mhz(&self) -> u32 {
        self.step_mhz
    }

    /// The number of operating points on the ladder.
    #[must_use]
    #[inline]
    pub fn len(&self) -> usize {
        ((self.max.mhz() - self.min.mhz()) / self.step_mhz) as usize + 1
    }

    /// A ladder always contains at least one point.
    #[must_use]
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// True if `freq` is one of the ladder's operating points.
    #[must_use]
    #[inline]
    pub fn contains(&self, freq: Freq) -> bool {
        freq >= self.min
            && freq <= self.max
            && (freq.mhz() - self.min.mhz()).is_multiple_of(self.step_mhz)
    }

    /// Iterates the operating points from lowest to highest.
    #[inline]
    pub fn iter(&self) -> impl DoubleEndedIterator<Item = Freq> + '_ {
        (0..self.len() as u32).map(move |i| Freq::from_mhz(self.min.mhz() + i * self.step_mhz))
    }

    /// The nearest ladder point at or below `freq` (clamped to `min`).
    #[must_use]
    #[inline]
    pub fn floor(&self, freq: Freq) -> Freq {
        if freq <= self.min {
            return self.min;
        }
        if freq >= self.max {
            return self.max;
        }
        let steps = (freq.mhz() - self.min.mhz()) / self.step_mhz;
        Freq::from_mhz(self.min.mhz() + steps * self.step_mhz)
    }
}

/// Errors constructing a [`FreqLadder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LadderError {
    /// The step was zero.
    ZeroStep,
    /// `max` was below `min`.
    Inverted {
        /// Requested minimum.
        min: Freq,
        /// Requested maximum.
        max: Freq,
    },
    /// The range is not a whole number of steps.
    Misaligned {
        /// Requested minimum.
        min: Freq,
        /// Requested maximum.
        max: Freq,
        /// Requested step in MHz.
        step_mhz: u32,
    },
}

impl fmt::Display for LadderError {
    #[inline]
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LadderError::ZeroStep => write!(f, "frequency ladder step must be non-zero"),
            LadderError::Inverted { min, max } => {
                write!(f, "frequency ladder max {max} below min {min}")
            }
            LadderError::Misaligned { min, max, step_mhz } => write!(
                f,
                "range {min}..{max} is not a whole number of {step_mhz} MHz steps"
            ),
        }
    }
}

impl std::error::Error for LadderError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ghz_mhz_roundtrip() {
        let f = Freq::from_ghz(3.875);
        assert_eq!(f.mhz(), 3875);
        assert!((f.ghz() - 3.875).abs() < 1e-12);
    }

    #[test]
    fn cycle_time_at_one_ghz_is_one_ns() {
        let f = Freq::from_ghz(1.0);
        assert!((f.cycle_time().as_nanos() - 1.0).abs() < 1e-12);
        assert!((f.cycles_to_time(1000.0).as_micros() - 1.0).abs() < 1e-12);
        assert!((f.time_to_cycles(TimeDelta::from_micros(1.0)) - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn scaling_ratio_matches_paper_convention() {
        // Predicting 1 GHz -> 4 GHz: scaling time shrinks by 4.
        let base = Freq::from_ghz(1.0);
        let target = Freq::from_ghz(4.0);
        assert!((base.scaling_ratio_to(target) - 0.25).abs() < 1e-12);
        assert!((target.scaling_ratio_to(base) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn paper_ladder_has_25_points() {
        let ladder = FreqLadder::paper_default();
        assert_eq!(ladder.len(), 25);
        let points: Vec<_> = ladder.iter().collect();
        assert_eq!(points[0], Freq::from_ghz(1.0));
        assert_eq!(points[24], Freq::from_ghz(4.0));
        assert_eq!(points[1], Freq::from_mhz(1125));
        assert!(ladder.contains(Freq::from_mhz(2500)));
        assert!(!ladder.contains(Freq::from_mhz(2501)));
    }

    #[test]
    fn ladder_floor_clamps_and_snaps() {
        let ladder = FreqLadder::paper_default();
        assert_eq!(ladder.floor(Freq::from_mhz(900)), Freq::from_ghz(1.0));
        assert_eq!(ladder.floor(Freq::from_mhz(4100)), Freq::from_ghz(4.0));
        assert_eq!(ladder.floor(Freq::from_mhz(1300)), Freq::from_mhz(1250));
    }

    #[test]
    fn ladder_rejects_bad_shapes() {
        assert_eq!(
            FreqLadder::new(Freq::from_mhz(1000), Freq::from_mhz(2000), 0),
            Err(LadderError::ZeroStep)
        );
        assert!(matches!(
            FreqLadder::new(Freq::from_mhz(2000), Freq::from_mhz(1000), 125),
            Err(LadderError::Inverted { .. })
        ));
        assert!(matches!(
            FreqLadder::new(Freq::from_mhz(1000), Freq::from_mhz(2060), 125),
            Err(LadderError::Misaligned { .. })
        ));
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Freq::from_ghz(4.0)), "4 GHz");
        assert_eq!(format!("{}", Freq::from_mhz(3875)), "3.875 GHz");
    }
}
