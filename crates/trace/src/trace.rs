//! The execution trace a DVFS predictor observes.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{
    DvfsCounters, EpochRecord, Freq, PhaseKind, PhaseMarker, ThreadId, ThreadInfo, Time,
    TimeDelta,
};

/// Everything a DVFS performance predictor may observe about a run (or a
/// measurement quantum of a run) executed at a known base frequency.
///
/// Real-hardware analogue: the per-thread counter snapshots harvested by the
/// kernel module at every futex transition, plus JVM phase signals.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecutionTrace {
    /// The chip-wide frequency the trace was measured at.
    pub base: Freq,
    /// When the traced window began.
    pub start: Time,
    /// Total wall-clock duration of the traced window.
    pub total: TimeDelta,
    /// The synchronization epochs, in time order, partitioning the window.
    pub epochs: Vec<EpochRecord>,
    /// Runtime phase markers (GC start/end), in time order.
    pub markers: Vec<PhaseMarker>,
    /// Metadata for every thread that appears in the trace.
    pub threads: Vec<ThreadInfo>,
}

/// Whole-window per-thread aggregates, as consumed by M+CRIT (paper §II-C):
/// wall presence (including sleep) plus summed counters.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ThreadTotals {
    /// Wall-clock time between the thread's spawn and exit, clipped to the
    /// traced window — the "execution time" M+CRIT sees, sleep included.
    pub presence: TimeDelta,
    /// Summed counter deltas over all epochs.
    pub counters: DvfsCounters,
}

/// A contiguous window of a trace classified as application or collector
/// execution (COOP's view of the run, §II-C).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseWindow {
    /// Window start.
    pub start: Time,
    /// Window end.
    pub end: Time,
    /// True if this is a stop-the-world collector window.
    pub is_gc: bool,
}

impl PhaseWindow {
    /// Window duration.
    #[must_use]
    pub fn duration(&self) -> TimeDelta {
        self.end.since(self.start)
    }
}

impl ExecutionTrace {
    /// When the traced window ended.
    #[must_use]
    pub fn end(&self) -> Time {
        self.start + self.total
    }

    /// Looks up a thread's metadata.
    #[must_use]
    pub fn thread(&self, id: ThreadId) -> Option<&ThreadInfo> {
        self.threads.iter().find(|t| t.id == id)
    }

    /// Whole-window per-thread aggregates (presence + summed counters),
    /// keyed by thread id.
    #[must_use]
    pub fn thread_totals(&self) -> BTreeMap<ThreadId, ThreadTotals> {
        let mut totals: BTreeMap<ThreadId, ThreadTotals> = BTreeMap::new();
        for info in &self.threads {
            totals.insert(
                info.id,
                ThreadTotals {
                    presence: info.presence_in(self.start, self.end()),
                    counters: DvfsCounters::zero(),
                },
            );
        }
        for epoch in &self.epochs {
            for slice in &epoch.threads {
                totals.entry(slice.thread).or_default().counters += slice.counters;
            }
        }
        totals
    }

    /// Splits the traced window into alternating application / collector
    /// windows using the GC phase markers, COOP-style. Unmarked time is
    /// application time; nested or unbalanced markers are tolerated by
    /// tracking a depth counter.
    #[must_use]
    pub fn phase_windows(&self) -> Vec<PhaseWindow> {
        let mut windows = Vec::new();
        let mut cursor = self.start;
        let mut depth: u32 = 0;
        let mut gc_begin = self.start;
        for marker in &self.markers {
            let t = marker.time.max(self.start).min(self.end());
            match marker.kind {
                PhaseKind::GcStart => {
                    if depth == 0 {
                        if t > cursor {
                            windows.push(PhaseWindow {
                                start: cursor,
                                end: t,
                                is_gc: false,
                            });
                        }
                        gc_begin = t;
                    }
                    depth += 1;
                }
                PhaseKind::GcEnd => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        windows.push(PhaseWindow {
                            start: gc_begin,
                            end: t,
                            is_gc: true,
                        });
                        cursor = t;
                    }
                }
            }
        }
        let end = self.end();
        if end > cursor {
            windows.push(PhaseWindow {
                start: cursor,
                end,
                is_gc: depth > 0,
            });
        }
        windows
    }

    /// Total time spent inside stop-the-world collector windows.
    #[must_use]
    pub fn gc_time(&self) -> TimeDelta {
        self.phase_windows()
            .iter()
            .filter(|w| w.is_gc)
            .map(PhaseWindow::duration)
            .sum()
    }

    /// Per-thread counter sums restricted to epochs that fall inside the
    /// window `[start, end]`. Epochs straddling a boundary are attributed
    /// proportionally (counters are treated as uniform within an epoch).
    #[must_use]
    pub fn totals_in_window(&self, start: Time, end: Time) -> BTreeMap<ThreadId, DvfsCounters> {
        let mut totals: BTreeMap<ThreadId, DvfsCounters> = BTreeMap::new();
        for epoch in &self.epochs {
            let e_start = epoch.start;
            let e_end = epoch.end_time();
            let lo = e_start.max(start);
            let hi = e_end.min(end);
            if hi <= lo {
                continue;
            }
            let frac = if epoch.duration == TimeDelta::ZERO {
                1.0
            } else {
                hi.since(lo) / epoch.duration
            };
            for slice in &epoch.threads {
                let scaled = scale_counters(&slice.counters, frac);
                *totals.entry(slice.thread).or_default() += scaled;
            }
        }
        totals
    }

    /// Checks structural invariants; returns the first violation found.
    pub fn validate(&self) -> Result<(), TraceError> {
        let mut cursor = self.start;
        for (i, epoch) in self.epochs.iter().enumerate() {
            if epoch.duration.is_negative() {
                return Err(TraceError::NegativeDuration { epoch: i });
            }
            if (epoch.start.as_secs() - cursor.as_secs()).abs() > 1e-9 {
                return Err(TraceError::Gap {
                    epoch: i,
                    expected: cursor,
                    found: epoch.start,
                });
            }
            for slice in &epoch.threads {
                if slice.counters.active > epoch.duration + TimeDelta::from_nanos(1.0) {
                    return Err(TraceError::OverActive {
                        epoch: i,
                        thread: slice.thread,
                    });
                }
            }
            cursor = epoch.end_time();
        }
        if (cursor.as_secs() - self.end().as_secs()).abs() > 1e-6 {
            return Err(TraceError::TotalMismatch {
                sum: cursor.since(self.start),
                total: self.total,
            });
        }
        let mut last = self.start;
        for m in &self.markers {
            if m.time < last {
                return Err(TraceError::UnsortedMarkers);
            }
            last = m.time;
        }
        Ok(())
    }
}

fn scale_counters(c: &DvfsCounters, frac: f64) -> DvfsCounters {
    DvfsCounters {
        active: c.active * frac,
        crit: c.crit * frac,
        leading_loads: c.leading_loads * frac,
        stall: c.stall * frac,
        sq_full: c.sq_full * frac,
        instructions: (c.instructions as f64 * frac).round() as u64,
        loads: (c.loads as f64 * frac).round() as u64,
        stores: (c.stores as f64 * frac).round() as u64,
        llc_misses: (c.llc_misses as f64 * frac).round() as u64,
    }
}

/// Structural violations detected by [`ExecutionTrace::validate`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceError {
    /// An epoch had negative duration.
    NegativeDuration {
        /// Index of the offending epoch.
        epoch: usize,
    },
    /// Adjacent epochs do not tile the window.
    Gap {
        /// Index of the offending epoch.
        epoch: usize,
        /// Where the epoch should have started.
        expected: Time,
        /// Where it actually started.
        found: Time,
    },
    /// A thread reported more active time than the epoch lasted.
    OverActive {
        /// Index of the offending epoch.
        epoch: usize,
        /// The offending thread.
        thread: ThreadId,
    },
    /// Epoch durations do not sum to the trace total.
    TotalMismatch {
        /// Sum of epoch durations.
        sum: TimeDelta,
        /// Declared total.
        total: TimeDelta,
    },
    /// Phase markers are not in time order.
    UnsortedMarkers,
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::NegativeDuration { epoch } => {
                write!(f, "epoch {epoch} has negative duration")
            }
            TraceError::Gap {
                epoch,
                expected,
                found,
            } => write!(
                f,
                "epoch {epoch} starts at {found} but previous epoch ended at {expected}"
            ),
            TraceError::OverActive { epoch, thread } => write!(
                f,
                "thread {thread} reports more active time than epoch {epoch} lasted"
            ),
            TraceError::TotalMismatch { sum, total } => write!(
                f,
                "epoch durations sum to {sum} but trace total is {total}"
            ),
            TraceError::UnsortedMarkers => write!(f, "phase markers are not in time order"),
        }
    }
}

impl std::error::Error for TraceError {}

impl From<TraceError> for depburst_core::DepburstError {
    fn from(err: TraceError) -> Self {
        depburst_core::DepburstError::Trace {
            detail: err.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EpochEnd, ThreadRole, ThreadSlice};

    fn mk_counters(active_us: f64) -> DvfsCounters {
        DvfsCounters {
            active: TimeDelta::from_micros(active_us),
            ..DvfsCounters::zero()
        }
    }

    fn mk_trace() -> ExecutionTrace {
        let t = |s: f64| Time::from_secs(s);
        ExecutionTrace {
            base: Freq::from_ghz(1.0),
            start: t(0.0),
            total: TimeDelta::from_secs(1.0),
            epochs: vec![
                EpochRecord {
                    start: t(0.0),
                    duration: TimeDelta::from_secs(0.4),
                    threads: vec![
                        ThreadSlice {
                            thread: ThreadId(0),
                            counters: mk_counters(400_000.0),
                        },
                        ThreadSlice {
                            thread: ThreadId(1),
                            counters: mk_counters(400_000.0),
                        },
                    ],
                    end: EpochEnd::Stall(ThreadId(1)),
                },
                EpochRecord {
                    start: t(0.4),
                    duration: TimeDelta::from_secs(0.6),
                    threads: vec![ThreadSlice {
                        thread: ThreadId(0),
                        counters: mk_counters(600_000.0),
                    }],
                    end: EpochEnd::TraceEnd,
                },
            ],
            markers: vec![
                PhaseMarker::new(t(0.2), PhaseKind::GcStart),
                PhaseMarker::new(t(0.3), PhaseKind::GcEnd),
            ],
            threads: vec![
                ThreadInfo {
                    id: ThreadId(0),
                    role: ThreadRole::Application,
                    name: "app-0".into(),
                    spawn: t(0.0),
                    exit: None,
                },
                ThreadInfo {
                    id: ThreadId(1),
                    role: ThreadRole::GcWorker,
                    name: "gc-0".into(),
                    spawn: t(0.0),
                    exit: Some(t(0.4)),
                },
            ],
        }
    }

    #[test]
    fn valid_trace_passes_validation() {
        mk_trace().validate().expect("trace should validate");
    }

    #[test]
    fn totals_sum_counters_and_presence() {
        let trace = mk_trace();
        let totals = trace.thread_totals();
        let t0 = &totals[&ThreadId(0)];
        assert!((t0.presence.as_secs() - 1.0).abs() < 1e-12);
        assert!((t0.counters.active.as_secs() - 1.0).abs() < 1e-9);
        let t1 = &totals[&ThreadId(1)];
        assert!((t1.presence.as_secs() - 0.4).abs() < 1e-12);
        assert!((t1.counters.active.as_secs() - 0.4).abs() < 1e-9);
    }

    #[test]
    fn phase_windows_split_on_markers() {
        let trace = mk_trace();
        let windows = trace.phase_windows();
        assert_eq!(windows.len(), 3);
        assert!(!windows[0].is_gc);
        assert!(windows[1].is_gc);
        assert!(!windows[2].is_gc);
        assert!((trace.gc_time().as_secs() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn window_totals_prorate_straddling_epochs() {
        let trace = mk_trace();
        // Window [0.2, 0.7] covers half of epoch 0 and half of epoch 1.
        let totals =
            trace.totals_in_window(Time::from_secs(0.2), Time::from_secs(0.7));
        let t0 = &totals[&ThreadId(0)];
        assert!((t0.active.as_secs() - (0.2 + 0.3)).abs() < 1e-9);
        let t1 = &totals[&ThreadId(1)];
        assert!((t1.active.as_secs() - 0.2).abs() < 1e-9);
    }

    #[test]
    fn validation_detects_gap() {
        let mut trace = mk_trace();
        trace.epochs[1].start = Time::from_secs(0.5);
        assert!(matches!(trace.validate(), Err(TraceError::Gap { .. })));
    }

    #[test]
    fn validation_detects_total_mismatch() {
        let mut trace = mk_trace();
        trace.total = TimeDelta::from_secs(2.0);
        assert!(matches!(
            trace.validate(),
            Err(TraceError::TotalMismatch { .. })
        ));
    }

    #[test]
    fn validation_detects_overactive_thread() {
        let mut trace = mk_trace();
        trace.epochs[0].threads[0].counters.active = TimeDelta::from_secs(0.5);
        assert!(matches!(
            trace.validate(),
            Err(TraceError::OverActive { .. })
        ));
    }

    #[test]
    fn serde_roundtrip() {
        let trace = mk_trace();
        let json = serde_json::to_string(&trace).expect("serialize");
        let back: ExecutionTrace = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back.epochs.len(), trace.epochs.len());
        assert_eq!(back.threads, trace.threads);
        assert_eq!(back.markers, trace.markers);
        assert!(
            (back.epochs[0].threads[0].counters.active.as_secs()
                - trace.epochs[0].threads[0].counters.active.as_secs())
            .abs()
                < 1e-12
        );
        back.validate().expect("roundtripped trace still validates");
    }
}
