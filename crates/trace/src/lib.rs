//! Shared vocabulary for the DEP+BURST reproduction.
//!
//! This crate defines the types exchanged between the simulator substrate
//! ([`simx`](https://docs.rs)), the predictor library (`depburst`), and the
//! energy-management case study (`energyx`):
//!
//! * [`Time`] / [`TimeDelta`] — instants and durations in simulated time;
//! * [`Freq`] and [`FreqLadder`] — clock frequencies and the set of DVFS
//!   operating points;
//! * [`DvfsCounters`] — the per-thread hardware counter set the paper's
//!   predictors consume (CRIT, leading loads, stall time, store-queue-full
//!   time);
//! * [`EpochRecord`] — one synchronization epoch, delimited by futex
//!   wait/wake transitions (paper §III-B);
//! * [`ExecutionTrace`] — everything a DVFS predictor may observe about a
//!   run at the base frequency.
//!
//! The types are deliberately independent of any simulator so the predictor
//! crate could, in principle, be fed counters harvested from real hardware.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod counters;
mod epoch;
mod freq;
mod ids;
mod phase;
mod signature;
mod thread_info;
mod summary;
mod time;
mod trace;

pub use counters::DvfsCounters;
pub use epoch::{EpochEnd, EpochRecord, ThreadSlice};
pub use freq::{Freq, FreqLadder, LadderError};
pub use ids::{CoreId, ThreadId};
pub use phase::{PhaseKind, PhaseMarker};
pub use signature::{
    recurrence, EpochSignature, RecurrenceReport, SignatureCluster, SignatureClusterer,
};
pub use summary::{RoleSummary, TraceSummary};
pub use thread_info::{ThreadInfo, ThreadRole};
pub use time::{Time, TimeDelta};
pub use trace::{ExecutionTrace, PhaseWindow, ThreadTotals, TraceError};
