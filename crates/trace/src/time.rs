//! Simulated time: instants ([`Time`]) and durations ([`TimeDelta`]).
//!
//! Both are thin wrappers over `f64` seconds. The reproduction's models are
//! analytical, so floating-point time keeps frequency ratios exact to within
//! ~1e-15 while avoiding the rounding bookkeeping an integer picosecond
//! clock would need at non-integer cycle times (e.g. 3.875 GHz).

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// An instant in simulated time, measured in seconds from the start of the
/// simulation.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Time(f64);

/// A duration of simulated time, in seconds. May be negative in intermediate
/// arithmetic (e.g. Algorithm 1 delta counters) but never as a physical
/// elapsed time.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct TimeDelta(f64);

impl Time {
    /// The origin of simulated time.
    pub const ZERO: Time = Time(0.0);

    /// Creates an instant from seconds since the start of simulation.
    #[must_use]
    #[inline]
    pub fn from_secs(secs: f64) -> Self {
        Time(secs)
    }

    /// Seconds since the start of simulation.
    #[must_use]
    #[inline]
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// The duration elapsed since `earlier`. Panics in debug builds if
    /// `earlier` is later than `self`.
    #[must_use]
    #[inline]
    pub fn since(self, earlier: Time) -> TimeDelta {
        debug_assert!(
            self.0 >= earlier.0 - 1e-12,
            "Time::since would be negative: {} < {}",
            self.0,
            earlier.0
        );
        TimeDelta(self.0 - earlier.0)
    }

    /// The later of two instants.
    #[must_use]
    #[inline]
    pub fn max(self, other: Time) -> Time {
        Time(self.0.max(other.0))
    }

    /// The earlier of two instants.
    #[must_use]
    #[inline]
    pub fn min(self, other: Time) -> Time {
        Time(self.0.min(other.0))
    }
}

impl TimeDelta {
    /// The zero duration.
    pub const ZERO: TimeDelta = TimeDelta(0.0);

    /// Creates a duration from seconds.
    #[must_use]
    #[inline]
    pub fn from_secs(secs: f64) -> Self {
        TimeDelta(secs)
    }

    /// Creates a duration from milliseconds.
    #[must_use]
    #[inline]
    pub fn from_millis(ms: f64) -> Self {
        TimeDelta(ms * 1e-3)
    }

    /// Creates a duration from microseconds.
    #[must_use]
    #[inline]
    pub fn from_micros(us: f64) -> Self {
        TimeDelta(us * 1e-6)
    }

    /// Creates a duration from nanoseconds.
    #[must_use]
    #[inline]
    pub fn from_nanos(ns: f64) -> Self {
        TimeDelta(ns * 1e-9)
    }

    /// This duration in seconds.
    #[must_use]
    #[inline]
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// This duration in milliseconds.
    #[must_use]
    #[inline]
    pub fn as_millis(self) -> f64 {
        self.0 * 1e3
    }

    /// This duration in microseconds.
    #[must_use]
    #[inline]
    pub fn as_micros(self) -> f64 {
        self.0 * 1e6
    }

    /// This duration in nanoseconds.
    #[must_use]
    #[inline]
    pub fn as_nanos(self) -> f64 {
        self.0 * 1e9
    }

    /// The larger of two durations.
    #[must_use]
    #[inline]
    pub fn max(self, other: TimeDelta) -> TimeDelta {
        TimeDelta(self.0.max(other.0))
    }

    /// The smaller of two durations.
    #[must_use]
    #[inline]
    pub fn min(self, other: TimeDelta) -> TimeDelta {
        TimeDelta(self.0.min(other.0))
    }

    /// Clamps a (possibly negative) duration to be non-negative.
    #[must_use]
    #[inline]
    pub fn clamp_non_negative(self) -> TimeDelta {
        TimeDelta(self.0.max(0.0))
    }

    /// True if this duration is negative beyond floating-point noise.
    #[must_use]
    #[inline]
    pub fn is_negative(self) -> bool {
        self.0 < -1e-15
    }

    /// The ratio `self / other`. Returns 0 when `other` is zero.
    #[must_use]
    #[inline]
    pub fn ratio(self, other: TimeDelta) -> f64 {
        if other.0 == 0.0 {
            0.0
        } else {
            self.0 / other.0
        }
    }
}

impl Add<TimeDelta> for Time {
    type Output = Time;
    #[inline]
    fn add(self, rhs: TimeDelta) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign<TimeDelta> for Time {
    #[inline]
    fn add_assign(&mut self, rhs: TimeDelta) {
        self.0 += rhs.0;
    }
}

impl Sub<TimeDelta> for Time {
    type Output = Time;
    #[inline]
    fn sub(self, rhs: TimeDelta) -> Time {
        Time(self.0 - rhs.0)
    }
}

impl Sub<Time> for Time {
    type Output = TimeDelta;
    #[inline]
    fn sub(self, rhs: Time) -> TimeDelta {
        TimeDelta(self.0 - rhs.0)
    }
}

impl Add for TimeDelta {
    type Output = TimeDelta;
    #[inline]
    fn add(self, rhs: TimeDelta) -> TimeDelta {
        TimeDelta(self.0 + rhs.0)
    }
}

impl AddAssign for TimeDelta {
    #[inline]
    fn add_assign(&mut self, rhs: TimeDelta) {
        self.0 += rhs.0;
    }
}

impl Sub for TimeDelta {
    type Output = TimeDelta;
    #[inline]
    fn sub(self, rhs: TimeDelta) -> TimeDelta {
        TimeDelta(self.0 - rhs.0)
    }
}

impl SubAssign for TimeDelta {
    #[inline]
    fn sub_assign(&mut self, rhs: TimeDelta) {
        self.0 -= rhs.0;
    }
}

impl Neg for TimeDelta {
    type Output = TimeDelta;
    #[inline]
    fn neg(self) -> TimeDelta {
        TimeDelta(-self.0)
    }
}

impl Mul<f64> for TimeDelta {
    type Output = TimeDelta;
    #[inline]
    fn mul(self, rhs: f64) -> TimeDelta {
        TimeDelta(self.0 * rhs)
    }
}

impl Mul<TimeDelta> for f64 {
    type Output = TimeDelta;
    #[inline]
    fn mul(self, rhs: TimeDelta) -> TimeDelta {
        TimeDelta(self * rhs.0)
    }
}

impl Div<f64> for TimeDelta {
    type Output = TimeDelta;
    #[inline]
    fn div(self, rhs: f64) -> TimeDelta {
        TimeDelta(self.0 / rhs)
    }
}

impl Div<TimeDelta> for TimeDelta {
    type Output = f64;
    #[inline]
    fn div(self, rhs: TimeDelta) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for TimeDelta {
    #[inline]
    fn sum<I: Iterator<Item = TimeDelta>>(iter: I) -> TimeDelta {
        TimeDelta(iter.map(|d| d.0).sum())
    }
}

impl fmt::Display for Time {
    #[inline]
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_seconds(self.0))
    }
}

impl fmt::Display for TimeDelta {
    #[inline]
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_seconds(self.0))
    }
}

/// Human-readable rendering with an auto-selected unit.
#[inline]
fn format_seconds(s: f64) -> String {
    let a = s.abs();
    if a >= 1.0 {
        format!("{s:.4} s")
    } else if a >= 1e-3 {
        format!("{:.4} ms", s * 1e3)
    } else if a >= 1e-6 {
        format!("{:.4} us", s * 1e6)
    } else {
        format!("{:.2} ns", s * 1e9)
    }
}

// `Time` values in this codebase are always finite, so a total order exists.
impl Eq for Time {}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for Time {
    #[inline]
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        self.0
            .partial_cmp(&other.0)
            .expect("simulated time must be finite")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrips() {
        let t0 = Time::from_secs(1.0);
        let d = TimeDelta::from_millis(250.0);
        let t1 = t0 + d;
        assert!((t1.as_secs() - 1.25).abs() < 1e-12);
        assert!((t1.since(t0).as_secs() - 0.25).abs() < 1e-12);
        assert!(((t1 - t0).as_millis() - 250.0).abs() < 1e-9);
    }

    #[test]
    fn unit_constructors_agree() {
        assert!((TimeDelta::from_nanos(1.0).as_secs() - 1e-9).abs() < 1e-24);
        assert!((TimeDelta::from_micros(1.0).as_millis() - 1e-3).abs() < 1e-12);
        assert!((TimeDelta::from_secs(2.0).as_nanos() - 2e9).abs() < 1e-3);
    }

    #[test]
    fn sum_and_scaling() {
        let total: TimeDelta = (0..4).map(|_| TimeDelta::from_micros(2.5)).sum();
        assert!((total.as_micros() - 10.0).abs() < 1e-9);
        assert!(((total * 2.0).as_micros() - 20.0).abs() < 1e-9);
        assert!(((total / 4.0).as_micros() - 2.5).abs() < 1e-9);
        assert!((total / TimeDelta::from_micros(5.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn clamp_and_negativity() {
        let neg = TimeDelta::from_secs(-1.0);
        assert!(neg.is_negative());
        assert_eq!(neg.clamp_non_negative(), TimeDelta::ZERO);
        assert!(!TimeDelta::ZERO.is_negative());
    }

    #[test]
    fn display_picks_units() {
        assert_eq!(format!("{}", TimeDelta::from_secs(1.5)), "1.5000 s");
        assert_eq!(format!("{}", TimeDelta::from_millis(1.5)), "1.5000 ms");
        assert_eq!(format!("{}", TimeDelta::from_micros(1.5)), "1.5000 us");
        assert_eq!(format!("{}", TimeDelta::from_nanos(1.5)), "1.50 ns");
    }

    #[test]
    fn ordering_is_total_for_finite_times() {
        let mut v = [Time::from_secs(3.0),
            Time::from_secs(1.0),
            Time::from_secs(2.0)];
        v.sort();
        assert_eq!(v[0], Time::from_secs(1.0));
        assert_eq!(v[2], Time::from_secs(3.0));
    }
}
