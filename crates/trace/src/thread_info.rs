//! Static metadata about simulated threads.

use serde::{Deserialize, Serialize};

use crate::{ThreadId, Time};

/// The role a thread plays in the managed runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ThreadRole {
    /// An application (mutator) thread.
    Application,
    /// A garbage-collection worker (service thread).
    GcWorker,
    /// The just-in-time compilation service thread.
    Jit,
}

impl ThreadRole {
    /// True for service threads (GC workers and the JIT), false for
    /// application threads.
    #[must_use]
    pub fn is_service(self) -> bool {
        matches!(self, ThreadRole::GcWorker | ThreadRole::Jit)
    }
}

/// Lifetime and identity of one simulated thread.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThreadInfo {
    /// The thread's identifier.
    pub id: ThreadId,
    /// The thread's role.
    pub role: ThreadRole,
    /// Human-readable name (e.g. `"app-2"`, `"gc-0"`).
    pub name: String,
    /// When the thread was spawned.
    pub spawn: Time,
    /// When the thread exited, if it did before the trace ended.
    pub exit: Option<Time>,
}

impl ThreadInfo {
    /// The thread's wall-clock presence overlapping the window
    /// `[start, end]`: the time between spawn and exit (or `end`), clipped
    /// to the window. This is the "execution time" M+CRIT attributes to a
    /// thread — including any time it spent asleep (paper §II-C/§III-B).
    #[must_use]
    pub fn presence_in(&self, start: Time, end: Time) -> crate::TimeDelta {
        let begin = self.spawn.max(start);
        let finish = self.exit.unwrap_or(end).min(end);
        if finish <= begin {
            crate::TimeDelta::ZERO
        } else {
            finish.since(begin)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TimeDelta;

    fn info(spawn: f64, exit: Option<f64>) -> ThreadInfo {
        ThreadInfo {
            id: ThreadId(0),
            role: ThreadRole::Application,
            name: "app-0".to_owned(),
            spawn: Time::from_secs(spawn),
            exit: exit.map(Time::from_secs),
        }
    }

    #[test]
    fn presence_clips_to_window() {
        let t = info(1.0, Some(3.0));
        let p = t.presence_in(Time::from_secs(0.0), Time::from_secs(10.0));
        assert!((p.as_secs() - 2.0).abs() < 1e-12);
        let p = t.presence_in(Time::from_secs(2.0), Time::from_secs(2.5));
        assert!((p.as_secs() - 0.5).abs() < 1e-12);
        let p = t.presence_in(Time::from_secs(4.0), Time::from_secs(5.0));
        assert_eq!(p, TimeDelta::ZERO);
    }

    #[test]
    fn presence_open_ended_uses_window_end() {
        let t = info(1.0, None);
        let p = t.presence_in(Time::from_secs(0.0), Time::from_secs(4.0));
        assert!((p.as_secs() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn service_roles() {
        assert!(ThreadRole::GcWorker.is_service());
        assert!(ThreadRole::Jit.is_service());
        assert!(!ThreadRole::Application.is_service());
    }
}
