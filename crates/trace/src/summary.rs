//! Aggregate trace statistics for reporting and quick inspection.

use serde::{Deserialize, Serialize};

use crate::{ExecutionTrace, ThreadRole, TimeDelta};

/// Per-role aggregates over a trace.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct RoleSummary {
    /// Threads with this role.
    pub threads: usize,
    /// Summed scheduled (active) time.
    pub active: TimeDelta,
    /// Summed CRIT non-scaling estimate.
    pub crit: TimeDelta,
    /// Summed store-queue-full time.
    pub sq_full: TimeDelta,
    /// Summed committed instructions.
    pub instructions: u64,
}

/// A compact summary of an execution trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceSummary {
    /// Wall-clock duration of the traced window.
    pub total: TimeDelta,
    /// Number of synchronization epochs.
    pub epochs: usize,
    /// Mean epoch duration.
    pub mean_epoch: TimeDelta,
    /// Time inside stop-the-world collector windows.
    pub gc_time: TimeDelta,
    /// Application-thread aggregates.
    pub application: RoleSummary,
    /// GC-worker aggregates.
    pub gc: RoleSummary,
    /// JIT aggregates.
    pub jit: RoleSummary,
    /// Mean number of active threads per epoch (time-weighted).
    pub mean_parallelism: f64,
}

impl TraceSummary {
    /// Computes the summary.
    #[must_use]
    pub fn compute(trace: &ExecutionTrace) -> Self {
        let totals = trace.thread_totals();
        let mut application = RoleSummary::default();
        let mut gc = RoleSummary::default();
        let mut jit = RoleSummary::default();
        for info in &trace.threads {
            let bucket = match info.role {
                ThreadRole::Application => &mut application,
                ThreadRole::GcWorker => &mut gc,
                ThreadRole::Jit => &mut jit,
            };
            bucket.threads += 1;
            if let Some(t) = totals.get(&info.id) {
                bucket.active += t.counters.active;
                bucket.crit += t.counters.crit;
                bucket.sq_full += t.counters.sq_full;
                bucket.instructions += t.counters.instructions;
            }
        }
        let weighted_active: f64 = trace
            .epochs
            .iter()
            .map(|e| e.duration.as_secs() * e.threads.len() as f64)
            .sum();
        let mean_parallelism = if trace.total.as_secs() > 0.0 {
            weighted_active / trace.total.as_secs()
        } else {
            0.0
        };
        TraceSummary {
            total: trace.total,
            epochs: trace.epochs.len(),
            mean_epoch: if trace.epochs.is_empty() {
                TimeDelta::ZERO
            } else {
                trace.total / trace.epochs.len() as f64
            },
            gc_time: trace.gc_time(),
            application,
            gc,
            jit,
            mean_parallelism,
        }
    }

    /// Fraction of the window spent in stop-the-world collection.
    #[must_use]
    pub fn gc_fraction(&self) -> f64 {
        self.gc_time.ratio(self.total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        DvfsCounters, EpochEnd, EpochRecord, Freq, PhaseKind, PhaseMarker, ThreadId, ThreadInfo,
        ThreadSlice, Time,
    };

    fn mk_trace() -> ExecutionTrace {
        let t = Time::from_secs;
        let c = |active: f64| DvfsCounters {
            active: TimeDelta::from_secs(active),
            crit: TimeDelta::from_secs(active * 0.4),
            instructions: (active * 1e9) as u64,
            ..DvfsCounters::zero()
        };
        ExecutionTrace {
            base: Freq::from_ghz(1.0),
            start: t(0.0),
            total: TimeDelta::from_secs(1.0),
            epochs: vec![
                EpochRecord {
                    start: t(0.0),
                    duration: TimeDelta::from_secs(0.5),
                    threads: vec![
                        ThreadSlice {
                            thread: ThreadId(0),
                            counters: c(0.5),
                        },
                        ThreadSlice {
                            thread: ThreadId(1),
                            counters: c(0.5),
                        },
                    ],
                    end: EpochEnd::Stall(ThreadId(0)),
                },
                EpochRecord {
                    start: t(0.5),
                    duration: TimeDelta::from_secs(0.5),
                    threads: vec![ThreadSlice {
                        thread: ThreadId(1),
                        counters: c(0.5),
                    }],
                    end: EpochEnd::TraceEnd,
                },
            ],
            markers: vec![
                PhaseMarker::new(t(0.5), PhaseKind::GcStart),
                PhaseMarker::new(t(1.0), PhaseKind::GcEnd),
            ],
            threads: vec![
                ThreadInfo {
                    id: ThreadId(0),
                    role: ThreadRole::Application,
                    name: "app".into(),
                    spawn: t(0.0),
                    exit: None,
                },
                ThreadInfo {
                    id: ThreadId(1),
                    role: ThreadRole::GcWorker,
                    name: "gc".into(),
                    spawn: t(0.0),
                    exit: None,
                },
            ],
        }
    }

    #[test]
    fn summary_aggregates_by_role() {
        let s = TraceSummary::compute(&mk_trace());
        assert_eq!(s.epochs, 2);
        assert_eq!(s.application.threads, 1);
        assert_eq!(s.gc.threads, 1);
        assert!((s.application.active.as_secs() - 0.5).abs() < 1e-12);
        assert!((s.gc.active.as_secs() - 1.0).abs() < 1e-12);
        assert!((s.gc_fraction() - 0.5).abs() < 1e-12);
        // Time-weighted parallelism: 2 threads for 0.5 s + 1 for 0.5 s.
        assert!((s.mean_parallelism - 1.5).abs() < 1e-12);
        assert!((s.mean_epoch.as_secs() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_summary() {
        let t = ExecutionTrace {
            base: Freq::from_ghz(1.0),
            start: Time::ZERO,
            total: TimeDelta::ZERO,
            epochs: vec![],
            markers: vec![],
            threads: vec![],
        };
        let s = TraceSummary::compute(&t);
        assert_eq!(s.epochs, 0);
        assert_eq!(s.mean_parallelism, 0.0);
        assert_eq!(s.gc_fraction(), 0.0);
    }
}
