//! Coarse-grained phase markers emitted by the managed runtime.
//!
//! These are the "signals from the JVM" the COOP baseline intercepts
//! (paper §II-C) to distinguish application phases from stop-the-world
//! collector phases.

use serde::{Deserialize, Serialize};

use crate::Time;

/// The kind of runtime phase transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PhaseKind {
    /// A stop-the-world garbage collection began (application threads are
    /// suspended at safepoints).
    GcStart,
    /// The stop-the-world collection finished and the application resumed.
    GcEnd,
}

/// A timestamped phase transition.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhaseMarker {
    /// When the transition occurred.
    pub time: Time,
    /// What changed.
    pub kind: PhaseKind,
}

impl PhaseMarker {
    /// Convenience constructor.
    #[must_use]
    pub fn new(time: Time, kind: PhaseKind) -> Self {
        PhaseMarker { time, kind }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction() {
        let m = PhaseMarker::new(Time::from_secs(0.5), PhaseKind::GcStart);
        assert_eq!(m.kind, PhaseKind::GcStart);
        assert_eq!(m.time, Time::from_secs(0.5));
    }
}
