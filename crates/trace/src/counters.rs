//! The per-thread DVFS performance-counter set.
//!
//! These are the counters the paper's predictor family consumes (§II-A,
//! §III-C, §III-D). On real hardware they would be per-core performance
//! counters saved/restored by the kernel module at futex boundaries; in this
//! reproduction the simulator maintains them per thread.

use core::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

use crate::TimeDelta;

/// A snapshot (or delta between snapshots) of one thread's DVFS counters.
///
/// All time-valued fields are measured in wall-clock time at the frequency
/// the thread was running at when the counter advanced.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct DvfsCounters {
    /// Time the thread was scheduled on a core and executing (excludes
    /// futex sleep).
    pub active: TimeDelta,
    /// Non-scaling time as estimated by the CRIT critical-path algorithm
    /// (Miftakhutdinov et al. \[31\]): the accumulated latency of the critical
    /// chain through clusters of long-latency load misses.
    pub crit: TimeDelta,
    /// Non-scaling time as estimated by the leading-loads model: the full
    /// latency of the leading miss of each miss cluster.
    pub leading_loads: TimeDelta,
    /// Non-scaling time as estimated by the stall-time model: time the
    /// pipeline could not commit instructions due to memory.
    pub stall: TimeDelta,
    /// Time the store queue was full (the new hardware counter the paper
    /// introduces for BURST, §III-D/E).
    pub sq_full: TimeDelta,
    /// Committed instructions.
    pub instructions: u64,
    /// Committed load micro-ops.
    pub loads: u64,
    /// Committed store micro-ops.
    pub stores: u64,
    /// Last-level-cache load misses serviced by DRAM.
    pub llc_misses: u64,
}

impl DvfsCounters {
    /// An all-zero counter set.
    #[must_use]
    #[inline]
    pub fn zero() -> Self {
        Self::default()
    }

    /// The delta `self - earlier`, used to attribute counter increments to a
    /// synchronization epoch.
    ///
    /// Counters are monotone on a correctly ordered pair of snapshots; an
    /// out-of-order harvest (a delayed sample on real hardware) would
    /// otherwise underflow the `u64` event counts and produce negative
    /// time deltas, so every field saturates at zero instead.
    #[must_use]
    #[inline]
    pub fn delta_since(&self, earlier: &DvfsCounters) -> DvfsCounters {
        DvfsCounters {
            active: (self.active - earlier.active).clamp_non_negative(),
            crit: (self.crit - earlier.crit).clamp_non_negative(),
            leading_loads: (self.leading_loads - earlier.leading_loads).clamp_non_negative(),
            stall: (self.stall - earlier.stall).clamp_non_negative(),
            sq_full: (self.sq_full - earlier.sq_full).clamp_non_negative(),
            instructions: self.instructions.saturating_sub(earlier.instructions),
            loads: self.loads.saturating_sub(earlier.loads),
            stores: self.stores.saturating_sub(earlier.stores),
            llc_misses: self.llc_misses.saturating_sub(earlier.llc_misses),
        }
    }

    /// True if every field is zero (the thread did not run).
    #[must_use]
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.active == TimeDelta::ZERO
            && self.instructions == 0
            && self.loads == 0
            && self.stores == 0
    }

    /// The scaling component under a given non-scaling estimate: active time
    /// minus the estimate, clamped at zero (a non-scaling estimate may
    /// slightly exceed measured active time at epoch granularity).
    #[must_use]
    #[inline]
    pub fn scaling_given(&self, non_scaling: TimeDelta) -> TimeDelta {
        (self.active - non_scaling).clamp_non_negative()
    }
}

impl Add for DvfsCounters {
    type Output = DvfsCounters;
    #[inline]
    fn add(self, rhs: DvfsCounters) -> DvfsCounters {
        DvfsCounters {
            active: self.active + rhs.active,
            crit: self.crit + rhs.crit,
            leading_loads: self.leading_loads + rhs.leading_loads,
            stall: self.stall + rhs.stall,
            sq_full: self.sq_full + rhs.sq_full,
            instructions: self.instructions + rhs.instructions,
            loads: self.loads + rhs.loads,
            stores: self.stores + rhs.stores,
            llc_misses: self.llc_misses + rhs.llc_misses,
        }
    }
}

impl AddAssign for DvfsCounters {
    #[inline]
    fn add_assign(&mut self, rhs: DvfsCounters) {
        *self = *self + rhs;
    }
}

impl Sub for DvfsCounters {
    type Output = DvfsCounters;
    #[inline]
    fn sub(self, rhs: DvfsCounters) -> DvfsCounters {
        self.delta_since(&rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(scale: f64) -> DvfsCounters {
        DvfsCounters {
            active: TimeDelta::from_micros(10.0 * scale),
            crit: TimeDelta::from_micros(4.0 * scale),
            leading_loads: TimeDelta::from_micros(3.0 * scale),
            stall: TimeDelta::from_micros(2.0 * scale),
            sq_full: TimeDelta::from_micros(1.0 * scale),
            instructions: (1000.0 * scale) as u64,
            loads: (300.0 * scale) as u64,
            stores: (100.0 * scale) as u64,
            llc_misses: (10.0 * scale) as u64,
        }
    }

    #[test]
    fn delta_since_subtracts_fieldwise() {
        let later = sample(2.0);
        let earlier = sample(1.0);
        let d = later.delta_since(&earlier);
        assert!((d.active.as_micros() - 10.0).abs() < 1e-9);
        assert!((d.sq_full.as_micros() - 1.0).abs() < 1e-9);
        assert_eq!(d.instructions, 1000);
        assert_eq!(d.llc_misses, 10);
    }

    #[test]
    fn delta_since_saturates_on_out_of_order_snapshots() {
        let later = sample(2.0);
        let earlier = sample(1.0);
        // Arguments swapped: a correctly ordered pair in reverse.
        let d = earlier.delta_since(&later);
        assert_eq!(d.instructions, 0);
        assert_eq!(d.loads, 0);
        assert_eq!(d.active, TimeDelta::ZERO);
        assert_eq!(d.crit, TimeDelta::ZERO);
        assert!(!d.active.is_negative());
    }

    #[test]
    fn add_accumulates() {
        let sum = sample(1.0) + sample(1.0);
        assert!((sum.active.as_micros() - 20.0).abs() < 1e-9);
        assert_eq!(sum.stores, 200);
    }

    #[test]
    fn zero_detection() {
        assert!(DvfsCounters::zero().is_zero());
        assert!(!sample(1.0).is_zero());
    }

    #[test]
    fn scaling_clamps_at_zero() {
        let c = sample(1.0);
        let s = c.scaling_given(TimeDelta::from_micros(4.0));
        assert!((s.as_micros() - 6.0).abs() < 1e-9);
        let clamped = c.scaling_given(TimeDelta::from_micros(100.0));
        assert_eq!(clamped, TimeDelta::ZERO);
    }
}
