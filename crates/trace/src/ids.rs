//! Identifiers for simulated threads and cores.

use core::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of a simulated software thread (application or service).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct ThreadId(pub u32);

impl ThreadId {
    /// The numeric id.
    #[must_use]
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ThreadId {
    #[inline]
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Identifier of a hardware core.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct CoreId(pub u8);

impl CoreId {
    /// The numeric id.
    #[must_use]
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for CoreId {
    #[inline]
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_index() {
        assert_eq!(format!("{}", ThreadId(3)), "t3");
        assert_eq!(format!("{}", CoreId(1)), "core1");
        assert_eq!(ThreadId(7).index(), 7);
        assert_eq!(CoreId(2).index(), 2);
    }
}
