//! `depburst-core` — the unified error type of the DEP+BURST reproduction.
//!
//! Every layer of the stack (trace vocabulary, simulator, predictors,
//! energy management, harness) reports recoverable failures through
//! [`DepburstError`] so callers can match on one enum instead of a
//! per-crate zoo. The crate sits at the very bottom of the dependency
//! graph and therefore carries *plain data only* — no types from the
//! layers above. Each layer provides its own `From<...>` conversion into
//! the matching variant (e.g. `simx` converts `MachineError`, `dvfs-trace`
//! converts `TraceError`).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod stablehash;

use core::fmt;

/// A convenience alias for results carrying [`DepburstError`].
pub type Result<T> = core::result::Result<T, DepburstError>;

/// The unified, layer-spanning error type.
#[derive(Debug, Clone, PartialEq)]
pub enum DepburstError {
    /// A performance prediction failed the energy manager's sanity gate
    /// (NaN, non-positive, or implausibly large slowdown).
    PredictionRejected {
        /// The offending predicted duration in seconds (may be NaN).
        predicted_secs: f64,
        /// Why the gate rejected it.
        detail: &'static str,
    },
    /// A static-sweep point carried a non-finite energy or execution time,
    /// so the oracle cannot rank it.
    NonFiniteEnergy {
        /// The frequency of the offending sweep point, in MHz.
        freq_mhz: u32,
    },
    /// A requested DVFS transition was denied (injected fault or a busy
    /// voltage regulator on real hardware).
    TransitionDenied {
        /// Simulated time of the denial, in seconds.
        at_secs: f64,
    },
    /// A core violated its chunk-execution protocol (e.g. completing a
    /// chunk while idle). Indicates a stale event, not fatal state.
    CoreProtocol {
        /// The offending core's index.
        core: u8,
        /// What went wrong.
        detail: &'static str,
    },
    /// A simulator-level failure (deadlock, dirty trace, unknown thread),
    /// carried as text to keep this crate dependency-free.
    Machine {
        /// The rendered simulator error.
        detail: String,
    },
    /// An execution trace violated a structural invariant, carried as text
    /// to keep this crate dependency-free.
    Trace {
        /// The rendered trace error.
        detail: String,
    },
    /// A simulation point exceeded its wall-clock watchdog deadline (the
    /// harness armed a per-point timeout and the event loop noticed it).
    /// The run was abandoned cleanly; retrying with a larger budget is
    /// safe because seeded simulations are pure.
    WatchdogExpired {
        /// Simulated time when the wall-clock deadline was noticed.
        at_secs: f64,
    },
    /// A sweep executed every point but some ultimately failed after
    /// exhausting their retries (panic, watchdog timeout, or error). The
    /// per-point detail lives in the harness failure report; this variant
    /// carries only the counts so the sweep's caller can exit nonzero.
    SweepIncomplete {
        /// Points that ultimately failed.
        failed: usize,
        /// Points in the sweep plan.
        total: usize,
    },
    /// Durable storage failed underneath the harness: a cache or
    /// checkpoint-journal operation hit an unrecoverable I/O error, or a
    /// simulated crash point fired (see `harness::vfs`). The run fails
    /// closed rather than continuing on untrustworthy state.
    Storage {
        /// The storage operation that failed (e.g. `append`, `rename`).
        op: String,
        /// The rendered I/O error.
        detail: String,
    },
    /// A CLI option combination the invoked experiment cannot honor
    /// (e.g. `--sampling on` on the fleet, whose round loop is not a
    /// sampled-execution consumer). Fails closed at startup, before any
    /// simulation work runs.
    UnsupportedOption {
        /// The offending option, as typed.
        option: String,
        /// Why the experiment cannot honor it.
        detail: String,
    },
    /// A runtime invariant monitor check failed (see `simx::invariants`):
    /// the simulated physics produced self-inconsistent state. Retrying is
    /// pointless — the same seeded inputs reproduce the same violation.
    InvariantViolation {
        /// The kebab-case name of the violated invariant.
        invariant: String,
        /// Simulated time of the (first) violation, in seconds.
        at_secs: f64,
        /// Human-readable description of the inconsistency.
        detail: String,
    },
}

impl fmt::Display for DepburstError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DepburstError::PredictionRejected {
                predicted_secs,
                detail,
            } => write!(
                f,
                "prediction rejected by sanity gate: {detail} (predicted {predicted_secs} s)"
            ),
            DepburstError::NonFiniteEnergy { freq_mhz } => write!(
                f,
                "static sweep point at {freq_mhz} MHz has non-finite energy or time"
            ),
            DepburstError::TransitionDenied { at_secs } => {
                write!(f, "DVFS transition denied at t={at_secs} s")
            }
            DepburstError::CoreProtocol { core, detail } => {
                write!(f, "core {core} protocol violation: {detail}")
            }
            DepburstError::Machine { detail } => write!(f, "machine error: {detail}"),
            DepburstError::Trace { detail } => write!(f, "trace error: {detail}"),
            DepburstError::WatchdogExpired { at_secs } => write!(
                f,
                "point watchdog expired: wall-clock budget exhausted at simulated t={at_secs} s"
            ),
            DepburstError::SweepIncomplete { failed, total } => write!(
                f,
                "sweep incomplete: {failed} of {total} points failed after retries"
            ),
            DepburstError::Storage { op, detail } => {
                write!(f, "storage error during {op}: {detail}")
            }
            DepburstError::UnsupportedOption { option, detail } => {
                write!(f, "unsupported option {option}: {detail}")
            }
            DepburstError::InvariantViolation {
                invariant,
                at_secs,
                detail,
            } => write!(
                f,
                "invariant violation [{invariant}] at t={at_secs} s: {detail}"
            ),
        }
    }
}

impl std::error::Error for DepburstError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_every_variant() {
        let cases: Vec<(DepburstError, &str)> = vec![
            (
                DepburstError::PredictionRejected {
                    predicted_secs: f64::NAN,
                    detail: "NaN",
                },
                "sanity gate",
            ),
            (DepburstError::NonFiniteEnergy { freq_mhz: 2500 }, "2500 MHz"),
            (DepburstError::TransitionDenied { at_secs: 1.5 }, "denied"),
            (
                DepburstError::CoreProtocol {
                    core: 3,
                    detail: "finish on idle",
                },
                "core 3",
            ),
            (
                DepburstError::Machine {
                    detail: "deadlock".into(),
                },
                "machine error",
            ),
            (
                DepburstError::Trace {
                    detail: "gap".into(),
                },
                "trace error",
            ),
            (
                DepburstError::WatchdogExpired { at_secs: 0.25 },
                "watchdog expired",
            ),
            (
                DepburstError::SweepIncomplete {
                    failed: 2,
                    total: 40,
                },
                "2 of 40",
            ),
            (
                DepburstError::InvariantViolation {
                    invariant: "counter-conservation".into(),
                    at_secs: 0.5,
                    detail: "crit exceeds active".into(),
                },
                "[counter-conservation]",
            ),
            (
                DepburstError::Storage {
                    op: "append".into(),
                    detail: "no space left on device".into(),
                },
                "storage error during append",
            ),
            (
                DepburstError::UnsupportedOption {
                    option: "--sampling".into(),
                    detail: "the fleet round loop has no sampled tier".into(),
                },
                "unsupported option --sampling",
            ),
        ];
        for (err, needle) in cases {
            let rendered = err.to_string();
            assert!(rendered.contains(needle), "{rendered:?} lacks {needle:?}");
        }
    }

    #[test]
    fn is_a_std_error() {
        let err: Box<dyn std::error::Error> = Box::new(DepburstError::NonFiniteEnergy {
            freq_mhz: 1000,
        });
        assert!(err.to_string().contains("1000"));
    }
}
