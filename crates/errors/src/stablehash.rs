//! A stable, platform-independent content hasher.
//!
//! `std::hash` deliberately refuses stability guarantees across releases
//! and process runs, but the simulation memo cache needs digests that stay
//! valid in `results/cache/` between invocations and machines. This module
//! pins the algorithm: FNV-1a over a canonical little-endian byte stream,
//! widened to 128 bits so sampled-injectivity tests and on-disk keys have
//! collision headroom.
//!
//! Every layer contributes its inputs through [`StableHasher`]'s typed
//! `write_*` methods; each value is prefixed by its width implicitly (the
//! typed methods always write a fixed number of bytes) and composite
//! structures should delimit themselves with [`StableHasher::write_tag`]
//! so that adjacent variable-length fields cannot alias one another.

/// FNV-1a 128-bit offset basis.
const OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
/// FNV-1a 128-bit prime.
const PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

/// An incremental FNV-1a 128 hasher with a stable byte encoding.
#[derive(Debug, Clone)]
pub struct StableHasher {
    state: u128,
}

impl Default for StableHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl StableHasher {
    /// A fresh hasher at the FNV offset basis.
    #[must_use]
    pub fn new() -> Self {
        StableHasher { state: OFFSET }
    }

    /// Feeds raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u128::from(b);
            self.state = self.state.wrapping_mul(PRIME);
        }
    }

    /// Feeds a domain-separation tag (a short static label). The length is
    /// folded in first so `"ab" + "c"` and `"a" + "bc"` differ.
    pub fn write_tag(&mut self, tag: &str) {
        self.write_u64(tag.len() as u64);
        self.write_bytes(tag.as_bytes());
    }

    /// Feeds a string (length-prefixed).
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write_bytes(s.as_bytes());
    }

    /// Feeds a `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Feeds a `u32` (little-endian).
    pub fn write_u32(&mut self, v: u32) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Feeds a `bool` as one byte.
    pub fn write_bool(&mut self, v: bool) {
        self.write_bytes(&[u8::from(v)]);
    }

    /// Feeds an `f64` by bit pattern (NaNs are canonicalised so that any
    /// NaN input hashes identically; `-0.0` and `0.0` are distinct — they
    /// are distinct inputs to the simulation).
    pub fn write_f64(&mut self, v: f64) {
        let bits = if v.is_nan() {
            f64::NAN.to_bits()
        } else {
            v.to_bits()
        };
        self.write_u64(bits);
    }

    /// Feeds an optional `u64`; `None` and `Some(x)` never collide.
    pub fn write_opt_u64(&mut self, v: Option<u64>) {
        match v {
            Some(x) => {
                self.write_bytes(&[1]);
                self.write_u64(x);
            }
            None => self.write_bytes(&[0]),
        }
    }

    /// The 128-bit digest of everything fed so far.
    #[must_use]
    pub fn finish(&self) -> u128 {
        self.state
    }

    /// The digest as a fixed-width lowercase hex string (32 chars), the
    /// form used for on-disk cache file names.
    #[must_use]
    pub fn finish_hex(&self) -> String {
        format!("{:032x}", self.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_hash_is_offset_basis() {
        assert_eq!(StableHasher::new().finish(), OFFSET);
    }

    #[test]
    fn known_vector() {
        // FNV-1a 128 of "a" (well-known test vector family).
        let mut h = StableHasher::new();
        h.write_bytes(b"a");
        assert_ne!(h.finish(), OFFSET);
        // Stability: the digest of a fixed input must never change.
        let mut h2 = StableHasher::new();
        h2.write_bytes(b"a");
        assert_eq!(h.finish(), h2.finish());
    }

    #[test]
    fn length_prefix_prevents_aliasing() {
        let mut a = StableHasher::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = StableHasher::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn nan_is_canonical_but_zero_signs_differ() {
        let mut a = StableHasher::new();
        a.write_f64(f64::NAN);
        let mut b = StableHasher::new();
        b.write_f64(-f64::NAN);
        assert_eq!(a.finish(), b.finish());

        let mut p = StableHasher::new();
        p.write_f64(0.0);
        let mut n = StableHasher::new();
        n.write_f64(-0.0);
        assert_ne!(p.finish(), n.finish());
    }

    #[test]
    fn option_tagging_distinguishes_none_from_zero() {
        let mut a = StableHasher::new();
        a.write_opt_u64(None);
        let mut b = StableHasher::new();
        b.write_opt_u64(Some(0));
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn hex_is_fixed_width() {
        let mut h = StableHasher::new();
        h.write_u64(7);
        assert_eq!(h.finish_hex().len(), 32);
    }
}
