//! Shared runtime control state: GC phase machine, futexes, application
//! locks and barriers.
//!
//! All simulated threads hold an `Arc<RuntimeShared>`. The *values* here
//! are the "user-space memory" of the runtime; the kernel-visible
//! synchronisation goes through the futexes registered on the machine,
//! exactly mirroring how a pthreads-based JVM behaves (paper §III-B).

use std::collections::VecDeque;

use simx::program::{FutexId, SharedWord};
use simx::Machine;

use crate::config::RuntimeConfig;
use crate::heap::HeapState;
use crate::sync::{SyncCell, SyncRefCell};

/// The collector phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GcPhase {
    /// Mutators running normally.
    Running,
    /// A mutator requested a collection; the coordinator has not yet
    /// acknowledged.
    Requested,
    /// The coordinator is waiting for all mutators to reach safepoints.
    Stopping,
    /// The world is stopped; GC workers are collecting.
    Collecting,
}

/// A futex-backed mutex (word protocol: 0 free, 1 held, 2 held with
/// waiters — the classic futex mutex).
#[derive(Debug, Clone)]
pub struct FutexMutex {
    /// The user-space word.
    pub word: SharedWord,
    /// The kernel futex id.
    pub futex: FutexId,
}

impl FutexMutex {
    /// Registers a new mutex on the machine.
    pub fn new(machine: &mut Machine) -> Self {
        let (futex, word) = machine.register_futex(0);
        FutexMutex { word, futex }
    }

    /// Uncontended fast path: acquire if free. Returns `true` on success.
    pub fn try_acquire(&self) -> bool {
        if self.word.get() == 0 {
            self.word.set(1);
            true
        } else {
            false
        }
    }

    /// Acquire attempt after having slept on the futex. On success the
    /// word is set to the *contended* value — the waker cannot know
    /// whether other waiters remain, so the next release must wake again
    /// (the classic futex-mutex protocol).
    pub fn acquire_contended(&self) -> bool {
        if self.word.get() == 0 {
            self.word.set(2);
            true
        } else {
            false
        }
    }

    /// Marks the mutex contended (caller is about to sleep). Returns the
    /// word value to pass as the futex expected value.
    pub fn mark_contended(&self) -> u32 {
        self.word.set(2);
        2
    }

    /// Releases the mutex. Returns `true` if waiters may exist and a wake
    /// is required.
    pub fn release(&self) -> bool {
        let contended = self.word.get() == 2;
        self.word.set(0);
        contended
    }
}

/// A futex-backed generation barrier for application threads.
#[derive(Debug)]
pub struct AppBarrier {
    /// Threads expected at the barrier.
    pub parties: SyncCell<u32>,
    /// Threads arrived so far this generation.
    pub arrived: SyncCell<u32>,
    /// Generation counter (the futex word mirrors it).
    pub word: SharedWord,
    /// Kernel futex id.
    pub futex: FutexId,
}

impl AppBarrier {
    /// Registers a barrier for `parties` threads.
    pub fn new(machine: &mut Machine, parties: u32) -> Self {
        let (futex, word) = machine.register_futex(0);
        AppBarrier {
            parties: SyncCell::new(parties),
            arrived: SyncCell::new(0),
            word,
            futex,
        }
    }

    /// Registers an arrival. Returns `true` if the caller is the last
    /// party (and must release the barrier).
    pub fn arrive(&self) -> bool {
        let n = self.arrived.get() + 1;
        if n >= self.parties.get() {
            self.arrived.set(0);
            self.word.set(self.word.get() + 1); // next generation
            true
        } else {
            self.arrived.set(n);
            false
        }
    }

    /// Reduces the party count (a participating thread exited).
    /// Returns `true` if this release-by-exit completes the barrier.
    pub fn withdraw(&self) -> bool {
        let parties = self.parties.get().saturating_sub(1);
        self.parties.set(parties);
        if parties > 0 && self.arrived.get() >= parties {
            self.arrived.set(0);
            self.word.set(self.word.get() + 1);
            true
        } else {
            false
        }
    }
}

/// One unit of collector work: trace a slice of the live set and copy its
/// survivors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GcPacket {
    /// Bytes of survivor data to copy.
    pub copy_bytes: u64,
    /// Pointer-graph reads to perform while tracing.
    pub trace_reads: u64,
    /// Base address of the region the reads walk.
    pub trace_base: u64,
    /// Size of the region the reads walk.
    pub trace_span: u64,
    /// Destination address for the copy.
    pub copy_dest: u64,
}

/// Everything the runtime's threads share.
#[derive(Debug)]
pub struct RuntimeShared {
    /// Static configuration.
    pub config: RuntimeConfig,
    /// Heap occupancy.
    pub heap: SyncRefCell<HeapState>,

    /// Collector phase.
    pub phase: SyncCell<GcPhase>,
    /// Live (not exited) mutators.
    pub mutators_total: SyncCell<u32>,
    /// Mutators stopped at a safepoint.
    pub mutators_stopped: SyncCell<u32>,
    /// Mutators blocked in safepoint-safe waits (locks/barriers/sleeps).
    pub mutators_safe: SyncCell<u32>,

    /// World futex: mutators sleep here during a collection; the word is
    /// the GC generation.
    pub world_futex: FutexId,
    /// World generation word.
    pub world_word: SharedWord,
    /// Coordinator doorbell futex.
    pub coord_futex: FutexId,
    /// Coordinator doorbell event counter.
    pub coord_word: SharedWord,
    /// GC worker start futex; word = collection generation.
    pub worker_futex: FutexId,
    /// Worker start generation word.
    pub worker_word: SharedWord,
    /// Collection-finished futex: the coordinator sleeps here until the
    /// last worker checks in.
    pub done_futex: FutexId,
    /// Done event counter.
    pub done_word: SharedWord,

    /// Lock protecting the GC work-packet queue.
    pub queue_lock: FutexMutex,
    /// Pending collector work.
    pub packets: SyncRefCell<VecDeque<GcPacket>>,
    /// Workers (incl. coordinator) that drained the queue this collection.
    pub workers_done: SyncCell<u32>,

    /// Application mutexes, indexed by `Step::Lock`.
    pub app_locks: Vec<FutexMutex>,
    /// Application barriers, indexed by `Step::Barrier`.
    pub app_barriers: Vec<AppBarrier>,

    /// Wall-time statistics: completed collections' survivor bytes.
    pub bytes_copied: SyncCell<u64>,

    /// The machine's invariant-monitor depth at install time. Runtime
    /// threads check the GC-handoff invariants when this is at least
    /// `Cheap`; at `Off` the checks cost one branch.
    pub invariant_mode: simx::InvariantMode,
    /// GC-handoff invariant violations observed by runtime threads. They
    /// cannot hold a machine borrow while running, so violations collect
    /// here as `(at_secs, detail)` pairs and the harness merges them into
    /// the machine's monitor after the run.
    pub gc_violations: SyncRefCell<Vec<(f64, String)>>,
}

impl RuntimeShared {
    /// Builds the shared state, registering all futexes on the machine.
    pub fn new(
        machine: &mut Machine,
        config: RuntimeConfig,
        mutators: u32,
        app_locks: usize,
        app_barriers: &[u32],
    ) -> Self {
        let heap = HeapState::new(config.heap_size, config.nursery_size);
        let (world_futex, world_word) = machine.register_futex(0);
        let (coord_futex, coord_word) = machine.register_futex(0);
        let (worker_futex, worker_word) = machine.register_futex(0);
        let (done_futex, done_word) = machine.register_futex(0);
        let queue_lock = FutexMutex::new(machine);
        let app_locks = (0..app_locks).map(|_| FutexMutex::new(machine)).collect();
        let app_barriers = app_barriers
            .iter()
            .map(|&parties| AppBarrier::new(machine, parties))
            .collect();
        RuntimeShared {
            config,
            heap: SyncRefCell::new(heap),
            phase: SyncCell::new(GcPhase::Running),
            mutators_total: SyncCell::new(mutators),
            mutators_stopped: SyncCell::new(0),
            mutators_safe: SyncCell::new(0),
            world_futex,
            world_word,
            coord_futex,
            coord_word,
            worker_futex,
            worker_word,
            done_futex,
            done_word,
            queue_lock,
            packets: SyncRefCell::new(VecDeque::new()),
            workers_done: SyncCell::new(0),
            app_locks,
            app_barriers,
            bytes_copied: SyncCell::new(0),
            invariant_mode: machine.invariant_mode(),
            gc_violations: SyncRefCell::new(Vec::new()),
        }
    }

    /// True if the GC-handoff invariants should be checked (the machine's
    /// monitor was at least at `cheap` depth when the runtime installed).
    #[must_use]
    pub fn check_gc_invariants(&self) -> bool {
        self.invariant_mode >= simx::InvariantMode::Cheap
    }

    /// Records a GC-handoff invariant violation for later merging into the
    /// machine's monitor.
    pub fn record_gc_violation(&self, at_secs: f64, detail: String) {
        self.gc_violations.borrow_mut().push((at_secs, detail));
    }

    /// Drains the recorded GC-handoff violations.
    #[must_use]
    pub fn take_gc_violations(&self) -> Vec<(f64, String)> {
        std::mem::take(&mut *self.gc_violations.borrow_mut())
    }

    /// True if mutators must stop at their next safepoint.
    #[must_use]
    pub fn stop_requested(&self) -> bool {
        self.phase.get() != GcPhase::Running
    }

    /// True once every live mutator is either stopped at a safepoint or
    /// parked in a safepoint-safe wait.
    #[must_use]
    pub fn world_is_stopped(&self) -> bool {
        self.mutators_stopped.get() + self.mutators_safe.get() >= self.mutators_total.get()
    }

    /// Rings the coordinator's doorbell (bump the event counter). The
    /// caller must follow with a `FutexWake` on [`Self::coord_futex`].
    pub fn ring_coordinator(&self) {
        self.coord_word.set(self.coord_word.get().wrapping_add(1));
    }

    /// Requests a collection if one is not already in progress.
    pub fn request_gc(&self) {
        if self.phase.get() == GcPhase::Running {
            self.phase.set(GcPhase::Requested);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simx::MachineConfig;

    fn shared() -> (Machine, RuntimeShared) {
        let mut machine = Machine::new(MachineConfig::haswell_quad());
        let config = RuntimeConfig::with_heap(64 << 20);
        let shared = RuntimeShared::new(&mut machine, config, 4, 2, &[4]);
        (machine, shared)
    }

    #[test]
    fn futex_mutex_protocol() {
        let mut machine = Machine::new(MachineConfig::haswell_quad());
        let m = FutexMutex::new(&mut machine);
        assert!(m.try_acquire());
        assert!(!m.try_acquire());
        assert_eq!(m.mark_contended(), 2);
        assert!(m.release(), "contended release must wake");
        assert!(m.try_acquire());
        assert!(!m.release(), "uncontended release needs no wake");
    }

    #[test]
    fn barrier_arrivals() {
        let mut machine = Machine::new(MachineConfig::haswell_quad());
        let b = AppBarrier::new(&mut machine, 3);
        assert!(!b.arrive());
        assert!(!b.arrive());
        assert!(b.arrive(), "third arrival releases");
        assert_eq!(b.word.get(), 1);
        assert_eq!(b.arrived.get(), 0);
    }

    #[test]
    fn barrier_withdraw_can_release() {
        let mut machine = Machine::new(MachineConfig::haswell_quad());
        let b = AppBarrier::new(&mut machine, 3);
        b.arrive();
        b.arrive();
        // The third party exits instead of arriving.
        assert!(b.withdraw());
        assert_eq!(b.parties.get(), 2);
    }

    #[test]
    fn stop_accounting() {
        let (_machine, s) = shared();
        assert!(!s.stop_requested());
        s.request_gc();
        assert_eq!(s.phase.get(), GcPhase::Requested);
        assert!(s.stop_requested());
        assert!(!s.world_is_stopped());
        s.mutators_stopped.set(2);
        s.mutators_safe.set(2);
        assert!(s.world_is_stopped());
        // A mutator exits: 3 suffice.
        s.mutators_total.set(3);
        s.mutators_stopped.set(1);
        assert!(s.world_is_stopped());
    }

    #[test]
    fn request_gc_does_not_clobber_active_phase() {
        let (_machine, s) = shared();
        s.phase.set(GcPhase::Collecting);
        s.request_gc();
        assert_eq!(s.phase.get(), GcPhase::Collecting);
    }
}
