//! Heap accounting: bump-pointer nursery + mature space.

use crate::config::AddressMap;

/// Result of a nursery allocation attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocResult {
    /// Space granted; the payload is the base address of the fresh region
    /// (to be zero-initialised).
    Fits {
        /// Base address of the allocated region.
        base: u64,
    },
    /// The nursery cannot hold the request: a collection is needed.
    NeedsGc,
}

/// Heap occupancy state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HeapState {
    /// Nursery capacity in bytes.
    pub nursery_size: u64,
    /// Bytes currently allocated in the nursery.
    pub nursery_used: u64,
    /// Bytes live in the mature space.
    pub mature_used: u64,
    /// Total heap budget.
    pub heap_size: u64,
    /// Nursery collections completed.
    pub gc_count: u64,
    /// Full-heap collections completed.
    pub full_gc_count: u64,
    /// Total bytes ever allocated (statistics).
    pub total_allocated: u64,
}

impl HeapState {
    /// A fresh heap.
    #[must_use]
    pub fn new(heap_size: u64, nursery_size: u64) -> Self {
        HeapState {
            nursery_size,
            nursery_used: 0,
            mature_used: 0,
            heap_size,
            gc_count: 0,
            full_gc_count: 0,
            total_allocated: 0,
        }
    }

    /// Attempts a bump allocation of `bytes`.
    pub fn try_alloc(&mut self, bytes: u64) -> AllocResult {
        assert!(
            bytes <= self.nursery_size / 2,
            "allocation of {bytes} B too large for a {} B nursery",
            self.nursery_size
        );
        if self.nursery_used + bytes > self.nursery_size {
            AllocResult::NeedsGc
        } else {
            let base = AddressMap::NURSERY + self.nursery_used;
            self.nursery_used += bytes;
            self.total_allocated += bytes;
            AllocResult::Fits { base }
        }
    }

    /// Applies the heap effects of a nursery collection: survivors move to
    /// the mature space, the nursery resets. Returns the survivor bytes.
    pub fn nursery_collected(&mut self, survivor_fraction: f64) -> u64 {
        let survivors = (self.nursery_used as f64 * survivor_fraction) as u64;
        self.mature_used += survivors;
        self.nursery_used = 0;
        self.gc_count += 1;
        survivors
    }

    /// Applies a full-heap collection: reclaims a fraction of the mature
    /// space. Returns the mature bytes that were traced.
    pub fn full_heap_collected(&mut self, reclaim_fraction: f64) -> u64 {
        let traced = self.mature_used;
        self.mature_used = (self.mature_used as f64 * (1.0 - reclaim_fraction)) as u64;
        self.full_gc_count += 1;
        traced
    }

    /// True when mature occupancy threatens the heap budget and the next
    /// collection should trace the full heap.
    #[must_use]
    pub fn mature_pressure(&self) -> bool {
        self.mature_used + self.nursery_size > self.heap_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_allocation_until_full() {
        let mut h = HeapState::new(64 << 20, 16 << 20);
        let AllocResult::Fits { base } = h.try_alloc(1 << 20) else {
            panic!("first alloc fits");
        };
        assert_eq!(base, AddressMap::NURSERY);
        let AllocResult::Fits { base } = h.try_alloc(1 << 20) else {
            panic!("second alloc fits");
        };
        assert_eq!(base, AddressMap::NURSERY + (1 << 20));
        // Fill the nursery.
        while let AllocResult::Fits { .. } = h.try_alloc(1 << 20) {}
        assert_eq!(h.try_alloc(1 << 20), AllocResult::NeedsGc);
        assert_eq!(h.total_allocated, 16 << 20);
    }

    #[test]
    fn collection_moves_survivors_and_resets() {
        let mut h = HeapState::new(64 << 20, 16 << 20);
        for _ in 0..10 {
            h.try_alloc(1 << 20);
        }
        let survivors = h.nursery_collected(0.2);
        assert_eq!(survivors, 2 << 20);
        assert_eq!(h.nursery_used, 0);
        assert_eq!(h.mature_used, 2 << 20);
        assert_eq!(h.gc_count, 1);
    }

    #[test]
    fn full_heap_collection_reclaims() {
        let mut h = HeapState::new(64 << 20, 16 << 20);
        h.mature_used = 40 << 20;
        let traced = h.full_heap_collected(0.5);
        assert_eq!(traced, 40 << 20);
        assert_eq!(h.mature_used, 20 << 20);
        assert_eq!(h.full_gc_count, 1);
    }

    #[test]
    fn mature_pressure_threshold() {
        let mut h = HeapState::new(64 << 20, 16 << 20);
        assert!(!h.mature_pressure());
        h.mature_used = 50 << 20;
        assert!(h.mature_pressure());
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn oversized_allocation_panics() {
        let mut h = HeapState::new(64 << 20, 16 << 20);
        h.try_alloc(9 << 20);
    }
}
