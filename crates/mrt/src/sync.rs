//! `Sync` cell wrappers for the runtime's shared "user-space memory".
//!
//! The simulated runtime is cooperatively scheduled: exactly one simulated
//! thread mutates this state at a time, driven by a single-threaded event
//! loop. Historically that let the state live in `Cell`/`RefCell` behind an
//! `Rc`. The experiment pool, however, moves whole machines between OS
//! worker threads, which requires every captured structure to be `Send` —
//! so the cells are wrapped in mutexes. Contention is impossible (one OS
//! thread drives one machine), making every lock uncontended; the wrappers
//! keep the `Cell`/`RefCell` method names so runtime code reads unchanged.

use std::sync::{Mutex, MutexGuard};

/// A `Sync` replacement for `Cell<T>`: `get`/`set` on a `Copy` value.
#[derive(Debug, Default)]
pub struct SyncCell<T: Copy>(Mutex<T>);

impl<T: Copy> SyncCell<T> {
    /// A cell holding `value`.
    pub fn new(value: T) -> Self {
        SyncCell(Mutex::new(value))
    }

    /// Reads the value.
    pub fn get(&self) -> T {
        *self.0.lock().expect("SyncCell poisoned")
    }

    /// Writes the value.
    pub fn set(&self, value: T) {
        *self.0.lock().expect("SyncCell poisoned") = value;
    }
}

/// A `Sync` replacement for `RefCell<T>`: `borrow`/`borrow_mut` guards.
#[derive(Debug, Default)]
pub struct SyncRefCell<T>(Mutex<T>);

impl<T> SyncRefCell<T> {
    /// A cell holding `value`.
    pub fn new(value: T) -> Self {
        SyncRefCell(Mutex::new(value))
    }

    /// Immutably borrows the value (the guard derefs like `Ref`).
    pub fn borrow(&self) -> MutexGuard<'_, T> {
        self.0.lock().expect("SyncRefCell poisoned")
    }

    /// Mutably borrows the value (the guard derefs like `RefMut`).
    pub fn borrow_mut(&self) -> MutexGuard<'_, T> {
        self.0.lock().expect("SyncRefCell poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_roundtrip() {
        let c = SyncCell::new(7u32);
        assert_eq!(c.get(), 7);
        c.set(9);
        assert_eq!(c.get(), 9);
    }

    #[test]
    fn refcell_roundtrip() {
        let c = SyncRefCell::new(vec![1, 2]);
        c.borrow_mut().push(3);
        assert_eq!(c.borrow().len(), 3);
    }

    #[test]
    fn wrappers_are_sync_and_send() {
        fn assert_bounds<T: Send + Sync>() {}
        assert_bounds::<SyncCell<u64>>();
        assert_bounds::<SyncRefCell<Vec<u8>>>();
    }
}
