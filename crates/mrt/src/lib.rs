//! `mrt` — a managed-runtime (JVM-like) simulator on top of [`simx`].
//!
//! This crate is the reproduction's substitute for Jikes RVM 3.1.2 (paper
//! §IV). It provides the managed-language execution behaviours the
//! DEP+BURST predictor is sensitive to:
//!
//! * **mutator threads** that allocate from a bump-pointer nursery, paying
//!   the Java **zero-initialisation store burst** on every allocation;
//! * a **stop-the-world parallel copying collector**: when the nursery
//!   fills, all mutators are stopped at safepoints (via futexes), GC worker
//!   threads pull work packets from a lock-protected shared queue (more
//!   futex traffic), copy survivors (**GC-copy store bursts**), and the
//!   world is restarted — emitting the `GcStart`/`GcEnd` phase markers the
//!   COOP baseline listens for;
//! * an optional **JIT service thread** that periodically wakes and burns
//!   compute early in the run;
//! * safepoint-aware application synchronisation (locks, barriers, timed
//!   sleeps) so a blocked mutator never deadlocks a collection.
//!
//! Workloads implement [`WorkSource`] to describe application behaviour as
//! a stream of [`Step`]s; [`ManagedRuntime`] wires everything onto a
//! [`simx::Machine`].

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod collector;
mod config;
mod control;
mod heap;
mod jit;
mod mutator;
mod runtime;
pub mod sync;

pub use config::{AddressMap, RuntimeConfig};
pub use control::{GcPhase, RuntimeShared};
pub use heap::HeapState;
pub use mutator::{Step, StepContext, WorkSource};
pub use runtime::ManagedRuntime;
