//! The just-in-time compilation service thread.
//!
//! With replay compilation the paper measures steady-state behaviour, so
//! the JIT's role here is deliberately modest: it wakes periodically early
//! in the run, burns a slice of compute (method compilation), and exits
//! once its budget is spent. Its timer wakeups still create the
//! application/service-thread epoch boundaries DEP must handle.

use std::sync::Arc;

use simx::program::{Action, ProgContext, ThreadProgram};
use simx::WorkItem;

use crate::control::RuntimeShared;

/// Per-wake compilation slice, as a fraction of the total budget.
const SLICES: u64 = 24;

/// The JIT service-thread program.
pub struct JitProgram {
    shared: Arc<RuntimeShared>,
    remaining: u64,
    sleeping: bool,
}

impl std::fmt::Debug for JitProgram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JitProgram")
            .field("remaining", &self.remaining)
            .finish_non_exhaustive()
    }
}

impl JitProgram {
    /// Creates the JIT thread program.
    pub fn new(shared: Arc<RuntimeShared>) -> Self {
        let remaining = shared.config.jit_budget_instructions;
        JitProgram {
            shared,
            remaining,
            sleeping: false,
        }
    }
}

impl ThreadProgram for JitProgram {
    fn next(&mut self, _ctx: &mut ProgContext) -> Action {
        if self.remaining == 0 {
            return Action::Exit;
        }
        if !self.sleeping {
            self.sleeping = true;
            return Action::SleepFor(self.shared.config.jit_period);
        }
        self.sleeping = false;
        let slice = (self.shared.config.jit_budget_instructions / SLICES).max(1);
        let work = slice.min(self.remaining);
        self.remaining -= work;
        Action::Work(WorkItem::Compute {
            instructions: work,
            ipc: 1.6,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RuntimeConfig;
    use dvfs_trace::{ThreadId, Time};
    use simx::program::WaitOutcome;
    use simx::{Machine, MachineConfig};

    #[test]
    fn jit_alternates_sleep_and_work_until_budget_spent() {
        let mut machine = Machine::new(MachineConfig::haswell_quad());
        let mut config = RuntimeConfig::with_heap(64 << 20);
        config.jit_budget_instructions = 100;
        let shared = Arc::new(RuntimeShared::new(&mut machine, config, 1, 0, &[]));
        let mut jit = JitProgram::new(shared);
        let mut ctx = ProgContext {
            now: Time::ZERO,
            tid: ThreadId(0),
            last_wait: WaitOutcome::None,
            last_spawned: None,
        };
        let mut worked = 0u64;
        loop {
            match jit.next(&mut ctx) {
                Action::SleepFor(_) => {}
                Action::Work(WorkItem::Compute { instructions, .. }) => worked += instructions,
                Action::Exit => break,
                other => panic!("unexpected action {other:?}"),
            }
        }
        assert_eq!(worked, 100);
    }
}
