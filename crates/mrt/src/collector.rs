//! The stop-the-world parallel copying collector.
//!
//! One GC thread (worker 0) doubles as the *coordinator*: it owns the
//! doorbell, stops the world, builds the work-packet queue, participates in
//! collection, and restarts the world. The remaining workers park on a
//! start futex between collections. Packets are pulled from a shared queue
//! under a futex mutex — the fine-grained service-thread synchronisation
//! the paper identifies as a key obstacle for naive DVFS predictors.

use std::sync::Arc;

use dvfs_trace::PhaseKind;
use simx::mem::AccessPattern;
use simx::program::{Action, ProgContext, ThreadProgram};
use simx::WorkItem;

use crate::config::AddressMap;
use crate::control::{GcPacket, GcPhase, RuntimeShared};

/// Builds the packet queue for one collection. Returns whether this is a
/// full-heap collection.
fn build_packets(shared: &RuntimeShared) -> bool {
    let cfg = &shared.config;
    let heap = shared.heap.borrow();
    let survivors = (heap.nursery_used as f64 * cfg.survivor_fraction) as u64;
    let full = (heap.gc_count + 1).is_multiple_of(u64::from(cfg.full_heap_period)) || heap.mature_pressure();

    let mut packets = shared.packets.borrow_mut();
    packets.clear();
    let packet_bytes = cfg.packet_bytes.max(4096);
    let n = survivors.div_ceil(packet_bytes).max(1);
    let per_packet = survivors / n;
    for i in 0..n {
        let copy = if i == n - 1 {
            survivors - per_packet * (n - 1)
        } else {
            per_packet
        };
        packets.push_back(GcPacket {
            copy_bytes: copy.max(1024),
            trace_reads: ((copy.max(1024) / 64) as f64 * cfg.trace_reads_per_line) as u64,
            trace_base: AddressMap::NURSERY,
            trace_span: heap.nursery_size.max(4096),
            copy_dest: AddressMap::MATURE + heap.mature_used + i * per_packet,
        });
    }
    if full && heap.mature_used > 0 {
        // Full-heap trace: walk the mature space; compaction copies a
        // fraction of it.
        let mature = heap.mature_used;
        let m = mature.div_ceil(packet_bytes * 4).max(1);
        let per = mature / m;
        for i in 0..m {
            packets.push_back(GcPacket {
                copy_bytes: (per / 8).max(1024),
                trace_reads: ((per / 64) as f64 * cfg.trace_reads_per_line) as u64,
                trace_base: AddressMap::MATURE,
                trace_span: mature.max(4096),
                copy_dest: AddressMap::MATURE + mature + i * (per / 8),
            });
        }
    }
    full
}

/// The shared packet-pulling state machine embedded in both the
/// coordinator and plain workers.
#[derive(Debug, Clone, Copy, PartialEq)]
enum PullMode {
    /// Try the queue-lock fast path.
    TryLock,
    /// Parked on the contended queue lock.
    LockParked,
    /// Lock held: charge the critical-section cycles.
    Locked,
    /// Release the lock (pop already done); then trace the packet if any.
    Release { packet: Option<GcPacket>, wake: bool },
    /// Walk the packet's pointer graph.
    Trace { packet: GcPacket },
    /// Copy the packet's survivors.
    Copy { packet: GcPacket },
    /// Queue drained: check in.
    Drained,
}

/// Advances the pull machine by one step. Returns `Ok(action)` to emit,
/// or `Err(())` once the queue is drained and the caller checked in.
fn pull_step(
    shared: &RuntimeShared,
    mode: &mut PullMode,
    seed: &mut u64,
) -> Result<Option<Action>, ()> {
    match *mode {
        PullMode::TryLock => {
            if shared.queue_lock.try_acquire() {
                *mode = PullMode::Locked;
                Ok(None)
            } else {
                let expected = shared.queue_lock.mark_contended();
                *mode = PullMode::LockParked;
                Ok(Some(Action::FutexWait {
                    futex: shared.queue_lock.futex,
                    expected,
                }))
            }
        }
        PullMode::LockParked => {
            // Contended re-acquire: keep the word at 2 so the next release
            // wakes any remaining waiters.
            if shared.queue_lock.acquire_contended() {
                *mode = PullMode::Locked;
                Ok(None)
            } else {
                let expected = shared.queue_lock.mark_contended();
                Ok(Some(Action::FutexWait {
                    futex: shared.queue_lock.futex,
                    expected,
                }))
            }
        }
        PullMode::Locked => {
            let packet = shared.packets.borrow_mut().pop_front();
            let wake_needed_later = true; // decided at release from the word
            let _ = wake_needed_later;
            *mode = PullMode::Release {
                packet,
                wake: false, // filled at release
            };
            // Hold the lock for the modelled critical-section length.
            Ok(Some(Action::Work(WorkItem::Compute {
                instructions: shared.config.queue_lock_hold_cycles,
                ipc: 1.0,
            })))
        }
        PullMode::Release { packet, .. } => {
            let wake = shared.queue_lock.release();
            let next = match packet {
                Some(p) => PullMode::Trace { packet: p },
                None => PullMode::Drained,
            };
            *mode = next;
            if wake {
                Ok(Some(Action::FutexWake {
                    futex: shared.queue_lock.futex,
                    count: 1,
                }))
            } else {
                Ok(None)
            }
        }
        PullMode::Trace { packet } => {
            *mode = PullMode::Copy { packet };
            *seed += 1;
            Ok(Some(Action::Work(WorkItem::Memory {
                accesses: packet.trace_reads.max(16),
                pattern: AccessPattern::Random {
                    base: packet.trace_base,
                    working_set: packet.trace_span,
                },
                mlp: 2.0,
                compute_per_access: 8.0,
                ipc: 2.0,
                seed: *seed,
            })))
        }
        PullMode::Copy { packet } => {
            *mode = PullMode::TryLock;
            *seed += 1;
            Ok(Some(Action::Work(WorkItem::StoreBurst {
                bytes: packet.copy_bytes,
                pattern: AccessPattern::Streaming {
                    base: packet.copy_dest,
                },
                seed: *seed,
            })))
        }
        PullMode::Drained => {
            shared
                .workers_done
                .set(shared.workers_done.get() + 1);
            Err(())
        }
    }
}

/// Coordinator top-level mode.
#[derive(Debug, Clone, Copy, PartialEq)]
enum CoordMode {
    /// Park on the doorbell.
    Doorbell,
    /// Doorbell rang: inspect the phase.
    Inspect,
    /// Emit the `GcStart` marker.
    BeginGc,
    /// Build packets, open the collection, wake the workers.
    StartWorkers { full: bool },
    /// Participate in collection.
    Pull(PullMode),
    /// Wait for the remaining workers to drain.
    AwaitWorkers,
    /// Workers done: apply heap effects, close the collection.
    Finish,
    /// Emit the `GcEnd` marker.
    MarkEnd,
    /// Restart the world.
    WakeWorld,
}

/// The GC coordinator program (worker 0).
pub struct CoordinatorProgram {
    shared: Arc<RuntimeShared>,
    mode: CoordMode,
    full_gc: bool,
    seed: u64,
}

impl std::fmt::Debug for CoordinatorProgram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CoordinatorProgram")
            .field("mode", &self.mode)
            .finish_non_exhaustive()
    }
}

impl CoordinatorProgram {
    /// Creates the coordinator.
    pub fn new(shared: Arc<RuntimeShared>) -> Self {
        CoordinatorProgram {
            shared,
            mode: CoordMode::Doorbell,
            full_gc: false,
            seed: 0xC0,
        }
    }
}

impl ThreadProgram for CoordinatorProgram {
    fn next(&mut self, ctx: &mut ProgContext) -> Action {
        loop {
            match self.mode {
                CoordMode::Doorbell => {
                    let snapshot = self.shared.coord_word.get();
                    self.mode = CoordMode::Inspect;
                    if self.shared.phase.get() == GcPhase::Requested
                        || (self.shared.phase.get() == GcPhase::Stopping
                            && self.shared.world_is_stopped())
                    {
                        continue; // work already pending; skip the park
                    }
                    return Action::FutexWait {
                        futex: self.shared.coord_futex,
                        expected: snapshot,
                    };
                }
                CoordMode::Inspect => {
                    match self.shared.phase.get() {
                        GcPhase::Requested => {
                            self.shared.phase.set(GcPhase::Stopping);
                            if self.shared.world_is_stopped() {
                                self.mode = CoordMode::BeginGc;
                            } else {
                                self.mode = CoordMode::Doorbell;
                            }
                        }
                        GcPhase::Stopping => {
                            if self.shared.world_is_stopped() {
                                self.mode = CoordMode::BeginGc;
                            } else {
                                self.mode = CoordMode::Doorbell;
                            }
                        }
                        GcPhase::Running | GcPhase::Collecting => {
                            self.mode = CoordMode::Doorbell;
                        }
                    };
                }
                CoordMode::BeginGc => {
                    // GC pause accounting, entry side: a collection may
                    // only begin with every mutator stopped or parked
                    // safe, and the safepoint counters must stay within
                    // the live mutator population.
                    if self.shared.check_gc_invariants() {
                        let s = &self.shared;
                        if !s.world_is_stopped() {
                            s.record_gc_violation(
                                ctx.now.as_secs(),
                                format!(
                                    "collection began with the world running: \
                                     {} stopped + {} safe < {} mutators",
                                    s.mutators_stopped.get(),
                                    s.mutators_safe.get(),
                                    s.mutators_total.get()
                                ),
                            );
                        }
                        if s.mutators_stopped.get() + s.mutators_safe.get()
                            > s.mutators_total.get()
                        {
                            s.record_gc_violation(
                                ctx.now.as_secs(),
                                format!(
                                    "safepoint over-count: {} stopped + {} safe exceeds \
                                     {} live mutators",
                                    s.mutators_stopped.get(),
                                    s.mutators_safe.get(),
                                    s.mutators_total.get()
                                ),
                            );
                        }
                    }
                    self.mode = CoordMode::StartWorkers { full: false };
                    return Action::MarkPhase(PhaseKind::GcStart);
                }
                CoordMode::StartWorkers { .. } => {
                    let full = build_packets(&self.shared);
                    self.full_gc = full;
                    self.shared.workers_done.set(0);
                    self.shared.phase.set(GcPhase::Collecting);
                    self.shared
                        .worker_word
                        .set(self.shared.worker_word.get().wrapping_add(1));
                    self.mode = CoordMode::Pull(PullMode::TryLock);
                    return Action::FutexWake {
                        futex: self.shared.worker_futex,
                        count: u32::MAX,
                    };
                }
                CoordMode::Pull(mut pull) => {
                    match pull_step(&self.shared, &mut pull, &mut self.seed) {
                        Ok(Some(action)) => {
                            self.mode = CoordMode::Pull(pull);
                            return action;
                        }
                        Ok(None) => {
                            self.mode = CoordMode::Pull(pull);
                        }
                        Err(()) => {
                            self.mode = CoordMode::AwaitWorkers;
                        }
                    }
                }
                CoordMode::AwaitWorkers => {
                    let workers = self.shared.config.gc_workers as u32;
                    if self.shared.workers_done.get() >= workers {
                        self.mode = CoordMode::Finish;
                        continue;
                    }
                    let snapshot = self.shared.done_word.get();
                    // Re-check after snapshotting to close the race.
                    if self.shared.workers_done.get() >= workers {
                        self.mode = CoordMode::Finish;
                        continue;
                    }
                    self.mode = CoordMode::AwaitWorkers;
                    return Action::FutexWait {
                        futex: self.shared.done_futex,
                        expected: snapshot,
                    };
                }
                CoordMode::Finish => {
                    // GC pause accounting, exit side: the STW window must
                    // still be intact when the collection's heap effects
                    // are applied — the phase is Collecting and no mutator
                    // resumed early (which would attribute mutator work to
                    // the pause).
                    if self.shared.check_gc_invariants() {
                        let s = &self.shared;
                        if s.phase.get() != GcPhase::Collecting {
                            s.record_gc_violation(
                                ctx.now.as_secs(),
                                format!(
                                    "collection finishing from phase {:?} (want Collecting)",
                                    s.phase.get()
                                ),
                            );
                        }
                        if !s.world_is_stopped() {
                            s.record_gc_violation(
                                ctx.now.as_secs(),
                                "a mutator resumed before the collection finished: \
                                 pause time leaked into mutator time"
                                    .to_owned(),
                            );
                        }
                    }
                    let cfg = &self.shared.config;
                    let mut heap = self.shared.heap.borrow_mut();
                    let survivors = heap.nursery_collected(cfg.survivor_fraction);
                    if self.full_gc {
                        heap.full_heap_collected(cfg.full_heap_reclaim);
                    }
                    drop(heap);
                    self.shared
                        .bytes_copied
                        .set(self.shared.bytes_copied.get() + survivors);
                    self.shared.phase.set(GcPhase::Running);
                    self.shared
                        .world_word
                        .set(self.shared.world_word.get().wrapping_add(1));
                    self.mode = CoordMode::MarkEnd;
                }
                CoordMode::MarkEnd => {
                    self.mode = CoordMode::WakeWorld;
                    return Action::MarkPhase(PhaseKind::GcEnd);
                }
                CoordMode::WakeWorld => {
                    self.mode = CoordMode::Doorbell;
                    return Action::FutexWake {
                        futex: self.shared.world_futex,
                        count: u32::MAX,
                    };
                }
            }
        }
    }
}

/// Worker top-level mode.
#[derive(Debug, Clone, Copy, PartialEq)]
enum WorkerMode {
    /// Park until the next collection.
    Idle,
    /// Woken: check the phase.
    Woken,
    /// Collect.
    Pull(PullMode),
    /// Drained: if last, wake the coordinator.
    CheckIn,
}

/// A plain GC worker program (workers 1..n).
pub struct WorkerProgram {
    shared: Arc<RuntimeShared>,
    mode: WorkerMode,
    seed: u64,
    /// Collection generation (worker_word value) this worker last served —
    /// guards against rejoining a collection it already drained.
    served_gen: u32,
}

impl std::fmt::Debug for WorkerProgram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerProgram")
            .field("mode", &self.mode)
            .finish_non_exhaustive()
    }
}

impl WorkerProgram {
    /// Creates worker `ordinal` (1-based).
    pub fn new(shared: Arc<RuntimeShared>, ordinal: u32) -> Self {
        WorkerProgram {
            shared,
            mode: WorkerMode::Idle,
            seed: u64::from(ordinal) << 40,
            served_gen: 0,
        }
    }
}

impl ThreadProgram for WorkerProgram {
    fn next(&mut self, _ctx: &mut ProgContext) -> Action {
        loop {
            match self.mode {
                WorkerMode::Idle => {
                    let snapshot = self.shared.worker_word.get();
                    self.mode = WorkerMode::Woken;
                    if self.shared.phase.get() == GcPhase::Collecting
                        && snapshot != self.served_gen
                    {
                        continue; // an unserved collection is already open
                    }
                    return Action::FutexWait {
                        futex: self.shared.worker_futex,
                        expected: snapshot,
                    };
                }
                WorkerMode::Woken => {
                    let gen = self.shared.worker_word.get();
                    if self.shared.phase.get() == GcPhase::Collecting
                        && gen != self.served_gen
                    {
                        self.served_gen = gen;
                        self.mode = WorkerMode::Pull(PullMode::TryLock);
                    } else {
                        self.mode = WorkerMode::Idle;
                    }
                }
                WorkerMode::Pull(mut pull) => {
                    match pull_step(&self.shared, &mut pull, &mut self.seed) {
                        Ok(Some(action)) => {
                            self.mode = WorkerMode::Pull(pull);
                            return action;
                        }
                        Ok(None) => {
                            self.mode = WorkerMode::Pull(pull);
                        }
                        Err(()) => {
                            self.mode = WorkerMode::CheckIn;
                        }
                    }
                }
                WorkerMode::CheckIn => {
                    let workers = self.shared.config.gc_workers as u32;
                    self.mode = WorkerMode::Idle;
                    if self.shared.workers_done.get() >= workers {
                        // Last to finish: wake the coordinator.
                        self.shared
                            .done_word
                            .set(self.shared.done_word.get().wrapping_add(1));
                        return Action::FutexWake {
                            futex: self.shared.done_futex,
                            count: 1,
                        };
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RuntimeConfig;
    use simx::{Machine, MachineConfig};

    #[test]
    fn packet_building_covers_survivors() {
        let mut machine = Machine::new(MachineConfig::haswell_quad());
        let config = RuntimeConfig::with_heap(64 << 20);
        let shared = RuntimeShared::new(&mut machine, config, 4, 0, &[]);
        shared.heap.borrow_mut().try_alloc(8 << 20);
        let full = build_packets(&shared);
        assert!(!full);
        let packets = shared.packets.borrow();
        let survivors = (8 << 20) as f64 * shared.config.survivor_fraction;
        let total: u64 = packets.iter().map(|p| p.copy_bytes).sum();
        assert!(
            (total as f64 - survivors).abs() / survivors < 0.1,
            "copy bytes {total} should approximate survivors {survivors}"
        );
        assert!(packets.len() > 1, "survivors should split into packets");
        assert!(packets.iter().all(|p| p.trace_reads > 0));
    }

    #[test]
    fn periodic_full_heap_collection() {
        let mut machine = Machine::new(MachineConfig::haswell_quad());
        let mut config = RuntimeConfig::with_heap(64 << 20);
        config.full_heap_period = 2;
        let shared = RuntimeShared::new(&mut machine, config, 4, 0, &[]);
        shared.heap.borrow_mut().try_alloc(4 << 20);
        shared.heap.borrow_mut().mature_used = 16 << 20;
        // gc_count = 1 -> next is the 2nd -> full.
        shared.heap.borrow_mut().gc_count = 1;
        let full = build_packets(&shared);
        assert!(full);
        let packets = shared.packets.borrow();
        assert!(packets
            .iter()
            .any(|p| p.trace_base == AddressMap::MATURE));
    }
}
