//! Managed-runtime configuration.

use dvfs_trace::TimeDelta;

/// Configuration of the managed runtime (heap sizing, collector shape,
/// JIT). Defaults mirror the paper's setup: Jikes RVM's default
/// stop-the-world generational collector with four GC threads and
/// moderate heap pressure.
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeConfig {
    /// Total heap size in bytes (Table I gives per-benchmark values).
    pub heap_size: u64,
    /// Nursery size in bytes. Jikes RVM's default nursery is a fraction of
    /// the heap; collections trigger when it fills.
    pub nursery_size: u64,
    /// Number of parallel GC worker threads (including the coordinator).
    pub gc_workers: usize,
    /// Fraction of the nursery that survives a nursery collection and is
    /// copied to the mature space.
    pub survivor_fraction: f64,
    /// Every n-th collection also traces the mature space (a full-heap
    /// collection — substantially more work).
    pub full_heap_period: u32,
    /// Fraction of the mature space reclaimed by a full-heap collection.
    pub full_heap_reclaim: f64,
    /// Bytes of survivor data per GC work packet (packet granularity
    /// controls GC-internal lock contention).
    pub packet_bytes: u64,
    /// Pointer-graph reads per copied cache line during tracing.
    pub trace_reads_per_line: f64,
    /// Cycles held inside the packet-queue lock per pop.
    pub queue_lock_hold_cycles: u64,
    /// Whether to run a JIT service thread.
    pub jit: bool,
    /// Total compute the JIT burns over the run (instructions).
    pub jit_budget_instructions: u64,
    /// JIT wake period.
    pub jit_period: TimeDelta,
    /// Core-affinity bitmask for service threads (GC workers + JIT);
    /// `None` = run anywhere. Used by the per-core DVFS extension to pin
    /// service threads to a dedicated core set (cf. Sartor et al. \[35\]).
    pub service_affinity: Option<u8>,
    /// Core-affinity bitmask for application (mutator) threads.
    pub mutator_affinity: Option<u8>,
}

impl RuntimeConfig {
    /// A runtime with the given heap, nursery defaulted to a quarter of
    /// the heap, four GC workers, and the JIT enabled.
    #[must_use]
    pub fn with_heap(heap_size: u64) -> Self {
        RuntimeConfig {
            heap_size,
            nursery_size: heap_size / 4,
            gc_workers: 4,
            survivor_fraction: 0.10,
            full_heap_period: 8,
            full_heap_reclaim: 0.8,
            packet_bytes: 64 * 1024,
            trace_reads_per_line: 8.0,
            queue_lock_hold_cycles: 2500,
            jit: true,
            jit_budget_instructions: 40_000_000,
            jit_period: TimeDelta::from_millis(20.0),
            service_affinity: None,
            mutator_affinity: None,
        }
    }
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        Self::with_heap(96 * 1024 * 1024)
    }
}

/// Virtual address map of the simulated heap (purely for cache/DRAM
/// behaviour; there is no functional memory).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddressMap;

impl AddressMap {
    /// Base address of the nursery.
    pub const NURSERY: u64 = 1 << 33;
    /// Base address of the mature space.
    pub const MATURE: u64 = 1 << 34;
    /// Base address of non-heap application data (indexed per region).
    pub const APP_DATA: u64 = 1 << 35;

    /// Base address of the `i`-th application data region (1 GB apart).
    #[must_use]
    pub fn app_region(i: u64) -> u64 {
        Self::APP_DATA + i * (1 << 30)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_nursery_is_quarter_heap() {
        let c = RuntimeConfig::with_heap(100 << 20);
        assert_eq!(c.nursery_size, 25 << 20);
        assert_eq!(c.gc_workers, 4);
    }

    #[test]
    fn app_regions_do_not_overlap_heap() {
        assert!(AddressMap::app_region(0) > AddressMap::MATURE);
        assert_eq!(
            AddressMap::app_region(2) - AddressMap::app_region(1),
            1 << 30
        );
    }
}
