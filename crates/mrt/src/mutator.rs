//! Mutator (application) threads: safepoint-aware execution of a workload's
//! step stream, nursery allocation with zero-initialisation, and
//! futex-based locks/barriers/sleeps.

use std::sync::Arc;

use dvfs_trace::{Time, TimeDelta};
use simx::mem::AccessPattern;
use simx::program::{Action, ProgContext, ThreadProgram};
use simx::WorkItem;

use crate::control::RuntimeShared;
use crate::heap::AllocResult;

/// Context handed to a [`WorkSource`] when it is asked for its next step.
#[derive(Debug, Clone, Copy)]
pub struct StepContext {
    /// Current simulated time.
    pub now: Time,
    /// Collections completed so far (lets sources react to GC pressure).
    pub gc_count: u64,
}

/// One application-level step of a workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Step {
    /// Timed work (compute / loads / stores), passed straight through.
    Work(WorkItem),
    /// Allocate `bytes` from the nursery (zero-initialising them),
    /// triggering a stop-the-world collection if it does not fit.
    Alloc {
        /// Bytes to allocate.
        bytes: u64,
    },
    /// Acquire application lock `Step::Lock(i)` (futex mutex, uncontended
    /// fast path in user space).
    Lock(usize),
    /// Release application lock `i`.
    Unlock(usize),
    /// Arrive at application barrier `i` and wait for all parties.
    Barrier(usize),
    /// Sleep for a fixed duration (timers, actor-style idling).
    Sleep(TimeDelta),
}

/// A workload's behaviour on one mutator thread: a stream of steps.
///
/// Returning `None` ends the thread. Steps should be short (≲ 1 ms of
/// simulated work) — the mutator polls safepoints between steps, so very
/// long steps delay collections, just like missing safepoint polls in a
/// real VM.
pub trait WorkSource: Send + 'static {
    /// The next step, or `None` when the thread is done.
    fn next_step(&mut self, ctx: &StepContext) -> Option<Step>;
}

impl<F: FnMut(&StepContext) -> Option<Step> + Send + 'static> WorkSource for F {
    fn next_step(&mut self, ctx: &StepContext) -> Option<Step> {
        self(ctx)
    }
}

/// Micro-state of the mutator's protocol machinery.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Mode {
    /// Poll safepoint, then dispatch the pending/fetched step.
    Normal,
    /// Stopped at a safepoint and the world became fully stopped: ring the
    /// coordinator's doorbell, then park.
    StopRing { gen: u32 },
    /// Park on the world futex until the collection finishes.
    StopWait { gen: u32 },
    /// Woken from a world park: un-count and re-poll.
    StopWoken,
    /// Park on a contended lock (safe-blocked).
    LockSleep { idx: usize },
    /// Woken from a lock park: un-count, re-poll, retry the acquire.
    LockWoken { idx: usize },
    /// Park on a barrier (safe-blocked).
    BarrierSleep { idx: usize, expected: u32 },
    /// Woken from a barrier park.
    BarrierWoken,
    /// A timed sleep was issued (safe-blocked).
    SleepDone,
    /// Ring the coordinator before parking safe (we completed the stop).
    SafeRing { then: SafeKind },
    /// Thread finished: emit any owed wakes, then exit.
    Exiting,
}

/// What a [`Mode::SafeRing`] continues into.
#[derive(Debug, Clone, Copy, PartialEq)]
enum SafeKind {
    Lock { idx: usize },
    Barrier { idx: usize, expected: u32 },
    Sleep { duration: TimeDelta },
}

/// The program driving one application thread.
pub struct MutatorProgram {
    shared: Arc<RuntimeShared>,
    source: Box<dyn WorkSource>,
    mode: Mode,
    pending: Option<Step>,
    seed: u64,
    exit_wakes: Vec<simx::FutexId>,
}

impl std::fmt::Debug for MutatorProgram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MutatorProgram")
            .field("mode", &self.mode)
            .field("pending", &self.pending)
            .finish_non_exhaustive()
    }
}

impl MutatorProgram {
    /// Creates the program. `ordinal` distinguishes this mutator's seeds.
    pub fn new(shared: Arc<RuntimeShared>, source: Box<dyn WorkSource>, ordinal: u32) -> Self {
        MutatorProgram {
            shared,
            source,
            mode: Mode::Normal,
            pending: None,
            seed: u64::from(ordinal) << 32,
            exit_wakes: Vec::new(),
        }
    }

    fn next_seed(&mut self) -> u64 {
        self.seed += 1;
        self.seed
    }

    /// Enters the stop-at-safepoint protocol. Returns the next mode.
    fn enter_stop(&self) -> Mode {
        let s = &self.shared;
        s.mutators_stopped.set(s.mutators_stopped.get() + 1);
        let gen = s.world_word.get();
        if s.world_is_stopped() {
            Mode::StopRing { gen }
        } else {
            Mode::StopWait { gen }
        }
    }

    /// Marks this thread safe-blocked; returns `true` if the coordinator
    /// must be rung (this block completed the world stop).
    fn enter_safe(&self) -> bool {
        let s = &self.shared;
        s.mutators_safe.set(s.mutators_safe.get() + 1);
        s.stop_requested() && s.world_is_stopped()
    }

    fn leave_safe(&self) {
        let s = &self.shared;
        s.mutators_safe.set(s.mutators_safe.get() - 1);
    }

    /// Prepares the thread's exit: withdraw from barriers, un-count from
    /// the mutator roster, and collect any wakes that are now owed.
    fn prepare_exit(&mut self) {
        let s = &self.shared;
        for b in &s.app_barriers {
            if b.withdraw() {
                self.exit_wakes.push(b.futex);
            }
        }
        s.mutators_total.set(s.mutators_total.get() - 1);
        if s.stop_requested() && s.world_is_stopped() {
            s.ring_coordinator();
            self.exit_wakes.push(s.coord_futex);
        }
        self.mode = Mode::Exiting;
    }

    /// Dispatches the pending step. Returns an action to emit, or `None`
    /// to loop (the step completed instantly or changed mode).
    fn dispatch(&mut self, step: Step, _now: Time) -> Option<Action> {
        let shared = self.shared.clone();
        match step {
            Step::Work(item) => {
                self.pending = None;
                Some(Action::Work(item))
            }
            Step::Alloc { bytes } => {
                let result = shared.heap.borrow_mut().try_alloc(bytes);
                match result {
                    AllocResult::Fits { base } => {
                        self.pending = None;
                        let seed = self.next_seed();
                        Some(Action::Work(WorkItem::StoreBurst {
                            bytes,
                            pattern: AccessPattern::Streaming { base },
                            seed,
                        }))
                    }
                    AllocResult::NeedsGc => {
                        // Keep the step pending; request a collection and
                        // stop. The retry happens after the world restarts.
                        shared.request_gc();
                        self.mode = self.enter_stop();
                        None
                    }
                }
            }
            Step::Lock(idx) => {
                let lock = &shared.app_locks[idx];
                if lock.try_acquire() {
                    self.pending = None;
                    None
                } else {
                    let expected = lock.mark_contended();
                    debug_assert_eq!(expected, 2);
                    if self.enter_safe() {
                        shared.ring_coordinator();
                        self.mode = Mode::SafeRing {
                            then: SafeKind::Lock { idx },
                        };
                        Some(Action::FutexWake {
                            futex: shared.coord_futex,
                            count: 1,
                        })
                    } else {
                        self.mode = Mode::LockSleep { idx };
                        None
                    }
                }
            }
            Step::Unlock(idx) => {
                let lock = &shared.app_locks[idx];
                self.pending = None;
                if lock.release() {
                    Some(Action::FutexWake {
                        futex: lock.futex,
                        count: 1,
                    })
                } else {
                    None
                }
            }
            Step::Barrier(idx) => {
                let barrier = &shared.app_barriers[idx];
                let expected = barrier.word.get();
                if barrier.arrive() {
                    // Last arriver releases everyone.
                    self.pending = None;
                    Some(Action::FutexWake {
                        futex: barrier.futex,
                        count: u32::MAX,
                    })
                } else if self.enter_safe() {
                    shared.ring_coordinator();
                    self.mode = Mode::SafeRing {
                        then: SafeKind::Barrier { idx, expected },
                    };
                    Some(Action::FutexWake {
                        futex: shared.coord_futex,
                        count: 1,
                    })
                } else {
                    self.mode = Mode::BarrierSleep { idx, expected };
                    None
                }
            }
            Step::Sleep(duration) => {
                if self.enter_safe() {
                    shared.ring_coordinator();
                    self.mode = Mode::SafeRing {
                        then: SafeKind::Sleep { duration },
                    };
                    Some(Action::FutexWake {
                        futex: shared.coord_futex,
                        count: 1,
                    })
                } else {
                    self.mode = Mode::SleepDone;
                    self.pending = None;
                    Some(Action::SleepFor(duration))
                }
            }
        }
    }
}

impl ThreadProgram for MutatorProgram {
    fn next(&mut self, ctx: &mut ProgContext) -> Action {
        loop {
            match self.mode {
                Mode::Normal => {
                    // Safepoint poll.
                    if self.shared.stop_requested() {
                        self.mode = self.enter_stop();
                        continue;
                    }
                    let step = match self.pending {
                        Some(step) => step,
                        None => {
                            let step_ctx = StepContext {
                                now: ctx.now,
                                gc_count: self.shared.heap.borrow().gc_count,
                            };
                            match self.source.next_step(&step_ctx) {
                                Some(step) => {
                                    self.pending = Some(step);
                                    step
                                }
                                None => {
                                    self.prepare_exit();
                                    continue;
                                }
                            }
                        }
                    };
                    if let Some(action) = self.dispatch(step, ctx.now) {
                        return action;
                    }
                }
                Mode::StopRing { gen } => {
                    self.shared.ring_coordinator();
                    self.mode = Mode::StopWait { gen };
                    return Action::FutexWake {
                        futex: self.shared.coord_futex,
                        count: 1,
                    };
                }
                Mode::StopWait { gen } => {
                    self.mode = Mode::StopWoken;
                    return Action::FutexWait {
                        futex: self.shared.world_futex,
                        expected: gen,
                    };
                }
                Mode::StopWoken => {
                    let s = &self.shared;
                    s.mutators_stopped.set(s.mutators_stopped.get() - 1);
                    self.mode = Mode::Normal;
                }
                Mode::SafeRing { then } => {
                    // The doorbell wake was just emitted; now actually park.
                    match then {
                        SafeKind::Lock { idx } => {
                            self.mode = Mode::LockSleep { idx };
                        }
                        SafeKind::Barrier { idx, expected } => {
                            self.mode = Mode::BarrierSleep { idx, expected };
                        }
                        SafeKind::Sleep { duration } => {
                            self.mode = Mode::SleepDone;
                            self.pending = None;
                            return Action::SleepFor(duration);
                        }
                    }
                }
                Mode::LockSleep { idx } => {
                    self.mode = Mode::LockWoken { idx };
                    return Action::FutexWait {
                        futex: self.shared.app_locks[idx].futex,
                        expected: 2,
                    };
                }
                Mode::LockWoken { idx } => {
                    self.leave_safe();
                    let shared = self.shared.clone();
                    let lock = &shared.app_locks[idx];
                    // Contended re-acquire: on success the word stays 2 so
                    // the next release wakes any remaining waiters.
                    if lock.acquire_contended() {
                        self.pending = None;
                        self.mode = Mode::Normal;
                    } else {
                        let _ = lock.mark_contended();
                        if self.enter_safe() {
                            shared.ring_coordinator();
                            self.mode = Mode::SafeRing {
                                then: SafeKind::Lock { idx },
                            };
                            return Action::FutexWake {
                                futex: shared.coord_futex,
                                count: 1,
                            };
                        }
                        self.mode = Mode::LockSleep { idx };
                    }
                }
                Mode::BarrierSleep { idx, expected } => {
                    self.mode = Mode::BarrierWoken;
                    return Action::FutexWait {
                        futex: self.shared.app_barriers[idx].futex,
                        expected,
                    };
                }
                Mode::BarrierWoken => {
                    self.leave_safe();
                    self.pending = None; // the arrival is consumed
                    self.mode = Mode::Normal;
                }
                Mode::SleepDone => {
                    self.leave_safe();
                    self.mode = Mode::Normal;
                }
                Mode::Exiting => match self.exit_wakes.pop() {
                    Some(futex) => {
                        return Action::FutexWake {
                            futex,
                            count: u32::MAX,
                        }
                    }
                    None => return Action::Exit,
                },
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closure_sources_work() {
        let mut emitted = 0;
        let mut src = move |_ctx: &StepContext| {
            emitted += 1;
            if emitted <= 2 {
                Some(Step::Alloc { bytes: 1024 })
            } else {
                None
            }
        };
        let ctx = StepContext {
            now: Time::ZERO,
            gc_count: 0,
        };
        assert!(matches!(src.next_step(&ctx), Some(Step::Alloc { .. })));
        assert!(matches!(src.next_step(&ctx), Some(Step::Alloc { .. })));
        assert!(src.next_step(&ctx).is_none());
    }
}
