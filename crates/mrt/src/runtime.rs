//! Wiring the managed runtime onto a machine.

use std::sync::Arc;

use dvfs_trace::ThreadRole;
use simx::{Machine, SpawnRequest};

use crate::collector::{CoordinatorProgram, WorkerProgram};
use crate::config::RuntimeConfig;
use crate::control::RuntimeShared;
use crate::jit::JitProgram;
use crate::mutator::{MutatorProgram, WorkSource};

/// A managed runtime installed on a machine: mutator threads running the
/// given work sources, GC coordinator + workers, and (optionally) a JIT
/// thread.
#[derive(Debug)]
pub struct ManagedRuntime {
    shared: Arc<RuntimeShared>,
}

impl ManagedRuntime {
    /// Installs the runtime: registers all futexes and spawns every thread.
    ///
    /// `sources` defines the application: one [`WorkSource`] per mutator
    /// thread. `app_locks` is the number of application mutexes available
    /// to `Step::Lock`; `app_barriers` gives the party count of each
    /// application barrier.
    pub fn install(
        machine: &mut Machine,
        config: RuntimeConfig,
        sources: Vec<Box<dyn WorkSource>>,
        app_locks: usize,
        app_barriers: &[u32],
    ) -> Self {
        let mutators = sources.len() as u32;
        let shared = Arc::new(RuntimeShared::new(
            machine,
            config,
            mutators,
            app_locks,
            app_barriers,
        ));

        let pin = |req: SpawnRequest, mask: Option<u8>| match mask {
            Some(m) => req.with_affinity(m),
            None => req,
        };
        let service = shared.config.service_affinity;
        let mutator = shared.config.mutator_affinity;

        // Service threads first so they park before the application starts.
        machine.spawn(pin(
            SpawnRequest::new(
                "gc-0",
                ThreadRole::GcWorker,
                Box::new(CoordinatorProgram::new(shared.clone())),
            ),
            service,
        ));
        for w in 1..shared.config.gc_workers {
            machine.spawn(pin(
                SpawnRequest::new(
                    format!("gc-{w}"),
                    ThreadRole::GcWorker,
                    Box::new(WorkerProgram::new(shared.clone(), w as u32)),
                ),
                service,
            ));
        }
        if shared.config.jit {
            machine.spawn(pin(
                SpawnRequest::new(
                    "jit",
                    ThreadRole::Jit,
                    Box::new(JitProgram::new(shared.clone())),
                ),
                service,
            ));
        }
        for (i, source) in sources.into_iter().enumerate() {
            machine.spawn(pin(
                SpawnRequest::new(
                    format!("app-{i}"),
                    ThreadRole::Application,
                    Box::new(MutatorProgram::new(shared.clone(), source, i as u32)),
                ),
                mutator,
            ));
        }
        ManagedRuntime { shared }
    }

    /// The shared runtime state (heap statistics, GC counters).
    #[must_use]
    pub fn shared(&self) -> &Arc<RuntimeShared> {
        &self.shared
    }

    /// Collections completed so far.
    #[must_use]
    pub fn gc_count(&self) -> u64 {
        self.shared.heap.borrow().gc_count
    }

    /// Bytes allocated so far across all mutators.
    #[must_use]
    pub fn total_allocated(&self) -> u64 {
        self.shared.heap.borrow().total_allocated
    }

    /// Survivor bytes copied by the collector so far.
    #[must_use]
    pub fn bytes_copied(&self) -> u64 {
        self.shared.bytes_copied.get()
    }

    /// Drains the GC-handoff invariant violations runtime threads recorded
    /// (`(at_secs, detail)` pairs; empty unless the machine's invariant
    /// monitor was enabled when the runtime installed). The harness merges
    /// these into the machine's monitor after the run.
    #[must_use]
    pub fn take_gc_violations(&self) -> Vec<(f64, String)> {
        self.shared.take_gc_violations()
    }
}
