//! End-to-end managed-runtime tests: mutators allocating, the world
//! stopping, parallel collection, and trace emission.

use dvfs_trace::{Freq, PhaseKind, ThreadRole, TimeDelta};
use mrt::{ManagedRuntime, RuntimeConfig, Step, StepContext, WorkSource};
use simx::mem::AccessPattern;
use simx::{Machine, MachineConfig, RunOutcome, WorkItem};

/// A mutator that alternates compute and allocation `rounds` times.
struct AllocLoop {
    rounds: u32,
    done: u32,
    alloc_bytes: u64,
    lock_every: Option<u32>,
    barrier_every: Option<u32>,
}

impl AllocLoop {
    fn new(rounds: u32, alloc_bytes: u64) -> Self {
        AllocLoop {
            rounds,
            done: 0,
            alloc_bytes,
            lock_every: None,
            barrier_every: None,
        }
    }
}

impl WorkSource for AllocLoop {
    fn next_step(&mut self, _ctx: &StepContext) -> Option<Step> {
        // Each round: [lock, compute, unlock]? -> compute -> alloc.
        let round = self.done / 4;
        if round >= self.rounds {
            return None;
        }
        let phase = self.done % 4;
        self.done += 1;
        match phase {
            0 => {
                if let Some(k) = self.lock_every {
                    if round.is_multiple_of(k) {
                        return Some(Step::Lock(0));
                    }
                }
                Some(Step::Work(WorkItem::Compute {
                    instructions: 100_000,
                    ipc: 2.0,
                }))
            }
            1 => Some(Step::Work(WorkItem::Compute {
                instructions: 200_000,
                ipc: 2.0,
            })),
            2 => {
                if let Some(k) = self.lock_every {
                    if round.is_multiple_of(k) {
                        return Some(Step::Unlock(0));
                    }
                }
                if let Some(k) = self.barrier_every {
                    if round % k == k - 1 {
                        return Some(Step::Barrier(0));
                    }
                }
                Some(Step::Work(WorkItem::Memory {
                    accesses: 2_000,
                    pattern: AccessPattern::Random {
                        base: 1 << 40,
                        working_set: 64 << 20,
                    },
                    mlp: 4.0,
                    compute_per_access: 4.0,
                    ipc: 2.0,
                    seed: u64::from(self.done),
                }))
            }
            _ => Some(Step::Alloc {
                bytes: self.alloc_bytes,
            }),
        }
    }
}

fn small_runtime_config() -> RuntimeConfig {
    let mut config = RuntimeConfig::with_heap(16 << 20); // 4 MB nursery
    config.jit_budget_instructions = 2_000_000;
    config.jit_period = TimeDelta::from_millis(2.0);
    config
}

fn run_alloc_workload(
    ghz: f64,
    threads: usize,
    rounds: u32,
    customize: impl Fn(&mut AllocLoop),
) -> (Machine, ManagedRuntime, f64) {
    let mut mc = MachineConfig::haswell_quad();
    mc.initial_freq = Freq::from_ghz(ghz);
    let mut machine = Machine::new(mc);
    let sources: Vec<Box<dyn WorkSource>> = (0..threads)
        .map(|_| {
            let mut s = AllocLoop::new(rounds, 256 << 10);
            customize(&mut s);
            Box::new(s) as Box<dyn WorkSource>
        })
        .collect();
    let runtime = ManagedRuntime::install(
        &mut machine,
        small_runtime_config(),
        sources,
        1,
        &[threads as u32],
    );
    let outcome = machine.run().expect("no deadlock");
    let RunOutcome::Completed(end) = outcome else {
        panic!("must complete");
    };
    (machine, runtime, end.as_secs())
}

#[test]
fn allocation_triggers_stop_the_world_gc() {
    let (mut machine, runtime, _end) = run_alloc_workload(2.0, 4, 40, |_| {});
    // 4 threads x 40 rounds x 256 KB = 40 MB allocated into a 4 MB nursery:
    // several collections must have happened.
    assert!(
        runtime.gc_count() >= 5,
        "expected several GCs, got {}",
        runtime.gc_count()
    );
    assert!(runtime.bytes_copied() > 0);
    assert_eq!(runtime.total_allocated(), 4 * 40 * (256 << 10));

    let trace = machine.harvest_trace();
    trace.validate().expect("valid trace");
    // GC markers must pair up.
    let starts = trace
        .markers
        .iter()
        .filter(|m| m.kind == PhaseKind::GcStart)
        .count();
    let ends = trace
        .markers
        .iter()
        .filter(|m| m.kind == PhaseKind::GcEnd)
        .count();
    assert_eq!(starts as u64, runtime.gc_count());
    assert_eq!(ends as u64, runtime.gc_count());
    // GC workers accumulated real work.
    let totals = trace.thread_totals();
    let gc_active: f64 = trace
        .threads
        .iter()
        .filter(|t| t.role == ThreadRole::GcWorker)
        .map(|t| totals[&t.id].counters.active.as_secs())
        .sum();
    assert!(gc_active > 0.0, "GC workers must run");
    // Collector copies produce store-queue pressure.
    let gc_sq: f64 = trace
        .threads
        .iter()
        .filter(|t| t.role == ThreadRole::GcWorker)
        .map(|t| totals[&t.id].counters.sq_full.as_secs())
        .sum();
    assert!(gc_sq > 0.0, "GC copy must stall the store queue");
    // GC time is a meaningful fraction of the run.
    let gc_time = trace.gc_time().as_secs();
    assert!(gc_time > 0.0);
}

#[test]
fn world_stop_blocks_mutators_during_collection() {
    let (mut machine, _runtime, _end) = run_alloc_workload(2.0, 4, 30, |_| {});
    let trace = machine.harvest_trace();
    // During GC windows, application threads must accumulate (almost) no
    // active time.
    let windows = trace.phase_windows();
    let mut app_active_in_gc = 0.0;
    let mut gc_window_time = 0.0;
    for w in windows.iter().filter(|w| w.is_gc) {
        gc_window_time += w.duration().as_secs();
        let totals = trace.totals_in_window(w.start, w.end);
        for info in trace
            .threads
            .iter()
            .filter(|t| t.role == ThreadRole::Application)
        {
            if let Some(c) = totals.get(&info.id) {
                app_active_in_gc += c.active.as_secs();
            }
        }
    }
    assert!(gc_window_time > 0.0, "must have GC windows");
    // Mutators may overlap the stop ramp slightly (threads finishing their
    // current step) but must be essentially idle inside GC windows.
    assert!(
        app_active_in_gc < 0.25 * gc_window_time * 4.0,
        "mutators should be stopped during GC: active {app_active_in_gc} vs windows {gc_window_time}"
    );
}

#[test]
fn locks_and_barriers_do_not_deadlock_with_gc() {
    let (mut machine, runtime, _end) = run_alloc_workload(2.0, 4, 32, |s| {
        s.lock_every = Some(2);
        s.barrier_every = Some(8);
    });
    assert!(runtime.gc_count() >= 3);
    let trace = machine.harvest_trace();
    trace.validate().expect("valid");
    let stats = machine.stats();
    assert!(
        stats.futex_sleeps > runtime.gc_count() * 4,
        "app + GC synchronization should sleep often: {}",
        stats.futex_sleeps
    );
}

#[test]
fn memory_bound_managed_run_scales_sublinearly() {
    let (_m1, r1, t1) = run_alloc_workload(1.0, 4, 25, |_| {});
    let (_m4, r4, t4) = run_alloc_workload(4.0, 4, 25, |_| {});
    // Same work performed.
    assert_eq!(r1.total_allocated(), r4.total_allocated());
    let speedup = t1 / t4;
    assert!(
        speedup > 1.3 && speedup < 3.9,
        "allocation-heavy run should scale sublinearly: {speedup}"
    );
}

#[test]
fn single_mutator_runtime_works() {
    let (mut machine, runtime, _end) = run_alloc_workload(3.0, 1, 60, |_| {});
    assert!(runtime.gc_count() >= 3);
    let trace = machine.harvest_trace();
    trace.validate().expect("valid");
}

/// Threads that exit while a GC is being requested must not deadlock the
/// collector (the exiting thread is removed from the stop count).
#[test]
fn exit_during_gc_request_does_not_deadlock() {
    let mut mc = MachineConfig::haswell_quad();
    mc.initial_freq = Freq::from_ghz(2.0);
    let mut machine = Machine::new(mc);
    // Thread 0 allocates aggressively (triggers GCs); threads 1-3 finish
    // almost immediately.
    let sources: Vec<Box<dyn WorkSource>> = (0..4)
        .map(|t| {
            let rounds = if t == 0 { 120 } else { 1 };
            Box::new(AllocLoop::new(rounds, 512 << 10)) as Box<dyn WorkSource>
        })
        .collect();
    let mut config = RuntimeConfig::with_heap(16 << 20);
    config.jit = false;
    let runtime = ManagedRuntime::install(&mut machine, config, sources, 1, &[4]);
    machine.run().expect("no deadlock");
    assert!(runtime.gc_count() >= 2);
}

/// A nursery of minimal survivors still completes collections.
#[test]
fn near_zero_survivors_collection_completes() {
    let mut mc = MachineConfig::haswell_quad();
    mc.initial_freq = Freq::from_ghz(2.0);
    let mut machine = Machine::new(mc);
    let sources: Vec<Box<dyn WorkSource>> = (0..2)
        .map(|_| Box::new(AllocLoop::new(30, 512 << 10)) as Box<dyn WorkSource>)
        .collect();
    let mut config = RuntimeConfig::with_heap(16 << 20);
    config.survivor_fraction = 0.0001;
    config.jit = false;
    let runtime = ManagedRuntime::install(&mut machine, config, sources, 1, &[2]);
    machine.run().expect("no deadlock");
    assert!(runtime.gc_count() >= 1);
}

/// Service-thread affinity pins GC workers to their core mask.
#[test]
fn service_affinity_confines_gc_to_one_core() {
    let mut mc = MachineConfig::haswell_quad();
    mc.initial_freq = Freq::from_ghz(2.0);
    let mut machine = Machine::new(mc);
    let sources: Vec<Box<dyn WorkSource>> = (0..3)
        .map(|_| Box::new(AllocLoop::new(40, 512 << 10)) as Box<dyn WorkSource>)
        .collect();
    let mut config = RuntimeConfig::with_heap(16 << 20);
    config.service_affinity = Some(0b1000);
    config.mutator_affinity = Some(0b0111);
    config.jit = false;
    let runtime = ManagedRuntime::install(&mut machine, config, sources, 1, &[3]);
    machine.run().expect("no deadlock");
    assert!(runtime.gc_count() >= 2, "GCs happened");
    // GC is serialised on core 3: compare GC-window wall time against GC
    // threads' active time; with 4 workers on 1 core they cannot overlap.
    let trace = machine.harvest_trace();
    let gc_wall = trace.gc_time().as_secs();
    let totals = trace.thread_totals();
    let gc_active: f64 = trace
        .threads
        .iter()
        .filter(|t| t.role == dvfs_trace::ThreadRole::GcWorker)
        .map(|t| totals[&t.id].counters.active.as_secs())
        .sum();
    assert!(
        gc_active <= gc_wall * 1.25 + 1e-4,
        "pinned GC cannot exceed one core's time: active {gc_active} vs wall {gc_wall}"
    );
}
