//! Per-benchmark structural parameters.
//!
//! Each benchmark's [`RoundParams`] encode its published timing signature
//! (Table I) plus the behavioural notes in §IV of the paper. The values
//! were calibrated empirically against the paper's execution and GC times
//! at 1 GHz (see `harness`'s `table1` binary for the comparison).

use mrt::RuntimeConfig;

use crate::rounds::RoundParams;
use crate::spec::Benchmark;

/// Working-set bases are per-thread; sizes chosen so memory-intensive
/// benchmarks stream through the shared L3 while compute-intensive ones
/// mostly hit on-chip.
const MB: u64 = 1 << 20;
const KB: u64 = 1 << 10;

/// The managed-runtime configuration for a benchmark.
pub(crate) fn runtime_config(bench: &Benchmark) -> RuntimeConfig {
    let mut config = RuntimeConfig::with_heap(bench.heap_mb * MB);
    match bench.name {
        // lusearch's needless allocation is short-lived garbage: almost
        // nothing survives a nursery collection.
        "lusearch" => {
            config.survivor_fraction = 0.06;
        }
        "lusearch-fix" => {
            config.survivor_fraction = 0.10;
        }
        // avrora barely allocates; keep its GC trivial.
        "avrora" => {
            config.jit_budget_instructions = 25_000_000;
        }
        _ => {}
    }
    config
}

/// Locks and barrier party counts for a benchmark.
pub(crate) fn sync_shape(bench: &Benchmark) -> (usize, Vec<u32>) {
    (1, vec![bench.app_threads as u32])
}

/// The per-thread round parameters.
#[allow(clippy::needless_update)] // `..base` keeps all entries uniform
pub(crate) fn thread_params(bench: &Benchmark, thread: usize) -> RoundParams {
    let base = RoundParams::compute_only(1, 0, 2.0);
    match bench.name {
        // XSLT transformation: documents pulled from a lock-protected
        // queue, transformed (scattered reads over the document heap),
        // output buffers allocated.
        "xalan" => RoundParams {
            rounds: 4350,
            compute_instr: 310_000,
            ipc: 1.8,
            mem_accesses: 2_500,
            mem_ws: 40 * MB,
            mem_mlp: 3.0,
            mem_cpa: 5.0,
            alloc_bytes: 96 * KB,
            alloc_every: 1,
            lock_every: 1,
            crit_instr: 30_000,
            barrier_every: 0,
            sleep_every: 0,
            sleep_us: 0.0,
            jitter: 0.35,
            ..base
        },
        // Source-code analysis: AST pointer chasing with low MLP; the
        // unscaled input contains one huge file, so thread 0 straggles.
        "pmd" => RoundParams {
            rounds: if thread == 0 { 4100 } else { 3180 },
            compute_instr: 250_000,
            ipc: 1.6,
            mem_accesses: 2_600,
            mem_ws: 36 * MB,
            mem_mlp: 1.5,
            mem_cpa: 8.0,
            alloc_bytes: 104 * KB,
            alloc_every: 1,
            lock_every: 3,
            crit_instr: 50_000,
            jitter: 0.5,
            ..base
        },
        // pmd with the large-input scaling bottleneck removed: balanced
        // threads, ~40% of the work.
        "pmd-scale" => RoundParams {
            rounds: 1570,
            compute_instr: 250_000,
            ipc: 1.6,
            mem_accesses: 2_600,
            mem_ws: 36 * MB,
            mem_mlp: 1.5,
            mem_cpa: 8.0,
            alloc_bytes: 120 * KB,
            alloc_every: 1,
            lock_every: 3,
            crit_instr: 50_000,
            jitter: 0.5,
            ..base
        },
        // Index search with needless per-query buffer allocation: huge
        // zero-initialisation traffic and frequent nursery collections.
        "lusearch" => RoundParams {
            rounds: 9240,
            compute_instr: 330_000,
            ipc: 1.8,
            mem_accesses: 1_500,
            mem_ws: 28 * MB,
            mem_mlp: 2.0,
            mem_cpa: 5.0,
            alloc_bytes: 88 * KB,
            alloc_every: 1,
            lock_every: 4,
            crit_instr: 10_000,
            jitter: 0.3,
            ..base
        },
        // The allocation fix: identical search work, ~1/8 the allocation.
        "lusearch-fix" => RoundParams {
            rounds: 6600,
            compute_instr: 250_000,
            ipc: 1.8,
            mem_accesses: 1_500,
            mem_ws: 28 * MB,
            mem_mlp: 2.0,
            mem_cpa: 5.0,
            alloc_bytes: 20 * KB,
            alloc_every: 1,
            lock_every: 4,
            crit_instr: 10_000,
            jitter: 0.3,
            ..base
        },
        // Sensor-network simulation: six node threads lock-stepped by a
        // clock-synchronisation barrier every round plus a shared event
        // lock — heavy fine-grained futex traffic, tiny working sets,
        // almost no allocation, limited parallelism (6 threads, 4 cores).
        "avrora" => RoundParams {
            rounds: 17_500,
            compute_instr: 60_000,
            ipc: 1.5,
            mem_accesses: 300,
            mem_ws: 2 * MB,
            mem_mlp: 2.0,
            mem_cpa: 4.0,
            alloc_bytes: 8 * KB,
            alloc_every: 8,
            lock_every: 2,
            crit_instr: 5_000,
            barrier_every: 1,
            sleep_every: 256,
            sleep_us: 100.0,
            jitter: 0.4,
            ..base
        },
        // Ray tracing: embarrassingly parallel compute at high IPC,
        // on-chip texture/scene reads, tile barriers, modest allocation.
        "sunflow" => RoundParams {
            rounds: 5_460,
            compute_instr: 1_800_000,
            ipc: 2.2,
            mem_accesses: 1_200,
            mem_ws: 6 * MB,
            mem_mlp: 4.0,
            mem_cpa: 4.0,
            alloc_bytes: 28 * KB,
            alloc_every: 1,
            lock_every: 0,
            crit_instr: 0,
            barrier_every: 24,
            jitter: 0.3,
            ..base
        },
        other => unreachable!("unknown benchmark {other}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::all_benchmarks;

    #[test]
    fn every_benchmark_has_params() {
        for b in all_benchmarks() {
            for t in 0..b.app_threads {
                let p = thread_params(b, t);
                assert!(p.rounds > 0, "{}", b.name);
                let cfg = runtime_config(b);
                assert_eq!(cfg.heap_size, b.heap_mb * MB);
                // Allocations must fit the nursery constraint.
                if p.alloc_bytes > 0 {
                    assert!(p.alloc_bytes * 2 < cfg.nursery_size, "{}", b.name);
                }
            }
        }
    }

    #[test]
    fn pmd_has_a_straggler_and_pmd_scale_does_not() {
        let pmd = crate::benchmark("pmd").expect("pmd");
        assert!(thread_params(pmd, 0).rounds > thread_params(pmd, 1).rounds);
        let pmds = crate::benchmark("pmd-scale").expect("pmd-scale");
        assert_eq!(
            thread_params(pmds, 0).rounds,
            thread_params(pmds, 1).rounds
        );
    }
}
