//! Benchmark registry: the seven DaCapo workloads of Table I.

use mrt::{ManagedRuntime, RuntimeConfig, WorkSource};
use simx::Machine;

use crate::benches;
use crate::rounds::RoundSource;

/// Memory- vs compute-intensive classification (Table I: an application
/// spending >10% of its time in GC is memory-intensive).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BenchClass {
    /// Memory-intensive (GC > 10% of execution time).
    Memory,
    /// Compute-intensive.
    Compute,
}

/// The paper's published Table I numbers, kept for comparison in the
/// harness output (we calibrate toward them, we do not hard-code them into
/// the simulation).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperNumbers {
    /// Execution time at 1 GHz, milliseconds.
    pub exec_ms: f64,
    /// GC time at 1 GHz, milliseconds.
    pub gc_ms: f64,
}

/// A benchmark model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Benchmark {
    /// Canonical name (matches the paper).
    pub name: &'static str,
    /// Memory/compute classification.
    pub class: BenchClass,
    /// Heap size in MB (Table I).
    pub heap_mb: u64,
    /// Application threads (4 everywhere except avrora's 6).
    pub app_threads: usize,
    /// The paper's reference timings.
    pub paper: PaperNumbers,
}

/// All seven benchmarks, in the paper's Table I order.
#[must_use]
pub fn all_benchmarks() -> &'static [Benchmark] {
    const ALL: [Benchmark; 7] = [
        Benchmark {
            name: "xalan",
            class: BenchClass::Memory,
            heap_mb: 108,
            app_threads: 4,
            paper: PaperNumbers {
                exec_ms: 1400.0,
                gc_ms: 270.0,
            },
        },
        Benchmark {
            name: "pmd",
            class: BenchClass::Memory,
            heap_mb: 98,
            app_threads: 4,
            paper: PaperNumbers {
                exec_ms: 1345.0,
                gc_ms: 230.0,
            },
        },
        Benchmark {
            name: "pmd-scale",
            class: BenchClass::Memory,
            heap_mb: 98,
            app_threads: 4,
            paper: PaperNumbers {
                exec_ms: 500.0,
                gc_ms: 80.0,
            },
        },
        Benchmark {
            name: "lusearch",
            class: BenchClass::Memory,
            heap_mb: 68,
            app_threads: 4,
            paper: PaperNumbers {
                exec_ms: 2600.0,
                gc_ms: 285.0,
            },
        },
        Benchmark {
            name: "lusearch-fix",
            class: BenchClass::Compute,
            heap_mb: 68,
            app_threads: 4,
            paper: PaperNumbers {
                exec_ms: 1249.0,
                gc_ms: 42.0,
            },
        },
        Benchmark {
            name: "avrora",
            class: BenchClass::Compute,
            heap_mb: 98,
            app_threads: 6,
            paper: PaperNumbers {
                exec_ms: 1782.0,
                gc_ms: 5.0,
            },
        },
        Benchmark {
            name: "sunflow",
            class: BenchClass::Compute,
            heap_mb: 108,
            app_threads: 4,
            paper: PaperNumbers {
                exec_ms: 4900.0,
                gc_ms: 82.0,
            },
        },
    ];
    &ALL
}

/// Looks up a benchmark by name.
#[must_use]
pub fn benchmark(name: &str) -> Option<&'static Benchmark> {
    all_benchmarks().iter().find(|b| b.name == name)
}

impl Benchmark {
    /// The managed-runtime configuration for this benchmark (heap sizing
    /// per Table I).
    #[must_use]
    pub fn runtime_config(&self) -> RuntimeConfig {
        benches::runtime_config(self)
    }

    /// The per-thread round parameters (public so custom installers — e.g.
    /// the per-core DVFS study — can rebuild the exact workload with a
    /// modified runtime configuration).
    #[must_use]
    pub fn thread_round_params(&self, thread: usize) -> crate::RoundParams {
        benches::thread_params(self, thread)
    }

    /// The benchmark's lock count and barrier party counts.
    #[must_use]
    pub fn sync_shape(&self) -> (usize, Vec<u32>) {
        benches::sync_shape(self)
    }

    /// Folds the benchmark's *derived* workload content into `h` for the
    /// simulation memo cache key: the per-thread round parameters, the
    /// synchronisation shape, and the runtime configuration — everything
    /// [`Benchmark::install`] feeds the machine. Hashing the derived data
    /// rather than just the name means a recalibration of a benchmark model
    /// invalidates its cached results automatically.
    pub fn hash_into(&self, h: &mut depburst_core::stablehash::StableHasher) {
        h.write_tag("dacapo_sim::Benchmark");
        h.write_str(self.name);
        h.write_u64(self.heap_mb);
        h.write_u64(self.app_threads as u64);
        for t in 0..self.app_threads {
            let p = self.thread_round_params(t);
            h.write_tag("thread");
            h.write_u64(p.rounds);
            h.write_u64(p.compute_instr);
            h.write_f64(p.ipc);
            h.write_u64(p.mem_accesses);
            h.write_u64(p.mem_ws);
            h.write_f64(p.mem_mlp);
            h.write_f64(p.mem_cpa);
            h.write_u64(p.alloc_bytes);
            h.write_u64(p.alloc_every);
            h.write_u64(p.lock_every);
            h.write_u64(p.crit_instr);
            h.write_u64(p.barrier_every);
            h.write_u64(p.sleep_every);
            h.write_f64(p.sleep_us);
            h.write_f64(p.jitter);
        }
        let (locks, barriers) = self.sync_shape();
        h.write_tag("sync");
        h.write_u64(locks as u64);
        h.write_u64(barriers.len() as u64);
        for parties in &barriers {
            h.write_u32(*parties);
        }
        let rc = self.runtime_config();
        h.write_tag("runtime");
        h.write_u64(rc.heap_size);
        h.write_u64(rc.nursery_size);
        h.write_u64(rc.gc_workers as u64);
        h.write_f64(rc.survivor_fraction);
        h.write_u32(rc.full_heap_period);
        h.write_f64(rc.full_heap_reclaim);
        h.write_u64(rc.packet_bytes);
        h.write_f64(rc.trace_reads_per_line);
        h.write_u64(rc.queue_lock_hold_cycles);
        h.write_bool(rc.jit);
        h.write_u64(rc.jit_budget_instructions);
        h.write_f64(rc.jit_period.as_secs());
        h.write_opt_u64(rc.service_affinity.map(u64::from));
        h.write_opt_u64(rc.mutator_affinity.map(u64::from));
    }

    /// Stable content digest of the workload spec (see
    /// [`hash_into`](Benchmark::hash_into)).
    #[must_use]
    pub fn spec_digest(&self) -> u128 {
        let mut h = depburst_core::stablehash::StableHasher::new();
        self.hash_into(&mut h);
        h.finish()
    }

    /// Installs the benchmark on a machine at the given work `scale`
    /// (1.0 = the paper's full run; tests use small scales) and RNG seed.
    pub fn install(&self, machine: &mut Machine, scale: f64, seed: u64) -> ManagedRuntime {
        let sources: Vec<Box<dyn WorkSource>> = (0..self.app_threads)
            .map(|t| {
                let params = benches::thread_params(self, t).scaled(scale);
                let region = mrt_region(t);
                Box::new(RoundSource::new(
                    params,
                    region,
                    seed ^ ((t as u64 + 1) * 0x9E37_79B9),
                )) as Box<dyn WorkSource>
            })
            .collect();
        let (locks, barriers) = benches::sync_shape(self);
        ManagedRuntime::install(
            machine,
            self.runtime_config(),
            sources,
            locks,
            &barriers,
        )
    }
}

/// Private data region for thread `t`.
fn mrt_region(t: usize) -> u64 {
    mrt::AddressMap::app_region(t as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_matches_table_i() {
        let all = all_benchmarks();
        assert_eq!(all.len(), 7);
        let xalan = benchmark("xalan").expect("exists");
        assert_eq!(xalan.heap_mb, 108);
        assert_eq!(xalan.class, BenchClass::Memory);
        let avrora = benchmark("avrora").expect("exists");
        assert_eq!(avrora.app_threads, 6);
        assert_eq!(avrora.class, BenchClass::Compute);
        assert!(benchmark("nonesuch").is_none());
        // Memory-intensive benchmarks have GC > 10% of exec per Table I.
        for b in all {
            let frac = b.paper.gc_ms / b.paper.exec_ms;
            match b.class {
                BenchClass::Memory => assert!(frac > 0.10, "{}: {frac}", b.name),
                BenchClass::Compute => assert!(frac < 0.10, "{}: {frac}", b.name),
            }
        }
    }

    #[test]
    fn spec_digests_are_stable_and_distinct() {
        let mut seen = std::collections::HashSet::new();
        for b in all_benchmarks() {
            assert_eq!(b.spec_digest(), b.spec_digest(), "{} unstable", b.name);
            assert!(seen.insert(b.spec_digest()), "{} collides", b.name);
        }
    }
}
