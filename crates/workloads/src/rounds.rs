//! The round-based work generator all benchmark models are built from.
//!
//! A mutator thread executes `rounds` rounds; each round interleaves an
//! optional critical section, compute, memory accesses, allocation, and an
//! optional barrier or timer sleep. Sizes are jittered with a seeded RNG so
//! rounds vary realistically while the total work is deterministic per
//! seed.

use mrt::{Step, StepContext, WorkSource};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use simx::mem::AccessPattern;
use simx::WorkItem;

/// Per-thread, per-round workload parameters (sizes are per round).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoundParams {
    /// Rounds to execute.
    pub rounds: u64,
    /// Instructions of plain compute per round.
    pub compute_instr: u64,
    /// IPC of the compute.
    pub ipc: f64,
    /// Loads per round.
    pub mem_accesses: u64,
    /// Working-set size the loads walk.
    pub mem_ws: u64,
    /// Memory-level parallelism of the loads.
    pub mem_mlp: f64,
    /// Instructions per load.
    pub mem_cpa: f64,
    /// Bytes allocated per allocation round.
    pub alloc_bytes: u64,
    /// Allocate every n-th round (0 = never).
    pub alloc_every: u64,
    /// Enter the shared critical section every n-th round (0 = never).
    pub lock_every: u64,
    /// Instructions executed while holding the lock.
    pub crit_instr: u64,
    /// Arrive at barrier 0 every n-th round (0 = never).
    pub barrier_every: u64,
    /// Sleep every n-th round (0 = never).
    pub sleep_every: u64,
    /// Sleep duration in microseconds.
    pub sleep_us: f64,
    /// Multiplicative jitter amplitude on work sizes (0 = none,
    /// 0.5 = sizes vary in [0.5x, 1.5x]).
    pub jitter: f64,
}

impl RoundParams {
    /// A quiet default: pure compute rounds.
    #[must_use]
    pub fn compute_only(rounds: u64, instr: u64, ipc: f64) -> Self {
        RoundParams {
            rounds,
            compute_instr: instr,
            ipc,
            mem_accesses: 0,
            mem_ws: 1 << 20,
            mem_mlp: 4.0,
            mem_cpa: 4.0,
            alloc_bytes: 0,
            alloc_every: 0,
            lock_every: 0,
            crit_instr: 0,
            barrier_every: 0,
            sleep_every: 0,
            sleep_us: 0.0,
            jitter: 0.0,
        }
    }

    /// Scales the *number of rounds* (total work) without changing
    /// per-round behaviour, so GC pressure and synchronisation rates are
    /// preserved. Used to shrink runs for tests.
    #[must_use]
    pub fn scaled(mut self, scale: f64) -> Self {
        self.rounds = ((self.rounds as f64 * scale).round() as u64).max(1);
        self
    }
}

/// Sub-steps of one round, in emission order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SubStep {
    Lock,
    Crit,
    Unlock,
    Compute,
    Memory,
    Alloc,
    Barrier,
    Sleep,
}

const ORDER: [SubStep; 8] = [
    SubStep::Lock,
    SubStep::Crit,
    SubStep::Unlock,
    SubStep::Compute,
    SubStep::Memory,
    SubStep::Alloc,
    SubStep::Barrier,
    SubStep::Sleep,
];

/// A [`WorkSource`] emitting the round structure described by
/// [`RoundParams`].
#[derive(Debug)]
pub struct RoundSource {
    params: RoundParams,
    /// Base address of this thread's private data region.
    region: u64,
    round: u64,
    sub: usize,
    rng: ChaCha8Rng,
    seed_counter: u64,
}

impl RoundSource {
    /// Creates the source for one thread. `region` is the thread's private
    /// data region base address; `seed` pins all jitter.
    #[must_use]
    pub fn new(params: RoundParams, region: u64, seed: u64) -> Self {
        RoundSource {
            params,
            region,
            round: 0,
            sub: 0,
            rng: ChaCha8Rng::seed_from_u64(seed),
            seed_counter: seed << 20,
        }
    }

    fn jittered(&mut self, value: u64) -> u64 {
        if self.params.jitter <= 0.0 || value == 0 {
            return value;
        }
        let j = self.params.jitter;
        let factor = 1.0 + self.rng.gen_range(-j..j);
        ((value as f64 * factor).round() as u64).max(1)
    }

    fn every(round: u64, n: u64) -> bool {
        n > 0 && round % n == n - 1
    }

    fn next_sub(&mut self, ctx: &StepContext) -> Option<Option<Step>> {
        let p = self.params;
        if self.round >= p.rounds {
            return None;
        }
        let sub = ORDER[self.sub];
        self.sub += 1;
        if self.sub == ORDER.len() {
            self.sub = 0;
            self.round += 1;
        }
        let round = self.round;
        let _ = ctx;
        let step = match sub {
            SubStep::Lock if Self::every(round, p.lock_every) => Some(Step::Lock(0)),
            SubStep::Crit if Self::every(round, p.lock_every) && p.crit_instr > 0 => {
                let n = self.jittered(p.crit_instr);
                Some(Step::Work(WorkItem::Compute {
                    instructions: n,
                    ipc: p.ipc,
                }))
            }
            SubStep::Unlock if Self::every(round, p.lock_every) => Some(Step::Unlock(0)),
            SubStep::Compute if p.compute_instr > 0 => {
                let n = self.jittered(p.compute_instr);
                Some(Step::Work(WorkItem::Compute {
                    instructions: n,
                    ipc: p.ipc,
                }))
            }
            SubStep::Memory if p.mem_accesses > 0 => {
                let n = self.jittered(p.mem_accesses);
                self.seed_counter += 1;
                Some(Step::Work(WorkItem::Memory {
                    accesses: n,
                    pattern: AccessPattern::Random {
                        base: self.region,
                        working_set: p.mem_ws,
                    },
                    mlp: p.mem_mlp,
                    compute_per_access: p.mem_cpa,
                    ipc: p.ipc,
                    seed: self.seed_counter,
                }))
            }
            SubStep::Alloc if Self::every(round, p.alloc_every) && p.alloc_bytes > 0 => {
                let n = self.jittered(p.alloc_bytes);
                Some(Step::Alloc { bytes: n.max(64) })
            }
            SubStep::Barrier if Self::every(round, p.barrier_every) => Some(Step::Barrier(0)),
            SubStep::Sleep if Self::every(round, p.sleep_every) && p.sleep_us > 0.0 => {
                let us = p.sleep_us * (1.0 + self.rng.gen_range(-0.3..0.3));
                Some(Step::Sleep(dvfs_trace::TimeDelta::from_micros(us)))
            }
            _ => None,
        };
        Some(step)
    }
}

impl WorkSource for RoundSource {
    fn next_step(&mut self, ctx: &StepContext) -> Option<Step> {
        loop {
            match self.next_sub(ctx) {
                None => return None,
                Some(Some(step)) => return Some(step),
                Some(None) => continue,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvfs_trace::Time;

    fn ctx() -> StepContext {
        StepContext {
            now: Time::ZERO,
            gc_count: 0,
        }
    }

    fn collect(params: RoundParams, seed: u64) -> Vec<Step> {
        let mut src = RoundSource::new(params, 1 << 40, seed);
        let mut steps = Vec::new();
        while let Some(s) = src.next_step(&ctx()) {
            steps.push(s);
            assert!(steps.len() < 100_000, "runaway source");
        }
        steps
    }

    #[test]
    fn compute_only_emits_one_step_per_round() {
        let steps = collect(RoundParams::compute_only(5, 1000, 2.0), 1);
        assert_eq!(steps.len(), 5);
        assert!(steps
            .iter()
            .all(|s| matches!(s, Step::Work(WorkItem::Compute { .. }))));
    }

    #[test]
    fn lock_rounds_are_balanced() {
        let mut p = RoundParams::compute_only(12, 1000, 2.0);
        p.lock_every = 3;
        p.crit_instr = 100;
        let steps = collect(p, 2);
        let locks = steps.iter().filter(|s| matches!(s, Step::Lock(_))).count();
        let unlocks = steps
            .iter()
            .filter(|s| matches!(s, Step::Unlock(_)))
            .count();
        assert_eq!(locks, 4);
        assert_eq!(locks, unlocks);
        // Every Lock is followed by crit work then Unlock.
        for (i, s) in steps.iter().enumerate() {
            if matches!(s, Step::Lock(_)) {
                assert!(matches!(steps[i + 1], Step::Work(_)));
                assert!(matches!(steps[i + 2], Step::Unlock(_)));
            }
        }
    }

    #[test]
    fn alloc_and_barrier_cadence() {
        let mut p = RoundParams::compute_only(10, 1000, 2.0);
        p.alloc_bytes = 4096;
        p.alloc_every = 2;
        p.barrier_every = 5;
        let steps = collect(p, 3);
        let allocs = steps
            .iter()
            .filter(|s| matches!(s, Step::Alloc { .. }))
            .count();
        let barriers = steps
            .iter()
            .filter(|s| matches!(s, Step::Barrier(_)))
            .count();
        assert_eq!(allocs, 5);
        assert_eq!(barriers, 2);
    }

    #[test]
    fn jitter_is_deterministic_per_seed() {
        let mut p = RoundParams::compute_only(20, 10_000, 2.0);
        p.jitter = 0.4;
        let a = collect(p, 7);
        let b = collect(p, 7);
        let c = collect(p, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
        // Jitter actually varies the sizes.
        let sizes: Vec<u64> = a
            .iter()
            .map(|s| match s {
                Step::Work(WorkItem::Compute { instructions, .. }) => *instructions,
                _ => 0,
            })
            .collect();
        assert!(sizes.iter().any(|&s| s != sizes[0]));
    }

    #[test]
    fn scaled_changes_rounds_only() {
        let p = RoundParams::compute_only(100, 5_000, 2.0);
        let half = p.scaled(0.5);
        assert_eq!(half.rounds, 50);
        assert_eq!(half.compute_instr, p.compute_instr);
        let tiny = p.scaled(0.0001);
        assert_eq!(tiny.rounds, 1);
    }
}
