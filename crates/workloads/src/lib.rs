//! `dacapo-sim` — synthetic models of the seven multithreaded DaCapo
//! benchmarks the DEP+BURST paper evaluates (§IV, Table I).
//!
//! Each benchmark is a structural model calibrated to its published timing
//! signature — heap size, execution time and GC time at 1 GHz, memory- vs
//! compute-intensity, thread count and synchronisation style — rather than
//! a functional re-implementation (the predictors never observe benchmark
//! semantics, only timing, counters, and futex activity):
//!
//! | benchmark | class | structure modelled |
//! |---|---|---|
//! | `xalan` | memory | work queue of documents, lock contention, heavy allocation |
//! | `pmd` | memory | AST pointer chasing, skewed task sizes (large input file) |
//! | `pmd-scale` | memory | pmd without the scaling bottleneck |
//! | `lusearch` | memory | index search with needless allocation (huge zero-init) |
//! | `lusearch-fix` | compute | same with the allocation fix applied |
//! | `avrora` | compute | 6 sensor-node threads, fine-grained sleeps, little parallelism |
//! | `sunflow` | compute | embarrassingly parallel rendering with periodic barriers |
//!
//! Use [`benchmark`] / [`all_benchmarks`] to look up specs, and
//! [`Benchmark::install`] to put a workload on a [`simx::Machine`].

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod benches;
mod rounds;
mod spec;

pub use rounds::{RoundParams, RoundSource};
pub use spec::{all_benchmarks, benchmark, BenchClass, Benchmark, PaperNumbers};
