//! `harness` — experiment runners regenerating every table and figure of
//! the DEP+BURST paper.
//!
//! | Experiment | Module | Binary |
//! |---|---|---|
//! | Table I (benchmarks) | [`experiments::table1`] | `table1` |
//! | Table II (system parameters) | [`experiments::table2`] | `table2` |
//! | Fig. 1 (M+CRIT vs DEP+BURST headline) | [`experiments::fig1`] | `fig1` |
//! | Fig. 3a/3b (per-benchmark model errors) | [`experiments::fig3`] | `fig3` |
//! | Fig. 4 (per- vs across-epoch CTP) | [`experiments::fig4`] | `fig4` |
//! | Fig. 6a/6b (energy manager) | [`experiments::fig6`] | `fig6` |
//! | Fig. 7 (dynamic vs static-optimal) | [`experiments::fig7`] | `fig7` |
//! | Fault injection & graceful degradation | [`experiments::faults`] | `faults` |
//! | Fleet-scale governor under chaos | [`experiments::fleet`] | `fleet` |
//! | Invariant-monitored fuzzing | [`fuzz`] | `fuzz` |
//! | Storage-fault crash-consistency torture | [`experiments::torture`] | `torture` |
//!
//! The [`run`] module holds the single-run plumbing shared by everything.
//! Long sweeps run resiliently: points are panic-isolated and
//! watchdog-bounded with deterministic retry ([`resilience`]), completed
//! points checkpoint to an append-only journal for `--resume`
//! ([`checkpoint`]), and ultimate failures surface as a structured
//! end-of-run report with a nonzero exit code ([`cli`]). All durable I/O
//! — cache envelopes and journal records, both carrying FNV-1a integrity
//! checksums — routes through the [`vfs`] storage abstraction, whose
//! deterministic fault injector the torture harness drives.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
pub mod checkpoint;
pub mod cli;
pub mod experiments;
pub mod fuzz;
pub mod pool;
pub mod report;
pub mod resilience;
pub mod run;
pub mod vfs;

pub use cache::{bench_digest, fault_digest, sim_key, sim_key_from_digests, CacheStats, SimCache, SimKey};
pub use checkpoint::Journal;
pub use resilience::{FailureCause, FailureReport, PointFailure, RetryPolicy};
pub use run::{
    run_benchmark, try_run_benchmark, try_run_benchmark_monitored, ExecCtx, RunConfig, RunResult,
    RunSummary, SimPoint, SweepPlan,
};
pub use vfs::{FaultyVfs, RealVfs, StorageFaultConfig, StorageFaultStats, Vfs};
