//! A hand-rolled work-stealing thread pool for experiment sweeps.
//!
//! The vendored dependency shims are no-ops, so there is no `rayon` here —
//! just `std::thread::scope`. Each worker owns a deque of item indices,
//! pops from its own front, and steals from a victim's back when it runs
//! dry. Results land in per-index slots, so the output order is always the
//! input order regardless of which worker finished what when — the
//! determinism contract every experiment report relies on.
//!
//! With `jobs <= 1` (or a single item) no threads are spawned at all and
//! the items are mapped in place, reproducing the historical sequential
//! runner exactly.
//!
//! Panic isolation: every item runs under `catch_unwind`, so one
//! panicking item can neither kill its worker (which would strand the
//! rest of that worker's queue) nor poison the result slots. [`try_map`]
//! surfaces each item's panic as an `Err` payload; [`map`] completes
//! every item first and only then re-raises the earliest panic.

use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The opaque payload of a caught panic (what `std::panic::catch_unwind`
/// yields), carried per item by [`try_map`].
pub type PanicPayload = Box<dyn Any + Send>;

/// Renders a panic payload the way the default panic hook would: the
/// `&str` or `String` message when there is one, a placeholder otherwise.
#[must_use]
pub fn panic_message(payload: &PanicPayload) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with a non-string payload".to_owned()
    }
}

/// The number of workers to use when the caller does not say: the
/// machine's available parallelism (1 if it cannot be determined).
#[must_use]
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// Resolves a jobs request: `Some(n)` is clamped to at least 1, `None`
/// falls back to the `DEPBURST_JOBS` environment variable and then to
/// [`default_jobs`].
#[must_use]
pub fn resolve_jobs(requested: Option<usize>) -> usize {
    match requested {
        Some(n) => n.max(1),
        None => std::env::var("DEPBURST_JOBS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .map_or_else(default_jobs, |n| n.max(1)),
    }
}

/// Maps `f` over `items` on up to `jobs` workers, returning the results
/// in input order. `f` must be a pure function of its item (it runs once
/// per item, on an arbitrary worker).
///
/// # Panics
/// If `f` panics for any item, every *other* item still completes and the
/// earliest (lowest-index) panic is then re-raised on the calling thread
/// — a panicking point no longer strands the rest of the sweep in an
/// undefined half-run state. Callers that want panics as data use
/// [`try_map`].
pub fn map<T, R, F>(items: Vec<T>, jobs: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let mut out = Vec::with_capacity(items.len());
    for outcome in try_map(items, jobs, f) {
        match outcome {
            Ok(r) => out.push(r),
            Err(payload) => resume_unwind(payload),
        }
    }
    out
}

/// Like [`map`], but panic-isolated: each item's result arrives as
/// `Ok(r)` or `Err(payload)` when `f` panicked on it. All items run to
/// completion regardless of how many panic.
pub fn try_map<T, R, F>(items: Vec<T>, jobs: usize, f: F) -> Vec<Result<R, PanicPayload>>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if jobs <= 1 || n <= 1 {
        return items
            .into_iter()
            .map(|item| catch_unwind(AssertUnwindSafe(|| f(item))))
            .collect();
    }
    let workers = jobs.min(n);

    // Item and result slots, indexed by input position.
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<Result<R, PanicPayload>>>> =
        (0..n).map(|_| Mutex::new(None)).collect();
    let completed = AtomicUsize::new(0);

    // Deal indices round-robin so neighbouring (similar-cost) points
    // spread across workers.
    let queues: Vec<Mutex<VecDeque<usize>>> = (0..workers)
        .map(|w| Mutex::new((w..n).step_by(workers).collect()))
        .collect();

    std::thread::scope(|scope| {
        for w in 0..workers {
            let queues = &queues;
            let slots = &slots;
            let results = &results;
            let completed = &completed;
            let f = &f;
            scope.spawn(move || loop {
                // Own queue first (front), then steal from victims (back).
                let mut idx = queues[w].lock().expect("queue lock").pop_front();
                if idx.is_none() {
                    for v in 1..workers {
                        let victim = (w + v) % workers;
                        idx = queues[victim].lock().expect("queue lock").pop_back();
                        if idx.is_some() {
                            break;
                        }
                    }
                }
                match idx {
                    Some(i) => {
                        let item = slots[i]
                            .lock()
                            .expect("slot lock")
                            .take()
                            .expect("item taken once");
                        // AssertUnwindSafe: `f` is shared by reference and
                        // a panicking call's partial effects stay behind
                        // the caller's own synchronization (the slot/result
                        // mutexes themselves are never held across `f`).
                        let r = catch_unwind(AssertUnwindSafe(|| f(item)));
                        *results[i].lock().expect("result lock") = Some(r);
                        completed.fetch_add(1, Ordering::SeqCst);
                    }
                    None => {
                        if completed.load(Ordering::SeqCst) >= n {
                            break;
                        }
                        // Another worker still holds in-flight items that
                        // cannot be stolen; wait for it to finish or to
                        // push nothing more.
                        std::thread::yield_now();
                    }
                }
            });
        }
    });

    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result lock")
                .expect("every index completed")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_and_parallel_agree_in_order() {
        let items: Vec<u64> = (0..57).collect();
        let seq = map(items.clone(), 1, |x| x * x + 1);
        for jobs in [2, 4, 9] {
            let par = map(items.clone(), jobs, |x| x * x + 1);
            assert_eq!(seq, par, "jobs={jobs}");
        }
    }

    #[test]
    fn handles_empty_and_single() {
        assert_eq!(map(Vec::<u32>::new(), 4, |x| x), Vec::<u32>::new());
        assert_eq!(map(vec![7], 4, |x| x + 1), vec![8]);
    }

    #[test]
    fn more_workers_than_items() {
        let out = map(vec![1, 2, 3], 16, |x| x * 10);
        assert_eq!(out, vec![10, 20, 30]);
    }

    #[test]
    fn uneven_work_still_ordered() {
        // Make early items slow so stealing actually happens.
        let items: Vec<u64> = (0..32).collect();
        let out = map(items, 4, |x| {
            if x < 4 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            x
        });
        assert_eq!(out, (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn resolve_jobs_clamps_and_defaults() {
        assert_eq!(resolve_jobs(Some(0)), 1);
        assert_eq!(resolve_jobs(Some(3)), 3);
        assert!(resolve_jobs(None) >= 1);
    }

    #[test]
    fn try_map_isolates_panics_per_item() {
        for jobs in [1, 4] {
            let outcomes = try_map((0u64..16).collect(), jobs, |x| {
                assert!(x != 5 && x != 11, "boom at {x}");
                x * 2
            });
            assert_eq!(outcomes.len(), 16, "jobs={jobs}: all items complete");
            for (i, outcome) in outcomes.iter().enumerate() {
                match outcome {
                    Ok(r) => assert_eq!(*r, i as u64 * 2),
                    Err(payload) => {
                        assert!(i == 5 || i == 11);
                        assert!(panic_message(payload).contains("boom"));
                    }
                }
            }
        }
    }

    #[test]
    fn map_completes_everything_before_reraising() {
        use std::sync::atomic::AtomicUsize;
        let ran = AtomicUsize::new(0);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            map((0u64..16).collect(), 4, |x| {
                ran.fetch_add(1, Ordering::SeqCst);
                assert_ne!(x, 3, "dead point");
                x
            })
        }));
        assert!(caught.is_err(), "the panic still surfaces");
        assert_eq!(
            ran.load(Ordering::SeqCst),
            16,
            "a panicking item must not strand the others"
        );
    }

    #[test]
    fn panic_message_renders_common_payloads() {
        let s = catch_unwind(|| panic!("plain &str")).unwrap_err();
        assert_eq!(panic_message(&s), "plain &str");
        let owned = catch_unwind(|| panic!("value {}", 42)).unwrap_err();
        assert_eq!(panic_message(&owned), "value 42");
    }
}
