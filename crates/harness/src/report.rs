//! Plain-text table rendering and JSON export for experiment results.

use std::fmt::Write as _;

/// A simple left-aligned text table.
#[derive(Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new(header: &[&str]) -> Self {
        TextTable {
            header: header.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders the table.
    #[must_use]
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], out: &mut String| {
            for (i, cell) in cells.iter().enumerate() {
                let _ = write!(out, "{:<width$}  ", cell, width = widths[i]);
            }
            out.push('\n');
        };
        line(&self.header, &mut out);
        let total: usize = widths.iter().sum::<usize>() + widths.len() * 2;
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            line(row, &mut out);
        }
        out
    }
}

/// Formats a fraction as a signed percentage.
#[must_use]
pub fn pct(x: f64) -> String {
    format!("{:+.1}%", x * 100.0)
}

/// Formats a fraction as an unsigned percentage.
#[must_use]
pub fn pct_abs(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Formats seconds as milliseconds.
#[must_use]
pub fn ms(secs: f64) -> String {
    format!("{:.0} ms", secs * 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(&["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["longer".into(), "22".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[3].starts_with("longer"));
    }

    #[test]
    fn formatters() {
        assert_eq!(pct(0.123), "+12.3%");
        assert_eq!(pct(-0.06), "-6.0%");
        assert_eq!(pct_abs(0.061), "6.1%");
        assert_eq!(ms(1.4), "1400 ms");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = TextTable::new(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }
}
