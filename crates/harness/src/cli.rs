//! Shared command-line plumbing for the experiment binaries.
//!
//! Every binary accepts `--jobs N` (anywhere on the command line, also
//! `--jobs=N`), falling back to the `DEPBURST_JOBS` environment variable
//! and then to the machine's available parallelism. `--jobs 1`
//! reproduces the historical sequential harness exactly. Failures are
//! rendered to stderr and the process exits nonzero — no panics.

use std::process::ExitCode;

use crate::run::ExecCtx;

/// The boxed error a binary's command body returns: `depburst_core`
/// errors and I/O or serialization errors both flow through it.
pub type CliResult = Result<(), Box<dyn std::error::Error>>;

/// Extracts `--jobs N` / `--jobs=N` from `args`, returning the requested
/// worker count and the remaining positional arguments in order.
pub fn split_jobs(args: &[String]) -> Result<(Option<usize>, Vec<String>), String> {
    let mut jobs = None;
    let mut rest = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--jobs" {
            let v = it.next().ok_or("--jobs requires a value")?;
            jobs = Some(parse_jobs(v)?);
        } else if let Some(v) = a.strip_prefix("--jobs=") {
            jobs = Some(parse_jobs(v)?);
        } else {
            rest.push(a.clone());
        }
    }
    Ok((jobs, rest))
}

fn parse_jobs(v: &str) -> Result<usize, String> {
    match v.parse::<usize>() {
        Ok(n) if n >= 1 => Ok(n),
        _ => Err(format!("invalid --jobs value {v:?} (want a positive integer)")),
    }
}

/// Parses `--jobs`, builds the execution context from the environment,
/// runs `body` on the remaining arguments, and renders any error to
/// stderr with a nonzero exit code.
pub fn main_with(body: impl FnOnce(&ExecCtx, &[String]) -> CliResult) -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let (jobs, rest) = match split_jobs(&argv) {
        Ok(split) => split,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let ctx = ExecCtx::from_env(jobs);
    match body(&ctx, &rest) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn split_jobs_extracts_both_forms() {
        let (jobs, rest) = split_jobs(&strs(&["0.1", "--jobs", "4", "2"])).unwrap();
        assert_eq!(jobs, Some(4));
        assert_eq!(rest, strs(&["0.1", "2"]));
        let (jobs, rest) = split_jobs(&strs(&["--jobs=2"])).unwrap();
        assert_eq!(jobs, Some(2));
        assert!(rest.is_empty());
        let (jobs, rest) = split_jobs(&strs(&["a", "b"])).unwrap();
        assert_eq!(jobs, None);
        assert_eq!(rest, strs(&["a", "b"]));
    }

    #[test]
    fn split_jobs_rejects_bad_values() {
        assert!(split_jobs(&strs(&["--jobs"])).is_err());
        assert!(split_jobs(&strs(&["--jobs", "zero"])).is_err());
        assert!(split_jobs(&strs(&["--jobs=0"])).is_err());
    }
}
