//! Shared command-line plumbing for the experiment binaries.
//!
//! Every binary accepts, anywhere on the command line (both `--flag V`
//! and `--flag=V` forms):
//!
//! * `--jobs N` — pool width (env `DEPBURST_JOBS`; default: available
//!   parallelism). `--jobs 1` reproduces the historical sequential
//!   harness exactly.
//! * `--point-timeout SECS` — per-point wall-clock watchdog (env
//!   `DEPBURST_POINT_TIMEOUT`; `0` disables).
//! * `--retries N` — retry budget for failed points (env
//!   `DEPBURST_RETRIES`; default 2).
//! * `--run-id ID` — start a fresh checkpoint journal at
//!   `results/checkpoints/<ID>.jsonl`.
//! * `--resume ID` — resume that journal, replaying completed points;
//!   output is byte-identical to an uninterrupted run.
//! * `--invariants MODE` — runtime invariant monitor mode (`off`,
//!   `cheap`, or `full`; env `DEPBURST_INVARIANTS`; default off). See
//!   `simx::invariants`.
//! * `--sampling SETTING` — sampled execution tier (`off`, `on`, or a
//!   measure fraction in (probe, 1); env `DEPBURST_SAMPLING`; default
//!   off). See `simx::sampling`.
//! * `--storage-faults SPEC` — storage-fault injection on the cache and
//!   checkpoint journal (`off`, an intensity in `[0, 1]`, `seed=N`,
//!   `crash=N`, comma-separated; env `DEPBURST_STORAGE_FAULTS`; default
//!   off — all durable I/O goes straight through the real filesystem).
//!   See `harness::vfs`.
//!
//! An unknown `--flag` is a usage error: the diagnostic names the
//! offending flag, suggests the nearest valid one when the typo is small,
//! and lists every flag the binary accepts (binary-specific flags such as
//! the faults sweep's `--panic-point` included).
//!
//! Exit codes are standardized across all binaries: **0** success, **1**
//! usage or internal error, **2** the sweep ran but some points
//! ultimately failed (a failure report was written to
//! `results/<exp>_failures.json` and summarized on stderr). No panics.

use std::process::ExitCode;

use crate::checkpoint::Journal;
use crate::run::ExecCtx;

/// The boxed error a binary's command body returns: `depburst_core`
/// errors and I/O or serialization errors both flow through it.
pub type CliResult = Result<(), Box<dyn std::error::Error>>;

/// The options shared by every experiment binary, split from its
/// positional arguments.
#[derive(Debug, Default)]
pub struct CommonOpts {
    /// `--jobs N`.
    pub jobs: Option<usize>,
    /// `--point-timeout SECS`: `Some(None)` = explicit `0` (disable),
    /// `Some(Some(d))` = a budget, `None` = not given (use the env).
    pub point_timeout: Option<Option<std::time::Duration>>,
    /// `--retries N`.
    pub retries: Option<u32>,
    /// `--run-id ID`.
    pub run_id: Option<String>,
    /// `--resume ID`.
    pub resume: Option<String>,
    /// `--invariants MODE`.
    pub invariants: Option<simx::InvariantMode>,
    /// `--sampling SETTING`: `Some(None)` = explicit `off`,
    /// `Some(Some(cfg))` = the sampled tier, `None` = not given (use the
    /// env).
    pub sampling: Option<Option<simx::SamplingConfig>>,
    /// `--storage-faults SPEC`: `Some(None)` = explicit `off`,
    /// `Some(Some(cfg))` = an injector, `None` = not given (use the env).
    pub storage_faults: Option<Option<crate::vfs::StorageFaultConfig>>,
    /// Remaining positional arguments (and pass-through binary-specific
    /// flags), in order.
    pub rest: Vec<String>,
}

/// The flags every binary understands, for the unknown-flag diagnostic.
const COMMON_FLAGS: [&str; 8] = [
    "--jobs",
    "--point-timeout",
    "--retries",
    "--run-id",
    "--resume",
    "--invariants",
    "--sampling",
    "--storage-faults",
];

/// Extracts `--jobs N` / `--jobs=N` from `args`, returning the requested
/// worker count and the remaining arguments in order. Kept for callers
/// that only care about jobs; the binaries use [`parse_common`], which
/// also strips the resilience flags.
pub fn split_jobs(args: &[String]) -> Result<(Option<usize>, Vec<String>), String> {
    let mut jobs = None;
    let mut rest = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--jobs" {
            let v = it.next().ok_or("--jobs requires a value")?;
            jobs = Some(parse_jobs(v)?);
        } else if let Some(v) = a.strip_prefix("--jobs=") {
            jobs = Some(parse_jobs(v)?);
        } else {
            rest.push(a.clone());
        }
    }
    Ok((jobs, rest))
}

/// Extracts one `--name V` / `--name=V` flag from `args`, returning its
/// value (last occurrence wins) and the remaining arguments in order.
/// Binaries use this for experiment-specific flags (e.g. the faults
/// sweep's `--panic-point`).
pub fn split_flag(args: &[String], name: &str) -> Result<(Option<String>, Vec<String>), String> {
    let inline = format!("{name}=");
    let mut value = None;
    let mut rest = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == name {
            value = Some(it.next().ok_or_else(|| format!("{name} requires a value"))?.clone());
        } else if let Some(v) = a.strip_prefix(&inline) {
            value = Some(v.to_owned());
        } else {
            rest.push(a.clone());
        }
    }
    Ok((value, rest))
}

/// Reads the test-only `DEPBURST_BREAK_INVARIANT` sabotage hook: CI sets
/// it to an invariant name to deliberately weaken that check and prove
/// the detector (and its reporting path) actually fires. Unset in every
/// real run.
///
/// # Errors
/// Returns a usage error when the value names no invariant.
pub fn sabotage_from_env() -> Result<Option<simx::Invariant>, String> {
    match std::env::var("DEPBURST_BREAK_INVARIANT") {
        Err(_) => Ok(None),
        Ok(name) => match simx::Invariant::from_name(name.trim()) {
            Some(inv) => Ok(Some(inv)),
            None => Err(format!(
                "DEPBURST_BREAK_INVARIANT={name:?} names no invariant (see simx::invariants)"
            )),
        },
    }
}

fn parse_jobs(v: &str) -> Result<usize, String> {
    match v.parse::<usize>() {
        Ok(n) if n >= 1 => Ok(n),
        _ => Err(format!("invalid --jobs value {v:?} (want a positive integer)")),
    }
}

fn parse_timeout(v: &str) -> Result<Option<std::time::Duration>, String> {
    match v.parse::<f64>() {
        Ok(0.0) => Ok(None),
        Ok(secs) if secs > 0.0 && secs.is_finite() => {
            Ok(Some(std::time::Duration::from_secs_f64(secs)))
        }
        _ => Err(format!(
            "invalid --point-timeout value {v:?} (want seconds >= 0)"
        )),
    }
}

fn parse_retries(v: &str) -> Result<u32, String> {
    v.parse::<u32>()
        .map_err(|_| format!("invalid --retries value {v:?} (want a non-negative integer)"))
}

fn parse_invariants(v: &str) -> Result<simx::InvariantMode, String> {
    simx::InvariantMode::parse(v).ok_or_else(|| {
        format!("invalid --invariants value {v:?} (want off, cheap, or full)")
    })
}

fn parse_sampling(v: &str) -> Result<Option<simx::SamplingConfig>, String> {
    crate::run::parse_sampling_setting(v).map_err(|e| format!("invalid --sampling value: {e}"))
}

fn parse_storage(v: &str) -> Result<Option<crate::vfs::StorageFaultConfig>, String> {
    crate::vfs::parse_storage_faults(v)
        .map_err(|e| format!("invalid --storage-faults value: {e}"))
}

/// Splits the shared flags from `args`, leaving the binary's positional
/// arguments in [`CommonOpts::rest`]. Equivalent to
/// [`parse_common_with`] with no binary-specific flags: any unrecognized
/// `--flag` is a usage error.
pub fn parse_common(args: &[String]) -> Result<CommonOpts, String> {
    parse_common_with(args, &[])
}

/// [`parse_common`] for binaries with their own flags: every name in
/// `extra_flags` (e.g. `"--panic-point"`) passes through to
/// [`CommonOpts::rest`] untouched — in both its `--flag V` and
/// `--flag=V` forms — for the binary to extract with [`split_flag`]. Any
/// other `--`-prefixed token is rejected with a diagnostic that names
/// the flag, suggests the nearest valid one, and lists them all.
pub fn parse_common_with(args: &[String], extra_flags: &[&str]) -> Result<CommonOpts, String> {
    let mut opts = CommonOpts::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value_of = |flag: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        match a.as_str() {
            "--jobs" => opts.jobs = Some(parse_jobs(&value_of("--jobs")?)?),
            "--point-timeout" => {
                opts.point_timeout = Some(parse_timeout(&value_of("--point-timeout")?)?);
            }
            "--retries" => opts.retries = Some(parse_retries(&value_of("--retries")?)?),
            "--run-id" => opts.run_id = Some(value_of("--run-id")?),
            "--resume" => opts.resume = Some(value_of("--resume")?),
            "--invariants" => {
                opts.invariants = Some(parse_invariants(&value_of("--invariants")?)?);
            }
            "--sampling" => opts.sampling = Some(parse_sampling(&value_of("--sampling")?)?),
            "--storage-faults" => {
                opts.storage_faults = Some(parse_storage(&value_of("--storage-faults")?)?);
            }
            other => {
                if let Some(v) = other.strip_prefix("--jobs=") {
                    opts.jobs = Some(parse_jobs(v)?);
                } else if let Some(v) = other.strip_prefix("--point-timeout=") {
                    opts.point_timeout = Some(parse_timeout(v)?);
                } else if let Some(v) = other.strip_prefix("--retries=") {
                    opts.retries = Some(parse_retries(v)?);
                } else if let Some(v) = other.strip_prefix("--run-id=") {
                    opts.run_id = Some(v.to_owned());
                } else if let Some(v) = other.strip_prefix("--resume=") {
                    opts.resume = Some(v.to_owned());
                } else if let Some(v) = other.strip_prefix("--invariants=") {
                    opts.invariants = Some(parse_invariants(v)?);
                } else if let Some(v) = other.strip_prefix("--sampling=") {
                    opts.sampling = Some(parse_sampling(v)?);
                } else if let Some(v) = other.strip_prefix("--storage-faults=") {
                    opts.storage_faults = Some(parse_storage(v)?);
                } else if other.starts_with("--") {
                    let bare = other.split('=').next().unwrap_or(other);
                    if extra_flags.contains(&bare) {
                        opts.rest.push(other.to_owned());
                    } else {
                        return Err(unknown_flag_error(bare, extra_flags));
                    }
                } else {
                    opts.rest.push(other.to_owned());
                }
            }
        }
    }
    Ok(opts)
}

/// Renders the unknown-flag usage error: the offending flag, a
/// nearest-valid-flag suggestion when one is within edit distance 2, and
/// the full list of flags this binary accepts.
fn unknown_flag_error(flag: &str, extra_flags: &[&str]) -> String {
    let mut known: Vec<&str> = COMMON_FLAGS.to_vec();
    known.extend_from_slice(extra_flags);
    known.sort_unstable();
    let suggestion = known
        .iter()
        .map(|k| (edit_distance(flag, k), *k))
        .filter(|(d, _)| *d <= 2)
        .min()
        .map(|(_, k)| format!(" (did you mean {k}?)"))
        .unwrap_or_default();
    format!(
        "unknown flag {flag}{suggestion}; valid flags: {}",
        known.join(", ")
    )
}

/// Levenshtein distance between two short flag names (classic
/// two-row dynamic program; inputs are a handful of bytes, so no
/// cleverness needed).
fn edit_distance(a: &str, b: &str) -> usize {
    let (a, b): (Vec<char>, Vec<char>) = (a.chars().collect(), b.chars().collect());
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut row = vec![0usize; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        row[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let substitute = prev[j] + usize::from(ca != cb);
            row[j + 1] = substitute.min(prev[j + 1] + 1).min(row[j] + 1);
        }
        std::mem::swap(&mut prev, &mut row);
    }
    prev[b.len()]
}

/// Builds the execution context `opts` asks for: environment defaults,
/// overridden by the explicit flags, plus the checkpoint journal when a
/// run id was given (`--resume` wins over `--run-id`).
pub fn build_ctx(opts: &CommonOpts) -> std::io::Result<ExecCtx> {
    if let Some(mode) = opts.invariants {
        // Machines read DEPBURST_INVARIANTS at construction; exporting the
        // flag's value here — before any pool worker builds one — makes
        // the flag and the environment variable exactly equivalent.
        std::env::set_var("DEPBURST_INVARIANTS", mode.as_str());
    }
    let mut ctx = ExecCtx::from_env(opts.jobs);
    if let Some(timeout) = opts.point_timeout {
        ctx.point_timeout = timeout;
    }
    if let Some(retries) = opts.retries {
        ctx.policy.retries = retries;
    }
    if let Some(sampling) = opts.sampling {
        ctx.sampling = sampling;
    }
    match opts.storage_faults {
        // Explicit `--storage-faults off` clears an env-installed one.
        Some(None) => ctx = ctx.without_storage(),
        Some(Some(cfg)) => ctx = ctx.with_storage_faults(cfg),
        None => {}
    }
    // Build the journal *after* storage so it shares the injector. An
    // invalid run id is a usage error, but a journal that cannot be
    // created or read is a *degraded* run, not a dead one: checkpointing
    // is best-effort (mirroring how append/fsync failures are counted,
    // never fatal), so the sweep proceeds non-resumable with a loud
    // warning instead of dying before it starts.
    let journal = match (&opts.resume, &opts.run_id) {
        (Some(id), _) => {
            Journal::path_for(id)?;
            match Journal::resume_with(id, ctx.storage_vfs()) {
                Ok(journal) => Some(journal),
                Err(e) => {
                    eprintln!(
                        "warning: cannot resume checkpoint journal {id}: {e}; \
                         continuing without checkpointing"
                    );
                    None
                }
            }
        }
        (None, Some(id)) => {
            Journal::path_for(id)?;
            match Journal::create_with(id, ctx.storage_vfs()) {
                Ok(journal) => Some(journal),
                Err(e) => {
                    eprintln!(
                        "warning: cannot create checkpoint journal {id}: {e}; \
                         this run will not be resumable"
                    );
                    None
                }
            }
        }
        (None, None) => None,
    };
    if let Some(journal) = journal {
        ctx = ctx.with_journal(journal);
    }
    Ok(ctx)
}

/// Parses the shared flags, builds the execution context, runs `body` on
/// the remaining arguments, then writes/clears the experiment's failure
/// report and translates the outcome into the standardized exit codes
/// (0 ok, 1 usage/internal error, 2 point failures).
pub fn main_with(
    experiment: &str,
    body: impl FnOnce(&ExecCtx, &[String]) -> CliResult,
) -> ExitCode {
    main_with_flags(experiment, &[], body)
}

/// [`main_with`] for binaries with their own flags (see
/// [`parse_common_with`]): `extra_flags` pass through to the body's
/// arguments and join the unknown-flag diagnostic's valid list.
pub fn main_with_flags(
    experiment: &str,
    extra_flags: &[&str],
    body: impl FnOnce(&ExecCtx, &[String]) -> CliResult,
) -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_common_with(&argv, extra_flags) {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let ctx = match build_ctx(&opts) {
        Ok(ctx) => ctx,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let result = body(&ctx, &opts.rest);
    finish(experiment, &ctx, result)
}

/// The exit code for "the sweep ran but some points ultimately failed".
pub const EXIT_POINT_FAILURES: u8 = 2;

fn finish(experiment: &str, ctx: &ExecCtx, result: CliResult) -> ExitCode {
    let cache = ctx.cache.stats();
    if cache.persist_failures > 0 {
        eprintln!(
            "warning: {} cache persist attempt(s) failed; those points will re-simulate next run",
            cache.persist_failures
        );
    }
    if let Some(journal) = ctx.journal() {
        let js = journal.stats();
        if js.append_failures > 0 {
            eprintln!(
                "warning: {} checkpoint append(s) failed; those points are not resumable",
                js.append_failures
            );
        }
        if js.fsync_failures > 0 {
            eprintln!(
                "warning: {} checkpoint fsync(s) failed; recent appends may not survive a crash",
                js.fsync_failures
            );
        }
    }
    if let Some(storage) = ctx.storage() {
        let s = storage.stats();
        eprintln!(
            "storage faults: {} ops, {} torn writes, {} dropped fsyncs, {} rename failures, \
             {} enospc, {} corrupted reads{}",
            s.ops,
            s.torn_writes,
            s.dropped_fsyncs,
            s.rename_failures,
            s.enospc_failures,
            s.corrupted_reads,
            if s.crashed { ", CRASHED" } else { "" }
        );
        // A fired crash point escalates to a structured storage failure:
        // the run must exit through the failure-report path, never as a
        // clean success over half-written state.
        if let Some(failure) = ctx.storage_failure() {
            ctx.record_failure(failure);
        }
    }
    let report_path = format!("results/{experiment}_failures.json");
    let report = ctx.failure_report(experiment);
    match &report {
        Some(report) => {
            match serde_json::to_string_pretty(report) {
                Ok(json) => {
                    let written = std::fs::create_dir_all("results")
                        .and_then(|()| std::fs::write(&report_path, json));
                    match written {
                        Ok(()) => eprintln!("wrote {report_path}"),
                        Err(e) => eprintln!("warning: could not write {report_path}: {e}"),
                    }
                }
                Err(e) => eprintln!("warning: could not serialize the failure report: {e}"),
            }
            eprintln!("{}", report.summary_line());
        }
        // A clean run clears any stale report from a previous failed one.
        None => {
            let _ = std::fs::remove_file(&report_path);
        }
    }
    match result {
        Ok(()) if report.is_none() => ExitCode::SUCCESS,
        Ok(()) => ExitCode::from(EXIT_POINT_FAILURES),
        Err(e) => {
            eprintln!("error: {e}");
            if report.is_some() {
                ExitCode::from(EXIT_POINT_FAILURES)
            } else {
                ExitCode::FAILURE
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn split_jobs_extracts_both_forms() {
        let (jobs, rest) = split_jobs(&strs(&["0.1", "--jobs", "4", "2"])).unwrap();
        assert_eq!(jobs, Some(4));
        assert_eq!(rest, strs(&["0.1", "2"]));
        let (jobs, rest) = split_jobs(&strs(&["--jobs=2"])).unwrap();
        assert_eq!(jobs, Some(2));
        assert!(rest.is_empty());
        let (jobs, rest) = split_jobs(&strs(&["a", "b"])).unwrap();
        assert_eq!(jobs, None);
        assert_eq!(rest, strs(&["a", "b"]));
    }

    #[test]
    fn split_jobs_rejects_bad_values() {
        assert!(split_jobs(&strs(&["--jobs"])).is_err());
        assert!(split_jobs(&strs(&["--jobs", "zero"])).is_err());
        assert!(split_jobs(&strs(&["--jobs=0"])).is_err());
    }

    #[test]
    fn parse_common_strips_all_shared_flags() {
        let opts = parse_common(&strs(&[
            "0.1",
            "--jobs",
            "4",
            "--point-timeout=2.5",
            "--retries",
            "1",
            "--run-id",
            "nightly",
            "7",
        ]))
        .unwrap();
        assert_eq!(opts.jobs, Some(4));
        assert_eq!(
            opts.point_timeout,
            Some(Some(std::time::Duration::from_secs_f64(2.5)))
        );
        assert_eq!(opts.retries, Some(1));
        assert_eq!(opts.run_id.as_deref(), Some("nightly"));
        assert_eq!(opts.resume, None);
        assert_eq!(opts.rest, strs(&["0.1", "7"]), "positional order survives");
    }

    #[test]
    fn parse_common_timeout_zero_disables() {
        let opts = parse_common(&strs(&["--point-timeout", "0"])).unwrap();
        assert_eq!(opts.point_timeout, Some(None));
        assert!(parse_common(&strs(&["--point-timeout", "-1"])).is_err());
        assert!(parse_common(&strs(&["--retries", "-1"])).is_err());
        assert!(parse_common(&strs(&["--resume"])).is_err());
    }

    #[test]
    fn split_flag_extracts_and_preserves_rest() {
        let (v, rest) =
            split_flag(&strs(&["a", "--panic-point", "0.5", "b"]), "--panic-point").unwrap();
        assert_eq!(v.as_deref(), Some("0.5"));
        assert_eq!(rest, strs(&["a", "b"]));
        let (v, rest) = split_flag(&strs(&["--panic-point=1.0"]), "--panic-point").unwrap();
        assert_eq!(v.as_deref(), Some("1.0"));
        assert!(rest.is_empty());
        assert!(split_flag(&strs(&["--panic-point"]), "--panic-point").is_err());
    }

    #[test]
    fn unknown_flags_are_diagnosed_with_suggestion_and_list() {
        let err = parse_common(&strs(&["--job", "4"])).expect_err("unknown flag");
        assert!(err.contains("unknown flag --job"), "got: {err}");
        assert!(err.contains("did you mean --jobs?"), "got: {err}");
        for flag in COMMON_FLAGS {
            assert!(err.contains(flag), "valid list must include {flag}: {err}");
        }
        // The `=`-form reports the bare flag name.
        let err = parse_common(&strs(&["--restries=1"])).expect_err("typo");
        assert!(err.contains("unknown flag --restries"), "got: {err}");
        assert!(err.contains("did you mean --retries?"), "got: {err}");
        // A flag nothing resembles gets the list but no suggestion.
        let err = parse_common(&strs(&["--frobnicate"])).expect_err("unknown");
        assert!(!err.contains("did you mean"), "got: {err}");
        assert!(err.contains("valid flags:"), "got: {err}");
    }

    #[test]
    fn extra_flags_pass_through_and_join_the_diagnostic() {
        let opts = parse_common_with(
            &strs(&["--panic-point", "0.5", "--jobs=2", "x"]),
            &["--panic-point"],
        )
        .unwrap();
        assert_eq!(opts.jobs, Some(2));
        assert_eq!(opts.rest, strs(&["--panic-point", "0.5", "x"]));
        let opts =
            parse_common_with(&strs(&["--panic-point=1.0"]), &["--panic-point"]).unwrap();
        assert_eq!(opts.rest, strs(&["--panic-point=1.0"]));
        // A typo of the binary-specific flag is suggested too.
        let err = parse_common_with(&strs(&["--panic-pont=1.0"]), &["--panic-point"])
            .expect_err("typo");
        assert!(err.contains("did you mean --panic-point?"), "got: {err}");
        // Without the pass-through declaration it is unknown.
        assert!(parse_common(&strs(&["--panic-point=1.0"])).is_err());
    }

    #[test]
    fn invariants_flag_parses_all_modes() {
        let opts = parse_common(&strs(&["--invariants", "full"])).unwrap();
        assert_eq!(opts.invariants, Some(simx::InvariantMode::Full));
        let opts = parse_common(&strs(&["--invariants=cheap"])).unwrap();
        assert_eq!(opts.invariants, Some(simx::InvariantMode::Cheap));
        let opts = parse_common(&strs(&["--invariants=off"])).unwrap();
        assert_eq!(opts.invariants, Some(simx::InvariantMode::Off));
        assert!(parse_common(&strs(&["--invariants", "loud"])).is_err());
        assert_eq!(parse_common(&strs(&[])).unwrap().invariants, None);
    }

    #[test]
    fn sampling_flag_parses_all_settings() {
        let opts = parse_common(&strs(&["--sampling", "on"])).unwrap();
        assert_eq!(opts.sampling, Some(Some(simx::SamplingConfig::default())));
        let opts = parse_common(&strs(&["--sampling=off"])).unwrap();
        assert_eq!(opts.sampling, Some(None));
        let opts = parse_common(&strs(&["--sampling=0.5"])).unwrap();
        let cfg = opts.sampling.flatten().expect("fraction enables sampling");
        assert_eq!(cfg.measure_fraction, 0.5);
        assert_eq!(
            cfg.probe_fraction,
            simx::SamplingConfig::default().probe_fraction
        );
        // Fractions outside (probe, 1) and junk are usage errors.
        assert!(parse_common(&strs(&["--sampling", "1.5"])).is_err());
        assert!(parse_common(&strs(&["--sampling", "0.01"])).is_err());
        assert!(parse_common(&strs(&["--sampling", "sometimes"])).is_err());
        assert_eq!(parse_common(&strs(&[])).unwrap().sampling, None);
    }

    #[test]
    fn storage_faults_flag_parses_specs() {
        let opts = parse_common(&strs(&["--storage-faults", "off"])).unwrap();
        assert_eq!(opts.storage_faults, Some(None));
        let opts = parse_common(&strs(&["--storage-faults=0.2,seed=7"])).unwrap();
        let cfg = opts.storage_faults.flatten().expect("injector on");
        assert_eq!(cfg.seed, 7);
        assert!(cfg.torn_write > 0.0);
        let opts = parse_common(&strs(&["--storage-faults=crash=12"])).unwrap();
        assert_eq!(
            opts.storage_faults.flatten().expect("crash mode").crash_after,
            Some(12)
        );
        assert!(parse_common(&strs(&["--storage-faults", "2.0"])).is_err());
        assert_eq!(parse_common(&strs(&[])).unwrap().storage_faults, None);
    }

    #[test]
    fn edit_distance_is_the_usual_levenshtein() {
        assert_eq!(edit_distance("", ""), 0);
        assert_eq!(edit_distance("--jobs", "--jobs"), 0);
        assert_eq!(edit_distance("--job", "--jobs"), 1);
        assert_eq!(edit_distance("--restries", "--retries"), 1);
        assert_eq!(edit_distance("kitten", "sitting"), 3);
    }

    #[test]
    fn build_ctx_applies_overrides() {
        let opts = parse_common(&strs(&["--jobs=3", "--retries=0", "--point-timeout=1.5"]))
            .unwrap();
        let ctx = build_ctx(&opts).expect("no journal requested");
        assert_eq!(ctx.jobs, 3);
        assert_eq!(ctx.policy.retries, 0);
        assert_eq!(
            ctx.point_timeout,
            Some(std::time::Duration::from_secs_f64(1.5))
        );
        assert!(ctx.journal().is_none());
        // A bad run id is a usage error, not a panic.
        let bad = parse_common(&strs(&["--run-id", "../escape"])).unwrap();
        assert!(build_ctx(&bad).is_err());
    }

    #[test]
    fn unwritable_journal_degrades_the_run_instead_of_killing_it() {
        // crash=0 fails the very first VFS operation, so the journal can
        // never be created: the context must still build — checkpointing
        // is best-effort — just without a journal. The id is still
        // validated strictly even on that path.
        let opts = parse_common(&strs(&[
            "--run-id",
            "cli-degraded",
            "--storage-faults",
            "crash=0",
        ]))
        .unwrap();
        let ctx = build_ctx(&opts).expect("degraded, not dead");
        assert!(ctx.journal().is_none());
        assert!(ctx.storage().expect("injector installed").crashed());
        let bad = parse_common(&strs(&[
            "--run-id",
            "../escape",
            "--storage-faults",
            "crash=0",
        ]))
        .unwrap();
        assert!(build_ctx(&bad).is_err(), "id validation must stay hard");
    }
}
