//! Resilient point evaluation: panic isolation, per-point wall-clock
//! watchdogs, and bounded deterministic retry with seeded exponential
//! backoff.
//!
//! Long sweeps die three ways: a point panics (a workload-model bug or an
//! injected [`simx::FaultClass::PanicPoint`]), a point hangs (a runaway
//! simulation), or a point fails transiently (injected probabilistic
//! faults). [`attempt_resilient`] wraps one point evaluation against all
//! three: every attempt runs under `catch_unwind` and an armed
//! [`simx::watchdog`] deadline, failures are retried up to
//! [`RetryPolicy::retries`] times with exponential backoff, and an
//! ultimate failure comes back as a structured [`PointFailure`] instead
//! of a dead worker or a hung process.
//!
//! Determinism: backoff delays are drawn from a [`SplitMix64`] stream
//! seeded by the point's label digest, so the whole retry schedule is a
//! pure function of `(label, policy)` — reproducible across runs, and
//! asserted by a proptest in `tests/properties.rs`. Retried evaluations
//! receive their attempt index so fault-injected points can derive
//! per-attempt fault seeds via [`simx::faults::retry_seed`] (attempt 0 is
//! the identity, keeping first attempts bit-identical to the pre-retry
//! harness).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use depburst_core::stablehash::StableHasher;
use depburst_core::DepburstError;
use serde::Serialize;
use simx::faults::SplitMix64;

use crate::pool::panic_message;

/// How many times to retry a failed point, and how long to back off
/// between attempts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the first attempt (0 = one attempt total).
    pub retries: u32,
    /// Backoff before the first retry; doubles per subsequent retry.
    pub base_delay: Duration,
    /// Ceiling on any single backoff delay.
    pub max_delay: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            retries: 2,
            base_delay: Duration::from_millis(25),
            max_delay: Duration::from_secs(2),
        }
    }
}

impl RetryPolicy {
    /// No retries: fail on the first error (tests and CI watchdog gates).
    #[must_use]
    pub fn none() -> Self {
        RetryPolicy {
            retries: 0,
            ..Self::default()
        }
    }

    /// The default policy with the retry count overridden by the
    /// `DEPBURST_RETRIES` environment variable when set.
    #[must_use]
    pub fn from_env() -> Self {
        let mut policy = Self::default();
        if let Some(n) = std::env::var("DEPBURST_RETRIES")
            .ok()
            .and_then(|v| v.trim().parse::<u32>().ok())
        {
            policy.retries = n;
        }
        policy
    }

    /// The backoff before retrying after failed attempt `attempt`
    /// (0-based): `base_delay * 2^attempt`, capped at `max_delay`, scaled
    /// by a seeded jitter factor in `[0.5, 1.0)`. A pure function of
    /// `(self, seed, attempt)`.
    #[must_use]
    pub fn backoff(&self, seed: u64, attempt: u32) -> Duration {
        const BACKOFF_SALT: u64 = 0x6261_636B_6F66_6621;
        let mut stream = SplitMix64::new(seed ^ BACKOFF_SALT);
        let mut jitter = 0.5;
        for _ in 0..=attempt {
            jitter = 0.5 + 0.5 * stream.next_f64();
        }
        let exponential = self
            .base_delay
            .saturating_mul(2u32.saturating_pow(attempt.min(20)))
            .min(self.max_delay);
        Duration::from_secs_f64(exponential.as_secs_f64() * jitter)
    }
}

/// Why a point ultimately failed. Serializes by variant name (`"Panic"`,
/// `"Timeout"`, `"Invariant"`, `"Storage"`, `"Error"` — the vendored
/// serde shim has no rename support).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum FailureCause {
    /// The evaluation panicked.
    Panic,
    /// The per-point wall-clock watchdog expired.
    Timeout,
    /// A runtime invariant monitor check failed (see `simx::invariants`).
    Invariant,
    /// Durable storage failed underneath the harness (crash point fired,
    /// unrecoverable cache/journal I/O — see `harness::vfs`). The point
    /// fails closed rather than continuing on untrustworthy state.
    Storage,
    /// The evaluation returned an error.
    Error,
}

/// One point's ultimate failure, after exhausting its retries.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PointFailure {
    /// Human-readable point identity (benchmark, frequency, seed, cell).
    pub label: String,
    /// The classified cause of the *last* attempt's failure.
    pub cause: FailureCause,
    /// Total attempts made (retries + 1, or fewer if non-retryable).
    pub attempts: u32,
    /// The rendered error or panic message.
    pub detail: String,
}

/// Shared counters over a whole run (all points, all attempts).
#[derive(Debug, Default)]
pub struct ResilienceStats {
    retries: AtomicU64,
    panics: AtomicU64,
    timeouts: AtomicU64,
}

impl ResilienceStats {
    /// Retries performed (failed attempts that were given another go).
    #[must_use]
    pub fn retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    /// Attempts that ended in a caught panic.
    #[must_use]
    pub fn panics(&self) -> u64 {
        self.panics.load(Ordering::Relaxed)
    }

    /// Attempts that ended in a watchdog expiry.
    #[must_use]
    pub fn timeouts(&self) -> u64 {
        self.timeouts.load(Ordering::Relaxed)
    }
}

/// The structured end-of-run failure report, written to
/// `results/<experiment>_failures.json` and summarized on stderr when any
/// point ultimately failed.
#[derive(Debug, Clone, Serialize)]
pub struct FailureReport {
    /// Which experiment binary produced the report.
    pub experiment: String,
    /// Points that ultimately failed (after retries).
    pub failed_points: usize,
    /// Retries performed across all points.
    pub retries: u64,
    /// Attempts that panicked.
    pub panics: u64,
    /// Attempts that hit the watchdog.
    pub timeouts: u64,
    /// Corrupt cache envelopes quarantined during the run.
    pub quarantined: u64,
    /// Cache persist attempts that failed.
    pub cache_persist_failures: u64,
    /// Checkpoint-journal appends that failed (points not resumable).
    pub journal_append_failures: u64,
    /// Checkpoint-journal fsyncs that failed (recent appends may not
    /// survive a crash).
    pub journal_fsync_failures: u64,
    /// The per-point failures.
    pub failures: Vec<PointFailure>,
}

impl FailureReport {
    /// The one-line stderr summary.
    #[must_use]
    pub fn summary_line(&self) -> String {
        format!(
            "{}: {} point(s) FAILED ({} panic / {} timeout attempts, {} retries, {} quarantined cache entries)",
            self.experiment,
            self.failed_points,
            self.panics,
            self.timeouts,
            self.retries,
            self.quarantined
        )
    }
}

/// A stable 64-bit digest of a point label, used as the backoff seed so
/// the retry schedule is a pure function of the point's identity.
#[must_use]
pub fn label_seed(label: &str) -> u64 {
    let mut h = StableHasher::new();
    h.write_tag("depburst::label_seed");
    h.write_str(label);
    (h.finish() >> 64) as u64
}

/// True if a failed attempt with this error is worth retrying.
/// `SweepIncomplete` is not: it means a *nested* sweep already exhausted
/// its own per-point retries, so the outer layer repeating it would only
/// multiply work and duplicate failure records. `InvariantViolation` is
/// not either: the monitor's checks are deterministic over seeded inputs,
/// so a retry reproduces the identical violation.
fn retryable(err: &DepburstError) -> bool {
    !matches!(
        err,
        DepburstError::SweepIncomplete { .. } | DepburstError::InvariantViolation { .. }
    )
}

/// Evaluates one point with panic isolation, an optional per-attempt
/// wall-clock watchdog, and bounded retry with seeded exponential
/// backoff. `eval` receives the attempt index (0 first) so seeded
/// transient faults can redraw per attempt.
///
/// Returns the first successful result, or a [`PointFailure`] classifying
/// the last attempt's failure once the policy is exhausted.
pub fn attempt_resilient<R>(
    policy: &RetryPolicy,
    timeout: Option<Duration>,
    stats: &ResilienceStats,
    label: &str,
    eval: impl Fn(u32) -> depburst_core::Result<R>,
) -> Result<R, PointFailure> {
    let seed = label_seed(label);
    let mut last: Option<(FailureCause, String)> = None;
    let mut attempts = 0;
    for attempt in 0..=policy.retries {
        attempts = attempt + 1;
        let watchdog = timeout.map(simx::watchdog::arm);
        let outcome = catch_unwind(AssertUnwindSafe(|| eval(attempt)));
        drop(watchdog); // disarm before classification / backoff
        let stop_retrying = match outcome {
            Ok(Ok(result)) => return Ok(result),
            Ok(Err(err)) => {
                let cause = match err {
                    DepburstError::WatchdogExpired { .. } => {
                        stats.timeouts.fetch_add(1, Ordering::Relaxed);
                        FailureCause::Timeout
                    }
                    DepburstError::InvariantViolation { .. } => FailureCause::Invariant,
                    _ => FailureCause::Error,
                };
                let fatal = !retryable(&err);
                last = Some((cause, err.to_string()));
                fatal
            }
            Err(payload) => {
                stats.panics.fetch_add(1, Ordering::Relaxed);
                last = Some((FailureCause::Panic, panic_message(&payload)));
                false
            }
        };
        if stop_retrying {
            break;
        }
        if attempt < policy.retries {
            stats.retries.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(policy.backoff(seed, attempt));
        }
    }
    let (cause, detail) = last.expect("loop ran at least once");
    Err(PointFailure {
        label: label.to_owned(),
        cause,
        attempts,
        detail,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    fn fast_policy(retries: u32) -> RetryPolicy {
        RetryPolicy {
            retries,
            base_delay: Duration::from_micros(50),
            max_delay: Duration::from_micros(400),
        }
    }

    #[test]
    fn first_success_short_circuits() {
        let stats = ResilienceStats::default();
        let calls = AtomicU32::new(0);
        let r = attempt_resilient(&fast_policy(3), None, &stats, "p", |attempt| {
            calls.fetch_add(1, Ordering::SeqCst);
            Ok(attempt)
        });
        assert_eq!(r, Ok(0));
        assert_eq!(calls.load(Ordering::SeqCst), 1);
        assert_eq!(stats.retries(), 0);
    }

    #[test]
    fn panics_are_retried_then_classified() {
        let stats = ResilienceStats::default();
        let r: Result<u32, PointFailure> =
            attempt_resilient(&fast_policy(2), None, &stats, "doomed", |_| {
                panic!("synthetic point death")
            });
        let failure = r.expect_err("all attempts panic");
        assert_eq!(failure.cause, FailureCause::Panic);
        assert_eq!(failure.attempts, 3);
        assert!(failure.detail.contains("synthetic point death"));
        assert_eq!(stats.panics(), 3);
        assert_eq!(stats.retries(), 2);
    }

    #[test]
    fn transient_failures_recover_on_retry() {
        let stats = ResilienceStats::default();
        let r = attempt_resilient(&fast_policy(2), None, &stats, "flaky", |attempt| {
            if attempt == 0 {
                panic!("transient");
            }
            Ok(attempt)
        });
        assert_eq!(r, Ok(1), "the retry's attempt index reached eval");
        assert_eq!(stats.retries(), 1);
    }

    #[test]
    fn watchdog_expiry_is_classified_as_timeout() {
        let stats = ResilienceStats::default();
        let r: Result<(), PointFailure> = attempt_resilient(
            &fast_policy(1),
            Some(Duration::ZERO),
            &stats,
            "runaway",
            |_| {
                // Simulate what the machine loop does on expiry.
                assert!(simx::watchdog::expired(), "watchdog armed per attempt");
                Err(DepburstError::WatchdogExpired { at_secs: 0.1 })
            },
        );
        let failure = r.expect_err("times out");
        assert_eq!(failure.cause, FailureCause::Timeout);
        assert_eq!(stats.timeouts(), 2);
        assert!(!simx::watchdog::armed(), "disarmed after the last attempt");
    }

    #[test]
    fn nested_sweep_failures_are_not_retried() {
        let stats = ResilienceStats::default();
        let calls = AtomicU32::new(0);
        let r: Result<(), PointFailure> =
            attempt_resilient(&fast_policy(5), None, &stats, "outer", |_| {
                calls.fetch_add(1, Ordering::SeqCst);
                Err(DepburstError::SweepIncomplete {
                    failed: 1,
                    total: 4,
                })
            });
        let failure = r.expect_err("fails");
        assert_eq!(calls.load(Ordering::SeqCst), 1, "no pointless re-sweep");
        assert_eq!(failure.attempts, 1);
        assert_eq!(stats.retries(), 0);
    }

    #[test]
    fn invariant_violations_are_fatal_and_classified() {
        let stats = ResilienceStats::default();
        let calls = AtomicU32::new(0);
        let r: Result<(), PointFailure> =
            attempt_resilient(&fast_policy(5), None, &stats, "violator", |_| {
                calls.fetch_add(1, Ordering::SeqCst);
                Err(DepburstError::InvariantViolation {
                    invariant: "counter-conservation".into(),
                    at_secs: 0.25,
                    detail: "crit exceeds active".into(),
                })
            });
        let failure = r.expect_err("fails");
        assert_eq!(failure.cause, FailureCause::Invariant);
        assert_eq!(
            calls.load(Ordering::SeqCst),
            1,
            "deterministic violations must not be retried"
        );
        assert!(failure.detail.contains("counter-conservation"));
        assert_eq!(stats.retries(), 0);
    }

    #[test]
    fn backoff_is_deterministic_capped_and_grows() {
        let policy = RetryPolicy {
            retries: 6,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(300),
        };
        let schedule: Vec<Duration> = (0..6).map(|a| policy.backoff(7, a)).collect();
        assert_eq!(
            schedule,
            (0..6).map(|a| policy.backoff(7, a)).collect::<Vec<_>>()
        );
        for (attempt, delay) in schedule.iter().enumerate() {
            let uncapped = policy.base_delay * 2u32.pow(attempt as u32);
            let cap = uncapped.min(policy.max_delay);
            assert!(*delay < cap, "jitter keeps delays under the cap");
            assert!(
                *delay >= cap / 2,
                "jitter floor is half the exponential step"
            );
        }
        assert_ne!(
            policy.backoff(7, 1),
            policy.backoff(8, 1),
            "different seeds, different jitter"
        );
    }

    #[test]
    fn label_seed_is_stable_and_separating() {
        assert_eq!(label_seed("a/b@1"), label_seed("a/b@1"));
        assert_ne!(label_seed("a/b@1"), label_seed("a/b@2"));
    }

    #[test]
    fn report_summarizes_on_one_line() {
        let report = FailureReport {
            experiment: "fig3".into(),
            failed_points: 2,
            retries: 5,
            panics: 3,
            timeouts: 1,
            quarantined: 1,
            cache_persist_failures: 0,
            journal_append_failures: 0,
            journal_fsync_failures: 2,
            failures: vec![],
        };
        let line = report.summary_line();
        assert!(line.contains("fig3") && line.contains("2 point(s) FAILED"));
    }
}
