//! Storage abstraction with deterministic fault injection.
//!
//! The durable layers of the harness — the on-disk simulation cache
//! ([`crate::cache`]) and the checkpoint journal ([`crate::checkpoint`])
//! — route every filesystem operation through the [`Vfs`] trait.
//! [`RealVfs`] is the zero-cost passthrough default. [`FaultyVfs`] is a
//! seeded deterministic injector in the spirit of `simx::faults`: each
//! fault class draws from its own [`SplitMix64`] stream, so enabling one
//! class never perturbs another, and a class at zero intensity consumes
//! no randomness at all — an inert injector is bit-identical to the real
//! filesystem (asserted by the torture harness's census pass).
//!
//! Fault classes:
//!
//! * **Torn writes** — a write or append persists a random prefix of its
//!   bytes, then fails. Models a crash or I/O error mid-`write(2)`.
//! * **Dropped fsyncs** — `fsync` returns `Ok` without making anything
//!   durable. The silent failure mode of consumer drives and some
//!   virtualized block devices; only observable through the crash-point
//!   mode below.
//! * **Rename failures** — `rename` fails without moving anything,
//!   breaking the write-temp-then-rename commit protocol at its
//!   commit point.
//! * **ENOSPC windows** — a triggered "disk full" persists for a few
//!   subsequent operations (real disks do not un-fill between two
//!   writes), failing writes and appends inside the window.
//! * **Read corruption** — a read succeeds but one drawn bit of the
//!   returned buffer is flipped. Models bit rot and bus corruption; the
//!   checksum framing on envelopes and journal records must catch every
//!   such flip.
//! * **Crash point** — after the Nth VFS operation the injector
//!   simulates power loss: every file with writes not yet covered by a
//!   successful `fsync` (or committed by `rename`) is truncated to a
//!   drawn fraction of its unsynced tail, and all subsequent operations
//!   fail. A run killed this way, then resumed against [`RealVfs`],
//!   must produce byte-identical output or fail closed — the contract
//!   the `torture` binary sweeps.
//!
//! Determinism: with a fixed seed and a single worker (`--jobs 1`) the
//! entire fault schedule is a pure function of the operation sequence.
//! With concurrent workers the draws are still seeded but interleave
//! with the schedule of whichever thread reaches the injector first, so
//! crash-point sweeps pin `jobs = 1`.

use std::collections::HashMap;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

use serde::Serialize;
use simx::faults::SplitMix64;

/// The filesystem surface the durable layers consume. Small on purpose:
/// everything the cache and journal do decomposes into these nine
/// operations, and every one of them is a place storage can lie.
pub trait Vfs: Send + Sync + fmt::Debug {
    /// Reads a whole file.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Creates or truncates `path` with `bytes`.
    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;
    /// Appends `bytes` to `path`, creating it if absent.
    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;
    /// Syncs `path`'s data to stable storage.
    fn fsync(&self, path: &Path) -> io::Result<()>;
    /// Renames `from` to `to` (the commit point of atomic writes).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Removes the file at `path`.
    fn remove(&self, path: &Path) -> io::Result<()>;
    /// Creates `path` and any missing parents.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;
    /// Lists the entries of `dir`, sorted (deterministic order).
    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>>;
    /// Whether a file exists at `path` (metadata probe, never faulted).
    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }
}

/// The passthrough implementation: plain `std::fs`, no bookkeeping, no
/// branches beyond the calls themselves. The default everywhere.
#[derive(Debug, Default, Clone, Copy)]
pub struct RealVfs;

impl Vfs for RealVfs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        std::fs::write(path, bytes)
    }

    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        OpenOptions::new()
            .append(true)
            .create(true)
            .open(path)?
            .write_all(bytes)
    }

    fn fsync(&self, path: &Path) -> io::Result<()> {
        // A read-only handle can sync data on every platform we target.
        File::open(path)?.sync_data()
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        std::fs::create_dir_all(path)
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        entries.sort();
        Ok(entries)
    }
}

/// 64-bit FNV-1a over `bytes` — the integrity checksum on cache
/// envelopes and journal records. One multiply and one xor per byte; on
/// the multi-KB summaries the framing costs well under a percent of the
/// serialization it guards.
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Monotonic suffix distinguishing concurrent atomic writers inside one
/// process; the pid alone distinguishes processes.
static ATOMIC_WRITE_SEQ: AtomicU64 = AtomicU64::new(0);

/// Writes via a unique temp file + rename so concurrent writers of the
/// same path (or an interrupted run) never leave a torn file behind. The
/// temp name carries the pid *and* a per-process counter: two threads
/// persisting the same key at once each get their own temp file instead
/// of racing on one (the loser of the rename simply commits second,
/// which is fine — both wrote identical content-addressed bytes).
pub fn write_atomic(vfs: &dyn Vfs, path: &Path, bytes: &[u8]) -> io::Result<()> {
    let seq = ATOMIC_WRITE_SEQ.fetch_add(1, Ordering::Relaxed);
    let tmp = path.with_extension(format!("tmp.{}.{seq}", std::process::id()));
    vfs.write(&tmp, bytes)?;
    vfs.rename(&tmp, path).inspect_err(|_| {
        // Don't leave the orphaned temp file shadowing the directory.
        let _ = vfs.remove(&tmp);
    })
}

/// The configuration of a [`FaultyVfs`]: per-class intensities in
/// `[0, 1]` plus the optional crash point. Everything defaults to off.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StorageFaultConfig {
    /// Master seed; each class derives its own stream from it.
    pub seed: u64,
    /// Probability a write/append persists only a drawn prefix.
    pub torn_write: f64,
    /// Probability an fsync silently does nothing.
    pub dropped_fsync: f64,
    /// Probability a rename fails at the commit point.
    pub rename_fail: f64,
    /// Probability a write/append opens an ENOSPC window.
    pub enospc: f64,
    /// Probability a read comes back with one bit flipped.
    pub read_corrupt: f64,
    /// Simulate power loss after this many VFS operations.
    pub crash_after: Option<u64>,
}

impl StorageFaultConfig {
    /// Every class off: the injector is pure passthrough (plus the op
    /// counter, which the torture census uses).
    #[must_use]
    pub fn none(seed: u64) -> Self {
        StorageFaultConfig {
            seed,
            torn_write: 0.0,
            dropped_fsync: 0.0,
            rename_fail: 0.0,
            enospc: 0.0,
            read_corrupt: 0.0,
            crash_after: None,
        }
    }

    /// All probabilistic classes scaled from one intensity knob,
    /// weighted by how often each fault is survivable: dropped fsyncs
    /// are silent until a crash, torn writes and read corruption must be
    /// caught by framing, rename and ENOSPC failures only cost
    /// persistence.
    #[must_use]
    pub fn uniform(intensity: f64, seed: u64) -> Self {
        let i = intensity.clamp(0.0, 1.0);
        StorageFaultConfig {
            seed,
            torn_write: 0.35 * i,
            dropped_fsync: 0.5 * i,
            rename_fail: 0.25 * i,
            enospc: 0.15 * i,
            read_corrupt: 0.35 * i,
            crash_after: None,
        }
    }

    /// Pure crash-point mode: no probabilistic faults, power loss after
    /// `ops` operations (the torture sweep's per-point configuration).
    #[must_use]
    pub fn crash_at(ops: u64, seed: u64) -> Self {
        StorageFaultConfig {
            crash_after: Some(ops),
            ..Self::none(seed)
        }
    }

    /// True when no class can ever fire (passthrough behaviour).
    #[must_use]
    pub fn is_inert(&self) -> bool {
        self.torn_write <= 0.0
            && self.dropped_fsync <= 0.0
            && self.rename_fail <= 0.0
            && self.enospc <= 0.0
            && self.read_corrupt <= 0.0
            && self.crash_after.is_none()
    }
}

/// Parses a `--storage-faults` / `DEPBURST_STORAGE_FAULTS` spec.
///
/// Grammar: `off` (or empty, or `0`) disables injection entirely;
/// otherwise a comma-separated list of tokens, each either a bare
/// intensity in `[0, 1]` (expanded by [`StorageFaultConfig::uniform`]),
/// `seed=N`, or `crash=N` (power loss after N VFS operations).
/// `0.2,seed=7` and `crash=120` are typical.
///
/// # Errors
/// A malformed token returns a description of what was expected.
pub fn parse_storage_faults(spec: &str) -> Result<Option<StorageFaultConfig>, String> {
    match spec.trim() {
        "" | "0" | "off" => return Ok(None),
        _ => {}
    }
    let mut cfg = StorageFaultConfig::none(0);
    let mut any = false;
    for token in spec.split(',').map(str::trim).filter(|t| !t.is_empty()) {
        if let Some(v) = token.strip_prefix("seed=") {
            cfg.seed = v
                .parse()
                .map_err(|_| format!("bad seed in storage-faults spec: {v:?}"))?;
        } else if let Some(v) = token.strip_prefix("crash=") {
            let n: u64 = v
                .parse()
                .map_err(|_| format!("bad crash point in storage-faults spec: {v:?}"))?;
            cfg.crash_after = Some(n);
            any = true;
        } else {
            let intensity: f64 = token.parse().map_err(|_| {
                format!(
                    "bad storage-faults token {token:?} (want an intensity, seed=N, or crash=N)"
                )
            })?;
            if !(0.0..=1.0).contains(&intensity) {
                return Err(format!("storage-faults intensity {intensity} outside [0, 1]"));
            }
            let seeded = StorageFaultConfig::uniform(intensity, cfg.seed);
            cfg = StorageFaultConfig {
                seed: cfg.seed,
                crash_after: cfg.crash_after,
                ..seeded
            };
            any = intensity > 0.0 || any;
        }
    }
    if !any && cfg.is_inert() {
        return Ok(None);
    }
    Ok(Some(cfg))
}

/// Counters of what a [`FaultyVfs`] actually injected, for reports and
/// the torture harness's summary.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct StorageFaultStats {
    /// VFS operations issued.
    pub ops: u64,
    /// Writes/appends that persisted only a prefix.
    pub torn_writes: u64,
    /// Fsyncs that silently did nothing.
    pub dropped_fsyncs: u64,
    /// Renames failed at the commit point.
    pub rename_failures: u64,
    /// Writes/appends failed inside an ENOSPC window.
    pub enospc_failures: u64,
    /// Reads returned with a flipped bit.
    pub corrupted_reads: u64,
    /// Files that lost unsynced bytes at the crash point.
    pub files_truncated_at_crash: u64,
    /// Whether the crash point fired.
    pub crashed: bool,
}

/// Per-file durability tracking: how many leading bytes a crash is
/// guaranteed to preserve (`synced`) versus what the process observes
/// (`len`).
#[derive(Debug, Clone, Copy)]
struct SyncState {
    synced: u64,
    len: u64,
}

/// The mutex-guarded mutable half of the injector: the per-class random
/// streams and the durability map.
#[derive(Debug)]
struct FaultState {
    torn: SplitMix64,
    fsync: SplitMix64,
    rename: SplitMix64,
    read: SplitMix64,
    enospc: SplitMix64,
    crash: SplitMix64,
    /// Durability tracking for every file written through this injector.
    tracked: HashMap<PathBuf, SyncState>,
    /// Writes before this op index fail with ENOSPC (an open window).
    enospc_until: u64,
}

/// The deterministic storage-fault injector. Wraps the real filesystem:
/// operations genuinely happen (in the caller's directories — point it
/// at a scratch dir), but each one may be torn, dropped, failed, or
/// corrupted per [`StorageFaultConfig`], and the crash point genuinely
/// truncates unsynced file tails on disk so a subsequent resume sees
/// exactly what a machine rebooting after power loss would.
pub struct FaultyVfs {
    cfg: StorageFaultConfig,
    state: Mutex<FaultState>,
    ops: AtomicU64,
    crashed: AtomicBool,
    torn_writes: AtomicU64,
    dropped_fsyncs: AtomicU64,
    rename_failures: AtomicU64,
    enospc_failures: AtomicU64,
    corrupted_reads: AtomicU64,
    files_truncated_at_crash: AtomicU64,
}

impl fmt::Debug for FaultyVfs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FaultyVfs")
            .field("cfg", &self.cfg)
            .field("ops", &self.ops.load(Ordering::Relaxed))
            .field("crashed", &self.crashed.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

/// Salts deriving one independent stream per fault class from the master
/// seed (same discipline as `simx::faults`).
const SALT_TORN: u64 = 0x746F_726E_5F77_7274;
const SALT_FSYNC: u64 = 0x6673_796E_635F_6472;
const SALT_RENAME: u64 = 0x7265_6E61_6D65_5F66;
const SALT_READ: u64 = 0x7265_6164_5F63_6F72;
const SALT_ENOSPC: u64 = 0x656E_6F73_7063_5F77;
const SALT_CRASH: u64 = 0x6372_6173_685F_7074;

fn crash_error() -> io::Error {
    io::Error::other("storage fault: simulated power loss (crash point reached)")
}

fn enospc_error() -> io::Error {
    io::Error::other("storage fault: no space left on device (injected ENOSPC window)")
}

fn torn_error() -> io::Error {
    io::Error::other("storage fault: torn write (only a prefix persisted)")
}

fn rename_error() -> io::Error {
    io::Error::other("storage fault: rename failed at the commit point")
}

impl FaultyVfs {
    /// An injector over the real filesystem with `cfg`'s fault schedule.
    #[must_use]
    pub fn new(cfg: StorageFaultConfig) -> Self {
        FaultyVfs {
            cfg,
            state: Mutex::new(FaultState {
                torn: SplitMix64::new(cfg.seed ^ SALT_TORN),
                fsync: SplitMix64::new(cfg.seed ^ SALT_FSYNC),
                rename: SplitMix64::new(cfg.seed ^ SALT_RENAME),
                read: SplitMix64::new(cfg.seed ^ SALT_READ),
                enospc: SplitMix64::new(cfg.seed ^ SALT_ENOSPC),
                crash: SplitMix64::new(cfg.seed ^ SALT_CRASH),
                tracked: HashMap::new(),
                enospc_until: 0,
            }),
            ops: AtomicU64::new(0),
            crashed: AtomicBool::new(false),
            torn_writes: AtomicU64::new(0),
            dropped_fsyncs: AtomicU64::new(0),
            rename_failures: AtomicU64::new(0),
            enospc_failures: AtomicU64::new(0),
            corrupted_reads: AtomicU64::new(0),
            files_truncated_at_crash: AtomicU64::new(0),
        }
    }

    /// The configuration this injector was built with.
    #[must_use]
    pub fn config(&self) -> &StorageFaultConfig {
        &self.cfg
    }

    /// VFS operations issued so far (the crash-point coordinate space).
    #[must_use]
    pub fn op_count(&self) -> u64 {
        self.ops.load(Ordering::Relaxed)
    }

    /// Whether the crash point has fired: all further operations fail,
    /// and the sweep executor abandons remaining points (the process is
    /// "dead").
    #[must_use]
    pub fn crashed(&self) -> bool {
        self.crashed.load(Ordering::Relaxed)
    }

    /// A snapshot of everything injected so far.
    #[must_use]
    pub fn stats(&self) -> StorageFaultStats {
        StorageFaultStats {
            ops: self.ops.load(Ordering::Relaxed),
            torn_writes: self.torn_writes.load(Ordering::Relaxed),
            dropped_fsyncs: self.dropped_fsyncs.load(Ordering::Relaxed),
            rename_failures: self.rename_failures.load(Ordering::Relaxed),
            enospc_failures: self.enospc_failures.load(Ordering::Relaxed),
            corrupted_reads: self.corrupted_reads.load(Ordering::Relaxed),
            files_truncated_at_crash: self.files_truncated_at_crash.load(Ordering::Relaxed),
            crashed: self.crashed(),
        }
    }

    /// Counts one operation; fails fast after power loss and fires the
    /// crash point when the counter crosses it. Returns the op's index
    /// (1-based).
    fn tick(&self) -> io::Result<u64> {
        if self.crashed() {
            return Err(crash_error());
        }
        let index = self.ops.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(crash_after) = self.cfg.crash_after {
            if index > crash_after {
                self.power_loss();
                return Err(crash_error());
            }
        }
        Ok(index)
    }

    /// Simulates power loss: every tracked file loses a drawn fraction
    /// of its unsynced tail (bytes past the last successful fsync or
    /// rename commit), then every subsequent operation fails.
    fn power_loss(&self) {
        let mut st = self.state.lock().expect("fault state lock");
        // Deterministic truncation order regardless of HashMap iteration.
        let mut files: Vec<(PathBuf, SyncState)> =
            st.tracked.iter().map(|(p, s)| (p.clone(), *s)).collect();
        files.sort_by(|a, b| a.0.cmp(&b.0));
        for (path, sync) in files {
            if sync.len <= sync.synced {
                continue;
            }
            let tail = sync.len - sync.synced;
            let keep = sync.synced + (st.crash.next_f64() * tail as f64) as u64;
            let truncated = OpenOptions::new()
                .write(true)
                .open(&path)
                .and_then(|f| f.set_len(keep));
            if truncated.is_ok() {
                self.files_truncated_at_crash.fetch_add(1, Ordering::Relaxed);
            }
        }
        st.tracked.clear();
        self.crashed.store(true, Ordering::Relaxed);
    }

    /// The durability entry for `path`, initialized from the on-disk
    /// length for files that predate this injector (bytes that survived
    /// a previous session are already durable).
    fn entry<'a>(st: &'a mut FaultState, path: &Path) -> &'a mut SyncState {
        st.tracked.entry(path.to_path_buf()).or_insert_with(|| {
            let len = std::fs::metadata(path).map_or(0, |m| m.len());
            SyncState { synced: len, len }
        })
    }

    /// Fails writes inside an open ENOSPC window, and draws whether this
    /// write opens a new one.
    fn enospc_gate(&self, st: &mut FaultState, index: u64) -> io::Result<()> {
        if index < st.enospc_until {
            self.enospc_failures.fetch_add(1, Ordering::Relaxed);
            return Err(enospc_error());
        }
        if self.cfg.enospc > 0.0 && st.enospc.next_f64() < self.cfg.enospc {
            // The window outlives this op: disks do not un-fill between
            // two writes.
            st.enospc_until = index + 2 + st.enospc.next_u64() % 7;
            self.enospc_failures.fetch_add(1, Ordering::Relaxed);
            return Err(enospc_error());
        }
        Ok(())
    }

    /// Draws a torn-write prefix length for `len` payload bytes, or
    /// `None` when this write goes through whole.
    fn torn_gate(&self, st: &mut FaultState, len: usize) -> Option<usize> {
        if self.cfg.torn_write > 0.0 && st.torn.next_f64() < self.cfg.torn_write {
            self.torn_writes.fetch_add(1, Ordering::Relaxed);
            return Some((st.torn.next_f64() * len as f64) as usize);
        }
        None
    }
}

impl Vfs for FaultyVfs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.tick()?;
        let mut bytes = std::fs::read(path)?;
        if self.cfg.read_corrupt > 0.0 {
            let mut st = self.state.lock().expect("fault state lock");
            if st.read.next_f64() < self.cfg.read_corrupt && !bytes.is_empty() {
                let bit = st.read.next_u64() as usize % (bytes.len() * 8);
                bytes[bit / 8] ^= 1 << (bit % 8);
                self.corrupted_reads.fetch_add(1, Ordering::Relaxed);
            }
        }
        Ok(bytes)
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let index = self.tick()?;
        let mut st = self.state.lock().expect("fault state lock");
        self.enospc_gate(&mut st, index)?;
        if let Some(prefix) = self.torn_gate(&mut st, bytes.len()) {
            let _ = std::fs::write(path, &bytes[..prefix]);
            *FaultyVfs::entry(&mut st, path) = SyncState {
                synced: 0,
                len: prefix as u64,
            };
            return Err(torn_error());
        }
        std::fs::write(path, bytes)?;
        *FaultyVfs::entry(&mut st, path) = SyncState {
            synced: 0,
            len: bytes.len() as u64,
        };
        Ok(())
    }

    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let index = self.tick()?;
        let mut st = self.state.lock().expect("fault state lock");
        self.enospc_gate(&mut st, index)?;
        let torn = self.torn_gate(&mut st, bytes.len());
        let payload = torn.map_or(bytes, |prefix| &bytes[..prefix]);
        let appended = OpenOptions::new()
            .append(true)
            .create(true)
            .open(path)
            .and_then(|mut f| f.write_all(payload));
        if appended.is_ok() {
            FaultyVfs::entry(&mut st, path).len += payload.len() as u64;
        }
        match torn {
            Some(_) => Err(torn_error()),
            None => appended,
        }
    }

    fn fsync(&self, path: &Path) -> io::Result<()> {
        self.tick()?;
        let mut st = self.state.lock().expect("fault state lock");
        if self.cfg.dropped_fsync > 0.0 && st.fsync.next_f64() < self.cfg.dropped_fsync {
            // The lie: report success, make nothing durable.
            self.dropped_fsyncs.fetch_add(1, Ordering::Relaxed);
            return Ok(());
        }
        File::open(path)?.sync_data()?;
        let entry = FaultyVfs::entry(&mut st, path);
        entry.synced = entry.len;
        Ok(())
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.tick()?;
        let mut st = self.state.lock().expect("fault state lock");
        if self.cfg.rename_fail > 0.0 && st.rename.next_f64() < self.cfg.rename_fail {
            self.rename_failures.fetch_add(1, Ordering::Relaxed);
            return Err(rename_error());
        }
        std::fs::rename(from, to)?;
        // Modeling choice: a committed rename is durable (as if the
        // directory entry were fsynced). Stricter journaling would also
        // require a directory fsync; the cache's commit protocol treats
        // rename as the commit point, so the injector does too.
        let moved = st.tracked.remove(from);
        let len = moved.map_or_else(|| std::fs::metadata(to).map_or(0, |m| m.len()), |s| s.len);
        st.tracked.insert(to.to_path_buf(), SyncState { synced: len, len });
        Ok(())
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        self.tick()?;
        let mut st = self.state.lock().expect("fault state lock");
        std::fs::remove_file(path)?;
        st.tracked.remove(path);
        Ok(())
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        self.tick()?;
        std::fs::create_dir_all(path)
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        self.tick()?;
        RealVfs.list(dir)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("depburst-vfs-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir
    }

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
        // One flipped bit anywhere changes the digest.
        assert_ne!(fnv1a64(b"foobar"), fnv1a64(b"foobas"));
    }

    #[test]
    fn real_vfs_roundtrips() {
        let dir = scratch("real");
        let vfs = RealVfs;
        let a = dir.join("a.txt");
        vfs.write(&a, b"hello").expect("write");
        vfs.append(&a, b" world").expect("append");
        vfs.fsync(&a).expect("fsync");
        assert_eq!(vfs.read(&a).expect("read"), b"hello world");
        let b = dir.join("b.txt");
        vfs.rename(&a, &b).expect("rename");
        assert!(!vfs.exists(&a) && vfs.exists(&b));
        assert_eq!(vfs.list(&dir).expect("list"), vec![b.clone()]);
        vfs.remove(&b).expect("remove");
        assert!(vfs.list(&dir).expect("list").is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn inert_injector_is_passthrough_and_draws_nothing() {
        let dir = scratch("inert");
        let vfs = FaultyVfs::new(StorageFaultConfig::none(7));
        let path = dir.join("x.json");
        vfs.write(&path, b"payload").expect("write");
        vfs.append(&path, b"+tail").expect("append");
        vfs.fsync(&path).expect("fsync");
        assert_eq!(vfs.read(&path).expect("read"), b"payload+tail");
        assert_eq!(vfs.op_count(), 4);
        assert!(!vfs.crashed());
        // Zero intensity consumed no randomness: the streams still sit
        // at their seeds.
        let st = vfs.state.lock().expect("lock");
        assert_eq!(st.torn, SplitMix64::new(7 ^ SALT_TORN));
        assert_eq!(st.read, SplitMix64::new(7 ^ SALT_READ));
        drop(st);
        assert_eq!(
            vfs.stats(),
            StorageFaultStats {
                ops: 4,
                ..StorageFaultStats::default()
            }
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fault_schedule_is_deterministic_per_seed() {
        let run = |seed: u64| -> (Vec<bool>, StorageFaultStats) {
            let dir = scratch(&format!("det{seed}"));
            let vfs = FaultyVfs::new(StorageFaultConfig {
                torn_write: 0.4,
                enospc: 0.2,
                ..StorageFaultConfig::none(seed)
            });
            let outcomes = (0..32)
                .map(|i| vfs.write(&dir.join(format!("f{i}")), b"0123456789").is_ok())
                .collect();
            let stats = vfs.stats();
            let _ = std::fs::remove_dir_all(&dir);
            (outcomes, stats)
        };
        let (a1, s1) = run(11);
        let (a2, s2) = run(11);
        assert_eq!(a1, a2, "same seed, same schedule");
        assert_eq!(s1, s2);
        assert!(s1.torn_writes + s1.enospc_failures > 0, "faults fired at 0.4/0.2");
        let (b1, _) = run(12);
        assert_ne!(a1, b1, "different seeds diverge");
    }

    #[test]
    fn crash_point_truncates_unsynced_tail_and_kills_the_vfs() {
        let dir = scratch("crash");
        let path = dir.join("journal.jsonl");
        // Ops: 1 write, 2 fsync, 3 append, 4 append, 5 append → crash.
        let vfs = FaultyVfs::new(StorageFaultConfig::crash_at(4, 42));
        vfs.write(&path, b"AAAA\n").expect("write");
        vfs.fsync(&path).expect("fsync");
        vfs.append(&path, b"BBBB\n").expect("append");
        vfs.append(&path, b"CCCC\n").expect("append");
        let err = vfs.append(&path, b"DDDD\n").expect_err("crash point");
        assert!(err.to_string().contains("power loss"), "{err}");
        assert!(vfs.crashed());
        // Everything after it fails fast, even reads.
        assert!(vfs.read(&path).is_err());
        assert!(vfs.write(&dir.join("other"), b"x").is_err());
        // The synced prefix survived; some drawn amount of the unsynced
        // tail (10 bytes) was lost.
        let on_disk = std::fs::read(&path).expect("file still on real disk");
        assert!(on_disk.starts_with(b"AAAA\n"), "synced prefix survives");
        assert!(on_disk.len() >= 5 && on_disk.len() <= 15, "tail truncated: {on_disk:?}");
        assert!(vfs.stats().crashed);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dropped_fsync_loses_the_tail_at_crash() {
        let dir = scratch("dropfsync");
        let path = dir.join("f");
        let vfs = FaultyVfs::new(StorageFaultConfig {
            dropped_fsync: 1.0,
            crash_after: Some(2),
            ..StorageFaultConfig::none(9)
        });
        vfs.write(&path, b"0123456789").expect("write");
        vfs.fsync(&path).expect("fsync reports success");
        assert_eq!(vfs.stats().dropped_fsyncs, 1);
        let _ = vfs.read(&path).expect_err("crash fires on op 3");
        // The fsync lied, so the whole file was fair game for truncation.
        let on_disk = std::fs::read(&path).expect("read");
        assert!(on_disk.len() < 10, "unsynced bytes lost: {on_disk:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn enospc_windows_persist_across_operations() {
        let dir = scratch("enospc");
        let vfs = FaultyVfs::new(StorageFaultConfig {
            enospc: 1.0,
            ..StorageFaultConfig::none(3)
        });
        let first = vfs.write(&dir.join("a"), b"x").expect_err("window opens");
        assert!(first.to_string().contains("no space"), "{first}");
        // The window stays open for at least the next write (>= 2 ops).
        assert!(vfs.write(&dir.join("b"), b"x").is_err());
        assert!(vfs.stats().enospc_failures >= 2);
        // Reads are unaffected by a full disk.
        vfs.write(&dir.join("c"), b"x").err();
        assert!(std::fs::read_dir(&dir).expect("dir readable").next().is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn read_corruption_flips_exactly_one_bit() {
        let dir = scratch("bitrot");
        let path = dir.join("f");
        std::fs::write(&path, vec![0u8; 64]).expect("plant");
        let vfs = FaultyVfs::new(StorageFaultConfig {
            read_corrupt: 1.0,
            ..StorageFaultConfig::none(5)
        });
        let bytes = vfs.read(&path).expect("read succeeds");
        let flipped: u32 = bytes.iter().map(|b| b.count_ones()).sum();
        assert_eq!(flipped, 1, "exactly one bit flipped");
        assert_eq!(vfs.stats().corrupted_reads, 1);
        // The file itself is untouched — corruption is on the read path.
        assert_eq!(std::fs::read(&path).expect("read"), vec![0u8; 64]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rename_failures_leave_both_paths_alone() {
        let dir = scratch("rename");
        let from = dir.join("tmp");
        let to = dir.join("final");
        std::fs::write(&from, b"payload").expect("plant");
        let vfs = FaultyVfs::new(StorageFaultConfig {
            rename_fail: 1.0,
            ..StorageFaultConfig::none(2)
        });
        assert!(vfs.rename(&from, &to).is_err());
        assert!(from.exists() && !to.exists());
        assert_eq!(vfs.stats().rename_failures, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn write_atomic_concurrent_writers_never_tear() {
        // Regression for the tmp-name collision: with a pid-only suffix,
        // two threads persisting the same path raced on one temp file
        // and could commit a torn interleaving. The per-process counter
        // gives each writer its own temp file.
        let dir = scratch("atomic");
        let path = dir.join("slot.json");
        let payload_a = vec![b'a'; 64 * 1024];
        let payload_b = vec![b'b'; 64 * 1024];
        for _round in 0..8 {
            std::thread::scope(|scope| {
                for payload in [&payload_a, &payload_b] {
                    scope.spawn(|| {
                        write_atomic(&RealVfs, &path, payload).expect("atomic write");
                    });
                }
            });
            let committed = std::fs::read(&path).expect("committed");
            assert!(
                committed == payload_a || committed == payload_b,
                "no interleaving of the two payloads"
            );
            // No temp files left behind.
            let leftovers: Vec<PathBuf> = RealVfs
                .list(&dir)
                .expect("list")
                .into_iter()
                .filter(|p| p != &path)
                .collect();
            assert!(leftovers.is_empty(), "leftovers: {leftovers:?}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn write_atomic_cleans_up_on_rename_failure() {
        let dir = scratch("atomic-fail");
        let path = dir.join("slot.json");
        let vfs = FaultyVfs::new(StorageFaultConfig {
            rename_fail: 1.0,
            ..StorageFaultConfig::none(1)
        });
        assert!(write_atomic(&vfs, &path, b"payload").is_err());
        assert!(!path.exists());
        assert!(RealVfs.list(&dir).expect("list").is_empty(), "tmp removed");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn spec_parsing_covers_the_grammar() {
        assert_eq!(parse_storage_faults("off"), Ok(None));
        assert_eq!(parse_storage_faults(""), Ok(None));
        assert_eq!(parse_storage_faults("0"), Ok(None));
        assert_eq!(parse_storage_faults("0.0,seed=9"), Ok(None), "inert collapses to off");
        let cfg = parse_storage_faults("0.2,seed=7").expect("ok").expect("on");
        assert_eq!(cfg.seed, 7);
        assert!((cfg.torn_write - 0.07).abs() < 1e-12);
        assert!((cfg.dropped_fsync - 0.1).abs() < 1e-12);
        assert_eq!(cfg.crash_after, None);
        let cfg = parse_storage_faults("crash=120").expect("ok").expect("on");
        assert_eq!(cfg.crash_after, Some(120));
        assert_eq!(cfg.torn_write, 0.0);
        let cfg = parse_storage_faults("seed=3,crash=5,0.5").expect("ok").expect("on");
        assert_eq!((cfg.seed, cfg.crash_after), (3, Some(5)));
        assert!(cfg.read_corrupt > 0.0);
        assert!(parse_storage_faults("1.5").is_err());
        assert!(parse_storage_faults("seed=x").is_err());
        assert!(parse_storage_faults("crash=-1").is_err());
        assert!(parse_storage_faults("frobnicate").is_err());
    }

    #[test]
    fn injector_is_shareable_across_threads() {
        // The executor hands Arc<FaultyVfs> to cache + journal on pool
        // workers; the injector must be Sync.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FaultyVfs>();
        assert_send_sync::<Arc<dyn Vfs>>();
    }
}
