//! Single-run plumbing: install a benchmark, run it at a frequency, and
//! harvest everything the experiments need.

use dacapo_sim::Benchmark;
use dvfs_trace::{ExecutionTrace, Freq, TimeDelta};
use simx::{Machine, MachineConfig, RunOutcome, RunStats};

/// Parameters of one benchmark run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunConfig {
    /// Chip frequency for the whole run.
    pub freq: Freq,
    /// Work scale (1.0 = the paper's full run; tests use small values).
    pub scale: f64,
    /// Workload RNG seed (the paper averages 4 runs; vary this).
    pub seed: u64,
}

impl RunConfig {
    /// A full-scale run at `ghz`.
    #[must_use]
    pub fn at_ghz(ghz: f64) -> Self {
        RunConfig {
            freq: Freq::from_ghz(ghz),
            scale: 1.0,
            seed: 1,
        }
    }

    /// Returns a copy at a different scale.
    #[must_use]
    pub fn scaled(mut self, scale: f64) -> Self {
        self.scale = scale;
        self
    }

    /// Returns a copy with a different seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Everything a completed run yields.
#[derive(Debug)]
pub struct RunResult {
    /// Wall-clock execution time.
    pub exec: TimeDelta,
    /// Time inside stop-the-world collections.
    pub gc_time: TimeDelta,
    /// Nursery collections performed.
    pub gc_count: u64,
    /// Bytes allocated by the application.
    pub allocated: u64,
    /// The full execution trace (input to the predictors).
    pub trace: ExecutionTrace,
    /// Machine statistics.
    pub stats: RunStats,
}

/// Runs `bench` to completion under `config` and returns the results.
///
/// # Panics
/// Panics if the simulated program deadlocks (a bug in the runtime or
/// workload model).
#[must_use]
pub fn run_benchmark(bench: &Benchmark, config: RunConfig) -> RunResult {
    let mut mc = MachineConfig::haswell_quad();
    mc.initial_freq = config.freq;
    let mut machine = Machine::new(mc);
    let runtime = bench.install(&mut machine, config.scale, config.seed);
    let outcome = machine
        .run()
        .unwrap_or_else(|e| panic!("{}: {e}", bench.name));
    let RunOutcome::Completed(end) = outcome else {
        unreachable!("run() only returns at completion");
    };
    let trace = machine.harvest_trace();
    debug_assert!(trace.validate().is_ok(), "{:?}", trace.validate());
    RunResult {
        exec: end.since(dvfs_trace::Time::ZERO),
        gc_time: trace.gc_time(),
        gc_count: runtime.gc_count(),
        allocated: runtime.total_allocated(),
        trace,
        stats: machine.stats(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dacapo_sim::benchmark;

    #[test]
    fn small_scale_run_completes_and_collects() {
        let bench = benchmark("lusearch").expect("exists");
        let result = run_benchmark(
            bench,
            RunConfig::at_ghz(2.0).scaled(0.03),
        );
        assert!(result.exec > TimeDelta::ZERO);
        assert!(result.gc_count > 0, "lusearch must GC even at small scale");
        assert!(result.gc_time > TimeDelta::ZERO);
        assert!(result.allocated > 0);
        result.trace.validate().expect("valid trace");
    }
}
