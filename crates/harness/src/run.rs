//! Single-run plumbing: install a benchmark, run it at a frequency, and
//! harvest everything the experiments need — plus the [`SweepPlan`] →
//! [`ExecCtx::execute`] machinery every experiment drives its grid
//! through: points execute on the work-stealing pool, results come back
//! in plan order, and identical points are memoized via [`SimCache`].

use std::sync::Arc;

use dacapo_sim::Benchmark;
use dvfs_trace::{ExecutionTrace, Freq, TimeDelta};
use serde::{Deserialize, Serialize};
use simx::{Machine, MachineConfig, RunOutcome, RunStats};

use crate::cache::{sim_key, SimCache};
use crate::pool;

/// Parameters of one benchmark run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunConfig {
    /// Chip frequency for the whole run.
    pub freq: Freq,
    /// Work scale (1.0 = the paper's full run; tests use small values).
    pub scale: f64,
    /// Workload RNG seed (the paper averages 4 runs; vary this).
    pub seed: u64,
}

impl RunConfig {
    /// A full-scale run at `ghz`.
    #[must_use]
    pub fn at_ghz(ghz: f64) -> Self {
        RunConfig {
            freq: Freq::from_ghz(ghz),
            scale: 1.0,
            seed: 1,
        }
    }

    /// Returns a copy at a different scale.
    #[must_use]
    pub fn scaled(mut self, scale: f64) -> Self {
        self.scale = scale;
        self
    }

    /// Returns a copy with a different seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Everything a completed run yields.
#[derive(Debug)]
pub struct RunResult {
    /// Wall-clock execution time.
    pub exec: TimeDelta,
    /// Time inside stop-the-world collections.
    pub gc_time: TimeDelta,
    /// Nursery collections performed.
    pub gc_count: u64,
    /// Bytes allocated by the application.
    pub allocated: u64,
    /// The full execution trace (input to the predictors).
    pub trace: ExecutionTrace,
    /// Machine statistics.
    pub stats: RunStats,
}

/// The cacheable essence of a [`RunResult`]: everything the experiments
/// consume from a plain (unmanaged, whole-chip) run, in a serializable
/// form. `RunStats` itself does not persist — the only statistic the
/// figures need from it is the total active time, captured here.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunSummary {
    /// Wall-clock execution time.
    pub exec: TimeDelta,
    /// Time inside stop-the-world collections.
    pub gc_time: TimeDelta,
    /// Nursery collections performed.
    pub gc_count: u64,
    /// Bytes allocated by the application.
    pub allocated: u64,
    /// Summed scheduled time over all threads (drives the energy model).
    pub total_active: TimeDelta,
    /// The full execution trace (input to the predictors).
    pub trace: ExecutionTrace,
}

impl RunResult {
    /// Condenses the result into its cacheable summary.
    #[must_use]
    pub fn summarize(&self) -> RunSummary {
        RunSummary {
            exec: self.exec,
            gc_time: self.gc_time,
            gc_count: self.gc_count,
            allocated: self.allocated,
            total_active: self.stats.total_active(),
            trace: self.trace.clone(),
        }
    }
}

/// Runs `bench` to completion under `config`, reporting simulator
/// failures (deadlock, protocol violation) as errors.
pub fn try_run_benchmark(
    bench: &Benchmark,
    config: RunConfig,
) -> depburst_core::Result<RunResult> {
    let mut mc = MachineConfig::haswell_quad();
    mc.initial_freq = config.freq;
    let mut machine = Machine::new(mc);
    let runtime = bench.install(&mut machine, config.scale, config.seed);
    let outcome = machine.run()?;
    let RunOutcome::Completed(end) = outcome else {
        unreachable!("run() only returns at completion");
    };
    let trace = machine.harvest_trace();
    debug_assert!(trace.validate().is_ok(), "{:?}", trace.validate());
    Ok(RunResult {
        exec: end.since(dvfs_trace::Time::ZERO),
        gc_time: trace.gc_time(),
        gc_count: runtime.gc_count(),
        allocated: runtime.total_allocated(),
        trace,
        stats: machine.stats(),
    })
}

/// Runs `bench` to completion under `config` and returns the results.
///
/// # Panics
/// Panics if the simulated program deadlocks (a bug in the runtime or
/// workload model). Experiments route through [`ExecCtx`] instead, which
/// propagates the error.
#[must_use]
pub fn run_benchmark(bench: &Benchmark, config: RunConfig) -> RunResult {
    try_run_benchmark(bench, config).unwrap_or_else(|e| panic!("{}: {e}", bench.name))
}

/// One point of an experiment grid: a benchmark at a frequency, scale,
/// and seed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimPoint {
    /// The benchmark to run.
    pub bench: &'static Benchmark,
    /// The run parameters.
    pub config: RunConfig,
}

impl SimPoint {
    /// Builds the point's run configuration grid entry.
    #[must_use]
    pub fn new(bench: &'static Benchmark, freq: Freq, scale: f64, seed: u64) -> Self {
        SimPoint {
            bench,
            config: RunConfig { freq, scale, seed },
        }
    }
}

/// An experiment's (benchmark × frequency × seed) grid, in the order the
/// experiment will consume the results. Duplicated points are fine — the
/// memo cache collapses them to one simulation.
#[derive(Debug, Clone, Default)]
pub struct SweepPlan {
    /// The points, in consumption order.
    pub points: Vec<SimPoint>,
}

impl SweepPlan {
    /// An empty plan.
    #[must_use]
    pub fn new() -> Self {
        SweepPlan { points: Vec::new() }
    }

    /// Appends a point and returns its index in the result vector.
    pub fn push(&mut self, point: SimPoint) -> usize {
        self.points.push(point);
        self.points.len() - 1
    }
}

/// The execution context experiments run under: how many pool workers to
/// use and the simulation memo shared by every plan executed through it.
#[derive(Debug)]
pub struct ExecCtx {
    /// Pool width. 1 = run points in place, exactly like the historical
    /// sequential harness.
    pub jobs: usize,
    /// The simulation memo.
    pub cache: SimCache,
}

impl ExecCtx {
    /// A context with `jobs` workers and a fresh in-memory cache.
    #[must_use]
    pub fn new(jobs: usize) -> Self {
        ExecCtx {
            jobs: jobs.max(1),
            cache: SimCache::in_memory(),
        }
    }

    /// The historical sequential harness: one worker, in-memory cache.
    #[must_use]
    pub fn sequential() -> Self {
        Self::new(1)
    }

    /// The context the binaries use: `requested` jobs (falling back to
    /// `DEPBURST_JOBS`, then to the machine's parallelism) and cache
    /// persistence per `DEPBURST_CACHE`.
    #[must_use]
    pub fn from_env(requested: Option<usize>) -> Self {
        ExecCtx {
            jobs: pool::resolve_jobs(requested),
            cache: SimCache::from_env(),
        }
    }

    /// Executes every point of `plan` — memoized, on up to
    /// [`jobs`](ExecCtx::jobs) workers — and returns the summaries in plan
    /// order. The output is a pure function of the plan: neither the
    /// worker count nor the cache temperature can change it.
    pub fn execute(&self, plan: &SweepPlan) -> depburst_core::Result<Vec<Arc<RunSummary>>> {
        // `DEPBURST_TRACE_POINTS=1` logs every point with its key and
        // wall-clock to stderr — the first tool to reach for when a sweep
        // stalls or the cache misses unexpectedly.
        let tracing = std::env::var_os("DEPBURST_TRACE_POINTS").is_some();
        let outcomes = pool::map(plan.points.clone(), self.jobs, |point| {
            let mut mc = MachineConfig::haswell_quad();
            mc.initial_freq = point.config.freq;
            let key = sim_key(point.bench, &mc, None, point.config.scale, point.config.seed);
            let t0 = std::time::Instant::now();
            let out = self.cache.get_or_compute(key, || {
                if tracing {
                    eprintln!("  {}: miss, simulating", key.hex());
                }
                try_run_benchmark(point.bench, point.config).map(|r| r.summarize())
            });
            if tracing {
                eprintln!(
                    "point {} @ {} seed {} [{}] in {:.3}s",
                    point.bench.name,
                    point.config.freq,
                    point.config.seed,
                    key.hex(),
                    t0.elapsed().as_secs_f64()
                );
            }
            out
        });
        outcomes.into_iter().collect()
    }

    /// Maps `f` over `items` on this context's pool, preserving input
    /// order. For experiment stages that are not plain cacheable runs
    /// (managed-machine runs, per-core pinned runs).
    pub fn map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        pool::map(items, self.jobs, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dacapo_sim::benchmark;

    #[test]
    fn small_scale_run_completes_and_collects() {
        let bench = benchmark("lusearch").expect("exists");
        let result = run_benchmark(
            bench,
            RunConfig::at_ghz(2.0).scaled(0.03),
        );
        assert!(result.exec > TimeDelta::ZERO);
        assert!(result.gc_count > 0, "lusearch must GC even at small scale");
        assert!(result.gc_time > TimeDelta::ZERO);
        assert!(result.allocated > 0);
        result.trace.validate().expect("valid trace");
    }

    #[test]
    fn execute_is_ordered_and_memoized() {
        let bench = benchmark("lusearch").expect("exists");
        let mut plan = SweepPlan::new();
        let f2 = Freq::from_ghz(2.0);
        let f4 = Freq::from_ghz(4.0);
        plan.push(SimPoint::new(bench, f2, 0.02, 1));
        plan.push(SimPoint::new(bench, f4, 0.02, 1));
        plan.push(SimPoint::new(bench, f2, 0.02, 1)); // duplicate of [0]
        let ctx = ExecCtx::new(2);
        let results = ctx.execute(&plan).expect("runs complete");
        assert_eq!(results.len(), 3);
        assert_eq!(results[0], results[2], "duplicate point, same summary");
        assert_ne!(results[0].exec, results[1].exec, "frequencies differ");
        let stats = ctx.cache.stats();
        assert_eq!(stats.misses, 2, "two unique points");
        // Re-executing the same plan is all hits.
        let again = ctx.execute(&plan).expect("runs complete");
        assert_eq!(again, results);
        assert_eq!(ctx.cache.stats().misses, 2);
    }

    #[test]
    fn summary_matches_result() {
        let bench = benchmark("sunflow").expect("exists");
        let config = RunConfig::at_ghz(1.0).scaled(0.02);
        let r = try_run_benchmark(bench, config).expect("completes");
        let s = r.summarize();
        assert_eq!(s.exec, r.exec);
        assert_eq!(s.total_active, r.stats.total_active());
        assert_eq!(s.trace, r.trace);
    }
}
