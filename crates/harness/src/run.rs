//! Single-run plumbing: install a benchmark, run it at a frequency, and
//! harvest everything the experiments need — plus the [`SweepPlan`] →
//! [`ExecCtx::execute`] machinery every experiment drives its grid
//! through: points execute on the work-stealing pool, results come back
//! in plan order, and identical points are memoized via [`SimCache`].

use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use dacapo_sim::Benchmark;
use dvfs_trace::{ExecutionTrace, Freq, TimeDelta};
use serde::{Deserialize, Serialize};
use simx::{Machine, MachineConfig, RunOutcome, RunStats};

use crate::cache::{SimCache, SimKey};
use crate::checkpoint::Journal;
use crate::pool;
use crate::resilience::{
    attempt_resilient, FailureCause, FailureReport, PointFailure, ResilienceStats, RetryPolicy,
};
use crate::vfs::{parse_storage_faults, FaultyVfs, RealVfs, StorageFaultConfig, Vfs};

/// Parameters of one benchmark run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunConfig {
    /// Chip frequency for the whole run.
    pub freq: Freq,
    /// Work scale (1.0 = the paper's full run; tests use small values).
    pub scale: f64,
    /// Workload RNG seed (the paper averages 4 runs; vary this).
    pub seed: u64,
}

impl RunConfig {
    /// A full-scale run at `ghz`.
    #[must_use]
    pub fn at_ghz(ghz: f64) -> Self {
        RunConfig {
            freq: Freq::from_ghz(ghz),
            scale: 1.0,
            seed: 1,
        }
    }

    /// Returns a copy at a different scale.
    #[must_use]
    pub fn scaled(mut self, scale: f64) -> Self {
        self.scale = scale;
        self
    }

    /// Returns a copy with a different seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Everything a completed run yields.
#[derive(Debug)]
pub struct RunResult {
    /// Wall-clock execution time.
    pub exec: TimeDelta,
    /// Time inside stop-the-world collections.
    pub gc_time: TimeDelta,
    /// Nursery collections performed.
    pub gc_count: u64,
    /// Bytes allocated by the application.
    pub allocated: u64,
    /// The full execution trace (input to the predictors).
    pub trace: ExecutionTrace,
    /// Machine statistics.
    pub stats: RunStats,
}

/// The cacheable essence of a [`RunResult`]: everything the experiments
/// consume from a plain (unmanaged, whole-chip) run, in a serializable
/// form. `RunStats` itself does not persist — the only statistic the
/// figures need from it is the total active time, captured here.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSummary {
    /// Wall-clock execution time.
    pub exec: TimeDelta,
    /// Time inside stop-the-world collections.
    pub gc_time: TimeDelta,
    /// Nursery collections performed.
    pub gc_count: u64,
    /// Bytes allocated by the application.
    pub allocated: u64,
    /// Summed scheduled time over all threads (drives the energy model).
    pub total_active: TimeDelta,
    /// The full execution trace (input to the predictors). For a sampled
    /// summary this is the *measure region's* trace: a step-identical
    /// prefix of the full run (see `simx::sampling`), not the whole run.
    pub trace: ExecutionTrace,
    /// Present when this summary was extrapolated by the sampled tier
    /// rather than simulated in full. Absent (and skipped during
    /// serialization, keeping exact envelopes byte-identical to the
    /// pre-sampling schema) for exact runs.
    pub sampled: Option<SampledInfo>,
}

// Hand-written (the vendored serde shim has no field attributes): the
// `sampled` entry is omitted when `None`, so exact summaries serialize
// byte-identically to the pre-sampling schema, and envelopes written
// before the field existed still deserialize.
impl Serialize for RunSummary {
    fn to_value(&self) -> serde::Value {
        let mut entries = vec![
            ("exec".to_string(), self.exec.to_value()),
            ("gc_time".to_string(), self.gc_time.to_value()),
            ("gc_count".to_string(), self.gc_count.to_value()),
            ("allocated".to_string(), self.allocated.to_value()),
            ("total_active".to_string(), self.total_active.to_value()),
            ("trace".to_string(), self.trace.to_value()),
        ];
        if let Some(sampled) = &self.sampled {
            entries.push(("sampled".to_string(), sampled.to_value()));
        }
        serde::Value::Map(entries)
    }
}

impl Deserialize for RunSummary {
    fn from_value(value: &serde::Value) -> Result<Self, serde::DeError> {
        let serde::Value::Map(entries) = value else {
            return Err(serde::DeError::new(format!(
                "expected map for RunSummary, found {value:?}"
            )));
        };
        Ok(RunSummary {
            exec: serde::de_field(entries, "exec")?,
            gc_time: serde::de_field(entries, "gc_time")?,
            gc_count: serde::de_field(entries, "gc_count")?,
            allocated: serde::de_field(entries, "allocated")?,
            total_active: serde::de_field(entries, "total_active")?,
            trace: serde::de_field(entries, "trace")?,
            sampled: match value.get("sampled") {
                None | Some(serde::Value::Null) => None,
                Some(v) => Some(SampledInfo::from_value(v)?),
            },
        })
    }
}

/// How a sampled summary was produced, and how much to trust it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SampledInfo {
    /// Rounds fraction of the probe prefix.
    pub probe_fraction: f64,
    /// Rounds fraction of the measure prefix the estimate came from.
    pub measure_fraction: f64,
    /// True when the region scheduler widened the measure region after a
    /// failed recurrence check.
    pub extended: bool,
    /// Half-width of the execution-time confidence interval.
    pub exec_half_ci: TimeDelta,
    /// Half-width of the GC-time confidence interval.
    pub gc_half_ci: TimeDelta,
    /// Measured phase recurrence of the measure region.
    pub recurrence: f64,
    /// Epoch-signature clusters found in the measure region.
    pub clusters: usize,
}

impl RunResult {
    /// Condenses the result into its cacheable summary.
    #[must_use]
    pub fn summarize(&self) -> RunSummary {
        RunSummary {
            exec: self.exec,
            gc_time: self.gc_time,
            gc_count: self.gc_count,
            allocated: self.allocated,
            total_active: self.stats.total_active(),
            trace: self.trace.clone(),
            sampled: None,
        }
    }
}

impl RunSummary {
    /// Adjusts `predicted` — a model's predicted execution time for this
    /// summary's *traced window* at some target frequency — to whole-run
    /// terms. An exact summary returns it unchanged (its trace covers
    /// the whole run). A sampled summary carries only the measure
    /// region's trace, so the raw prediction is a region time; the
    /// predicted slowdown ratio is applied to the extrapolated whole-run
    /// execution time instead.
    #[must_use]
    pub fn rescale_prediction(&self, predicted: TimeDelta) -> TimeDelta {
        if self.sampled.is_none() {
            return predicted;
        }
        let window = self.trace.total.as_secs();
        if window <= 0.0 {
            return predicted;
        }
        self.exec * (predicted.as_secs() / window)
    }
}

/// Parses a `DEPBURST_SAMPLING` / `--sampling` setting: `off`/`0`/empty
/// disables the sampled tier, `on`/`1` enables it with the default
/// [`SamplingConfig`](simx::SamplingConfig), and a bare fraction enables
/// it with that measure fraction (the probe keeps its default).
pub fn parse_sampling_setting(value: &str) -> Result<Option<simx::SamplingConfig>, String> {
    match value {
        "" | "0" | "off" => Ok(None),
        "1" | "on" => Ok(Some(simx::SamplingConfig::default())),
        other => {
            let f: f64 = other
                .parse()
                .map_err(|_| format!("expected off/on or a measure fraction, got {other:?}"))?;
            let cfg = simx::SamplingConfig {
                measure_fraction: f,
                ..simx::SamplingConfig::default()
            };
            if !(f.is_finite() && f > cfg.probe_fraction && f < 1.0) {
                return Err(format!(
                    "measure fraction {f} outside (probe {}, 1)",
                    cfg.probe_fraction
                ));
            }
            Ok(Some(cfg))
        }
    }
}

/// Views a prefix sub-run's summary as a region measurement for the
/// extrapolator.
fn region_of(summary: &RunSummary, fraction: f64) -> simx::RegionMeasurement {
    simx::RegionMeasurement {
        fraction,
        exec: summary.exec,
        gc_time: summary.gc_time,
        gc_count: summary.gc_count,
        allocated: summary.allocated,
        total_active: summary.total_active,
    }
}

/// Runs `bench` to completion under `config`, reporting simulator
/// failures (deadlock, protocol violation) as errors. The invariant
/// monitor runs at the mode `DEPBURST_INVARIANTS` selects (off by
/// default); a violation surfaces as
/// [`DepburstError::InvariantViolation`](depburst_core::DepburstError::InvariantViolation).
pub fn try_run_benchmark(
    bench: &Benchmark,
    config: RunConfig,
) -> depburst_core::Result<RunResult> {
    run_with_monitor(bench, config, None)
}

/// [`try_run_benchmark`] with an explicit invariant-monitor mode,
/// overriding the `DEPBURST_INVARIANTS` environment default. The fuzzer
/// and the self-check tests use this to force
/// [`InvariantMode::Full`](simx::InvariantMode::Full) regardless of the
/// caller's environment.
pub fn try_run_benchmark_monitored(
    bench: &Benchmark,
    config: RunConfig,
    mode: simx::InvariantMode,
) -> depburst_core::Result<RunResult> {
    run_with_monitor(bench, config, Some(mode))
}

/// The shared body of the plain and monitored entry points. `mode` of
/// `None` keeps the machine's environment-derived monitor.
fn run_with_monitor(
    bench: &Benchmark,
    config: RunConfig,
    mode: Option<simx::InvariantMode>,
) -> depburst_core::Result<RunResult> {
    let mut mc = MachineConfig::haswell_quad();
    mc.initial_freq = config.freq;
    let mut machine = Machine::new(mc);
    if let Some(mode) = mode {
        // Before install: the runtime snapshots the machine's mode to
        // decide whether its threads record GC-handoff violations.
        machine.set_invariant_mode(mode);
    }
    let runtime = bench.install(&mut machine, config.scale, config.seed);
    let outcome = machine.run()?;
    let RunOutcome::Completed(end) = outcome else {
        unreachable!("run() only returns at completion");
    };
    let trace = machine.harvest_trace();
    debug_assert!(trace.validate().is_ok(), "{:?}", trace.validate());
    // Runtime threads cannot reach the machine's monitor mid-run; merge
    // the GC-handoff violations they recorded on the side.
    if machine.monitor().on(simx::Invariant::GcPauseAccounting) {
        for (at_secs, detail) in runtime.take_gc_violations() {
            machine
                .monitor_mut()
                .record(simx::Invariant::GcPauseAccounting, at_secs, detail);
        }
    }
    if let Some(err) = machine.invariant_error() {
        return Err(err);
    }
    Ok(RunResult {
        exec: end.since(dvfs_trace::Time::ZERO),
        gc_time: trace.gc_time(),
        gc_count: runtime.gc_count(),
        allocated: runtime.total_allocated(),
        trace,
        stats: machine.stats(),
    })
}

/// Runs `bench` to completion under `config` and returns the results.
///
/// # Panics
/// Panics if the simulated program deadlocks (a bug in the runtime or
/// workload model). Experiments route through [`ExecCtx`] instead, which
/// propagates the error.
#[must_use]
pub fn run_benchmark(bench: &Benchmark, config: RunConfig) -> RunResult {
    try_run_benchmark(bench, config).unwrap_or_else(|e| panic!("{}: {e}", bench.name))
}

/// One point of an experiment grid: a benchmark at a frequency, scale,
/// and seed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimPoint {
    /// The benchmark to run.
    pub bench: &'static Benchmark,
    /// The run parameters.
    pub config: RunConfig,
}

impl SimPoint {
    /// Builds the point's run configuration grid entry.
    #[must_use]
    pub fn new(bench: &'static Benchmark, freq: Freq, scale: f64, seed: u64) -> Self {
        SimPoint {
            bench,
            config: RunConfig { freq, scale, seed },
        }
    }
}

/// An experiment's (benchmark × frequency × seed) grid, in the order the
/// experiment will consume the results. Duplicated points are fine — the
/// memo cache collapses them to one simulation.
#[derive(Debug, Clone, Default)]
pub struct SweepPlan {
    /// The points, in consumption order.
    pub points: Vec<SimPoint>,
}

impl SweepPlan {
    /// An empty plan.
    #[must_use]
    pub fn new() -> Self {
        SweepPlan { points: Vec::new() }
    }

    /// Appends a point and returns its index in the result vector.
    pub fn push(&mut self, point: SimPoint) -> usize {
        self.points.push(point);
        self.points.len() - 1
    }
}

/// The execution context experiments run under: how many pool workers to
/// use, the simulation memo shared by every plan executed through it,
/// and the resilience machinery — retry policy, per-point watchdog,
/// checkpoint journal, and the run's accumulated point failures.
#[derive(Debug)]
pub struct ExecCtx {
    /// Pool width. 1 = run points in place, exactly like the historical
    /// sequential harness.
    pub jobs: usize,
    /// The simulation memo.
    pub cache: SimCache,
    /// Retry/backoff policy for failed points.
    pub policy: RetryPolicy,
    /// Per-point wall-clock budget (None = no watchdog).
    pub point_timeout: Option<Duration>,
    /// When set, plan points execute on the sampled tier: two prefix
    /// regions are simulated (as ordinary cacheable exact runs at
    /// reduced scales) and the whole-run summary is extrapolated — see
    /// `simx::sampling`. Sampled results key under
    /// [`SimKey::with_sampling`], so they never collide with exact ones.
    pub sampling: Option<simx::SamplingConfig>,
    /// The checkpoint journal, when the run is resumable.
    journal: Option<Journal>,
    /// The storage-fault injector, when one is installed (torture runs
    /// and `--storage-faults`). Shared with the cache; the journal is
    /// built over it via [`storage_vfs`](Self::storage_vfs). `None` means
    /// all durable I/O goes straight through [`RealVfs`].
    storage: Option<Arc<FaultyVfs>>,
    /// Ultimate point failures accumulated across this context's sweeps.
    failures: Mutex<Vec<PointFailure>>,
    /// Failures stashed by key while they cross the cache's error channel
    /// (which carries only a `DepburstError`).
    stashed: Mutex<HashMap<u128, PointFailure>>,
    /// Attempt-level counters (retries, panics, timeouts).
    rstats: ResilienceStats,
}

impl ExecCtx {
    /// A context with `jobs` workers, a fresh in-memory cache, the
    /// default retry policy, and no watchdog or journal.
    #[must_use]
    pub fn new(jobs: usize) -> Self {
        ExecCtx {
            jobs: jobs.max(1),
            cache: SimCache::in_memory(),
            policy: RetryPolicy::default(),
            point_timeout: None,
            sampling: None,
            journal: None,
            storage: None,
            failures: Mutex::new(Vec::new()),
            stashed: Mutex::new(HashMap::new()),
            rstats: ResilienceStats::default(),
        }
    }

    /// The historical sequential harness: one worker, in-memory cache.
    #[must_use]
    pub fn sequential() -> Self {
        Self::new(1)
    }

    /// The context the binaries use: `requested` jobs (falling back to
    /// `DEPBURST_JOBS`, then to the machine's parallelism), cache
    /// persistence per `DEPBURST_CACHE`, retries per `DEPBURST_RETRIES`,
    /// and the watchdog per `DEPBURST_POINT_TIMEOUT` (seconds).
    #[must_use]
    pub fn from_env(requested: Option<usize>) -> Self {
        let mut ctx = Self::new(pool::resolve_jobs(requested));
        ctx.cache = SimCache::from_env();
        ctx.policy = RetryPolicy::from_env();
        ctx.point_timeout = std::env::var("DEPBURST_POINT_TIMEOUT")
            .ok()
            .and_then(|v| v.trim().parse::<f64>().ok())
            .filter(|secs| *secs > 0.0)
            .map(Duration::from_secs_f64);
        if let Ok(v) = std::env::var("DEPBURST_SAMPLING") {
            match parse_sampling_setting(v.trim()) {
                Ok(sampling) => ctx.sampling = sampling,
                Err(e) => eprintln!("warning: ignoring DEPBURST_SAMPLING: {e}"),
            }
        }
        if let Ok(v) = std::env::var("DEPBURST_STORAGE_FAULTS") {
            match parse_storage_faults(&v) {
                Ok(Some(cfg)) => ctx = ctx.with_storage_faults(cfg),
                Ok(None) => {}
                Err(e) => eprintln!("warning: ignoring DEPBURST_STORAGE_FAULTS: {e}"),
            }
        }
        ctx
    }

    /// Replaces the cache (builder style).
    #[must_use]
    pub fn with_cache(mut self, cache: SimCache) -> Self {
        self.cache = cache;
        self
    }

    /// Replaces the retry policy (builder style).
    #[must_use]
    pub fn with_policy(mut self, policy: RetryPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the per-point wall-clock budget (builder style).
    #[must_use]
    pub fn with_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.point_timeout = timeout;
        self
    }

    /// Selects the sampled execution tier (builder style); `None`
    /// restores full-fidelity execution.
    #[must_use]
    pub fn with_sampling(mut self, sampling: Option<simx::SamplingConfig>) -> Self {
        self.sampling = sampling;
        self
    }

    /// Installs a checkpoint journal (builder style).
    #[must_use]
    pub fn with_journal(mut self, journal: Journal) -> Self {
        self.journal = Some(journal);
        self
    }

    /// The installed checkpoint journal, if any.
    #[must_use]
    pub fn journal(&self) -> Option<&Journal> {
        self.journal.as_ref()
    }

    /// Installs a storage-fault injector (builder style): the cache's
    /// disk I/O routes through it immediately, and journals built via
    /// [`storage_vfs`](Self::storage_vfs) share it. Install the injector
    /// *before* the journal so both layers see one fault schedule.
    #[must_use]
    pub fn with_storage(mut self, vfs: Arc<FaultyVfs>) -> Self {
        self.cache.set_vfs(Arc::clone(&vfs) as Arc<dyn Vfs>);
        self.storage = Some(vfs);
        self
    }

    /// [`with_storage`](Self::with_storage) from a fault configuration.
    #[must_use]
    pub fn with_storage_faults(self, cfg: StorageFaultConfig) -> Self {
        self.with_storage(Arc::new(FaultyVfs::new(cfg)))
    }

    /// Removes any installed injector, restoring direct [`RealVfs`] I/O
    /// (an explicit `--storage-faults off` over an env-installed one).
    #[must_use]
    pub fn without_storage(mut self) -> Self {
        self.cache.set_vfs(Arc::new(RealVfs));
        self.storage = None;
        self
    }

    /// The installed storage-fault injector, if any.
    #[must_use]
    pub fn storage(&self) -> Option<&Arc<FaultyVfs>> {
        self.storage.as_ref()
    }

    /// The storage layer journals (and any other durable consumer)
    /// should be built over: the installed injector, or [`RealVfs`].
    #[must_use]
    pub fn storage_vfs(&self) -> Arc<dyn Vfs> {
        self.storage
            .as_ref()
            .map_or_else(|| Arc::new(RealVfs) as Arc<dyn Vfs>, |s| {
                Arc::clone(s) as Arc<dyn Vfs>
            })
    }

    /// When the injected crash point has fired, the structured
    /// storage failure the run should exit with (the process is "dead";
    /// results past this point would be fiction).
    #[must_use]
    pub fn storage_failure(&self) -> Option<PointFailure> {
        let storage = self.storage.as_ref()?;
        if !storage.crashed() {
            return None;
        }
        Some(PointFailure {
            label: "storage".to_owned(),
            cause: FailureCause::Storage,
            attempts: 0,
            detail: format!(
                "simulated power loss after {} VFS operations; the sweep fails closed",
                storage.op_count()
            ),
        })
    }

    /// Records a point's ultimate failure into the run's report.
    pub fn record_failure(&self, failure: PointFailure) {
        self.failures.lock().expect("failures lock").push(failure);
    }

    /// The ultimate point failures recorded so far.
    #[must_use]
    pub fn failures(&self) -> Vec<PointFailure> {
        self.failures.lock().expect("failures lock").clone()
    }

    /// True when any point ultimately failed under this context.
    #[must_use]
    pub fn has_failures(&self) -> bool {
        !self.failures.lock().expect("failures lock").is_empty()
    }

    /// The end-of-run failure report, or `None` for a clean run.
    #[must_use]
    pub fn failure_report(&self, experiment: &str) -> Option<FailureReport> {
        let failures = self.failures();
        if failures.is_empty() {
            return None;
        }
        let cache = self.cache.stats();
        let journal = self.journal.as_ref().map(Journal::stats).unwrap_or_default();
        Some(FailureReport {
            experiment: experiment.to_owned(),
            failed_points: failures.len(),
            retries: self.rstats.retries(),
            panics: self.rstats.panics(),
            timeouts: self.rstats.timeouts(),
            quarantined: cache.quarantined,
            cache_persist_failures: cache.persist_failures,
            journal_append_failures: journal.append_failures,
            journal_fsync_failures: journal.fsync_failures,
            failures,
        })
    }

    /// Executes every point of `plan` — memoized, on up to
    /// [`jobs`](ExecCtx::jobs) workers — and returns the summaries in plan
    /// order. The output is a pure function of the plan: neither the
    /// worker count, the cache temperature, nor a journal resume can
    /// change it.
    ///
    /// # Errors
    /// Every point is attempted (with this context's retry/watchdog
    /// policy) even when some fail; ultimate failures are recorded via
    /// [`record_failure`](Self::record_failure) and the whole sweep then
    /// reports [`DepburstError::SweepIncomplete`] — figures are
    /// structurally complete-or-failed, unlike the faults sweep which
    /// drops failed cells and keeps its partial rows.
    ///
    /// [`DepburstError::SweepIncomplete`]: depburst_core::DepburstError::SweepIncomplete
    pub fn execute(&self, plan: &SweepPlan) -> depburst_core::Result<Vec<Arc<RunSummary>>> {
        self.execute_in(None, plan)
    }

    /// [`execute`](Self::execute) with a checkpoint-journal namespace.
    ///
    /// Fleet sweeps run the same characterization point for many shards.
    /// The memo cache *should* share those (the simulation is one pure
    /// function), but the journal must not: shard-labelled rows replayed
    /// across shards would let `--resume` complete shard B from shard A's
    /// journal rows even if B never ran. Namespacing the journal key by
    /// shard keeps every shard's resume state independent while cache
    /// sharing stays fleet-wide.
    ///
    /// # Errors
    /// As [`execute`](Self::execute).
    pub fn execute_in(
        &self,
        namespace: Option<&str>,
        plan: &SweepPlan,
    ) -> depburst_core::Result<Vec<Arc<RunSummary>>> {
        self.collect_sweep(plan, self.execute_outcomes_in(namespace, plan))
    }

    /// [`execute`](Self::execute) with an explicit sampling setting,
    /// overriding this context's [`sampling`](ExecCtx::sampling) field.
    /// The sampled-vs-exact validation experiment uses this to run both
    /// tiers of the same plan through one shared cache and journal
    /// (sampled keys never collide with exact ones, so the arms coexist).
    ///
    /// # Errors
    /// As [`execute`](Self::execute).
    pub fn execute_with(
        &self,
        plan: &SweepPlan,
        sampling: Option<&simx::SamplingConfig>,
    ) -> depburst_core::Result<Vec<Arc<RunSummary>>> {
        self.collect_sweep(plan, self.execute_outcomes_with(None, plan, sampling))
    }

    /// Folds per-point outcomes into the complete-or-failed sweep result.
    fn collect_sweep(
        &self,
        plan: &SweepPlan,
        outcomes: Vec<Result<Arc<RunSummary>, PointFailure>>,
    ) -> depburst_core::Result<Vec<Arc<RunSummary>>> {
        let total = plan.points.len();
        let mut ok = Vec::with_capacity(total);
        let mut failed = 0usize;
        for outcome in outcomes {
            match outcome {
                Ok(summary) => ok.push(summary),
                Err(failure) => {
                    failed += 1;
                    self.record_failure(failure);
                }
            }
        }
        if failed > 0 {
            return Err(depburst_core::DepburstError::SweepIncomplete { failed, total });
        }
        Ok(ok)
    }

    /// The per-point form of [`execute`](Self::execute): every point's
    /// summary or structured failure, in plan order. Failures are *not*
    /// recorded on the context — the caller decides whether a failed
    /// point sinks the sweep or only its own cell.
    pub fn execute_outcomes(
        &self,
        plan: &SweepPlan,
    ) -> Vec<Result<Arc<RunSummary>, PointFailure>> {
        self.execute_outcomes_in(None, plan)
    }

    /// The per-point form of [`execute_in`](Self::execute_in): journal
    /// lookups and records use the namespaced key, the memo cache the raw
    /// one.
    pub fn execute_outcomes_in(
        &self,
        namespace: Option<&str>,
        plan: &SweepPlan,
    ) -> Vec<Result<Arc<RunSummary>, PointFailure>> {
        self.execute_outcomes_with(namespace, plan, self.sampling.as_ref())
    }

    /// The engine under every `execute` variant, with the sampling
    /// setting fully explicit.
    fn execute_outcomes_with(
        &self,
        namespace: Option<&str>,
        plan: &SweepPlan,
        sampling: Option<&simx::SamplingConfig>,
    ) -> Vec<Result<Arc<RunSummary>, PointFailure>> {
        // `DEPBURST_TRACE_POINTS=1` logs every point with its key and
        // wall-clock to stderr — the first tool to reach for when a sweep
        // stalls or the cache misses unexpectedly.
        let tracing = std::env::var_os("DEPBURST_TRACE_POINTS").is_some();
        // Key derivation walks the benchmark spec and the whole machine
        // config; a sweep shares a handful of (benchmark, frequency)
        // combinations across hundreds of points, so digest each input
        // once up front and compose per-point keys from the digests.
        let fault_d = crate::cache::fault_digest(None);
        // A sampled sweep keys its points under (exact key × sampling
        // digest): exact and sampled results can never collide, nor can
        // two different region placements.
        let sampling_d = sampling.map(crate::cache::sampling_digest);
        let mut bench_digests: HashMap<usize, u128> = HashMap::new();
        let mut machine_digests: HashMap<u64, u128> = HashMap::new();
        let keyed: Vec<(SimPoint, SimKey, (u128, u128))> = plan
            .points
            .iter()
            .map(|point| {
                let bd = *bench_digests
                    .entry(point.bench as *const Benchmark as usize)
                    .or_insert_with(|| crate::cache::bench_digest(point.bench));
                let md = *machine_digests
                    .entry(point.config.freq.hz().to_bits())
                    .or_insert_with(|| {
                        let mut mc = MachineConfig::haswell_quad();
                        mc.initial_freq = point.config.freq;
                        mc.digest()
                    });
                let exact = crate::cache::sim_key_from_digests(
                    bd,
                    md,
                    fault_d,
                    point.config.scale,
                    point.config.seed,
                );
                let key = sampling_d.map_or(exact, |sd| exact.with_sampling(sd));
                (*point, key, (bd, md))
            })
            .collect();
        let outcomes = pool::map(keyed, self.jobs, |(point, key, (bd, md))| {
            // A fired crash point means the simulated machine lost power:
            // remaining points fail closed instead of simulating against
            // storage that no longer accepts writes.
            if self.storage.as_ref().is_some_and(|s| s.crashed()) {
                return Err(PointFailure {
                    label: format!(
                        "{} @ {} seed {}",
                        point.bench.name, point.config.freq, point.config.seed
                    ),
                    cause: FailureCause::Storage,
                    attempts: 0,
                    detail: "simulated power loss: storage crashed; abandoning the sweep".into(),
                });
            }
            let journal_key = namespace.map_or(key, |ns| key.in_namespace(ns));
            let t0 = std::time::Instant::now();
            // Journal replay first: a resumed run serves completed points
            // without touching the simulator or the cache statistics.
            if let Some(journal) = &self.journal {
                if let Some(summary) = journal.lookup(journal_key) {
                    self.cache.seed(key, &summary);
                    if tracing {
                        eprintln!("  {}: replayed from checkpoint journal", key.hex());
                    }
                    return Ok(summary);
                }
            }
            let label = format!(
                "{} @ {} seed {} scale {}",
                point.bench.name, point.config.freq, point.config.seed, point.config.scale
            );
            let out = if let Some(cfg) = sampling {
                self.cache.get_or_compute(key, || {
                    if tracing {
                        eprintln!("  {}: miss, sampling", key.hex());
                    }
                    self.compute_sampled(point, cfg, bd, md, fault_d, key, &label, tracing)
                })
            } else {
                self.cache.get_or_compute(key, || {
                    if tracing {
                        eprintln!("  {}: miss, simulating", key.hex());
                    }
                    match attempt_resilient(
                        &self.policy,
                        self.point_timeout,
                        &self.rstats,
                        &label,
                        |_attempt| {
                            // Plain cacheable points carry no fault injector,
                            // so the attempt index cannot change the result —
                            // a retry re-runs the identical pure simulation.
                            try_run_benchmark(point.bench, point.config).map(|r| r.summarize())
                        },
                    ) {
                        Ok(summary) => Ok(summary),
                        Err(failure) => {
                            // The cache's error channel carries only a
                            // DepburstError; stash the structured failure so
                            // it survives the crossing.
                            let detail = failure.detail.clone();
                            self.stashed
                                .lock()
                                .expect("stash lock")
                                .insert(key.0, failure);
                            Err(depburst_core::DepburstError::Machine { detail })
                        }
                    }
                })
            };
            if tracing {
                eprintln!(
                    "point {} @ {} seed {} [{}] in {:.3}s",
                    point.bench.name,
                    point.config.freq,
                    point.config.seed,
                    key.hex(),
                    t0.elapsed().as_secs_f64()
                );
            }
            match out {
                Ok(summary) => {
                    if let Some(journal) = &self.journal {
                        journal.record(journal_key, &summary);
                    }
                    Ok(summary)
                }
                Err(err) => {
                    let failure = self
                        .stashed
                        .lock()
                        .expect("stash lock")
                        .get(&key.0)
                        .cloned()
                        .unwrap_or_else(|| PointFailure {
                            label: label.clone(),
                            cause: FailureCause::Error,
                            attempts: 1,
                            detail: err.to_string(),
                        });
                    if failure.cause == FailureCause::Invariant {
                        // The point's inputs produced self-inconsistent
                        // physics: withdraw any persisted envelope so a
                        // resume re-simulates instead of trusting it.
                        self.cache.quarantine_key(key, &failure.detail);
                    }
                    Err(failure)
                }
            }
        });
        if let Some(journal) = &self.journal {
            journal.flush();
        }
        outcomes
    }

    /// Computes one sampled point: simulate the probe and measure prefix
    /// regions (as ordinary cacheable exact runs at reduced scales,
    /// shared through the memo cache with any other consumer of those
    /// scales), extrapolate the whole run, and — when the measure
    /// region fails its phase-recurrence check — let the region
    /// scheduler widen it once and re-extrapolate.
    ///
    /// Sub-run failures stash their structured `PointFailure` under
    /// `stash_key` (the sampled point's key) so the caller's error path
    /// reports the sampled point, not an anonymous sub-run.
    #[allow(clippy::too_many_arguments)]
    fn compute_sampled(
        &self,
        point: SimPoint,
        cfg: &simx::SamplingConfig,
        bd: u128,
        md: u128,
        fault_d: u128,
        stash_key: SimKey,
        label: &str,
        tracing: bool,
    ) -> depburst_core::Result<RunSummary> {
        let run_region = |fraction: f64| -> depburst_core::Result<Arc<RunSummary>> {
            let sub_scale = point.config.scale * fraction;
            let sub_key = crate::cache::sim_key_from_digests(
                bd,
                md,
                fault_d,
                sub_scale,
                point.config.seed,
            );
            let sub_config = RunConfig {
                scale: sub_scale,
                ..point.config
            };
            self.cache.get_or_compute(sub_key, || {
                if tracing {
                    eprintln!("  {}: region {fraction} miss, simulating", sub_key.hex());
                }
                let sub_label = format!("{label} [region {fraction}]");
                match attempt_resilient(
                    &self.policy,
                    self.point_timeout,
                    &self.rstats,
                    &sub_label,
                    |_attempt| {
                        try_run_benchmark(point.bench, sub_config).map(|r| r.summarize())
                    },
                ) {
                    Ok(summary) => Ok(summary),
                    Err(failure) => {
                        let detail = failure.detail.clone();
                        self.stashed
                            .lock()
                            .expect("stash lock")
                            .insert(stash_key.0, failure);
                        Err(depburst_core::DepburstError::Machine { detail })
                    }
                }
            })
        };
        let schedule = cfg.schedule();
        let probe = run_region(schedule.probe)?;
        let mut measure = run_region(schedule.measure)?;
        let mut measure_fraction = schedule.measure;
        let mut extended = false;
        let mut x = simx::sampling::extrapolate(
            &region_of(&probe, schedule.probe),
            &region_of(&measure, measure_fraction),
            &measure.trace,
            cfg,
        );
        if let Some(wider) = cfg.extension(x.recurrence) {
            measure = run_region(wider)?;
            measure_fraction = wider;
            extended = true;
            x = simx::sampling::extrapolate(
                &region_of(&probe, schedule.probe),
                &region_of(&measure, measure_fraction),
                &measure.trace,
                cfg,
            );
        }
        Ok(RunSummary {
            exec: x.exec,
            gc_time: x.gc_time,
            gc_count: x.gc_count,
            allocated: x.allocated,
            total_active: x.total_active,
            trace: measure.trace.clone(),
            sampled: Some(SampledInfo {
                probe_fraction: schedule.probe,
                measure_fraction,
                extended,
                exec_half_ci: x.exec_half_ci,
                gc_half_ci: x.gc_half_ci,
                recurrence: x.recurrence,
                clusters: x.clusters,
            }),
        })
    }

    /// Maps `f` over `items` on this context's pool, preserving input
    /// order. For experiment stages that are not plain cacheable runs
    /// (managed-machine runs, per-core pinned runs). Callers wanting
    /// per-item resilience use [`map_resilient`](Self::map_resilient).
    pub fn map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        pool::map(items, self.jobs, f)
    }

    /// Maps a fallible, labelled evaluation over `items` with this
    /// context's full resilience stack (panic isolation, watchdog,
    /// retry/backoff), preserving input order. `f` receives the item and
    /// the attempt index (0 first) so seeded transient faults can redraw
    /// per attempt (see [`simx::faults::retry_seed`]). Failures are *not*
    /// recorded on the context — see
    /// [`collect_resilient`](Self::collect_resilient) for the
    /// whole-sweep-or-nothing wrapper.
    pub fn map_resilient<T, R, F>(
        &self,
        items: Vec<(String, T)>,
        f: F,
    ) -> Vec<Result<R, PointFailure>>
    where
        T: Send,
        R: Send,
        F: Fn(&T, u32) -> depburst_core::Result<R> + Sync,
    {
        pool::map(items, self.jobs, |(label, item)| {
            attempt_resilient(
                &self.policy,
                self.point_timeout,
                &self.rstats,
                &label,
                |attempt| f(&item, attempt),
            )
        })
    }

    /// [`map_resilient`](Self::map_resilient) for sweeps that are
    /// structurally complete-or-failed: every item runs, ultimate
    /// failures are recorded on the context, and any failure turns the
    /// whole sweep into `SweepIncomplete` — after the surviving items
    /// finished, so their simulations are cached/journaled for a retry.
    pub fn collect_resilient<T, R, F>(
        &self,
        items: Vec<(String, T)>,
        f: F,
    ) -> depburst_core::Result<Vec<R>>
    where
        T: Send,
        R: Send,
        F: Fn(&T, u32) -> depburst_core::Result<R> + Sync,
    {
        let total = items.len();
        let mut ok = Vec::with_capacity(total);
        let mut failed = 0usize;
        for outcome in self.map_resilient(items, f) {
            match outcome {
                Ok(r) => ok.push(r),
                Err(failure) => {
                    failed += 1;
                    self.record_failure(failure);
                }
            }
        }
        if failed > 0 {
            return Err(depburst_core::DepburstError::SweepIncomplete { failed, total });
        }
        Ok(ok)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dacapo_sim::benchmark;

    #[test]
    fn small_scale_run_completes_and_collects() {
        let bench = benchmark("lusearch").expect("exists");
        let result = run_benchmark(
            bench,
            RunConfig::at_ghz(2.0).scaled(0.03),
        );
        assert!(result.exec > TimeDelta::ZERO);
        assert!(result.gc_count > 0, "lusearch must GC even at small scale");
        assert!(result.gc_time > TimeDelta::ZERO);
        assert!(result.allocated > 0);
        result.trace.validate().expect("valid trace");
    }

    #[test]
    fn execute_is_ordered_and_memoized() {
        let bench = benchmark("lusearch").expect("exists");
        let mut plan = SweepPlan::new();
        let f2 = Freq::from_ghz(2.0);
        let f4 = Freq::from_ghz(4.0);
        plan.push(SimPoint::new(bench, f2, 0.02, 1));
        plan.push(SimPoint::new(bench, f4, 0.02, 1));
        plan.push(SimPoint::new(bench, f2, 0.02, 1)); // duplicate of [0]
        let ctx = ExecCtx::new(2);
        let results = ctx.execute(&plan).expect("runs complete");
        assert_eq!(results.len(), 3);
        assert_eq!(results[0], results[2], "duplicate point, same summary");
        assert_ne!(results[0].exec, results[1].exec, "frequencies differ");
        let stats = ctx.cache.stats();
        assert_eq!(stats.misses, 2, "two unique points");
        // Re-executing the same plan is all hits.
        let again = ctx.execute(&plan).expect("runs complete");
        assert_eq!(again, results);
        assert_eq!(ctx.cache.stats().misses, 2);
    }

    #[test]
    fn summary_matches_result() {
        let bench = benchmark("sunflow").expect("exists");
        let config = RunConfig::at_ghz(1.0).scaled(0.02);
        let r = try_run_benchmark(bench, config).expect("completes");
        let s = r.summarize();
        assert_eq!(s.exec, r.exec);
        assert_eq!(s.total_active, r.stats.total_active());
        assert_eq!(s.trace, r.trace);
    }

    #[test]
    fn watchdog_expires_inside_run_benchmark() {
        // An armed zero-budget watchdog must stop the machine at the
        // first stride check and surface as a structured error, not hang
        // or panic.
        let bench = benchmark("lusearch").expect("exists");
        let _guard = simx::watchdog::arm(Duration::ZERO);
        let err = try_run_benchmark(bench, RunConfig::at_ghz(2.0).scaled(0.02))
            .expect_err("zero budget must expire");
        assert!(
            matches!(err, depburst_core::DepburstError::WatchdogExpired { .. }),
            "got {err}"
        );
    }

    #[test]
    fn zero_timeout_points_fail_as_timeouts() {
        use crate::resilience::{FailureCause, RetryPolicy};
        let bench = benchmark("lusearch").expect("exists");
        let mut plan = SweepPlan::new();
        plan.push(SimPoint::new(bench, Freq::from_ghz(2.0), 0.02, 1));
        let ctx = ExecCtx::new(1)
            .with_policy(RetryPolicy::none())
            .with_timeout(Some(Duration::ZERO));
        let err = ctx
            .execute(&plan)
            .expect_err("zero budget must fail the sweep");
        assert!(
            matches!(
                err,
                depburst_core::DepburstError::SweepIncomplete { failed: 1, total: 1 }
            ),
            "got {err}"
        );
        let failures = ctx.failures();
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].cause, FailureCause::Timeout);
        assert!(
            failures[0].detail.contains("watchdog"),
            "timeout detail must name the watchdog: {}",
            failures[0].detail
        );
    }
}
