//! Extension experiment: per-core DVFS with application/service thread
//! isolation.
//!
//! The paper leaves per-core DVFS as future work (§VII-A) and cites
//! Sartor et al. \[35\], who tease apart the performance impact of scaling
//! application vs. service (GC/JIT) threads in isolation. This experiment
//! reproduces that style of study on our substrate: application threads
//! are pinned to cores 0–2, service threads to core 3, and either group's
//! frequency is scaled while the other stays at 4 GHz.

use dacapo_sim::Benchmark;
use dvfs_trace::{CoreId, Freq};
use energyx::PowerModel;
use serde::Serialize;
use simx::{Machine, MachineConfig, RunOutcome};

use crate::report::{pct, TextTable};
use crate::run::ExecCtx;

/// Application threads on cores 0–2.
const APP_MASK: u8 = 0b0111;
/// Service threads (GC + JIT) on core 3.
const SERVICE_MASK: u8 = 0b1000;
/// The service core.
const SERVICE_CORE: CoreId = CoreId(3);

/// Which thread group is scaled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum ScaledGroup {
    /// Everything at 4 GHz (the pinned baseline).
    None,
    /// Only the service core is scaled.
    Service,
    /// Only the application cores are scaled.
    Application,
}

/// One configuration's outcome.
#[derive(Debug, Clone, Serialize)]
pub struct PerCoreRow {
    /// Benchmark name.
    pub benchmark: String,
    /// Which group was scaled.
    pub group: ScaledGroup,
    /// The scaled group's frequency (GHz).
    pub scaled_ghz: f64,
    /// Execution time (seconds).
    pub exec_s: f64,
    /// Slowdown vs. the pinned all-4 GHz baseline.
    pub slowdown: f64,
    /// Energy savings vs. the pinned all-4 GHz baseline.
    pub savings: f64,
}

/// Runs one pinned configuration and returns (exec seconds, energy J).
fn run_pinned(
    bench: &Benchmark,
    scale: f64,
    seed: u64,
    group: ScaledGroup,
    scaled: Freq,
    power: &PowerModel,
) -> depburst_core::Result<(f64, f64)> {
    let mut mc = MachineConfig::haswell_quad();
    mc.initial_freq = Freq::from_ghz(4.0);
    let mut machine = Machine::new(mc);

    let mut config = bench.runtime_config();
    config.mutator_affinity = Some(APP_MASK);
    config.service_affinity = Some(SERVICE_MASK);
    // Install with the pinned runtime config (mirrors Benchmark::install).
    install_with_config(bench, &mut machine, scale, seed, config);

    match group {
        ScaledGroup::None => {}
        ScaledGroup::Service => {
            machine.set_core_frequency(SERVICE_CORE, scaled)?;
        }
        ScaledGroup::Application => {
            for c in 0..3 {
                machine.set_core_frequency(CoreId(c), scaled)?;
            }
        }
    }

    let outcome = machine.run()?;
    let RunOutcome::Completed(end) = outcome else {
        unreachable!()
    };
    let exec = end.since(dvfs_trace::Time::ZERO);
    let stats = machine.stats();
    let freqs: Vec<Freq> = (0..4)
        .map(|c| machine.core_frequency(CoreId(c)))
        .collect();
    let energy = power.energy_of_heterogeneous_run(&freqs, exec, &stats.core_busy);
    Ok((exec.as_secs(), energy))
}

/// Installs a benchmark with a custom runtime config (affinity overrides).
fn install_with_config(
    bench: &Benchmark,
    machine: &mut Machine,
    scale: f64,
    seed: u64,
    config: mrt::RuntimeConfig,
) {
    use dacapo_sim::RoundSource;
    use mrt::WorkSource;
    // Rebuild the benchmark's sources exactly as Benchmark::install does.
    let sources: Vec<Box<dyn WorkSource>> = (0..bench.app_threads)
        .map(|t| {
            let params = bench.thread_round_params(t).scaled(scale);
            Box::new(RoundSource::new(
                params,
                mrt::AddressMap::app_region(t as u64),
                seed ^ ((t as u64 + 1) * 0x9E37_79B9),
            )) as Box<dyn WorkSource>
        })
        .collect();
    let (locks, barriers) = bench.sync_shape();
    mrt::ManagedRuntime::install(machine, config, sources, locks, &barriers);
}

/// Runs the study for one benchmark: scale each group through the given
/// frequencies.
///
/// # Panics
/// Panics if a run fails; prefer [`collect_with`] in binaries.
#[must_use]
pub fn collect(bench: &Benchmark, scale: f64, seed: u64) -> Vec<PerCoreRow> {
    collect_with(&ExecCtx::sequential(), bench, scale, seed)
        .unwrap_or_else(|e| panic!("percore: {e}"))
}

/// Runs the study on `ctx`: the six scaled configurations fan out across
/// workers under the context's resilience stack (the study is
/// complete-or-failed — any configuration dead after retries yields
/// `SweepIncomplete`). Pinned runs bypass the memo cache — their
/// per-core frequency overrides are not part of a plain cacheable point.
pub fn collect_with(
    ctx: &ExecCtx,
    bench: &Benchmark,
    scale: f64,
    seed: u64,
) -> depburst_core::Result<Vec<PerCoreRow>> {
    let power = PowerModel::haswell_22nm();
    let f4 = Freq::from_ghz(4.0);
    let (base_exec, base_energy) = run_pinned(bench, scale, seed, ScaledGroup::None, f4, &power)?;
    let mut rows = vec![PerCoreRow {
        benchmark: bench.name.to_owned(),
        group: ScaledGroup::None,
        scaled_ghz: 4.0,
        exec_s: base_exec,
        slowdown: 0.0,
        savings: 0.0,
    }];
    let mut grid = Vec::new();
    for group in [ScaledGroup::Service, ScaledGroup::Application] {
        for ghz in [3.0, 2.0, 1.0] {
            grid.push((
                format!("percore {}/{:?}@{ghz}", bench.name, group),
                (group, ghz),
            ));
        }
    }
    let scaled = ctx.collect_resilient(grid, |&(group, ghz), _attempt| {
        let (exec, energy) = run_pinned(bench, scale, seed, group, Freq::from_ghz(ghz), &power)?;
        Ok(PerCoreRow {
            benchmark: bench.name.to_owned(),
            group,
            scaled_ghz: ghz,
            exec_s: exec,
            slowdown: exec / base_exec - 1.0,
            savings: 1.0 - energy / base_energy,
        })
    })?;
    rows.extend(scaled);
    Ok(rows)
}

/// Renders one benchmark's table.
#[must_use]
pub fn render(rows: &[PerCoreRow]) -> String {
    let Some(first) = rows.first() else {
        return String::new();
    };
    let mut t = TextTable::new(&["scaled group", "frequency", "slowdown", "energy savings"]);
    for r in rows {
        t.row(vec![
            format!("{:?}", r.group),
            format!("{} GHz", r.scaled_ghz),
            pct(r.slowdown),
            pct(r.savings),
        ]);
    }
    format!(
        "per-core DVFS study on {} (apps on cores 0-2, services on core 3)\n{}",
        first.benchmark,
        t.render()
    )
}
