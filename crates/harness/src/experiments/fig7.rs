//! Figure 7: the dynamic energy manager vs the static-optimal oracle.
//!
//! The oracle sweeps fixed frequencies over the whole ladder, measures
//! energy with the same power model, and picks the minimum-energy point
//! whose measured slowdown stays within the same threshold the manager
//! honours. The dynamic manager can beat it on phase-y (memory-intensive)
//! applications because it adapts per quantum.

use dacapo_sim::{all_benchmarks, BenchClass, Benchmark};
use dvfs_trace::{Freq, FreqLadder};
use energyx::{static_optimal, PowerModel, StaticPoint, StaticSweep};
use serde::Serialize;
use simx::MachineConfig;

use super::fig6;
use crate::report::{pct, TextTable};
use crate::run::{run_benchmark, RunConfig};

/// One benchmark's Fig. 7 comparison.
#[derive(Debug, Clone, Serialize)]
pub struct Fig7Row {
    /// Benchmark name.
    pub benchmark: String,
    /// "M" or "C".
    pub class: String,
    /// The slowdown threshold both policies honour.
    pub threshold: f64,
    /// Dynamic manager savings vs. 4 GHz.
    pub dynamic_savings: f64,
    /// Static-optimal savings vs. 4 GHz.
    pub static_savings: f64,
    /// The static-optimal frequency (GHz).
    pub static_ghz: f64,
}

/// Sweeps constant frequencies for one benchmark. `step_mhz` coarsens the
/// ladder to bound the sweep's cost.
#[must_use]
pub fn sweep(bench: &Benchmark, scale: f64, seed: u64, power: &PowerModel, step_mhz: u32) -> StaticSweep {
    let ladder = FreqLadder::new(Freq::from_ghz(1.0), Freq::from_ghz(4.0), step_mhz)
        .expect("valid ladder");
    let cores = MachineConfig::haswell_quad().cores;
    let points = ladder
        .iter()
        .map(|freq| {
            let r = run_benchmark(bench, RunConfig { freq, scale, seed });
            StaticPoint {
                freq,
                exec: r.exec,
                energy_j: power.energy_of_run(freq, r.exec, r.stats.total_active(), cores),
            }
        })
        .collect();
    StaticSweep { points }
}

/// Runs the comparison for all benchmarks at one threshold.
#[must_use]
pub fn collect(threshold: f64, scale: f64, seed: u64, step_mhz: u32) -> Vec<Fig7Row> {
    let power = PowerModel::haswell_22nm();
    all_benchmarks()
        .iter()
        .map(|bench| {
            let dynamic = fig6::managed(bench, scale, seed, threshold);
            let s = sweep(bench, scale, seed, &power, step_mhz);
            let base = s.baseline().expect("sweep nonempty");
            let best =
                static_optimal(&s, Some(threshold)).expect("baseline always qualifies");
            Fig7Row {
                benchmark: bench.name.to_owned(),
                class: match bench.class {
                    BenchClass::Memory => "M".to_owned(),
                    BenchClass::Compute => "C".to_owned(),
                },
                threshold,
                dynamic_savings: dynamic.savings,
                static_savings: 1.0 - best.energy_j / base.energy_j,
                static_ghz: best.freq.ghz(),
            }
        })
        .collect()
}

/// Renders the table.
#[must_use]
pub fn render(rows: &[Fig7Row]) -> String {
    let Some(first) = rows.first() else {
        return String::new();
    };
    let mut t = TextTable::new(&[
        "benchmark",
        "type",
        "dynamic savings",
        "static-optimal savings",
        "static f*",
    ]);
    for r in rows {
        t.row(vec![
            r.benchmark.clone(),
            r.class.clone(),
            pct(r.dynamic_savings),
            pct(r.static_savings),
            format!("{:.3} GHz", r.static_ghz),
        ]);
    }
    let mem_dyn: Vec<f64> = rows
        .iter()
        .filter(|r| r.class == "M")
        .map(|r| r.dynamic_savings - r.static_savings)
        .collect();
    let adv = if mem_dyn.is_empty() {
        0.0
    } else {
        mem_dyn.iter().sum::<f64>() / mem_dyn.len() as f64
    };
    format!(
        "dynamic vs static-optimal, threshold {:.0}% (memory-intensive dynamic advantage {})\n{}",
        first.threshold * 100.0,
        pct(adv),
        t.render()
    )
}
