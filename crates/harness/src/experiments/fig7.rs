//! Figure 7: the dynamic energy manager vs the static-optimal oracle.
//!
//! The oracle sweeps fixed frequencies over the whole ladder, measures
//! energy with the same power model, and picks the minimum-energy point
//! whose measured slowdown stays within the same threshold the manager
//! honours. The dynamic manager can beat it on phase-y (memory-intensive)
//! applications because it adapts per quantum.

use dacapo_sim::{all_benchmarks, BenchClass, Benchmark};
use dvfs_trace::{Freq, FreqLadder};
use energyx::{static_optimal, PowerModel, StaticPoint, StaticSweep};
use serde::Serialize;
use simx::MachineConfig;

use super::fig6;
use crate::report::{pct, TextTable};
use crate::run::{ExecCtx, SimPoint, SweepPlan};

/// One benchmark's Fig. 7 comparison.
#[derive(Debug, Clone, Serialize)]
pub struct Fig7Row {
    /// Benchmark name.
    pub benchmark: String,
    /// "M" or "C".
    pub class: String,
    /// The slowdown threshold both policies honour.
    pub threshold: f64,
    /// Dynamic manager savings vs. 4 GHz.
    pub dynamic_savings: f64,
    /// Static-optimal savings vs. 4 GHz.
    pub static_savings: f64,
    /// The static-optimal frequency (GHz).
    pub static_ghz: f64,
}

/// Sweeps constant frequencies for one benchmark. `step_mhz` coarsens the
/// ladder to bound the sweep's cost.
///
/// # Panics
/// Panics if a run fails; prefer [`sweep_with`] in binaries.
#[must_use]
pub fn sweep(bench: &Benchmark, scale: f64, seed: u64, power: &PowerModel, step_mhz: u32) -> StaticSweep {
    sweep_with(&ExecCtx::sequential(), bench, scale, seed, power, step_mhz)
        .unwrap_or_else(|e| panic!("fig7 sweep: {e}"))
}

/// The constant-frequency sweep on `ctx`: every ladder point is a plain
/// cacheable run.
pub fn sweep_with(
    ctx: &ExecCtx,
    bench: &Benchmark,
    scale: f64,
    seed: u64,
    power: &PowerModel,
    step_mhz: u32,
) -> depburst_core::Result<StaticSweep> {
    let ladder = FreqLadder::new(Freq::from_ghz(1.0), Freq::from_ghz(4.0), step_mhz)
        .expect("valid ladder");
    let cores = MachineConfig::haswell_quad().cores;
    let Some(bench) = dacapo_sim::benchmark(bench.name) else {
        return Err(depburst_core::DepburstError::Machine {
            detail: format!("unknown benchmark {}", bench.name),
        });
    };
    let freqs: Vec<Freq> = ladder.iter().collect();
    let mut plan = SweepPlan::new();
    for &freq in &freqs {
        plan.push(SimPoint::new(bench, freq, scale, seed));
    }
    let results = ctx.execute(&plan)?;
    let points = freqs
        .iter()
        .zip(&results)
        .map(|(&freq, r)| StaticPoint {
            freq,
            exec: r.exec,
            energy_j: power.energy_of_run(freq, r.exec, r.total_active, cores),
        })
        .collect();
    Ok(StaticSweep { points })
}

/// Runs the comparison for all benchmarks at one threshold.
///
/// # Panics
/// Panics if a run fails; prefer [`collect_with`] in binaries.
#[must_use]
pub fn collect(threshold: f64, scale: f64, seed: u64, step_mhz: u32) -> Vec<Fig7Row> {
    collect_with(&ExecCtx::sequential(), threshold, scale, seed, step_mhz)
        .unwrap_or_else(|e| panic!("fig7: {e}"))
}

/// Runs the comparison on `ctx`'s pool: benchmarks fan out across
/// workers, and each benchmark's ladder points are memoized (the 4 GHz
/// point, for instance, is shared with the fig6 baseline). Benchmarks
/// run under the context's resilience stack; a benchmark that still
/// fails after retries fails the whole figure (`SweepIncomplete`) only
/// after the surviving ones finished and were cached/journaled.
pub fn collect_with(
    ctx: &ExecCtx,
    threshold: f64,
    scale: f64,
    seed: u64,
    step_mhz: u32,
) -> depburst_core::Result<Vec<Fig7Row>> {
    let power = PowerModel::haswell_22nm();
    let benches: Vec<(String, &Benchmark)> = all_benchmarks()
        .iter()
        .map(|b| (format!("fig7 {}", b.name), b))
        .collect();
    ctx.collect_resilient(benches, |bench, _attempt| {
        let dynamic = fig6::managed_with(ctx, bench, scale, seed, threshold)?;
        let s = sweep_with(ctx, bench, scale, seed, &power, step_mhz)?;
        let base = s.baseline().expect("sweep nonempty");
        let best = static_optimal(&s, Some(threshold)).expect("baseline always qualifies");
        Ok(Fig7Row {
            benchmark: bench.name.to_owned(),
            class: match bench.class {
                BenchClass::Memory => "M".to_owned(),
                BenchClass::Compute => "C".to_owned(),
            },
            threshold,
            dynamic_savings: dynamic.savings,
            static_savings: 1.0 - best.energy_j / base.energy_j,
            static_ghz: best.freq.ghz(),
        })
    })
}

/// Renders the table.
#[must_use]
pub fn render(rows: &[Fig7Row]) -> String {
    let Some(first) = rows.first() else {
        return String::new();
    };
    let mut t = TextTable::new(&[
        "benchmark",
        "type",
        "dynamic savings",
        "static-optimal savings",
        "static f*",
    ]);
    for r in rows {
        t.row(vec![
            r.benchmark.clone(),
            r.class.clone(),
            pct(r.dynamic_savings),
            pct(r.static_savings),
            format!("{:.3} GHz", r.static_ghz),
        ]);
    }
    let mem_dyn: Vec<f64> = rows
        .iter()
        .filter(|r| r.class == "M")
        .map(|r| r.dynamic_savings - r.static_savings)
        .collect();
    let adv = if mem_dyn.is_empty() {
        0.0
    } else {
        mem_dyn.iter().sum::<f64>() / mem_dyn.len() as f64
    };
    format!(
        "dynamic vs static-optimal, threshold {:.0}% (memory-intensive dynamic advantage {})\n{}",
        first.threshold * 100.0,
        pct(adv),
        t.render()
    )
}
