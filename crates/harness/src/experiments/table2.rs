//! Table II: the simulated system parameters.

use simx::MachineConfig;

use crate::report::TextTable;

/// Renders the machine configuration as the paper's Table II.
#[must_use]
pub fn render(config: &MachineConfig) -> String {
    let mut t = TextTable::new(&["component", "parameters"]);
    t.row(vec![
        "Processor".into(),
        format!("{} cores, 1.0 GHz to 4.0 GHz", config.cores),
    ]);
    t.row(vec![
        "Cache hierarchy".into(),
        format!(
            "L1-I/L1-D/L2 private, shared L3 ({})",
            config.uncore_freq
        ),
    ]);
    t.row(vec![
        "Capacity".into(),
        format!(
            "{} KB / {} KB / {} KB / {} MB",
            config.l1d.capacity / 1024,
            config.l1d.capacity / 1024,
            config.l2.capacity / 1024,
            config.l3.capacity / (1 << 20)
        ),
    ]);
    t.row(vec![
        "Latency".into(),
        format!(
            "{} / {} / {} / {} cycles",
            config.l1d.latency_cycles,
            config.l1d.latency_cycles,
            config.l2.latency_cycles,
            config.l3.latency_cycles
        ),
    ]);
    t.row(vec![
        "Set-associativity".into(),
        format!(
            "{} / {} / {}",
            config.l1d.associativity, config.l2.associativity, config.l3.associativity
        ),
    ]);
    t.row(vec![
        "Line size / replacement".into(),
        format!("{} B lines, LRU replacement", config.l1d.line_size),
    ]);
    t.row(vec![
        "DRAM".into(),
        format!(
            "{} banks, CAS {:.2} ns, row-miss +{:.1} ns",
            config.dram.banks,
            config.dram.cas.as_nanos(),
            config.dram.row_miss_penalty.as_nanos()
        ),
    ]);
    t.row(vec![
        "Store queue".into(),
        format!("{} entries", config.store_queue_entries),
    ]);
    t.row(vec![
        "DVFS transition".into(),
        format!("{:.1} us", config.dvfs_transition.as_micros()),
    ]);
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_ii_mentions_key_parameters() {
        let s = render(&MachineConfig::haswell_quad());
        assert!(s.contains("4 cores"));
        assert!(s.contains("4 MB"));
        assert!(s.contains("LRU"));
        assert!(s.contains("42 entries"));
    }
}
