//! Figure 4: per-epoch vs across-epoch critical-thread prediction, for
//! DEP+BURST in both prediction directions.
//!
//! Points execute on [`crate::run::ExecCtx`] and share its resilience
//! semantics: the figure is complete-or-failed (`SweepIncomplete` only
//! after the surviving points finished and were cached/journaled).

use dacapo_sim::all_benchmarks;
use depburst::{relative_error, Dep, DvfsPredictor, ErrorStats};
use serde::Serialize;

use super::fig3::Direction;
use crate::report::{pct, pct_abs, TextTable};
use crate::run::{ExecCtx, SimPoint, SweepPlan};

/// One benchmark's Fig. 4 numbers for one direction.
#[derive(Debug, Clone, Serialize)]
pub struct Fig4Row {
    /// Benchmark name.
    pub benchmark: String,
    /// Base frequency (GHz).
    pub base_ghz: f64,
    /// Target frequency (GHz).
    pub target_ghz: f64,
    /// Signed error with per-epoch CTP.
    pub per_epoch: f64,
    /// Signed error with across-epoch CTP (Algorithm 1).
    pub across_epoch: f64,
}

/// Runs the experiment for one direction, predicting the far frequency
/// (1 GHz ↔ 4 GHz, as the paper's Fig. 4 reports).
///
/// # Panics
/// Panics if a simulated run fails; prefer [`collect_with`] in binaries.
#[must_use]
pub fn collect(direction: Direction, scale: f64, seeds: &[u64]) -> Vec<Fig4Row> {
    collect_with(&ExecCtx::sequential(), direction, scale, seeds)
        .unwrap_or_else(|e| panic!("fig4: {e}"))
}

/// Runs the experiment on `ctx`'s pool and cache.
pub fn collect_with(
    ctx: &ExecCtx,
    direction: Direction,
    scale: f64,
    seeds: &[u64],
) -> depburst_core::Result<Vec<Fig4Row>> {
    let per = Dep::dep_burst_per_epoch();
    let across = Dep::dep_burst();
    let target = *direction
        .targets()
        .last()
        .expect("directions have three targets");
    let mut plan = SweepPlan::new();
    for bench in all_benchmarks() {
        for &seed in seeds {
            plan.push(SimPoint::new(bench, direction.base(), scale, seed));
            plan.push(SimPoint::new(bench, target, scale, seed));
        }
    }
    let results = ctx.execute(&plan)?;
    let mut next = results.iter();
    let mut rows = Vec::with_capacity(all_benchmarks().len());
    for bench in all_benchmarks() {
        let mut pe = Vec::with_capacity(seeds.len());
        let mut ae = Vec::with_capacity(seeds.len());
        for _seed in seeds {
            let base = next.next().expect("plan covers base run");
            let actual = next.next().expect("plan covers target run");
            pe.push(relative_error(
                base.rescale_prediction(per.predict(&base.trace, target)),
                actual.exec,
            ));
            ae.push(relative_error(
                base.rescale_prediction(across.predict(&base.trace, target)),
                actual.exec,
            ));
        }
        rows.push(Fig4Row {
            benchmark: bench.name.to_owned(),
            base_ghz: direction.base().ghz(),
            target_ghz: target.ghz(),
            per_epoch: pe.iter().sum::<f64>() / pe.len() as f64,
            across_epoch: ae.iter().sum::<f64>() / ae.len() as f64,
        });
    }
    Ok(rows)
}

/// Average absolute errors `(per_epoch, across_epoch)`.
#[must_use]
pub fn averages(rows: &[Fig4Row]) -> (f64, f64) {
    let pe: Vec<f64> = rows.iter().map(|r| r.per_epoch).collect();
    let ae: Vec<f64> = rows.iter().map(|r| r.across_epoch).collect();
    (
        ErrorStats::from_errors(&pe).mean_abs,
        ErrorStats::from_errors(&ae).mean_abs,
    )
}

/// Renders one direction's table.
#[must_use]
pub fn render(rows: &[Fig4Row]) -> String {
    let Some(first) = rows.first() else {
        return String::new();
    };
    let mut t = TextTable::new(&["benchmark", "per-epoch CTP", "across-epoch CTP"]);
    for r in rows {
        t.row(vec![
            r.benchmark.clone(),
            pct(r.per_epoch),
            pct(r.across_epoch),
        ]);
    }
    let (pe, ae) = averages(rows);
    t.row(vec!["avg |err|".into(), pct_abs(pe), pct_abs(ae)]);
    format!(
        "DEP+BURST, base {} GHz -> target {} GHz\n{}",
        first.base_ghz,
        first.target_ghz,
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn averages_are_mean_absolute() {
        let rows = vec![
            Fig4Row {
                benchmark: "a".into(),
                base_ghz: 1.0,
                target_ghz: 4.0,
                per_epoch: 0.2,
                across_epoch: -0.05,
            },
            Fig4Row {
                benchmark: "b".into(),
                base_ghz: 1.0,
                target_ghz: 4.0,
                per_epoch: -0.1,
                across_epoch: 0.01,
            },
        ];
        let (pe, ae) = averages(&rows);
        assert!((pe - 0.15).abs() < 1e-12);
        assert!((ae - 0.03).abs() < 1e-12);
        let s = render(&rows);
        assert!(s.contains("per-epoch CTP"));
        assert!(s.contains("avg |err|"));
    }
}
