//! Crash-consistency torture: prove the durable layer's contract under
//! injected storage faults.
//!
//! The contract (ISSUE 9): a run killed at *any* VFS operation and
//! restarted with `--resume` must produce output byte-identical to an
//! uninterrupted run — or fail closed with a structured
//! [`FailureCause::Storage`] exit. Never silent corruption. This module
//! sweeps that contract across four phases over a small fig. 3 run:
//!
//! 0. **Census** — the reference output with [`RealVfs`], then the same
//!    pass through an *inert* [`FaultyVfs`]: the injector at zero
//!    intensity must be bit-identical to the real filesystem (the same
//!    identity discipline `simx::faults` maintains), and its operation
//!    counter sizes the crash-point coordinate space.
//! 1. **Crash-point sweep** — for each selected operation index: run with
//!    a crash point there (power loss truncates unsynced file tails,
//!    every later operation fails), then resume against the real
//!    filesystem over the surviving bytes and classify the outcome as
//!    byte-identical, failed-closed, or silent corruption.
//! 2. **Bit-flip sweep** — flip single bits at evenly-strided positions
//!    of a persisted cache envelope; every flip must be detected (the
//!    envelope quarantined, the truth recomputed), never served.
//! 3. **Soak** — two passes at a uniform fault intensity over one shared
//!    cache directory and a resumed journal, exercising torn appends,
//!    dropped fsyncs, failed renames, ENOSPC windows, and read-side bit
//!    rot together; both outputs must equal the reference.
//!
//! Everything is seeded and deterministic (`jobs = 1`, so the fault
//! schedule is a pure function of the operation sequence). The `torture`
//! binary renders the report and exits nonzero on any contract breach.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use serde::Serialize;

use crate::cache::{SimCache, SimKey};
use crate::checkpoint::Journal;
use crate::experiments::fig3::{self, Direction};
use crate::resilience::{FailureCause, PointFailure, RetryPolicy};
use crate::run::ExecCtx;
use crate::vfs::{FaultyVfs, StorageFaultConfig, StorageFaultStats};

/// The torture sweep's knobs. Defaults are the acceptance-criteria run:
/// every operation index crash-tested at stride 1 for the first
/// [`dense`](Self::dense) ops, strided beyond, 64 bit flips, a 0.3
/// soak. CI uses a much smaller smoke configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TortureConfig {
    /// Work scale of the underlying fig. 3 run.
    pub scale: f64,
    /// Workload seed of the underlying fig. 3 run.
    pub seed: u64,
    /// Crash-test every operation index below this at stride 1.
    pub dense: u64,
    /// Stride between crash points beyond the dense prefix.
    pub stride: u64,
    /// Hard cap on swept crash points (0 = unlimited).
    pub max_points: usize,
    /// Single-bit flips injected into a persisted envelope.
    pub bitflips: usize,
    /// Fault intensity of the soak phase (see
    /// [`StorageFaultConfig::uniform`]).
    pub soak_intensity: f64,
    /// Master seed for every injector the sweep builds.
    pub storage_seed: u64,
}

impl Default for TortureConfig {
    fn default() -> Self {
        TortureConfig {
            scale: 0.02,
            seed: 1,
            dense: 200,
            stride: 17,
            max_points: 0,
            bitflips: 64,
            soak_intensity: 0.3,
            storage_seed: 0xD15C,
        }
    }
}

/// What the sweep found, one run = one report.
#[derive(Debug, Clone, Serialize)]
pub struct TortureReport {
    /// Work scale of the underlying fig. 3 run.
    pub scale: f64,
    /// Workload seed of the underlying fig. 3 run.
    pub seed: u64,
    /// VFS operations in one uninterrupted pass (the census).
    pub total_ops: u64,
    /// Whether the inert injector reproduced the reference output
    /// byte-identically (it must).
    pub inert_identical: bool,
    /// Crash points swept.
    pub crash_points: usize,
    /// Crash points whose resumed output was byte-identical.
    pub identical: usize,
    /// Crash points where the run failed closed with structured storage
    /// failures instead of resuming to identical output.
    pub failed_closed: usize,
    /// Crash points that produced wrong output or an unstructured
    /// failure — the contract breach this harness exists to catch.
    pub silent_corruptions: usize,
    /// Bit flips injected into a persisted envelope.
    pub bitflips: usize,
    /// Flips detected: envelope quarantined, truth recomputed.
    pub bitflips_detected: usize,
    /// Flips that were served from disk — corrupted data reached a
    /// consumer. Must be zero.
    pub bitflips_missed: usize,
    /// Whether both soak passes reproduced the reference output.
    pub soak_identical: bool,
    /// Everything the two soak passes injected, summed.
    pub soak_faults: StorageFaultStats,
    /// The crash points behind `failed_closed`.
    pub failed_closed_points: Vec<u64>,
    /// The crash points behind `silent_corruptions`.
    pub silent_points: Vec<u64>,
}

impl TortureReport {
    /// True when every contract the sweep checks held.
    #[must_use]
    pub fn clean(&self) -> bool {
        self.inert_identical
            && self.silent_corruptions == 0
            && self.bitflips_missed == 0
            && self.soak_identical
    }

    /// The human-readable report.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "storage-fault torture: fig3 @ scale {} seed {}\n",
            self.scale, self.seed
        ));
        out.push_str(&format!(
            "census: {} VFS ops per pass; inert injector bit-identical: {}\n",
            self.total_ops,
            if self.inert_identical { "yes" } else { "NO" }
        ));
        out.push_str(&format!(
            "crash points swept: {}\n  byte-identical after resume: {}\n  \
             failed closed (structured storage exit): {}\n  SILENT CORRUPTIONS: {}\n",
            self.crash_points, self.identical, self.failed_closed, self.silent_corruptions
        ));
        if !self.failed_closed_points.is_empty() {
            out.push_str(&format!("  failed-closed at ops: {:?}\n", self.failed_closed_points));
        }
        if !self.silent_points.is_empty() {
            out.push_str(&format!("  SILENT at ops: {:?}\n", self.silent_points));
        }
        out.push_str(&format!(
            "bit-flips: {}/{} detected ({} MISSED)\n",
            self.bitflips_detected, self.bitflips, self.bitflips_missed
        ));
        let s = &self.soak_faults;
        out.push_str(&format!(
            "soak: output identical across both passes: {}\n  injected: {} ops, {} torn writes, \
             {} dropped fsyncs, {} rename failures, {} enospc, {} corrupted reads\n",
            if self.soak_identical { "yes" } else { "NO" },
            s.ops, s.torn_writes, s.dropped_fsyncs, s.rename_failures, s.enospc_failures,
            s.corrupted_reads
        ));
        out.push_str(if self.clean() {
            "verdict: PASS (zero silent corruptions, all flips detected)\n"
        } else {
            "verdict: FAIL\n"
        });
        out
    }
}

/// The fig. 3 output whose byte-identity the whole sweep is about: one
/// direction (base 1 GHz) of the paper's figure, all three target
/// renders concatenated.
fn fig3_output(ctx: &ExecCtx, scale: f64, seed: u64) -> depburst_core::Result<String> {
    let cells = fig3::collect_with(ctx, Direction::LowToHigh, scale, &[seed])?;
    let mut out = String::new();
    for target in [2.0, 3.0, 4.0] {
        out.push_str(&fig3::render(&cells, target));
        out.push('\n');
    }
    Ok(out)
}

/// One pass's observable outcome.
struct PassOutcome {
    output: depburst_core::Result<String>,
    failures: Vec<PointFailure>,
    stats: Option<StorageFaultStats>,
}

/// The per-pass scratch locations inside the torture workdir.
struct PassDirs {
    cache: PathBuf,
    journal: PathBuf,
}

impl PassDirs {
    fn under(workdir: &Path, name: &str) -> Self {
        PassDirs {
            cache: workdir.join(format!("{name}-cache")),
            journal: workdir.join(format!("{name}.jsonl")),
        }
    }

    /// Removes every byte this pass family has written.
    fn clean(&self) {
        let _ = std::fs::remove_dir_all(&self.cache);
        let _ = std::fs::remove_file(&self.journal);
    }
}

/// Runs one fig. 3 pass: fresh context, one worker (the fault schedule
/// must be a pure function of the operation sequence), no retries (a
/// retried storage failure would consume extra fault draws), persistent
/// cache and journal in `dirs`, all durable I/O through `storage` when
/// given. `resume` replays the existing journal instead of truncating.
fn run_pass(
    dirs: &PassDirs,
    scale: f64,
    seed: u64,
    storage: Option<Arc<FaultyVfs>>,
    resume: bool,
) -> PassOutcome {
    let mut ctx = ExecCtx::new(1)
        .with_policy(RetryPolicy::none())
        .with_cache(SimCache::persistent(&dirs.cache));
    if let Some(vfs) = storage {
        ctx = ctx.with_storage(vfs);
    }
    let journal = if resume {
        Journal::resume_at_with(&dirs.journal, ctx.storage_vfs())
    } else {
        Journal::create_at_with(&dirs.journal, ctx.storage_vfs())
    };
    match journal {
        Ok(journal) => ctx = ctx.with_journal(journal),
        // A crash or fault during journal creation: the pass continues
        // journal-less, exactly like a binary whose journal directory
        // filled up. The crash itself still fails the sweep's points.
        Err(create_err) => eprintln!("torture: pass has no journal ({create_err})"),
    }
    let output = fig3_output(&ctx, scale, seed);
    PassOutcome {
        output,
        failures: ctx.failures(),
        stats: ctx.storage().map(|s| s.stats()),
    }
}

/// The crash-point indices `cfg` selects out of `total_ops` operations:
/// every index below `dense`, then every `stride`-th, capped at
/// `max_points`.
fn crash_points(cfg: &TortureConfig, total_ops: u64) -> Vec<u64> {
    let mut points: Vec<u64> = (0..total_ops.min(cfg.dense)).collect();
    let mut next = cfg.dense;
    while next < total_ops {
        points.push(next);
        next += cfg.stride.max(1);
    }
    if cfg.max_points > 0 {
        points.truncate(cfg.max_points);
    }
    points
}

fn add_stats(a: StorageFaultStats, b: StorageFaultStats) -> StorageFaultStats {
    StorageFaultStats {
        ops: a.ops + b.ops,
        torn_writes: a.torn_writes + b.torn_writes,
        dropped_fsyncs: a.dropped_fsyncs + b.dropped_fsyncs,
        rename_failures: a.rename_failures + b.rename_failures,
        enospc_failures: a.enospc_failures + b.enospc_failures,
        corrupted_reads: a.corrupted_reads + b.corrupted_reads,
        files_truncated_at_crash: a.files_truncated_at_crash + b.files_truncated_at_crash,
        crashed: a.crashed || b.crashed,
    }
}

/// Runs the full torture sweep. Progress goes to stderr; the returned
/// report is the single source of truth for pass/fail.
///
/// # Errors
/// Only infrastructure failures (the reference pass itself failing, no
/// envelope to flip) error out; contract breaches are *reported*, not
/// errored, so the binary can render them before exiting nonzero.
pub fn run(cfg: &TortureConfig) -> Result<TortureReport, Box<dyn std::error::Error>> {
    let workdir =
        std::env::temp_dir().join(format!("depburst-torture-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&workdir);
    std::fs::create_dir_all(&workdir)?;

    // Phase 0a: the reference output, plain real filesystem.
    eprintln!("torture: reference pass (RealVfs)");
    let ref_dirs = PassDirs::under(&workdir, "reference");
    let reference = run_pass(&ref_dirs, cfg.scale, cfg.seed, None, false)
        .output
        .map_err(|e| format!("reference pass failed: {e}"))?;
    ref_dirs.clean();

    // Phase 0b: census — the inert injector must change nothing and
    // tells us how many operations one pass performs.
    eprintln!("torture: census pass (inert injector)");
    let census_dirs = PassDirs::under(&workdir, "census");
    let census_vfs = Arc::new(FaultyVfs::new(StorageFaultConfig::none(cfg.storage_seed)));
    let census = run_pass(
        &census_dirs,
        cfg.scale,
        cfg.seed,
        Some(Arc::clone(&census_vfs)),
        false,
    );
    let inert_identical = census.output.as_deref() == Ok(reference.as_str());
    let total_ops = census_vfs.op_count();
    census_dirs.clean();
    eprintln!("torture: {total_ops} VFS ops per pass; inert identical: {inert_identical}");

    // Phase 1: the crash-point sweep.
    let points = crash_points(cfg, total_ops);
    let mut identical = 0usize;
    let mut failed_closed_points: Vec<u64> = Vec::new();
    let mut silent_points: Vec<u64> = Vec::new();
    let crash_dirs = PassDirs::under(&workdir, "crash");
    for (i, &point) in points.iter().enumerate() {
        if i % 25 == 0 {
            eprintln!("torture: crash point {}/{} (op {point})", i + 1, points.len());
        }
        crash_dirs.clean();
        let faulty = Arc::new(FaultyVfs::new(StorageFaultConfig::crash_at(
            point,
            cfg.storage_seed,
        )));
        let crash = run_pass(&crash_dirs, cfg.scale, cfg.seed, Some(faulty), false);
        // A crash landing after the last result was assembled can let the
        // pass complete; its output must then already be correct.
        if let Ok(out) = &crash.output {
            if *out != reference {
                silent_points.push(point);
                continue;
            }
        }
        // The machine "rebooted": resume over whatever bytes survived.
        let resumed = run_pass(&crash_dirs, cfg.scale, cfg.seed, None, true);
        match &resumed.output {
            Ok(out) if *out == reference => identical += 1,
            Ok(_) => silent_points.push(point),
            Err(_) => {
                // Failing closed is within contract only when every
                // recorded failure is a structured storage failure.
                let structured = !resumed.failures.is_empty()
                    && resumed
                        .failures
                        .iter()
                        .all(|f| f.cause == FailureCause::Storage);
                if structured {
                    failed_closed_points.push(point);
                } else {
                    silent_points.push(point);
                }
            }
        }
    }
    crash_dirs.clean();

    // Phase 2: the bit-flip sweep over one persisted envelope.
    eprintln!("torture: bit-flip sweep ({} flips)", cfg.bitflips);
    let (bitflips_detected, bitflips_missed) =
        bitflip_sweep(&workdir, cfg).map_err(|e| format!("bit-flip sweep: {e}"))?;

    // Phase 3: the soak — every probabilistic fault class at once, two
    // passes over one cache directory and a resumed journal.
    eprintln!("torture: soak @ intensity {}", cfg.soak_intensity);
    let soak_dirs = PassDirs::under(&workdir, "soak");
    let soak_a = run_pass(
        &soak_dirs,
        cfg.scale,
        cfg.seed,
        Some(Arc::new(FaultyVfs::new(StorageFaultConfig::uniform(
            cfg.soak_intensity,
            cfg.storage_seed,
        )))),
        false,
    );
    // Pass B reads pass A's surviving envelopes and journal through a
    // *differently seeded* injector: replay and load paths meet read-side
    // corruption and fresh write faults.
    let soak_b = run_pass(
        &soak_dirs,
        cfg.scale,
        cfg.seed,
        Some(Arc::new(FaultyVfs::new(StorageFaultConfig::uniform(
            cfg.soak_intensity,
            cfg.storage_seed.wrapping_add(1),
        )))),
        true,
    );
    let soak_identical = soak_a.output.as_deref() == Ok(reference.as_str())
        && soak_b.output.as_deref() == Ok(reference.as_str());
    let soak_faults = add_stats(
        soak_a.stats.unwrap_or_default(),
        soak_b.stats.unwrap_or_default(),
    );
    soak_dirs.clean();
    let _ = std::fs::remove_dir_all(&workdir);

    Ok(TortureReport {
        scale: cfg.scale,
        seed: cfg.seed,
        total_ops,
        inert_identical,
        crash_points: points.len(),
        identical,
        failed_closed: failed_closed_points.len(),
        silent_corruptions: silent_points.len(),
        bitflips: cfg.bitflips,
        bitflips_detected,
        bitflips_missed,
        soak_identical,
        soak_faults,
        failed_closed_points,
        silent_points,
    })
}

/// Persists one real envelope, then flips one bit at a time at evenly
/// strided positions (covering header and payload alike) and checks each
/// flip is caught: the envelope quarantined and the truth recomputed,
/// never the flipped bytes served. Returns `(detected, missed)`.
fn bitflip_sweep(
    workdir: &Path,
    cfg: &TortureConfig,
) -> Result<(usize, usize), Box<dyn std::error::Error>> {
    let flip_root = workdir.join("flip-cache");
    let seeder = ExecCtx::new(1)
        .with_policy(RetryPolicy::none())
        .with_cache(SimCache::persistent(&flip_root));
    let bench = dacapo_sim::benchmark("lusearch").ok_or("lusearch exists")?;
    let mut plan = crate::run::SweepPlan::new();
    plan.push(crate::run::SimPoint::new(
        bench,
        dvfs_trace::Freq::from_ghz(2.0),
        cfg.scale,
        cfg.seed,
    ));
    let truth = seeder
        .execute(&plan)
        .map_err(|e| format!("seeding run failed: {e}"))?
        .remove(0);
    // The envelope the seeding run just persisted (exactly one).
    let schema_dir = flip_root.join(format!("v{}", crate::cache::SCHEMA_VERSION));
    let envelope_path = std::fs::read_dir(&schema_dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .find(|p| p.extension().is_some_and(|x| x == "json"))
        .ok_or("no persisted envelope to flip")?;
    let key_hex = envelope_path
        .file_stem()
        .and_then(|s| s.to_str())
        .ok_or("envelope file name")?;
    let key = SimKey(u128::from_str_radix(key_hex, 16)?);
    let good = std::fs::read(&envelope_path)?;
    let total_bits = good.len() * 8;

    let mut detected = 0usize;
    let mut missed = 0usize;
    for i in 0..cfg.bitflips {
        let bit = i * total_bits / cfg.bitflips.max(1);
        let mut bad = good.clone();
        bad[bit / 8] ^= 1 << (bit % 8);
        std::fs::write(&envelope_path, &bad)?;
        let probe = SimCache::persistent(&flip_root);
        let served = probe
            .get_or_compute(key, || Ok((*truth).clone()))
            .map_err(|e| format!("probe failed at bit {bit}: {e}"))?;
        let stats = probe.stats();
        if stats.disk_hits == 0 && stats.quarantined == 1 && *served == *truth {
            detected += 1;
        } else {
            missed += 1;
            eprintln!(
                "torture: bit {bit} NOT caught (disk_hits {}, quarantined {}, equal {})",
                stats.disk_hits,
                stats.quarantined,
                *served == *truth
            );
        }
        // Restore the slot for the next flip.
        let _ = std::fs::remove_dir_all(flip_root.join("quarantine"));
        std::fs::write(&envelope_path, &good)?;
    }
    let _ = std::fs::remove_dir_all(&flip_root);
    Ok((detected, missed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_points_are_dense_then_strided_and_capped() {
        let cfg = TortureConfig {
            dense: 4,
            stride: 10,
            max_points: 0,
            ..TortureConfig::default()
        };
        assert_eq!(crash_points(&cfg, 30), vec![0, 1, 2, 3, 4, 14, 24]);
        // Fewer ops than the dense prefix: every op is a point.
        assert_eq!(crash_points(&cfg, 3), vec![0, 1, 2]);
        // The cap truncates from the front (dense points first).
        let capped = TortureConfig {
            max_points: 5,
            ..cfg
        };
        assert_eq!(crash_points(&capped, 30), vec![0, 1, 2, 3, 4]);
        assert!(crash_points(&cfg, 0).is_empty());
    }

    #[test]
    fn report_renders_verdict_and_counts() {
        let report = TortureReport {
            scale: 0.02,
            seed: 1,
            total_ops: 150,
            inert_identical: true,
            crash_points: 150,
            identical: 149,
            failed_closed: 1,
            silent_corruptions: 0,
            bitflips: 64,
            bitflips_detected: 64,
            bitflips_missed: 0,
            soak_identical: true,
            soak_faults: StorageFaultStats::default(),
            failed_closed_points: vec![7],
            silent_points: vec![],
        };
        assert!(report.clean());
        let text = report.render();
        assert!(text.contains("SILENT CORRUPTIONS: 0"));
        assert!(text.contains("bit-flips: 64/64 detected"));
        assert!(text.contains("verdict: PASS"));
        let broken = TortureReport {
            silent_corruptions: 1,
            silent_points: vec![33],
            ..report
        };
        assert!(!broken.clean());
        assert!(broken.render().contains("verdict: FAIL"));
    }
}
