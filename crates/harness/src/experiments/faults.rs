//! Fault-injection sweep: predictor accuracy and managed-energy
//! degradation under each injected fault class (the robustness companion
//! to Figs. 3 and 6).
//!
//! For every (benchmark, fault class, intensity) cell the sweep reports:
//!
//! * **prediction error** — relative error of DEP+BURST and M+CRIT
//!   predicting the 4 GHz execution time from a 2 GHz trace whose
//!   harvest passed through the fault injector (averaged over several
//!   injector seeds so probabilistic classes show their expected effect);
//! * **managed degradation** — slowdown and *ground-truth* energy savings
//!   of the hardened DEP+BURST energy manager running against a machine
//!   with the fault installed, vs. the clean always-4 GHz baseline, plus
//!   how often the graceful-degradation machinery engaged.
//!
//! One `none` anchor row per benchmark pins the fault-free behaviour the
//! degraded cells are read against.

use dacapo_sim::{benchmark, Benchmark};
use depburst::{Dep, DvfsPredictor, MCrit, NonScalingModel};
use dvfs_trace::{ExecutionTrace, Freq};
use energyx::{EnergyManager, ManagerConfig, PowerModel};
use serde::Serialize;
use simx::{FaultClass, FaultConfig, FaultInjector, Machine, MachineConfig};

use super::fig6;
use crate::report::{pct, pct_abs, TextTable};
use crate::run::{ExecCtx, SimPoint, SweepPlan};

/// Independent injector seeds averaged per prediction-error cell.
const PREDICTION_SAMPLES: u64 = 8;

/// The benchmarks swept (one memory-intensive, one compute-intensive).
pub const SWEEP_BENCHMARKS: [&str; 2] = ["lusearch", "sunflow"];

/// One (benchmark, fault class, intensity) cell of the sweep.
#[derive(Debug, Clone, Serialize)]
pub struct FaultsRow {
    /// Benchmark name.
    pub benchmark: String,
    /// Fault class name, or `"none"` for the anchor row.
    pub fault: String,
    /// Fault intensity in `[0, 1]`.
    pub intensity: f64,
    /// Mean relative 4 GHz prediction error of DEP+BURST on faulted traces.
    pub dep_err: f64,
    /// Mean relative 4 GHz prediction error of M+CRIT+BURST on the same.
    pub mcrit_err: f64,
    /// Managed slowdown vs. the clean always-4 GHz baseline.
    pub slowdown: f64,
    /// Ground-truth energy savings vs. the clean always-4 GHz baseline.
    pub savings: f64,
    /// Fallback-to-max engagements during the managed run.
    pub fallbacks: u64,
    /// DVFS transitions the platform denied during the managed run.
    pub denied: u64,
}

fn rel_err(predicted: f64, truth: f64) -> f64 {
    if !predicted.is_finite() || truth <= 0.0 {
        return 1.0;
    }
    (predicted - truth).abs() / truth
}

/// Fault configuration for one cell (`None` class = inert anchor).
fn cell_config(class: Option<FaultClass>, intensity: f64, seed: u64) -> FaultConfig {
    match class {
        Some(c) => FaultConfig::single(c, intensity, seed),
        None => FaultConfig::none(seed),
    }
}

/// Evaluates one sweep cell. `clean_trace` was measured at 2 GHz,
/// `truth_secs` is the measured clean 4 GHz execution time, and
/// `(base_exec, base_energy)` is the clean always-4 GHz baseline.
/// `attempt` redraws the injector seeds on retry (attempt 0 keeps them
/// bit-identical to the pre-retry harness) so a transient injected fault
/// can clear on the next try while the workload itself stays fixed.
#[allow(clippy::too_many_arguments)]
fn evaluate(
    bench: &Benchmark,
    class: Option<FaultClass>,
    intensity: f64,
    scale: f64,
    seed: u64,
    attempt: u32,
    threshold: f64,
    clean_trace: &ExecutionTrace,
    truth_secs: f64,
    base_exec: f64,
    base_energy: f64,
) -> depburst_core::Result<FaultsRow> {
    let dep = Dep::dep_burst();
    let mcrit = MCrit::new(NonScalingModel::Crit, true);
    let f4 = Freq::from_ghz(4.0);
    let fault_seed = simx::faults::retry_seed(seed, attempt);
    let mut dep_err = 0.0;
    let mut mcrit_err = 0.0;
    for k in 0..PREDICTION_SAMPLES {
        let sample_seed = fault_seed.wrapping_add(k.wrapping_mul(0x9E37_79B9));
        let corrupted = FaultInjector::new(cell_config(class, intensity, sample_seed))
            .filter_harvest(clean_trace.clone());
        dep_err += rel_err(dep.predict(&corrupted, f4).as_secs(), truth_secs);
        mcrit_err += rel_err(mcrit.predict(&corrupted, f4).as_secs(), truth_secs);
    }
    dep_err /= PREDICTION_SAMPLES as f64;
    mcrit_err /= PREDICTION_SAMPLES as f64;

    let mut mc = MachineConfig::haswell_quad();
    mc.initial_freq = f4;
    let mut machine = Machine::new(mc);
    bench.install(&mut machine, scale, seed);
    machine.install_faults(cell_config(class, intensity, fault_seed));
    let manager = EnergyManager::new(
        ManagerConfig::hardened(threshold),
        Box::new(Dep::dep_burst()),
    );
    let report = manager.run(&mut machine)?;

    Ok(FaultsRow {
        benchmark: bench.name.to_owned(),
        fault: class.map_or_else(|| "none".to_owned(), |c| c.name().to_owned()),
        intensity,
        dep_err,
        mcrit_err,
        slowdown: report.exec.as_secs() / base_exec - 1.0,
        savings: 1.0 - report.true_energy_j / base_energy,
        fallbacks: report.fallback_engagements,
        denied: report.denied_transitions,
    })
}

/// Runs the full sweep: every fault class at every intensity (plus one
/// fault-free anchor row) for each benchmark in [`SWEEP_BENCHMARKS`].
///
/// # Panics
/// Panics if a run fails; prefer [`collect_with`] in binaries.
#[must_use]
pub fn collect(scale: f64, seed: u64, threshold: f64, intensities: &[f64]) -> Vec<FaultsRow> {
    collect_with(&ExecCtx::sequential(), scale, seed, threshold, intensities, None)
        .unwrap_or_else(|e| panic!("faults: {e}"))
}

/// Runs the full sweep on `ctx`: the clean 2/4 GHz measurements are
/// cacheable points, the baseline is shared with fig6, and the faulted
/// managed cells fan out across workers (uncached — the injector mutates
/// machine state mid-run).
///
/// `panic_point` appends one seeded [`FaultClass::PanicPoint`] cell per
/// benchmark that panics *inside point evaluation* with the given
/// probability. Unlike the other experiments this sweep is
/// partial-by-design: cells that still fail after retries are dropped
/// from the returned rows and recorded on `ctx` (so the binary writes
/// `results/faults_failures.json` and exits 2), while every surviving
/// cell keeps its row.
pub fn collect_with(
    ctx: &ExecCtx,
    scale: f64,
    seed: u64,
    threshold: f64,
    intensities: &[f64],
    panic_point: Option<f64>,
) -> depburst_core::Result<Vec<FaultsRow>> {
    let power = PowerModel::haswell_22nm();
    let mut rows = Vec::new();
    for name in SWEEP_BENCHMARKS {
        let Some(bench) = benchmark(name) else {
            return Err(depburst_core::DepburstError::Machine {
                detail: format!("unknown sweep benchmark {name}"),
            });
        };
        let mut plan = SweepPlan::new();
        plan.push(SimPoint::new(bench, Freq::from_ghz(2.0), scale, seed));
        plan.push(SimPoint::new(bench, Freq::from_ghz(4.0), scale, seed));
        let measured = ctx.execute(&plan)?;
        let (clean, truth) = (&measured[0], &measured[1]);
        let (base_exec, base_energy) = fig6::baseline_with(ctx, bench, scale, seed, &power)?;
        let mut cells: Vec<(Option<FaultClass>, f64)> = vec![(None, 0.0)];
        for class in FaultClass::ALL {
            for &intensity in intensities {
                cells.push((Some(class), intensity));
            }
        }
        if let Some(p) = panic_point {
            cells.push((Some(FaultClass::PanicPoint), p));
        }
        let labelled: Vec<(String, (Option<FaultClass>, f64))> = cells
            .into_iter()
            .map(|(class, intensity)| {
                let fault = class.map_or("none", |c| c.name());
                (format!("{name}/{fault}@{intensity:.2}"), (class, intensity))
            })
            .collect();
        let evaluated = ctx.map_resilient(labelled, |&(class, intensity), attempt| {
            evaluate(
                bench,
                class,
                intensity,
                scale,
                seed,
                attempt,
                threshold,
                &clean.trace,
                truth.exec.as_secs(),
                base_exec,
                base_energy,
            )
        });
        for outcome in evaluated {
            match outcome {
                Ok(row) => rows.push(row),
                Err(failure) => ctx.record_failure(failure),
            }
        }
    }
    Ok(rows)
}

/// Renders the degradation table.
#[must_use]
pub fn render(rows: &[FaultsRow]) -> String {
    let mut t = TextTable::new(&[
        "benchmark",
        "fault",
        "intensity",
        "DEP+BURST err",
        "M+CRIT err",
        "slowdown",
        "true savings",
        "fallbacks",
        "denied",
    ]);
    for r in rows {
        t.row(vec![
            r.benchmark.clone(),
            r.fault.clone(),
            format!("{:.2}", r.intensity),
            pct_abs(r.dep_err),
            pct_abs(r.mcrit_err),
            pct(r.slowdown),
            pct(r.savings),
            r.fallbacks.to_string(),
            r.denied.to_string(),
        ]);
    }
    format!(
        "fault injection: prediction error and hardened-manager degradation\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_includes_anchor_and_cells() {
        let rows = vec![
            FaultsRow {
                benchmark: "lusearch".into(),
                fault: "none".into(),
                intensity: 0.0,
                dep_err: 0.02,
                mcrit_err: 0.08,
                slowdown: 0.04,
                savings: 0.15,
                fallbacks: 0,
                denied: 0,
            },
            FaultsRow {
                benchmark: "lusearch".into(),
                fault: "counter-dropout".into(),
                intensity: 1.0,
                dep_err: 1.0,
                mcrit_err: 1.0,
                slowdown: 0.0,
                savings: 0.0,
                fallbacks: 3,
                denied: 0,
            },
        ];
        let s = render(&rows);
        assert!(s.contains("none"));
        assert!(s.contains("counter-dropout"));
        assert!(s.contains("+15.0%"));
    }

    #[test]
    fn rel_err_guards_degenerate_inputs() {
        assert_eq!(rel_err(f64::NAN, 1.0), 1.0);
        assert_eq!(rel_err(1.0, 0.0), 1.0);
        assert!((rel_err(1.1, 1.0) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn sweep_cell_under_dropout_engages_fallback() {
        // One cell of the real sweep, tiny scale: full dropout must leave
        // the hardened manager pinned at max frequency (≈0% slowdown, ≈0%
        // savings) with the fallback engaged, while the anchor cell saves
        // energy without fallbacks.
        let rows = collect(0.02, 1, 0.10, &[1.0]);
        let anchor = rows
            .iter()
            .find(|r| r.benchmark == "lusearch" && r.fault == "none")
            .expect("anchor row");
        assert_eq!(anchor.fallbacks, 0);
        assert!(anchor.dep_err < 0.25, "clean DEP err {}", anchor.dep_err);
        let dropped = rows
            .iter()
            .find(|r| r.benchmark == "lusearch" && r.fault == "counter-dropout")
            .expect("dropout row");
        assert!(dropped.fallbacks >= 1, "dropout must engage fallback");
        assert!(
            dropped.slowdown < anchor.slowdown + 0.05,
            "fallback must not slow the run down: {} vs {}",
            dropped.slowdown,
            anchor.slowdown
        );
    }

    #[test]
    fn panic_point_cells_are_isolated_and_recorded() {
        use crate::resilience::{FailureCause, RetryPolicy};
        // A certain panic-point cell per benchmark (probability 1.0, no
        // retries, no other intensities): the anchor cells must survive,
        // the panicking cells must be dropped from the rows and recorded
        // as structured failures on the context.
        let ctx = ExecCtx::new(2).with_policy(RetryPolicy::none());
        let rows =
            collect_with(&ctx, 0.02, 1, 0.10, &[], Some(1.0)).expect("partial rows survive");
        assert_eq!(rows.iter().filter(|r| r.fault == "none").count(), 2);
        assert!(rows.iter().all(|r| r.fault != "panic-point"));
        let failures = ctx.failures();
        assert_eq!(failures.len(), 2, "one dead cell per benchmark");
        for f in &failures {
            assert_eq!(f.cause, FailureCause::Panic);
            assert_eq!(f.attempts, 1);
            assert!(
                f.detail.contains("injected panic-point fault"),
                "panic payload must survive isolation: {}",
                f.detail
            );
        }
        assert!(failures
            .iter()
            .any(|f| f.label == "lusearch/panic-point@1.00"));
    }
}
