//! Sampled-vs-exact validation: the measured-error harness behind the
//! sampled execution tier.
//!
//! Every workload × frequency cell is simulated twice through one shared
//! cache — exactly, and on the sampled tier (`simx::sampling`) — and the
//! extrapolation error of execution time and GC time is reported per
//! cell. The rendered table and the JSON report land in
//! `results/sampling_error.{txt,json}`; CI gates on the checked-in JSON,
//! so an extrapolator regression that inflates the error past its
//! accepted bound fails loudly instead of silently degrading every
//! figure the sampled tier feeds.
//!
//! The sweep is complete-or-failed like the figures: a failed point
//! sinks the run rather than leaving a hole the gate would misread.

use dacapo_sim::all_benchmarks;
use serde::Serialize;
use simx::SamplingConfig;

use crate::report::{pct, pct_abs, TextTable};
use crate::run::{ExecCtx, SimPoint, SweepPlan};
use dvfs_trace::Freq;

/// The frequencies the validation sweeps — the paper's full DVFS ladder.
pub const FREQS_GHZ: [f64; 4] = [1.0, 2.0, 3.0, 4.0];

/// One workload × frequency cell of the sampled-vs-exact comparison,
/// seed-averaged.
#[derive(Debug, Clone, Serialize)]
pub struct SamplingErrorCell {
    /// Benchmark name.
    pub benchmark: String,
    /// Chip frequency (GHz).
    pub freq_ghz: f64,
    /// Exact execution time (seconds, mean over seeds).
    pub exact_exec_s: f64,
    /// Extrapolated execution time (seconds, mean over seeds).
    pub sampled_exec_s: f64,
    /// Signed relative execution-time error (sampled vs exact).
    pub exec_error: f64,
    /// Exact GC time (seconds, mean over seeds).
    pub exact_gc_s: f64,
    /// Extrapolated GC time (seconds, mean over seeds).
    pub sampled_gc_s: f64,
    /// Signed relative GC-time error (sampled vs exact).
    pub gc_error: f64,
    /// Execution-time confidence half-width as a fraction of the
    /// extrapolated execution time (mean over seeds).
    pub exec_ci_frac: f64,
    /// Measured phase recurrence of the measure region (mean over seeds).
    pub recurrence: f64,
    /// Epoch-signature clusters in the measure region (max over seeds).
    pub clusters: usize,
    /// True when any seed's region scheduler widened the measure region.
    pub extended: bool,
}

/// The whole validation report: the per-cell table plus the summary
/// numbers the CI accuracy gate reads.
#[derive(Debug, Clone, Serialize)]
pub struct SamplingErrorReport {
    /// Work scale of the sweep.
    pub scale: f64,
    /// Seeds averaged per cell.
    pub seeds: usize,
    /// Probe-region rounds fraction of the sampling configuration.
    pub probe_fraction: f64,
    /// Measure-region rounds fraction of the sampling configuration.
    pub measure_fraction: f64,
    /// Every workload × frequency cell.
    pub cells: Vec<SamplingErrorCell>,
    /// Largest absolute execution-time error over all cells.
    pub max_exec_error: f64,
    /// Largest absolute GC-time error over all cells.
    pub max_gc_error: f64,
    /// Mean absolute execution-time error over all cells.
    pub mean_exec_error: f64,
    /// Mean absolute GC-time error over all cells.
    pub mean_gc_error: f64,
}

/// Relative error of `sampled` against `exact`, tolerating an exactly
/// zero baseline: a zero-GC workload whose extrapolation is also zero is
/// a perfect prediction, not a division by zero.
fn rel(sampled: f64, exact: f64) -> f64 {
    if exact == 0.0 {
        if sampled == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (sampled - exact) / exact
    }
}

/// Runs the validation sweep on `ctx`'s pool: both tiers of the full
/// workload × frequency grid, through the shared cache (sampled keys
/// never collide with exact ones).
///
/// # Errors
/// As [`ExecCtx::execute`] — the sweep is complete-or-failed.
pub fn collect_with(
    ctx: &ExecCtx,
    scale: f64,
    seeds: &[u64],
    cfg: &SamplingConfig,
) -> depburst_core::Result<SamplingErrorReport> {
    let mut plan = SweepPlan::new();
    for bench in all_benchmarks() {
        for ghz in FREQS_GHZ {
            for &seed in seeds {
                plan.push(SimPoint::new(bench, Freq::from_ghz(ghz), scale, seed));
            }
        }
    }
    let exact = ctx.execute_with(&plan, None)?;
    let sampled = ctx.execute_with(&plan, Some(cfg))?;

    let mut cells = Vec::with_capacity(all_benchmarks().len() * FREQS_GHZ.len());
    let mut idx = 0usize;
    for bench in all_benchmarks() {
        for ghz in FREQS_GHZ {
            let n = seeds.len() as f64;
            let mut cell = SamplingErrorCell {
                benchmark: bench.name.to_owned(),
                freq_ghz: ghz,
                exact_exec_s: 0.0,
                sampled_exec_s: 0.0,
                exec_error: 0.0,
                exact_gc_s: 0.0,
                sampled_gc_s: 0.0,
                gc_error: 0.0,
                exec_ci_frac: 0.0,
                recurrence: 0.0,
                clusters: 0,
                extended: false,
            };
            for _seed in seeds {
                let (e, s) = (&exact[idx], &sampled[idx]);
                idx += 1;
                cell.exact_exec_s += e.exec.as_secs() / n;
                cell.sampled_exec_s += s.exec.as_secs() / n;
                cell.exact_gc_s += e.gc_time.as_secs() / n;
                cell.sampled_gc_s += s.gc_time.as_secs() / n;
                let info = s.sampled.as_ref().expect("sampled tier tags its summaries");
                if s.exec.as_secs() > 0.0 {
                    cell.exec_ci_frac += info.exec_half_ci.as_secs() / s.exec.as_secs() / n;
                }
                cell.recurrence += info.recurrence / n;
                cell.clusters = cell.clusters.max(info.clusters);
                cell.extended |= info.extended;
            }
            cell.exec_error = rel(cell.sampled_exec_s, cell.exact_exec_s);
            cell.gc_error = rel(cell.sampled_gc_s, cell.exact_gc_s);
            cells.push(cell);
        }
    }

    let max_abs = |f: fn(&SamplingErrorCell) -> f64| {
        cells.iter().map(|c| f(c).abs()).fold(0.0f64, f64::max)
    };
    let mean_abs = |f: fn(&SamplingErrorCell) -> f64| {
        cells.iter().map(|c| f(c).abs()).sum::<f64>() / cells.len() as f64
    };
    Ok(SamplingErrorReport {
        scale,
        seeds: seeds.len(),
        probe_fraction: cfg.probe_fraction,
        measure_fraction: cfg.measure_fraction,
        max_exec_error: max_abs(|c| c.exec_error),
        max_gc_error: max_abs(|c| c.gc_error),
        mean_exec_error: mean_abs(|c| c.exec_error),
        mean_gc_error: mean_abs(|c| c.gc_error),
        cells,
    })
}

/// Renders the per-cell table with the gate summary line.
#[must_use]
pub fn render(report: &SamplingErrorReport) -> String {
    let mut t = TextTable::new(&[
        "benchmark",
        "GHz",
        "exact exec",
        "sampled exec",
        "exec err",
        "exact gc",
        "sampled gc",
        "gc err",
        "±ci",
        "recur",
        "clusters",
    ]);
    for c in &report.cells {
        t.row(vec![
            c.benchmark.clone(),
            format!("{:.0}", c.freq_ghz),
            format!("{:.4}s", c.exact_exec_s),
            format!("{:.4}s", c.sampled_exec_s),
            pct(c.exec_error),
            format!("{:.4}s", c.exact_gc_s),
            format!("{:.4}s", c.sampled_gc_s),
            pct(c.gc_error),
            pct_abs(c.exec_ci_frac),
            format!("{:.2}", c.recurrence),
            format!("{}{}", c.clusters, if c.extended { "*" } else { "" }),
        ]);
    }
    format!(
        "{}\nmax |exec err| {}  max |gc err| {}  (mean {} / {}; probe {} measure {}, {} seed(s), scale {})\n",
        t.render(),
        pct_abs(report.max_exec_error),
        pct_abs(report.max_gc_error),
        pct_abs(report.mean_exec_error),
        pct_abs(report.mean_gc_error),
        report.probe_fraction,
        report.measure_fraction,
        report.seeds,
        report.scale,
    )
}
