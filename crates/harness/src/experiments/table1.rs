//! Table I: the benchmark roster with execution and GC time at 1 GHz,
//! ours vs the paper's published numbers.
//!
//! Rows execute on [`crate::run::ExecCtx`] with its resilience
//! semantics: the table is complete-or-failed (`SweepIncomplete` only
//! after the surviving rows finished and were cached/journaled).

use dacapo_sim::{all_benchmarks, BenchClass};
use serde::Serialize;

use dvfs_trace::Freq;

use crate::report::{ms, pct_abs, TextTable};
use crate::run::{ExecCtx, SimPoint, SweepPlan};

/// One benchmark's Table I row.
#[derive(Debug, Clone, Serialize)]
pub struct Table1Row {
    /// Benchmark name.
    pub name: String,
    /// "M" or "C".
    pub class: String,
    /// Heap size (MB).
    pub heap_mb: u64,
    /// Measured execution time at 1 GHz (seconds).
    pub exec_s: f64,
    /// Measured GC time at 1 GHz (seconds).
    pub gc_s: f64,
    /// Collections performed.
    pub gc_count: u64,
    /// Bytes allocated.
    pub allocated_mb: f64,
    /// Paper's execution time (seconds).
    pub paper_exec_s: f64,
    /// Paper's GC time (seconds).
    pub paper_gc_s: f64,
}

/// Runs every benchmark at 1 GHz and collects the rows.
///
/// # Panics
/// Panics if a run fails; prefer [`collect_with`] in binaries.
#[must_use]
pub fn collect(scale: f64) -> Vec<Table1Row> {
    collect_with(&ExecCtx::sequential(), scale).unwrap_or_else(|e| panic!("table1: {e}"))
}

/// Runs every benchmark at 1 GHz on `ctx`'s pool and collects the rows.
pub fn collect_with(ctx: &ExecCtx, scale: f64) -> depburst_core::Result<Vec<Table1Row>> {
    let mut plan = SweepPlan::new();
    for b in all_benchmarks() {
        plan.push(SimPoint::new(b, Freq::from_ghz(1.0), scale, 1));
    }
    let results = ctx.execute(&plan)?;
    Ok(all_benchmarks()
        .iter()
        .zip(&results)
        .map(|(b, r)| {
            Table1Row {
                name: b.name.to_owned(),
                class: match b.class {
                    BenchClass::Memory => "M".to_owned(),
                    BenchClass::Compute => "C".to_owned(),
                },
                heap_mb: b.heap_mb,
                exec_s: r.exec.as_secs() / scale,
                gc_s: r.gc_time.as_secs() / scale,
                gc_count: r.gc_count,
                allocated_mb: r.allocated as f64 / (1 << 20) as f64,
                paper_exec_s: b.paper.exec_ms / 1e3,
                paper_gc_s: b.paper.gc_ms / 1e3,
            }
        })
        .collect())
}

/// Renders the comparison table.
#[must_use]
pub fn render(rows: &[Table1Row]) -> String {
    let mut t = TextTable::new(&[
        "benchmark",
        "type",
        "heap",
        "exec (ours)",
        "exec (paper)",
        "GC (ours)",
        "GC (paper)",
        "GC frac",
        "GCs",
        "alloc",
    ]);
    for r in rows {
        t.row(vec![
            r.name.clone(),
            r.class.clone(),
            format!("{} MB", r.heap_mb),
            ms(r.exec_s),
            ms(r.paper_exec_s),
            ms(r.gc_s),
            ms(r.paper_gc_s),
            pct_abs(r.gc_s / r.exec_s),
            r.gc_count.to_string(),
            format!("{:.0} MB", r.allocated_mb),
        ]);
    }
    t.render()
}
