//! Ablation studies beyond the paper's figures (called out in DESIGN.md):
//!
//! 1. **Per-thread model ablation**: DEP composed with each published
//!    single-thread scaling model (stall time, leading loads, CRIT),
//!    with and without BURST — quantifies how much of DEP+BURST's
//!    accuracy comes from CRIT itself vs from the epoch machinery.
//! 2. **Manager parameter sweep**: energy savings and slowdown as a
//!    function of the `hold_off` parameter and the scheduling quantum
//!    (paper §VI-A introduces both but evaluates only one setting).

use dacapo_sim::all_benchmarks;
use depburst::{relative_error, CtpMode, Dep, DvfsPredictor, ErrorStats, NonScalingModel};
use dvfs_trace::{Freq, TimeDelta};
use energyx::{EnergyManager, ManagerConfig, PowerModel};
use serde::Serialize;
use simx::{Machine, MachineConfig};

use crate::report::{pct, pct_abs, TextTable};
use crate::run::{ExecCtx, SimPoint, SweepPlan};

/// Per-thread-model ablation row: one benchmark, six DEP variants.
#[derive(Debug, Clone, Serialize)]
pub struct ModelAblationRow {
    /// Benchmark name.
    pub benchmark: String,
    /// (variant name, signed error at 4 GHz from a 1 GHz base).
    pub errors: Vec<(String, f64)>,
}

/// DEP composed with each per-thread model, ± BURST.
#[must_use]
pub fn dep_variants() -> Vec<Dep> {
    let mut v = Vec::new();
    for model in [
        NonScalingModel::StallTime,
        NonScalingModel::LeadingLoads,
        NonScalingModel::Crit,
    ] {
        for burst in [false, true] {
            v.push(Dep::new(model, burst, CtpMode::AcrossEpoch));
        }
    }
    v
}

/// Runs the per-thread-model ablation (base 1 GHz → target 4 GHz).
///
/// # Panics
/// Panics if a run fails; prefer [`model_ablation_with`] in binaries.
#[must_use]
pub fn model_ablation(scale: f64, seed: u64) -> Vec<ModelAblationRow> {
    model_ablation_with(&ExecCtx::sequential(), scale, seed)
        .unwrap_or_else(|e| panic!("ablation: {e}"))
}

/// Runs the per-thread-model ablation on `ctx`'s pool and cache.
pub fn model_ablation_with(
    ctx: &ExecCtx,
    scale: f64,
    seed: u64,
) -> depburst_core::Result<Vec<ModelAblationRow>> {
    let variants = dep_variants();
    let target = Freq::from_ghz(4.0);
    let mut plan = SweepPlan::new();
    for bench in all_benchmarks() {
        plan.push(SimPoint::new(bench, Freq::from_ghz(1.0), scale, seed));
        plan.push(SimPoint::new(bench, target, scale, seed));
    }
    let results = ctx.execute(&plan)?;
    let mut next = results.iter();
    Ok(all_benchmarks()
        .iter()
        .map(|bench| {
            let base = next.next().expect("plan covers base run");
            let actual = next.next().expect("plan covers target run");
            ModelAblationRow {
                benchmark: bench.name.to_owned(),
                errors: variants
                    .iter()
                    .map(|v| {
                        let predicted = base.rescale_prediction(v.predict(&base.trace, target));
                        (v.name(), relative_error(predicted, actual.exec))
                    })
                    .collect(),
            }
        })
        .collect())
}

/// Renders the model ablation.
#[must_use]
pub fn render_model_ablation(rows: &[ModelAblationRow]) -> String {
    let Some(first) = rows.first() else {
        return String::new();
    };
    let names: Vec<String> = first.errors.iter().map(|(n, _)| n.clone()).collect();
    let mut header = vec!["benchmark"];
    for n in &names {
        header.push(n);
    }
    let mut t = TextTable::new(&header);
    for r in rows {
        let mut row = vec![r.benchmark.clone()];
        for (_, e) in &r.errors {
            row.push(pct(*e));
        }
        t.row(row);
    }
    let mut avg_row = vec!["avg |err|".to_owned()];
    for i in 0..names.len() {
        let errs: Vec<f64> = rows.iter().map(|r| r.errors[i].1).collect();
        avg_row.push(pct_abs(ErrorStats::from_errors(&errs).mean_abs));
    }
    t.row(avg_row);
    format!("DEP per-thread-model ablation, 1 GHz -> 4 GHz\n{}", t.render())
}

/// One manager-parameter configuration's outcome.
#[derive(Debug, Clone, Serialize)]
pub struct ManagerSweepRow {
    /// Hold-off in quanta.
    pub hold_off: u32,
    /// Quantum in milliseconds.
    pub quantum_ms: f64,
    /// Measured slowdown vs. 4 GHz.
    pub slowdown: f64,
    /// Energy savings vs. 4 GHz.
    pub savings: f64,
    /// Frequency switches performed.
    pub switches: u64,
}

/// Sweeps hold-off and quantum for one benchmark at a 5% threshold.
///
/// # Panics
/// Panics if a run fails; prefer [`manager_sweep_with`] in binaries.
#[must_use]
pub fn manager_sweep(bench_name: &str, scale: f64, seed: u64) -> Vec<ManagerSweepRow> {
    manager_sweep_with(&ExecCtx::sequential(), bench_name, scale, seed)
        .unwrap_or_else(|e| panic!("ablation sweep: {e}"))
}

/// Sweeps hold-off and quantum on `ctx`: the 4 GHz baseline is a shared
/// cacheable point, and the six managed configurations fan out across
/// workers (managed runs mutate frequency mid-run, so they stay
/// uncached). Configurations run under the context's resilience stack;
/// the sweep is complete-or-failed (`SweepIncomplete` after the
/// surviving configurations finished).
pub fn manager_sweep_with(
    ctx: &ExecCtx,
    bench_name: &str,
    scale: f64,
    seed: u64,
) -> depburst_core::Result<Vec<ManagerSweepRow>> {
    let Some(bench) = dacapo_sim::benchmark(bench_name) else {
        return Err(depburst_core::DepburstError::Machine {
            detail: format!("unknown benchmark {bench_name}"),
        });
    };
    let power = PowerModel::haswell_22nm();
    let mut plan = SweepPlan::new();
    plan.push(SimPoint::new(bench, Freq::from_ghz(4.0), scale, seed));
    let base = ctx.execute(&plan)?.remove(0);
    let base_energy = power.energy_of_run(Freq::from_ghz(4.0), base.exec, base.total_active, 4);

    let grid: Vec<(String, (u32, f64))> = [
        (1u32, 5.0f64),
        (2, 5.0),
        (4, 5.0),
        (8, 5.0),
        (1, 1.0),
        (1, 20.0),
    ]
    .into_iter()
    .map(|(h, q)| (format!("ablation hold-off {h} quantum {q}ms"), (h, q)))
    .collect();
    ctx.collect_resilient(grid, |&(hold_off, quantum_ms), _attempt| {
        let mut config = ManagerConfig::with_threshold(0.05);
        config.hold_off = hold_off;
        config.quantum = TimeDelta::from_millis(quantum_ms);
        let mut mc = MachineConfig::haswell_quad();
        mc.initial_freq = Freq::from_ghz(4.0);
        let mut machine = Machine::new(mc);
        bench.install(&mut machine, scale, seed);
        let manager = EnergyManager::new(config, Box::new(Dep::dep_burst()));
        let report = manager.run(&mut machine)?;
        Ok(ManagerSweepRow {
            hold_off,
            quantum_ms,
            slowdown: report.exec.as_secs() / base.exec.as_secs() - 1.0,
            savings: 1.0 - report.energy_j / base_energy,
            switches: report.switches,
        })
    })
}

/// Renders the manager sweep.
#[must_use]
pub fn render_manager_sweep(bench_name: &str, rows: &[ManagerSweepRow]) -> String {
    let mut t = TextTable::new(&["hold-off", "quantum", "slowdown", "savings", "switches"]);
    for r in rows {
        t.row(vec![
            r.hold_off.to_string(),
            format!("{} ms", r.quantum_ms),
            pct(r.slowdown),
            pct(r.savings),
            r.switches.to_string(),
        ]);
    }
    format!(
        "energy-manager parameter sweep on {bench_name}, 5% threshold\n{}",
        t.render()
    )
}

/// Leave-one-benchmark-out evaluation of the offline-regression predictor
/// (the related-work family of §VII-A) against DEP+BURST.
#[derive(Debug, Clone, Serialize)]
pub struct RegressionRow {
    /// The held-out benchmark.
    pub benchmark: String,
    /// Regression error at 4 GHz from a 1 GHz base (trained on the other
    /// six benchmarks).
    pub regression: f64,
    /// DEP+BURST error on the same runs (no training needed).
    pub dep_burst: f64,
}

/// Runs the leave-one-out study.
///
/// # Panics
/// Panics if a run fails; prefer [`regression_ablation_with`] in binaries.
#[must_use]
pub fn regression_ablation(scale: f64, seed: u64) -> Vec<RegressionRow> {
    regression_ablation_with(&ExecCtx::sequential(), scale, seed)
        .unwrap_or_else(|e| panic!("ablation regression: {e}"))
}

/// Runs the leave-one-out study on `ctx`'s pool and cache. Every point
/// here (1/2/3/4 GHz per benchmark) is shared with the fig3 grid.
pub fn regression_ablation_with(
    ctx: &ExecCtx,
    scale: f64,
    seed: u64,
) -> depburst_core::Result<Vec<RegressionRow>> {
    use depburst::RegressionTrainer;
    let target = Freq::from_ghz(4.0);
    let mut plan = SweepPlan::new();
    for bench in all_benchmarks() {
        plan.push(SimPoint::new(bench, Freq::from_ghz(1.0), scale, seed));
        plan.push(SimPoint::new(bench, target, scale, seed));
        for g in [2.0, 3.0] {
            plan.push(SimPoint::new(bench, Freq::from_ghz(g), scale, seed));
        }
    }
    let results = ctx.execute(&plan)?;
    let mut next = results.iter();
    // Gather each benchmark's (base trace, actual-at-target) once.
    let data: Vec<_> = all_benchmarks()
        .iter()
        .map(|bench| {
            let base = next.next().expect("plan covers base run");
            let actual = next.next().expect("plan covers target run");
            // Intermediate targets sampled for the training set.
            let mid: Vec<_> = [2.0, 3.0]
                .iter()
                .map(|&g| {
                    let r = next.next().expect("plan covers mid run");
                    (Freq::from_ghz(g), r.exec)
                })
                .collect();
            (bench.name.to_owned(), base, actual, mid)
        })
        .collect();

    let dep = Dep::dep_burst();
    Ok(data
        .iter()
        .map(|(held_out, base, actual, _)| {
            let mut trainer = RegressionTrainer::new();
            for (name, b, a, mid) in &data {
                if name == held_out {
                    continue;
                }
                trainer.observe(&b.trace, target, a.exec);
                for (f, exec) in mid {
                    trainer.observe(&b.trace, *f, *exec);
                }
            }
            let model = trainer.fit().expect("six benchmarks suffice");
            RegressionRow {
                benchmark: held_out.clone(),
                regression: relative_error(
                    base.rescale_prediction(model.predict(&base.trace, target)),
                    actual.exec,
                ),
                dep_burst: relative_error(
                    base.rescale_prediction(dep.predict(&base.trace, target)),
                    actual.exec,
                ),
            }
        })
        .collect())
}

/// Renders the leave-one-out comparison.
#[must_use]
pub fn render_regression(rows: &[RegressionRow]) -> String {
    let mut t = TextTable::new(&["held-out benchmark", "REGRESSION", "DEP+BURST"]);
    for r in rows {
        t.row(vec![
            r.benchmark.clone(),
            pct(r.regression),
            pct(r.dep_burst),
        ]);
    }
    let reg: Vec<f64> = rows.iter().map(|r| r.regression).collect();
    let dep: Vec<f64> = rows.iter().map(|r| r.dep_burst).collect();
    t.row(vec![
        "avg |err|".into(),
        pct_abs(ErrorStats::from_errors(&reg).mean_abs),
        pct_abs(ErrorStats::from_errors(&dep).mean_abs),
    ]);
    format!(
        "offline regression (leave-one-benchmark-out) vs DEP+BURST, 1 GHz -> 4 GHz\n{}",
        t.render()
    )
}
