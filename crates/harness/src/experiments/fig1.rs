//! Figure 1: the headline comparison — M+CRIT vs DEP+BURST average
//! absolute error when predicting 2/3/4 GHz from a 1 GHz base.
//!
//! This is a view over the Figure 3(a) data.
//!
//! All points run through [`crate::run::ExecCtx::execute`], so the
//! figure inherits the full resilience stack: a point that still fails
//! after retries turns the run into `SweepIncomplete` — but only after
//! every surviving point finished and was cached/journaled for the
//! retry.

use serde::Serialize;

use super::fig3::{avg_abs_by_model, collect_with, Direction, Fig3Cell};
use crate::report::{pct_abs, TextTable};
use crate::run::ExecCtx;

/// One target frequency's headline numbers.
#[derive(Debug, Clone, Serialize)]
pub struct Fig1Row {
    /// Target frequency (GHz), base is 1 GHz.
    pub target_ghz: f64,
    /// M+CRIT average absolute error.
    pub mcrit: f64,
    /// DEP+BURST average absolute error.
    pub dep_burst: f64,
}

/// Runs the experiment.
///
/// # Panics
/// Panics if a simulated run fails; prefer [`run_with`] in binaries.
#[must_use]
pub fn run(scale: f64, seeds: &[u64]) -> (Vec<Fig1Row>, Vec<Fig3Cell>) {
    run_with(&ExecCtx::sequential(), scale, seeds).unwrap_or_else(|e| panic!("fig1: {e}"))
}

/// Runs the experiment on `ctx`'s pool and cache.
pub fn run_with(
    ctx: &ExecCtx,
    scale: f64,
    seeds: &[u64],
) -> depburst_core::Result<(Vec<Fig1Row>, Vec<Fig3Cell>)> {
    let cells = collect_with(ctx, Direction::LowToHigh, scale, seeds)?;
    let rows = [2.0, 3.0, 4.0]
        .iter()
        .map(|&t| {
            let by_model = avg_abs_by_model(&cells, t);
            let find = |name: &str| {
                by_model
                    .iter()
                    .find(|(n, _)| n == name)
                    .map(|(_, e)| *e)
                    .unwrap_or(f64::NAN)
            };
            Fig1Row {
                target_ghz: t,
                mcrit: find("M+CRIT"),
                dep_burst: find("DEP+BURST"),
            }
        })
        .collect();
    Ok((rows, cells))
}

/// Renders the headline table.
#[must_use]
pub fn render(rows: &[Fig1Row]) -> String {
    let mut t = TextTable::new(&["target", "M+CRIT avg |err|", "DEP+BURST avg |err|"]);
    for r in rows {
        t.row(vec![
            format!("{} GHz", r.target_ghz),
            pct_abs(r.mcrit),
            pct_abs(r.dep_burst),
        ]);
    }
    t.render()
}
